"""Telemetry layer: zero cost when disabled, cheap when enabled.

The telemetry registry (PR 4) hangs off a single attribute: every hook
in the simulator, RMS, JSS, and health tracker is guarded by one
``if self.telemetry is not None`` check.  This bench pins the
zero-cost-when-disabled guarantee and keeps the enabled path honest:

* **Disabled overhead.**  A simulator constructed without a registry
  must run within 5% of the pre-telemetry wall-clock (the guards are
  all that remains of the feature) and behave identically -- the
  telemetry hooks schedule no events and draw no randomness, so the
  report is byte-for-byte the same object either way.

* **Enabled overhead.**  With a registry attached, change-driven gauge
  sampling and histogram observes are bookkeeping, not simulation:
  the instrumented run must stay within 50% of the plain one (measured
  ~29% on the reference grid) and must still produce the identical
  report.
"""

import time

from repro.sim.experiment import ExperimentSpec, NodeSpec, run_experiment
from repro.sim.telemetry import TelemetryRegistry

#: The resilience bench's grid shape at 400 tasks: long fabric tasks
#: keep the event engine busy so the ratio is measured over ~100 ms of
#: real work rather than scheduler-noise territory.
SPEC = ExperimentSpec(
    tasks=400,
    nodes=(
        NodeSpec(gpps=1, gpp_mips=2_000, rpe_models=("XC5VLX330",), regions_per_rpe=3),
        NodeSpec(gpps=1, gpp_mips=1_500, rpe_models=("XC5VLX155",), regions_per_rpe=2),
    ),
    arrival_rate_per_s=2.0,
    area_range=(2_000, 12_000),
    gpp_fraction=0.2,
    required_time_range_s=(4.0, 10.0),
    speedup_range=(2.0, 5.0),
    seed=0,
)


def timed(repeats: int = 7, *, instrument: bool = False):
    """(best wall-clock seconds, report) over *repeats* fresh runs."""
    best = float("inf")
    report = None
    for _ in range(repeats):
        telemetry = TelemetryRegistry() if instrument else None
        start = time.perf_counter()
        report = run_experiment(SPEC, telemetry=telemetry).report
        best = min(best, time.perf_counter() - start)
    return best, report


def bench_disabled_overhead(benchmark):
    plain_s, plain = timed()
    on_s, observed = timed(instrument=True)

    overhead = on_s / plain_s - 1.0
    print("\ntelemetry overhead (400 tasks, best of 7)")
    print(f"  telemetry disabled   {plain_s * 1e3:8.2f} ms")
    print(f"  telemetry enabled    {on_s * 1e3:8.2f} ms  ({overhead:+.1%})")

    # Observation never perturbs the simulation...
    assert observed == plain
    assert plain.completed == SPEC.tasks
    # ...and the enabled path is bounded bookkeeping.
    assert overhead < 0.50, f"enabled telemetry overhead {overhead:.1%} >= 50%"

    report = benchmark(lambda: run_experiment(SPEC).report)
    assert report.completed == SPEC.tasks


def bench_disabled_guard_cost(benchmark):
    """Bound the *disabled* path directly: all that remains of
    telemetry in an uninstrumented run is its ``is not None`` guards.
    Timing the no-op hooks themselves and scaling by a generous
    per-task call count proves the guard budget is far under the 5%
    acceptance bar, without depending on run-to-run machine noise."""
    from repro.sim.experiment import build_grid
    from repro.sim.simulator import DReAMSim

    sim = DReAMSim(build_grid(SPEC))
    assert sim.telemetry is None

    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        sim._telemetry_sample()
    sample_s = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(calls):
        sim._telemetry_count("sim_retries_total", "retry requeues")
    count_s = time.perf_counter() - start
    per_call_s = (sample_s + count_s) / (2 * calls)

    plain_s, plain = timed(repeats=3)
    assert plain.completed == SPEC.tasks
    # ~20 guarded hook sites firing per task is far beyond reality.
    guard_budget_s = per_call_s * 20 * SPEC.tasks
    share = guard_budget_s / plain_s
    print("\ndisabled-telemetry guard cost")
    print(f"  per no-op hook call  {per_call_s * 1e9:8.1f} ns")
    print(f"  20 calls/task budget {guard_budget_s * 1e3:8.3f} ms "
          f"of a {plain_s * 1e3:.2f} ms run ({share:.2%})")
    assert share < 0.05, f"guard budget {share:.2%} >= 5% of wall time"

    report = benchmark(lambda: run_experiment(SPEC).report)
    assert report.completed == SPEC.tasks


if __name__ == "__main__":
    from repro.bench import standalone_main

    raise SystemExit(standalone_main("telemetry-instrumented"))
