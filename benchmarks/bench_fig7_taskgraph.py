"""Figure 7: the application task graph.

Regenerates the T0..T17 graph with the paper's stated dependencies,
prints its generations and critical path, and times dependency
resolution (readiness-frontier execution) on graphs two orders of
magnitude larger than the figure.
"""

import numpy as np

from repro.core.execreq import ExecReq
from repro.core.task import DataIn, DataOut, Task
from repro.core.taskgraph import FIGURE7_EDGES, TaskGraph, figure7_graph
from repro.hardware.taxonomy import PEClass


def random_big_graph(n: int = 1_500, seed: int = 0) -> TaskGraph:
    rng = np.random.default_rng(seed)
    tasks = []
    for task_id in range(n):
        max_preds = min(task_id, 4)
        k = int(rng.integers(0, max_preds + 1)) if max_preds else 0
        preds = rng.choice(task_id, size=k, replace=False) if k else []
        tasks.append(
            Task(
                task_id=task_id,
                data_in=tuple(DataIn(int(p), 0, 1 << 12) for p in preds),
                data_out=(DataOut(0, 1 << 12),),
                exec_req=ExecReq(node_type=PEClass.GPP),
                t_estimated=float(rng.uniform(0.5, 3.0)),
            )
        )
    return TaskGraph(tasks)


def bench_fig7_dependency_resolution(benchmark):
    graph = figure7_graph(t_estimated=1.0)
    print("\nFigure 7: application task graph (T0..T17)")
    for consumer, producers in sorted(FIGURE7_EDGES.items()):
        inputs = ", ".join(f"T{p}" for p in producers)
        print(f"  DataIN(T{consumer}) <- DataOUT({inputs})")
    print(f"  generations: {graph.generations()}")
    path, length = graph.critical_path()
    print(f"  critical path: {' -> '.join(f'T{t}' for t in path)}  ({length:.1f} s)")

    # The paper's explicit edges.
    assert graph.predecessors(8) == {0, 2, 5}
    assert graph.predecessors(11) == {7, 9, 13}
    assert graph.predecessors(13) == {7, 8}
    assert graph.predecessors(17) == {7, 13}
    assert length == 4.0  # T?->T8->T13->{T11|T17}

    big = random_big_graph()

    def frontier_execution():
        completed: set[int] = set()
        rounds = 0
        while len(completed) < len(big):
            completed |= big.ready_tasks(completed)
            rounds += 1
        return rounds

    rounds = benchmark(frontier_execution)
    assert rounds == len(big.generations())


if __name__ == "__main__":
    g = figure7_graph()
    print(g.generations())
    print(g.critical_path())
