"""Engine scaling: heap vs calendar queue on the simulator hot path.

ROADMAP item 1 asks for millions of tasks per run; the discrete-event
queue is the floor every other cost sits on.  This bench runs the two
engine kernels from :mod:`repro.bench.cases` --

* ``run_engine_drain``: bulk-schedule N random-time events, drain.
  Pure queue throughput, the widest heap/calendar gap.
* ``run_engine_micro``: the simulator-shaped kernel -- N bulk arrivals
  whose callbacks each schedule one dynamic completion event, exactly
  the ``submit_workload_columns`` + ``_finish`` pattern.

-- and asserts the calendar queue's headline claim: at least **5x**
events/sec over the heap baseline on the drain kernel, and ahead of
the heap on the simulator-shaped kernel too.  Both engines must also
agree exactly on processed-event counts and final clocks (the cheap
end of the differential battery; the full lock lives in
``tests/properties/test_prop_engine.py`` and the golden traces).

The registered cases (``engine-micro-heap`` / ``engine-micro-calendar``)
put both engines in the ``BENCH_*.json`` trajectory, so events/sec is
trackable release over release via ``repro diff``.
"""

import time

from repro.bench import standalone_main
from repro.bench.cases import (
    ENGINE_MICRO_EVENTS,
    run_engine_drain,
    run_engine_micro,
)

#: The acceptance bar: calendar-queue events/sec over heap events/sec
#: on the drain kernel (measured 10-20x on the reference container).
MIN_DRAIN_SPEEDUP = 5.0


def _time_best(fn, *args, repeat: int = 3):
    """(best wall seconds, last result) over ``repeat`` runs."""
    best, result = float("inf"), None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def measure_speedup(n: int = ENGINE_MICRO_EVENTS, *, repeat: int = 3):
    """{kernel: (heap_s, calendar_s, speedup)} for both kernels."""
    out = {}
    for label, kernel in (("drain", run_engine_drain), ("mixed", run_engine_micro)):
        heap_s, heap_res = _time_best(kernel, "heap", repeat=repeat)
        cal_s, cal_res = _time_best(kernel, "calendar", repeat=repeat)
        assert heap_res == cal_res, (
            f"{label}: engines disagree: heap {heap_res} vs calendar {cal_res}"
        )
        out[label] = (heap_s, cal_s, heap_s / cal_s)
    return out


def bench_engine_scaling(benchmark):
    results = measure_speedup()
    print("\nEngine scaling: heap vs calendar queue "
          f"({ENGINE_MICRO_EVENTS} scheduled events)")
    print(f"{'kernel':>8s} {'heap s':>9s} {'calendar s':>11s} {'speedup':>8s}")
    for label, (heap_s, cal_s, speedup) in results.items():
        print(f"{label:>8s} {heap_s:9.3f} {cal_s:11.3f} {speedup:7.2f}x")
    # The headline claim: >= 5x queue throughput, and the simulator-
    # shaped kernel ahead too.
    assert results["drain"][2] >= MIN_DRAIN_SPEEDUP, results["drain"]
    assert results["mixed"][2] > 1.5, results["mixed"]

    events, _ = benchmark(run_engine_micro, "calendar")
    assert events == 2 * ENGINE_MICRO_EVENTS


if __name__ == "__main__":
    raise SystemExit(standalone_main("engine-micro-calendar"))
