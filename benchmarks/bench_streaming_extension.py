"""Extension bench: the streaming scenario (Section VI future work).

"Currently, the framework does not support streaming applications.  In
our future work, we will propose a virtualization scenario for
streaming applications."  This library implements that scenario: a
``Stream`` clause pipelines its task chain over data chunks, so stage
*j* of chunk *c* overlaps stage *j+1* of chunk *c-1*.

The bench sweeps the chunk count and compares the pipelined makespan
against the same chain submitted as ``Seq`` (no overlap).  Expected
shape: makespan(chunks=k) ~= total * (stages + k - 1) / (stages * k),
approaching total/stages as k grows.
"""

import pytest

from repro.core.application import Application, Seq, Stream
from repro.core.execreq import Artifacts, ExecReq
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.gpp import GPPSpec
from repro.hardware.taxonomy import PEClass
from repro.sim.simulator import DReAMSim

STAGES = 4
STAGE_TIME = 2.0


def build_sim():
    node = Node(node_id=0)
    for i in range(STAGES):
        node.add_gpp(GPPSpec(cpu_model=f"cpu{i}", mips=1_000))
    rms = ResourceManagementSystem()
    rms.register_node(node)
    return DReAMSim(rms)


def make_tasks():
    return {
        i: simple_task(
            i,
            ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
            STAGE_TIME,
        )
        for i in range(STAGES)
    }


def run_stream(chunks: int) -> float:
    sim = build_sim()
    app = Application(clauses=(Stream(*range(STAGES)),))
    sim.submit_application(app, make_tasks(), stream_chunks=chunks)
    return sim.run().makespan_s


def run_sequential() -> float:
    sim = build_sim()
    app = Application(clauses=(Seq(*range(STAGES)),))
    sim.submit_application(app, make_tasks())
    return sim.run().makespan_s


def bench_streaming_pipeline(benchmark):
    seq_makespan = run_sequential()
    total = STAGES * STAGE_TIME
    print("\nStreaming extension: pipelined vs sequential execution")
    print(f"  sequential (Seq):           {seq_makespan:6.2f} s")
    rows = []
    for chunks in (1, 2, 4, 8, 16):
        makespan = run_stream(chunks)
        ideal = total * (STAGES + chunks - 1) / (STAGES * chunks)
        rows.append((chunks, makespan, ideal))
        print(f"  stream, {chunks:2d} chunks:         {makespan:6.2f} s  (ideal {ideal:5.2f})")

    assert seq_makespan == pytest.approx(total)
    for chunks, makespan, ideal in rows:
        assert makespan == pytest.approx(ideal)
    # Monotone improvement with deeper pipelining, approaching total/stages.
    makespans = [m for _, m, _ in rows]
    assert makespans == sorted(makespans, reverse=True)
    assert makespans[-1] < seq_makespan / 2

    result = benchmark(run_stream, 8)
    assert result > 0


if __name__ == "__main__":
    print(run_sequential(), [run_stream(c) for c in (1, 2, 4, 8)])
