"""Figure 10: gprof profile of the top compute-intensive ClustalW kernels.

Runs the full ClustalW pipeline on a synthetic BioBench-style family
under the call-graph profiler and regenerates the Figure 10 listing:
the top-10 kernels by self time, plus the cumulative shares of the two
stage entry points the paper reports -- *pairalign* (89.76 %) and
*malign* (7.79 %).

Absolute percentages depend on family size (pairalign's share grows
quadratically with the number of sequences while malign's grows
linearly), so the assertions check the paper's *shape*: pairalign
dominates by an order of magnitude, malign is a clear second, and
everything else is noise.  At the benched size (24 sequences) the
shares land within a few points of the published ones.
"""

import importlib

import pytest

from repro.bioinfo.sequences import synthetic_family
from repro.profiling.callgraph import CallGraphProfiler

PAPER_PAIRALIGN_PCT = 89.76
PAPER_MALIGN_PCT = 7.79

_pa = importlib.import_module("repro.bioinfo.pairalign")
_ma = importlib.import_module("repro.bioinfo.malign")
_gt = importlib.import_module("repro.bioinfo.guidetree")
_cw = importlib.import_module("repro.bioinfo.clustalw")


def profile_clustalw(family_size: int, length: int, seed: int = 0):
    profiler = CallGraphProfiler()
    profiler.instrument(
        _pa, "pairalign", "align_pair", "_wavefront", "_traceback_ops",
        "tracepath", "forward_pass",
    )
    profiler.instrument(_ma, "malign", "pdiff", "prfscore", "_apply_ops")
    profiler.instrument(_gt, "upgma")
    profiler.instrument(_cw, "pairalign", "malign", "upgma")
    try:
        family = synthetic_family(family_size, length, seed=seed)
        _cw.clustalw(family)
    finally:
        profiler.restore()
    return profiler


def bench_fig10_profile(benchmark):
    profiler = profile_clustalw(family_size=24, length=110)
    pair_pct = profiler.cumulative_pct("pairalign")
    malign_pct = profiler.cumulative_pct("malign")

    print("\nFigure 10: top-10 compute-intensive ClustalW kernels")
    print(profiler.gprof_report(top=10))
    print(
        f"\n  pairalign cumulative: {pair_pct:6.2f} %   (paper: {PAPER_PAIRALIGN_PCT} %)"
    )
    print(
        f"  malign    cumulative: {malign_pct:6.2f} %   (paper: {PAPER_MALIGN_PCT} %)"
    )

    # Shape assertions (see module docstring).
    assert pair_pct > 75.0
    assert pair_pct > 5 * malign_pct
    assert malign_pct > 1.0
    assert pair_pct + malign_pct > 90.0
    top_names = [row.name for row in profiler.top(10)]
    assert "_wavefront" in top_names  # the DP kernel itself leads
    assert any(n in top_names for n in ("pdiff", "malign"))

    # Timed kernel: a small profiled pipeline run end to end.
    result = benchmark(profile_clustalw, 8, 60, 1)
    assert result.total_self_s > 0


if __name__ == "__main__":
    prof = profile_clustalw(24, 110)
    print(prof.gprof_report(top=10))
    print("pairalign %:", prof.cumulative_pct("pairalign"))
    print("malign %:", prof.cumulative_pct("malign"))
