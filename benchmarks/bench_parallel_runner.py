"""Harness benchmark: the parallel runner vs the serial sweep path.

Not a paper figure -- this pins down the experiment infrastructure
itself: a strategy-comparison sweep executed through
:class:`~repro.sim.runner.ExperimentRunner` must produce reports
byte-identical to the serial :func:`~repro.sim.experiment.sweep`, the
spec-hash cache must turn a re-run into pure file reads, and every
traced run must pass the invariant checker.  The timed section is the
wide sweep (speedup over serial scales with available cores; on a
single-core box the two are within process-spawn overhead).
"""

import json
from dataclasses import asdict

from repro.scheduling import ALL_STRATEGIES
from repro.sim.experiment import ExperimentSpec, run_experiment, sweep
from repro.sim.runner import ExperimentRunner
from repro.sim.tracing import TraceInvariantChecker, Tracer

STRATEGIES = sorted(ALL_STRATEGIES)
BASE = ExperimentSpec(tasks=120, configurations=6, arrival_rate_per_s=2.5, seed=23)


def run_wide(jobs: int | None = None, cache_dir=None):
    runner = ExperimentRunner(jobs=jobs, cache_dir=cache_dir)
    results = runner.sweep(BASE, "strategy", STRATEGIES)
    return runner, results


def bench_parallel_runner(benchmark, tmp_path):
    serial = sweep(BASE, "strategy", STRATEGIES)
    runner, wide = run_wide(cache_dir=tmp_path / "cache")
    print(f"\nparallel runner: {runner.last_stats.summary_line()}")

    # Parallel results are byte-identical to the serial sweep.
    for a, b in zip(serial, wide):
        assert json.dumps(asdict(a.report), sort_keys=True) == json.dumps(
            asdict(b.report), sort_keys=True
        )

    # A re-run of the same grid is served entirely from the cache.
    rerun_runner, rerun = run_wide(cache_dir=tmp_path / "cache")
    assert rerun_runner.last_stats.cache_hits == len(STRATEGIES)
    assert rerun_runner.last_stats.executed == 0
    for a, b in zip(wide, rerun):
        assert a.report == b.report

    # Every strategy's traced run satisfies the simulator invariants.
    for name in STRATEGIES:
        tracer = Tracer.with_invariants()
        run_experiment(BASE.with_(strategy=name), tracer=tracer)
        assert tracer.checker.events_checked == tracer.events_emitted > 0

    runner, _ = benchmark(run_wide)
    assert runner.last_stats.executed == len(STRATEGIES)


if __name__ == "__main__":
    from repro.bench import standalone_main

    raise SystemExit(standalone_main("parallel-runner"))
