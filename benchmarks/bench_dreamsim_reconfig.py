"""DReAMSim ablation: reconfiguration mechanics.

Two knobs the paper highlights for reconfigurable nodes (refs [20][21]):

1. **Partial vs full reconfiguration** -- ref [21] added partial
   reconfiguration to DReAMSim's nodes; a partial bitstream only pays
   for the region it covers, a full swap always pays for the whole
   device.
2. **Configuration reuse** -- a small configuration pool relative to
   the task count means the required circuit is often already resident;
   a large pool defeats reuse.

The sweep tabulates total reconfiguration time and reuse rate across
both knobs; assertions pin the expected monotonicity.

The kernel lives in :mod:`repro.bench.cases` (case ``reconfig-sweep``).
"""

from repro.bench import standalone_main
from repro.bench.cases import RECONFIG_TASKS as TASKS
from repro.bench.cases import run_reconfig as run_config


def regenerate():
    rows = []
    for partial in (True, False):
        for pool_size in (2, 8, 32):
            report = run_config(partial=partial, pool_size=pool_size)
            rows.append((partial, pool_size, report))
    return rows


def bench_dreamsim_reconfiguration_sweep(benchmark):
    rows = regenerate()
    print("\nDReAMSim reconfiguration ablation (150 hardware tasks)")
    print(f"{'mode':8s} {'pool':>5s} {'reconf':>7s} {'reconf s':>9s} {'reuse':>7s} {'wait s':>8s}")
    for partial, pool_size, r in rows:
        mode = "partial" if partial else "full"
        print(
            f"{mode:8s} {pool_size:5d} {r.reconfigurations:7d} "
            f"{r.total_reconfig_time_s:9.3f} {r.reuse_rate:7.1%} {r.mean_wait_s:8.3f}"
        )

    by = {(p, s): r for p, s, r in rows}
    for pool_size in (2, 8, 32):
        partial_r = by[(True, pool_size)]
        full_r = by[(False, pool_size)]
        assert partial_r.completed == full_r.completed == TASKS
        # Same decisions -> same reconfiguration count; partial loads
        # strictly less configuration data per event.
        if full_r.reconfigurations:
            assert (
                partial_r.total_reconfig_time_s < full_r.total_reconfig_time_s
            ), pool_size
    # Smaller pools -> more reuse, fewer reconfigurations.
    assert by[(True, 2)].reuse_rate > by[(True, 32)].reuse_rate
    assert by[(True, 2)].reconfigurations <= by[(True, 32)].reconfigurations

    report = benchmark(run_config, partial=True, pool_size=8)
    assert report.completed == TASKS


if __name__ == "__main__":
    raise SystemExit(standalone_main("reconfig-sweep"))
