"""Figure 3: the grid node model (Eq. 1).

Exercises the node tuple -- construction, runtime add/remove, and state
snapshots -- and times the operation the RMS performs continuously:
refreshing the Eq. 1 ``state`` of every node in a large grid ("The RMS
updates the statuses of all nodes in the grid").
"""

from repro.core.node import Node
from repro.hardware.catalog import devices_by_family
from repro.hardware.gpp import GPPSpec


def build_grid(nodes: int = 64) -> list[Node]:
    devices = devices_by_family("virtex-5")
    grid = []
    for i in range(nodes):
        node = Node(node_id=1_000 + i)
        for g in range(1 + i % 3):
            node.add_gpp(GPPSpec(cpu_model=f"cpu{g}", mips=1_000.0 * (g + 1)))
        for r in range(1 + i % 2):
            node.add_rpe(devices[(i + r) % len(devices)], regions=1 + (i % 3))
        grid.append(node)
    return grid


def bench_fig3_status_refresh(benchmark):
    grid = build_grid()

    # Eq. 1 structure checks on a sample node.
    node = grid[0]
    node_id, gpp_caps, rpe_caps, state = node.as_tuple()
    assert gpp_caps and rpe_caps
    assert state.available_reconfigurable_area > 0
    print(
        f"\nFigure 3: grid of {len(grid)} nodes, "
        f"{sum(len(n.gpps) for n in grid)} GPPs, {sum(len(n.rpes) for n in grid)} RPEs"
    )

    # Runtime adaptivity: add and remove a resource on every node.
    for n in grid:
        added = n.add_gpp(GPPSpec(cpu_model="hotplug", mips=500))
        n.remove_gpp(added.resource_id)

    def refresh_statuses():
        return {n.node_id: n.state() for n in grid}

    statuses = benchmark(refresh_statuses)
    assert len(statuses) == len(grid)
    assert all(s.has_capacity for s in statuses.values())


if __name__ == "__main__":
    grid = build_grid()
    print(grid[0].as_tuple())
