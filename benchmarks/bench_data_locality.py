"""Data-locality ablation: cost-aware vs locality-blind placement.

Section V's scheduler parameters include the time to ship data and
bitstreams.  With producer locations feeding the cost model
(:meth:`ResourceManagementSystem.plan_placement`'s ``data_sites``),
cost-driven strategies co-locate consumers with their producers; a
locality-blind strategy (random) scatters a pipeline across the WAN and
pays the slow link on every edge.

Workload: 5 independent 4-stage chains (staggered so the grid is not
saturated -- the dispatcher is eager, so under overload even a cost
model is forced off-node) with 50 MB intermediates, on two nodes joined
by a 2 MB/s WAN.  Expected shape: hybrid-cost keeps every chain on one
node (zero WAN edges), random pays ~26 s per edge it scatters.
"""

from repro.core.execreq import Artifacts, ExecReq
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.network import Link, Network, USER_SITE
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.gpp import GPPSpec
from repro.hardware.taxonomy import PEClass
from repro.scheduling import HybridCostScheduler, RandomScheduler
from repro.sim.simulator import DReAMSim

MB = 1 << 20
CHAINS = 5
STAGES = 4
EDGE_BYTES = 50 * MB
SEED = 37


def build_rms(scheduler) -> ResourceManagementSystem:
    net = Network()
    # High-latency user uplinks so node-to-node traffic cannot shortcut
    # through the user site: the slow WAN is the only sensible route.
    net.connect(USER_SITE, 0, Link(bandwidth_mbps=100.0, latency_s=0.2))
    net.connect(USER_SITE, 1, Link(bandwidth_mbps=100.0, latency_s=0.2))
    net.connect(0, 1, Link(bandwidth_mbps=2.0, latency_s=0.05))  # slow WAN
    rms = ResourceManagementSystem(network=net, scheduler=scheduler)
    for node_id in (0, 1):
        node = Node(node_id=node_id, name=f"Node_{node_id}")
        for g in range(3):
            node.add_gpp(GPPSpec(cpu_model=f"cpu{node_id}.{g}", mips=1_000))
        rms.register_node(node)
    return rms


def chain_tasks(chain: int):
    base = chain * 100
    tasks = [
        simple_task(
            base,
            ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
            1.0,
        )
    ]
    for stage in range(1, STAGES):
        tasks.append(
            simple_task(
                base + stage,
                ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
                1.0,
                sources=(base + stage - 1,),
                in_bytes=EDGE_BYTES,
            )
        )
    return tasks


def run(scheduler):
    rms = build_rms(scheduler)
    sim = DReAMSim(rms)
    for chain in range(CHAINS):
        sim.submit_graph(chain_tasks(chain), at=2.0 * chain)
    report = sim.run()
    wan_crossings = sum(
        1
        for tm in sim.metrics.tasks.values()
        if tm.transfer_time > 1.0  # only the 2 MB/s WAN is this slow
    )
    return report, wan_crossings


def bench_data_locality(benchmark):
    hybrid, hybrid_wan = run(HybridCostScheduler())
    random_, random_wan = run(RandomScheduler(seed=SEED))

    print("\nData locality: 5 four-stage chains, 50 MB edges, 2 MB/s WAN")
    print(f"{'strategy':14s} {'makespan s':>11s} {'WAN edges':>10s} {'turnaround s':>13s}")
    for label, (report, wan) in (
        ("hybrid-cost", (hybrid, hybrid_wan)),
        ("random", (random_, random_wan)),
    ):
        print(
            f"{label:14s} {report.makespan_s:11.2f} {wan:10d} {report.mean_turnaround_s:13.2f}"
        )

    assert hybrid.completed == random_.completed == CHAINS * STAGES
    # The cost model never pushes an edge across the WAN here.
    assert hybrid_wan == 0
    assert random_wan > 0
    assert hybrid.makespan_s < random_.makespan_s / 2

    report, _ = benchmark(run, HybridCostScheduler())
    assert report.completed == CHAINS * STAGES


if __name__ == "__main__":
    for name, sched in (("hybrid", HybridCostScheduler()), ("random", RandomScheduler(seed=SEED))):
        report, wan = run(sched)
        print(name, round(report.makespan_s, 2), wan)
