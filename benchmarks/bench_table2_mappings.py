"""Table II: possible node mappings for Task_0..Task_3.

Regenerates the full table from the Figure 5 nodes and Figure 6 tasks
via the general matchmaker and asserts exact agreement with the
published rows.  The timed kernel is the enumeration itself -- the
matchmaking sweep the RMS runs per submitted task.
"""

from repro.casestudy.mappings import PAPER_TABLE2, enumerate_mappings, matches_paper, table2
from repro.casestudy.nodes import build_case_study_nodes
from repro.casestudy.tasks import build_case_study_tasks


def bench_table2_enumeration(benchmark):
    tasks = build_case_study_tasks()
    nodes = build_case_study_nodes()

    rows = table2(tasks, nodes)
    print("\nTable II: possible node mappings (regenerated)")
    for row in rows:
        print("  " + row.format())

    # Exact agreement with the published table, per row.
    assert matches_paper(tasks, nodes)
    ours = enumerate_mappings(tasks, nodes)
    for task_id, expected in PAPER_TABLE2.items():
        assert sorted(ours[task_id]) == sorted(expected)

    result = benchmark(enumerate_mappings, tasks, nodes)
    assert len(result) == 4


if __name__ == "__main__":
    from repro.bench import standalone_main

    raise SystemExit(standalone_main("table2-mappings"))
