"""DReAMSim ablation: scheduling strategies.

Section V: "The mapping decisions are based on a particular scheduling
strategy ... that takes into account various parameters, such as area
slices, reconfiguration delays, and the time required to send
configuration bitstreams, the availability and current status of the
nodes."  DReAMSim [20] exists to compare such strategies.

This bench runs an identical Poisson workload under every registered
strategy and tabulates mean wait, turnaround, makespan, reconfiguration
count and configuration-reuse rate.  The expected shape: the hybrid
cost model (which weighs all the Section V parameters) never loses to
FCFS on waiting time, and reuse-aware strategies reconfigure less.
"""

from repro.core.node import Node
from repro.grid.network import Network
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.scheduling import ALL_STRATEGIES, RandomScheduler
from repro.sim.runner import parallel_map
from repro.sim.simulator import DReAMSim
from repro.sim.workload import (
    ConfigurationPool,
    PoissonArrivals,
    SyntheticWorkload,
    WorkloadSpec,
)

TASKS = 250
SEED = 11


def build_rms(scheduler) -> ResourceManagementSystem:
    n0 = Node(node_id=0, name="Node_0")
    n0.add_gpp(GPPSpec(cpu_model="XeonA", mips=1_500))
    n0.add_rpe(device_by_model("XC5VLX330"), regions=3)
    n1 = Node(node_id=1, name="Node_1")
    n1.add_gpp(GPPSpec(cpu_model="XeonB", mips=1_500))
    n1.add_rpe(device_by_model("XC5VLX155"), regions=2)
    n1.add_rpe(device_by_model("XC5VLX110"), regions=2)
    net = Network.fully_connected([0, 1], bandwidth_mbps=100.0, latency_s=0.005)
    rms = ResourceManagementSystem(network=net, scheduler=scheduler)
    rms.register_node(n0)
    rms.register_node(n1)
    return rms


def run_strategy(name: str):
    cls = ALL_STRATEGIES[name]
    scheduler = cls(seed=SEED) if cls is RandomScheduler else cls()
    rms = build_rms(scheduler)
    pool = ConfigurationPool(8, area_range=(3_000, 16_000), seed=5)
    devices = [rpe.device for node in rms.nodes for rpe in node.rpes]
    pool.populate_repository(rms.virtualization.repository, devices)
    workload = SyntheticWorkload(
        WorkloadSpec(task_count=TASKS, gpp_fraction=0.35),
        pool,
        PoissonArrivals(rate_per_s=2.5),
        seed=SEED,
    )
    sim = DReAMSim(rms)
    sim.submit_workload(workload.generate())
    return sim.run()


def regenerate() -> dict[str, object]:
    """One report per strategy, run wide across worker processes.

    Every run is independently seeded, so the parallel map returns
    byte-identical reports to the old serial loop (pinned by
    ``tests/sim/test_runner.py``).
    """
    names = [name for name in ALL_STRATEGIES if name != "gpp-only"]
    return dict(zip(names, parallel_map(run_strategy, names)))


def bench_dreamsim_strategy_sweep(benchmark):
    reports = regenerate()
    print("\nDReAMSim strategy sweep (identical Poisson workload, 250 tasks)")
    print(f"{'strategy':15s} {'wait s':>8s} {'turnd s':>8s} {'makespan':>9s} {'reconf':>7s} {'reuse':>7s}")
    for name, r in reports.items():
        print(
            f"{name:15s} {r.mean_wait_s:8.3f} {r.mean_turnaround_s:8.3f} "
            f"{r.makespan_s:9.2f} {r.reconfigurations:7d} {r.reuse_rate:7.1%}"
        )

    # Every strategy clears the whole workload on this grid.
    for name, r in reports.items():
        assert r.completed == TASKS, name
        assert r.discarded == 0, name
    # The full cost model does not lose to FCFS on queueing delay.
    assert reports["hybrid-cost"].mean_wait_s <= reports["fcfs"].mean_wait_s + 1e-9
    # Reuse-aware strategies reconfigure no more than naive FCFS.
    assert reports["first-fit"].reconfigurations <= reports["fcfs"].reconfigurations
    assert reports["hybrid-cost"].reconfigurations <= reports["fcfs"].reconfigurations

    report = benchmark(run_strategy, "hybrid-cost")
    assert report.completed == TASKS


if __name__ == "__main__":
    for name, r in regenerate().items():
        print(name, r.mean_wait_s, r.reconfigurations, r.reuse_rate)
