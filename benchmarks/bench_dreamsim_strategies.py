"""DReAMSim ablation: scheduling strategies.

Section V: "The mapping decisions are based on a particular scheduling
strategy ... that takes into account various parameters, such as area
slices, reconfiguration delays, and the time required to send
configuration bitstreams, the availability and current status of the
nodes."  DReAMSim [20] exists to compare such strategies.

This bench runs an identical Poisson workload under every registered
strategy and tabulates mean wait, turnaround, makespan, reconfiguration
count and configuration-reuse rate.  The expected shape: the hybrid
cost model (which weighs all the Section V parameters) never loses to
FCFS on waiting time, and reuse-aware strategies reconfigure less.

The kernel lives in :mod:`repro.bench.cases` (case
``dreamsim-strategies``).
"""

from repro.bench import standalone_main
from repro.bench.cases import STRATEGY_TASKS as TASKS
from repro.bench.cases import run_strategy
from repro.scheduling import ALL_STRATEGIES
from repro.sim.runner import parallel_map


def regenerate() -> dict[str, object]:
    """One report per strategy, run wide across worker processes.

    Every run is independently seeded, so the parallel map returns
    byte-identical reports to the old serial loop (pinned by
    ``tests/sim/test_runner.py``).
    """
    names = [name for name in ALL_STRATEGIES if name != "gpp-only"]
    return dict(zip(names, parallel_map(run_strategy, names)))


def bench_dreamsim_strategy_sweep(benchmark):
    reports = regenerate()
    print("\nDReAMSim strategy sweep (identical Poisson workload, 250 tasks)")
    print(f"{'strategy':15s} {'wait s':>8s} {'turnd s':>8s} {'makespan':>9s} {'reconf':>7s} {'reuse':>7s}")
    for name, r in reports.items():
        print(
            f"{name:15s} {r.mean_wait_s:8.3f} {r.mean_turnaround_s:8.3f} "
            f"{r.makespan_s:9.2f} {r.reconfigurations:7d} {r.reuse_rate:7.1%}"
        )

    # Every strategy clears the whole workload on this grid.
    for name, r in reports.items():
        assert r.completed == TASKS, name
        assert r.discarded == 0, name
    # The full cost model does not lose to FCFS on queueing delay.
    assert reports["hybrid-cost"].mean_wait_s <= reports["fcfs"].mean_wait_s + 1e-9
    # Reuse-aware strategies reconfigure no more than naive FCFS.
    assert reports["first-fit"].reconfigurations <= reports["fcfs"].reconfigurations
    assert reports["hybrid-cost"].reconfigurations <= reports["fcfs"].reconfigurations

    report = benchmark(run_strategy, "hybrid-cost")
    assert report.completed == TASKS


if __name__ == "__main__":
    raise SystemExit(standalone_main("dreamsim-strategies"))
