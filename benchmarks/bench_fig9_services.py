"""Figure 9: user services in a typical grid system.

Exercises the full service stack -- submit, QoS admission, cost
accounting, monitoring, query/response -- and regenerates the Figure 9
interaction as an event log.  The timed kernel is the query service
under a populated monitor (the user-facing read path).
"""

from repro.core.execreq import Artifacts, ExecReq
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.rms import ResourceManagementSystem
from repro.grid.services import QoSRequirement, UserServices
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.taxonomy import PEClass


def build_services() -> UserServices:
    node = Node(node_id=0)
    node.add_gpp(GPPSpec(cpu_model="Xeon", mips=4_000))
    node.add_rpe(device_by_model("XC5VLX155"))
    rms = ResourceManagementSystem()
    rms.register_node(node)
    return UserServices(rms)


def bench_fig9_service_stack(benchmark):
    services = build_services()
    jobs = []
    for i in range(20):
        task = simple_task(
            i,
            ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
            0.5 + 0.1 * i,
        )
        job = services.submit(task, QoSRequirement(deadline_s=60.0, budget=50.0))
        services.execute(job)
        jobs.append(job)

    response = services.query(jobs[0].job_id)
    print("\nFigure 9: user services -- query/response for one job")
    print(f"  status: {response.status.value}")
    print(f"  tasks:  {response.completed_tasks}/{response.total_tasks}")
    print(f"  cost:   {response.accrued_cost:.3f}")
    for event in response.events:
        print(f"  t={event.time:7.3f}  {event.kind.value}")

    # The minimum service loop plus QoS/cost/monitoring all delivered.
    assert response.status.value == "completed"
    assert response.accrued_cost > 0
    kinds = [e.kind.value for e in response.events]
    assert kinds == ["submitted", "dispatched", "completed"]
    assert services.monitor.counts()

    def query_all():
        return [services.query(j.job_id) for j in jobs]

    responses = benchmark(query_all)
    assert len(responses) == 20


if __name__ == "__main__":
    bench = lambda f, *a: f(*a)  # noqa: E731
    bench_fig9_service_stack(bench)
