"""Grid scaling: one workload across growing grids.

The paper's setting is a *grid* -- "computing resources that are
geographically distributed over the globe" (Section I).  The basic
scaling question for any grid manager: how do makespan and utilization
respond as nodes join?  This bench submits one fixed 240-task workload
to grids of 1..6 identical hybrid nodes.

Expected shape: makespan falls roughly hyperbolically until the
arrival process (not capacity) limits progress, and mean utilization
falls as capacity outgrows the workload -- the standard weak-scaling
picture.

The kernel lives in :mod:`repro.bench.cases` (case ``grid-scaling``),
so this bench, ``repro bench``, and the standalone script all time the
same code.
"""

from repro.bench import standalone_main
from repro.bench.cases import GRID_SCALING_TASKS as TASKS
from repro.bench.cases import run_grid_scaling as run_grid

NODE_COUNTS = (1, 2, 4, 6)


def regenerate():
    return {n: run_grid(n) for n in NODE_COUNTS}


def bench_grid_scaling(benchmark):
    reports = regenerate()
    print("\nGrid scaling: 240 tasks, 1..6 hybrid nodes")
    print(f"{'nodes':>6s} {'makespan s':>11s} {'mean wait s':>12s} {'utilization':>12s}")
    for n, r in reports.items():
        print(
            f"{n:6d} {r.makespan_s:11.2f} {r.mean_wait_s:12.3f} {r.mean_utilization:12.1%}"
        )

    makespans = [reports[n].makespan_s for n in NODE_COUNTS]
    waits = [reports[n].mean_wait_s for n in NODE_COUNTS]
    # Everyone completes everywhere.
    for n, r in reports.items():
        assert r.completed == TASKS, n
    # Adding nodes never hurts makespan or waiting time.
    assert makespans == sorted(makespans, reverse=True)
    assert waits == sorted(waits, reverse=True)
    # Real speedup from 1 -> 4 nodes on a saturated single node.
    assert reports[1].makespan_s > 1.5 * reports[4].makespan_s

    report = benchmark(run_grid, 2)
    assert report.completed == TASKS


if __name__ == "__main__":
    raise SystemExit(standalone_main("grid-scaling"))
