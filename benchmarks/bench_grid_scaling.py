"""Grid scaling: one workload across growing grids.

The paper's setting is a *grid* -- "computing resources that are
geographically distributed over the globe" (Section I).  The basic
scaling question for any grid manager: how do makespan and utilization
respond as nodes join?  This bench submits one fixed 240-task workload
to grids of 1..6 identical hybrid nodes.

Expected shape: makespan falls roughly hyperbolically until the
arrival process (not capacity) limits progress, and mean utilization
falls as capacity outgrows the workload -- the standard weak-scaling
picture.
"""

from repro.core.node import Node
from repro.grid.network import Network
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.scheduling import HybridCostScheduler
from repro.sim.simulator import DReAMSim
from repro.sim.workload import (
    ConfigurationPool,
    PoissonArrivals,
    SyntheticWorkload,
    WorkloadSpec,
)

TASKS = 240
SEED = 29
NODE_COUNTS = (1, 2, 4, 6)


def run_grid(nodes: int):
    rms = ResourceManagementSystem(
        network=Network.fully_connected(
            list(range(nodes)), bandwidth_mbps=100.0, latency_s=0.005
        ),
        scheduler=HybridCostScheduler(),
    )
    for node_id in range(nodes):
        node = Node(node_id=node_id, name=f"Node_{node_id}")
        node.add_gpp(GPPSpec(cpu_model="Xeon", mips=1_500))
        node.add_rpe(device_by_model("XC5VLX220"), regions=2)
        rms.register_node(node)
    pool = ConfigurationPool(6, area_range=(3_000, 12_000), seed=5)
    pool.populate_repository(
        rms.virtualization.repository,
        [rpe.device for node in rms.nodes for rpe in node.rpes],
    )
    workload = SyntheticWorkload(
        WorkloadSpec(task_count=TASKS, gpp_fraction=0.4,
                     required_time_range_s=(1.0, 4.0)),
        pool,
        PoissonArrivals(rate_per_s=4.0),
        seed=SEED,
    )
    sim = DReAMSim(rms)
    sim.submit_workload(workload.generate())
    return sim.run()


def regenerate():
    return {n: run_grid(n) for n in NODE_COUNTS}


def bench_grid_scaling(benchmark):
    reports = regenerate()
    print("\nGrid scaling: 240 tasks, 1..6 hybrid nodes")
    print(f"{'nodes':>6s} {'makespan s':>11s} {'mean wait s':>12s} {'utilization':>12s}")
    for n, r in reports.items():
        print(
            f"{n:6d} {r.makespan_s:11.2f} {r.mean_wait_s:12.3f} {r.mean_utilization:12.1%}"
        )

    makespans = [reports[n].makespan_s for n in NODE_COUNTS]
    waits = [reports[n].mean_wait_s for n in NODE_COUNTS]
    # Everyone completes everywhere.
    for n, r in reports.items():
        assert r.completed == TASKS, n
    # Adding nodes never hurts makespan or waiting time.
    assert makespans == sorted(makespans, reverse=True)
    assert waits == sorted(waits, reverse=True)
    # Real speedup from 1 -> 4 nodes on a saturated single node.
    assert reports[1].makespan_s > 1.5 * reports[4].makespan_s

    report = benchmark(run_grid, 2)
    assert report.completed == TASKS


if __name__ == "__main__":
    for n, r in regenerate().items():
        print(n, round(r.makespan_s, 2), round(r.mean_wait_s, 3), round(r.mean_utilization, 3))
