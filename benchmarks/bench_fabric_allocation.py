"""Design-choice ablation: fixed PR regions vs slice-granular placement.

The DReAMSim node model (ref [21]) uses fixed partial-reconfiguration
regions; real relocation-capable runtimes can place circuits at slice
granularity but then fight external fragmentation.  This bench drives
both fabric models with the same random allocate/release traffic and
tabulates:

* admission rate (requests successfully placed),
* fragmentation (flexible) / internal waste (fixed),
* the cost of defragmentation (relocations and reconfiguration time).

Expected shape: flexible placement admits more of a size-diverse
workload than fixed equal regions (no internal fragmentation), but
accumulates external fragmentation that periodic compaction must pay
to clear; fixed regions never fragment but reject every request larger
than one region.
"""

import numpy as np

from repro.hardware.catalog import device_by_model
from repro.hardware.fabric import Fabric, RegionState
from repro.hardware.flexfabric import AllocationError, FlexibleFabric

DEVICE = device_by_model("XC5VLX330")  # 51,840 slices
REQUESTS = 400
SEED = 17


def traffic(seed=SEED):
    """Random (size, hold_steps) allocation requests."""
    rng = np.random.default_rng(seed)
    sizes = rng.integers(1_000, 20_000, size=REQUESTS)
    holds = rng.integers(1, 12, size=REQUESTS)
    return list(zip(sizes.tolist(), holds.tolist()))


def run_fixed(regions: int):
    fabric = Fabric.for_device(DEVICE, regions=regions)
    admitted = rejected = 0
    live: list[tuple] = []  # (region, remaining_steps)
    from repro.hardware.bitstream import Bitstream

    for i, (size, hold) in enumerate(traffic()):
        live = [(r, left - 1) for r, left in live if left - 1 > 0] or []
        held = {r.region_id for r, _ in live}
        for region in fabric.regions:
            if region.state is RegionState.BUSY and region.region_id not in held:
                fabric.vacate(region)
                fabric.clear(region)
        region = fabric.find_placeable(size)
        if region is None:
            rejected += 1
            continue
        if region.state is RegionState.CONFIGURED:
            fabric.clear(region)
        bs = Bitstream(10_000 + i, DEVICE.model, DEVICE.bitstream_size_bytes(size), size, implements=f"f{i}")
        fabric.begin_reconfiguration(region, bs)
        fabric.finish_reconfiguration(region)
        fabric.occupy(region)
        live.append((region, hold))
        admitted += 1
    return admitted, rejected


def run_flexible(*, compact_every: int | None):
    fabric = FlexibleFabric(DEVICE)
    admitted = rejected = 0
    frag_samples = []
    compaction_s = 0.0
    live: list[tuple] = []  # (span, remaining)
    for i, (size, hold) in enumerate(traffic()):
        next_live = []
        for span, left in live:
            if left - 1 > 0:
                next_live.append((span, left - 1))
            else:
                fabric.release(span)
        live = next_live
        if compact_every and i % compact_every == 0 and i:
            compaction_s += fabric.compaction_time_s()
            fabric.compact()
        try:
            span = fabric.allocate(size, implements=f"f{i}")
            live.append((span, hold))
            admitted += 1
        except AllocationError:
            rejected += 1
        frag_samples.append(fabric.external_fragmentation())
    return admitted, rejected, float(np.mean(frag_samples)), fabric.relocations, compaction_s


def bench_fabric_allocation(benchmark):
    fixed3 = run_fixed(3)
    fixed6 = run_fixed(6)
    flex_never = run_flexible(compact_every=None)
    flex_50 = run_flexible(compact_every=50)

    print("\nFabric allocation ablation (400 random requests, 1k-20k slices)")
    print(f"{'model':28s} {'admit':>6s} {'reject':>7s} {'frag':>6s} {'reloc':>6s} {'defrag s':>9s}")
    print(f"{'fixed, 3 regions':28s} {fixed3[0]:6d} {fixed3[1]:7d} {'-':>6s} {'-':>6s} {'-':>9s}")
    print(f"{'fixed, 6 regions':28s} {fixed6[0]:6d} {fixed6[1]:7d} {'-':>6s} {'-':>6s} {'-':>9s}")
    print(
        f"{'flexible, no compaction':28s} {flex_never[0]:6d} {flex_never[1]:7d} "
        f"{flex_never[2]:6.2f} {flex_never[3]:6d} {flex_never[4]:9.3f}"
    )
    print(
        f"{'flexible, compact every 50':28s} {flex_50[0]:6d} {flex_50[1]:7d} "
        f"{flex_50[2]:6.2f} {flex_50[3]:6d} {flex_50[4]:9.3f}"
    )

    # Fixed 6 equal regions (8,640 slices) reject every big request;
    # 3 regions (17,280) admit them. Internal fragmentation trade-off.
    assert fixed6[0] < fixed3[0]
    # Slice-granular placement admits at least as much as the best
    # fixed partition under this size-diverse traffic.
    assert flex_never[0] >= fixed3[0]
    # Compaction pays relocations but lifts admission (or at minimum
    # never hurts) and is what clears fragmentation.
    assert flex_50[0] >= flex_never[0]
    assert flex_50[3] > 0

    result = benchmark(run_flexible, compact_every=50)
    assert result[0] > 0


if __name__ == "__main__":
    print(run_fixed(3), run_fixed(6))
    print(run_flexible(compact_every=None), run_flexible(compact_every=50))
