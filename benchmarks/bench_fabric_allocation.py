"""Design-choice ablation: fixed PR regions vs slice-granular placement.

The DReAMSim node model (ref [21]) uses fixed partial-reconfiguration
regions; real relocation-capable runtimes can place circuits at slice
granularity but then fight external fragmentation.  This bench drives
both fabric models with the same random allocate/release traffic and
tabulates:

* admission rate (requests successfully placed),
* fragmentation (flexible) / internal waste (fixed),
* the cost of defragmentation (relocations and reconfiguration time).

Expected shape: flexible placement admits more of a size-diverse
workload than fixed equal regions (no internal fragmentation), but
accumulates external fragmentation that periodic compaction must pay
to clear; fixed regions never fragment but reject every request larger
than one region.

The kernels live in :mod:`repro.bench.cases` (case
``fabric-allocation``).
"""

from repro.bench import standalone_main
from repro.bench.cases import run_fixed_fabric as run_fixed
from repro.bench.cases import run_flexible_fabric as run_flexible


def bench_fabric_allocation(benchmark):
    fixed3 = run_fixed(3)
    fixed6 = run_fixed(6)
    flex_never = run_flexible(compact_every=None)
    flex_50 = run_flexible(compact_every=50)

    print("\nFabric allocation ablation (400 random requests, 1k-20k slices)")
    print(f"{'model':28s} {'admit':>6s} {'reject':>7s} {'frag':>6s} {'reloc':>6s} {'defrag s':>9s}")
    print(f"{'fixed, 3 regions':28s} {fixed3[0]:6d} {fixed3[1]:7d} {'-':>6s} {'-':>6s} {'-':>9s}")
    print(f"{'fixed, 6 regions':28s} {fixed6[0]:6d} {fixed6[1]:7d} {'-':>6s} {'-':>6s} {'-':>9s}")
    print(
        f"{'flexible, no compaction':28s} {flex_never[0]:6d} {flex_never[1]:7d} "
        f"{flex_never[2]:6.2f} {flex_never[3]:6d} {flex_never[4]:9.3f}"
    )
    print(
        f"{'flexible, compact every 50':28s} {flex_50[0]:6d} {flex_50[1]:7d} "
        f"{flex_50[2]:6.2f} {flex_50[3]:6d} {flex_50[4]:9.3f}"
    )

    # Fixed 6 equal regions (8,640 slices) reject every big request;
    # 3 regions (17,280) admit them. Internal fragmentation trade-off.
    assert fixed6[0] < fixed3[0]
    # Slice-granular placement admits at least as much as the best
    # fixed partition under this size-diverse traffic.
    assert flex_never[0] >= fixed3[0]
    # Compaction pays relocations but lifts admission (or at minimum
    # never hurts) and is what clears fragmentation.
    assert flex_50[0] >= flex_never[0]
    assert flex_50[3] > 0

    result = benchmark(run_flexible, compact_every=50)
    assert result[0] > 0


if __name__ == "__main__":
    raise SystemExit(standalone_main("fabric-allocation"))
