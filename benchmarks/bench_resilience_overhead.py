"""Resilience layer: overhead when idle, payoff under chaos.

The adaptive resilience layer (PR 3) must be close to free when
nothing goes wrong and must visibly pay for itself when things do.
This bench pins both ends:

* **Idle overhead.**  With no faults injected, arming the health
  tracker and circuit breakers must leave the simulated behaviour
  *identical* (same makespan, same completions -- the layer draws no
  randomness and a healthy grid never trips a breaker) and must cost
  less than 5% extra wall-clock time over the plain PR 2 simulator.

* **Checkpoint-interval sensitivity.**  Under the chaos fault preset,
  sweeping the checkpoint interval trades snapshot overhead against
  rescued progress: denser checkpoints take more snapshots and rescue
  at least as much work as they do at the densest setting, and every
  interval strictly cuts wasted slice-seconds versus running with no
  checkpoints at the identical seed.
"""

import time

from repro.sim.experiment import ExperimentSpec, NodeSpec, run_experiment
from repro.sim.faults import FAULT_PRESETS
from repro.sim.resilience import CheckpointSpec, HealthPolicy, ResilienceSpec

#: Long fabric tasks on a 2-node hybrid grid -- the same shape as the
#: acceptance scenario in tests/sim/test_resilience.py, so chaos-preset
#: crashes and SEUs land mid-execution where checkpoints matter.
SPEC = ExperimentSpec(
    tasks=80,
    nodes=(
        NodeSpec(gpps=1, gpp_mips=2_000, rpe_models=("XC5VLX330",), regions_per_rpe=3),
        NodeSpec(gpps=1, gpp_mips=1_500, rpe_models=("XC5VLX155",), regions_per_rpe=2),
    ),
    arrival_rate_per_s=2.0,
    area_range=(2_000, 12_000),
    gpp_fraction=0.2,
    required_time_range_s=(4.0, 10.0),
    speedup_range=(2.0, 5.0),
    seed=0,
)

#: Health scoring armed on a healthy grid: every completion updates the
#: EWMA, but no breaker ever trips -- pure bookkeeping.  A longer run
#: (400 tasks) so the wall-clock ratio is measured over ~100 ms, not
#: scheduler-noise territory.
IDLE_SPEC = SPEC.with_(tasks=400)
IDLE_ARMED = ResilienceSpec(breaker=HealthPolicy())

CHAOS_SPEC = SPEC.with_(faults=FAULT_PRESETS["chaos"])

INTERVALS = (0.1, 0.25, 0.5, 1.0)


def timed(spec: ExperimentSpec, repeats: int = 7):
    """(best wall-clock seconds, report) over *repeats* fresh runs."""
    best = float("inf")
    report = None
    for _ in range(repeats):
        start = time.perf_counter()
        report = run_experiment(spec).report
        best = min(best, time.perf_counter() - start)
    return best, report


def bench_idle_overhead(benchmark):
    plain_s, plain = timed(IDLE_SPEC)
    armed_s, armed = timed(IDLE_SPEC.with_(resilience=IDLE_ARMED))

    overhead = armed_s / plain_s - 1.0
    print("\nhealth-tracker idle overhead (no faults, 400 tasks, best of 7)")
    print(f"  plain PR 2 simulator  {plain_s * 1e3:8.2f} ms")
    print(f"  health scoring armed  {armed_s * 1e3:8.2f} ms  ({overhead:+.1%})")

    # Armed-but-idle is behaviourally invisible...
    assert armed.completed == plain.completed == IDLE_SPEC.tasks
    assert armed.makespan_s == plain.makespan_s
    assert armed.mean_wait_s == plain.mean_wait_s
    assert armed.quarantines == 0
    # ...and close to free: <5% extra wall time over the plain run.
    assert overhead < 0.05, f"idle health overhead {overhead:.1%} >= 5%"

    report = benchmark(lambda: run_experiment(
        IDLE_SPEC.with_(resilience=IDLE_ARMED)
    ).report)
    assert report.completed == IDLE_SPEC.tasks


def bench_checkpoint_interval_sensitivity(benchmark):
    baseline = run_experiment(CHAOS_SPEC).report
    assert baseline.fault_events > 0, "chaos preset must actually bite"

    sweep = {}
    for interval in INTERVALS:
        spec = CHAOS_SPEC.with_(
            resilience=ResilienceSpec(checkpoint=CheckpointSpec(interval_s=interval))
        )
        sweep[interval] = run_experiment(spec).report

    print("\ncheckpoint-interval sensitivity (chaos preset, seed 0)")
    print(f"{'interval s':>10s} {'ckpts':>6s} {'overhead s':>11s} "
          f"{'saved s':>8s} {'wasted slice-s':>15s}")
    print(f"{'(none)':>10s} {0:6d} {0.0:11.3f} {0.0:8.3f} "
          f"{baseline.wasted_slice_seconds:15.1f}")
    for interval, r in sweep.items():
        print(f"{interval:10.2f} {r.checkpoints:6d} {r.checkpoint_overhead_s:11.3f} "
              f"{r.wasted_work_saved_s:8.3f} {r.wasted_slice_seconds:15.1f}")

    for interval, r in sweep.items():
        # Every interval strictly beats no-checkpointing on wasted work.
        assert r.wasted_slice_seconds < baseline.wasted_slice_seconds, interval
        assert r.checkpoints > 0 and r.wasted_work_saved_s > 0, interval
    # Denser checkpoints take at least as many snapshots and rescue at
    # least as much progress as any sparser setting.
    densest = sweep[min(INTERVALS)]
    for interval, r in sweep.items():
        assert densest.checkpoints >= r.checkpoints, interval
        assert densest.wasted_work_saved_s >= r.wasted_work_saved_s, interval

    report = benchmark(lambda: run_experiment(
        CHAOS_SPEC.with_(
            resilience=ResilienceSpec(checkpoint=CheckpointSpec(interval_s=0.25))
        )
    ).report)
    assert report.wasted_work_saved_s > 0


if __name__ == "__main__":
    from repro.bench import standalone_main

    raise SystemExit(standalone_main("resilience-chaos"))
