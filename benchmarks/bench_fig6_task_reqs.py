"""Figure 6: execution requirements of Task_0..Task_3.

Regenerates the four ExecReq sheets and checks the paper-stated
requirements (GPP-only; Virtex-5 >= 18,707; Virtex-5 >= 30,790;
XC6VLX365T bitstream).  The timed kernel is JSS-side validation of the
four submissions.
"""

from repro.casestudy.tasks import build_case_study_tasks
from repro.grid.jss import JobSubmissionSystem


def req_sheets(tasks) -> list[str]:
    lines = ["Figure 6: task execution requirements", ""]
    for task_id, task in sorted(tasks.items()):
        lines.append(f"== Task_{task_id} ({task.function}) ==")
        lines.append(f"  ExecReq: {task.exec_req.describe()}")
        lines.append(f"  level:   {task.abstraction_level.name}")
        a = task.exec_req.artifacts
        artifacts = ["code"]
        if a.hdl_design is not None:
            artifacts.append(f"HDL({a.hdl_design.language}, {a.hdl_design.estimated_slices} slices)")
        if a.bitstream is not None:
            artifacts.append(f"bitstream({a.bitstream.target_model}, {a.bitstream.size_bytes} B)")
        lines.append(f"  user supplies: {', '.join(artifacts)}")
        lines.append(f"  t_estimated: {task.t_estimated} s")
        lines.append("")
    return lines


def bench_fig6_submission_validation(benchmark):
    tasks = build_case_study_tasks()
    print("\n" + "\n".join(req_sheets(tasks)))

    assert "NodeType=GPP" in tasks[0].exec_req.describe()
    assert "slices >= 18707" in tasks[1].exec_req.describe()
    assert "slices >= 30790" in tasks[2].exec_req.describe()
    assert "XC6VLX365T" in tasks[3].exec_req.describe()

    def validate_all():
        jss = JobSubmissionSystem()
        return [jss.submit_task(t) for t in tasks.values()]

    jobs = benchmark(validate_all)
    assert len(jobs) == 4


if __name__ == "__main__":
    print("\n".join(req_sheets(build_case_study_tasks())))
