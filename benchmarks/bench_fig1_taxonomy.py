"""Figure 1: taxonomy of enhanced processing elements.

Regenerates the taxonomy tree and classifies one instance of every
hardware model into it.  The timed kernel is classification over the
whole device catalog plus the soft-core/GPP/GPU representatives.

The specimen pool lives in :mod:`repro.bench.cases` (case
``taxonomy-classify``).
"""

from repro.bench import standalone_main
from repro.bench.cases import taxonomy_specimens as specimens
from repro.hardware.catalog import DEVICE_CATALOG
from repro.hardware.taxonomy import PEClass, classify, taxonomy_tree


def render_tree() -> list[str]:
    lines = ["Figure 1: taxonomy of enhanced processing elements", ""]
    for depth, node in taxonomy_tree().walk():
        section = f"  [{node.section}]" if node.section else ""
        lines.append("  " * depth + f"- {node.label}{section}")
    return lines


def bench_fig1_classification(benchmark):
    print("\n" + "\n".join(render_tree()))
    tree = taxonomy_tree()
    # The tree realizes the three Section III scenarios.
    for label in (
        "Pre-determined hardware configuration",
        "User-defined hardware configuration",
        "Device-specific hardware",
    ):
        assert tree.find(label) is not None

    pool = specimens()

    def classify_all():
        return [classify(s) for s in pool]

    classes = benchmark(classify_all)
    assert classes.count(PEClass.GPP) == 2
    assert classes.count(PEClass.GPU) == 1
    assert classes.count(PEClass.SOFTCORE) == 3
    assert classes.count(PEClass.RPE) == len(DEVICE_CATALOG)


if __name__ == "__main__":
    raise SystemExit(standalone_main("taxonomy-classify"))
