"""Quipu anchors: pairalign -> 30,790 slices, malign -> 18,707 slices.

Section V: "Using Quipu tool, we estimated that pairalign requires
30,790 slices, whereas malign requires 18707 slices on Virtex 5
devices."  This bench measures the complexity of this library's actual
pairalign/malign call closures, runs them through the calibrated linear
model, asserts the anchors reproduce exactly, and confirms the Table II
placement consequences (which catalog devices each kernel fits).

The timed kernel is a full prediction -- metric extraction plus the
linear model -- since Quipu's selling point is making estimates "in a
relatively short time, as required in a hardware/software partitioning
context".  It lives in :mod:`repro.bench.cases` (case
``quipu-predict``).
"""

import importlib

from repro.bench import standalone_main
from repro.bench.cases import quipu_predict
from repro.hardware.catalog import devices_by_family
from repro.profiling.metrics import measure_closure
from repro.profiling.quipu import (
    PAPER_MALIGN_SLICES,
    PAPER_PAIRALIGN_SLICES,
    calibrated_model,
)

_pa = importlib.import_module("repro.bioinfo.pairalign")
_ma = importlib.import_module("repro.bioinfo.malign")


def bench_quipu_predictions(benchmark):
    model = calibrated_model()
    m_pair = measure_closure(_pa.pairalign)
    m_malign = measure_closure(_ma.malign)
    est_pair = model.predict(m_pair)
    est_malign = model.predict(m_malign)

    print("\nQuipu estimates (calibrated linear SCM model)")
    print(f"  pairalign: {est_pair.slices:6d} slices  (paper: {PAPER_PAIRALIGN_SLICES})")
    print(f"  malign:    {est_malign.slices:6d} slices  (paper: {PAPER_MALIGN_SLICES})")
    print("\n  Virtex-5 fit table (-> Table II placements):")
    for device in devices_by_family("virtex-5"):
        fits_p = est_pair.slices <= device.slices
        fits_m = est_malign.slices <= device.slices
        print(
            f"    {device.model:12s} {device.slices:6d} slices   "
            f"pairalign={'yes' if fits_p else 'no ':3s} malign={'yes' if fits_m else 'no'}"
        )

    assert est_pair.slices == PAPER_PAIRALIGN_SLICES
    assert est_malign.slices == PAPER_MALIGN_SLICES
    # Table II consequences: LX155 takes malign but not pairalign;
    # LX220 and LX330 take both.
    by_model = {d.model: d for d in devices_by_family("virtex-5")}
    assert est_malign.slices <= by_model["XC5VLX155"].slices
    assert est_pair.slices > by_model["XC5VLX155"].slices
    assert est_pair.slices <= by_model["XC5VLX220"].slices

    estimate = benchmark(quipu_predict)
    assert estimate.slices == PAPER_PAIRALIGN_SLICES


if __name__ == "__main__":
    raise SystemExit(standalone_main("quipu-predict"))
