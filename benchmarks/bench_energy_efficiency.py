"""Energy ablation: "more performance can be achieved by utilizing
reconfigurable hardware, at lower power" (Section I).

The same logical workload -- 80 compute kernels of 10 reference-GPP
seconds each -- is executed two ways on comparable grids:

* **software world**: GPP-class tasks on a 2-GPP node (2,000 MIPS each,
  so one kernel takes 5 wall-clock seconds);
* **hardware world**: the same kernels as 10x accelerators on a node
  with 2 Xeons + a 3-region Virtex-5 LX330.

The energy auditor then integrates each grid's power models over the
runs.  Expected shape: the hardware world finishes far sooner AND burns
far fewer joules per task -- performance and power improve *together*,
which is the paper's selling point for RPEs.  A third run uses the
energy-aware scheduler to show the framework can optimize for joules
explicitly.
"""

from repro.core.execreq import Artifacts, ExecReq, MinValue
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.bitstream import Bitstream
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.taxonomy import PEClass
from repro.scheduling import EnergyAwareScheduler, HybridCostScheduler
from repro.sim.energy import EnergyAuditor
from repro.sim.simulator import DReAMSim

KERNELS = 80
REF_SECONDS = 10.0
SPEEDUP = 10.0
SLICES = 12_000


def build_rms(with_fabric: bool, scheduler=None):
    node = Node(node_id=0)
    node.add_gpp(GPPSpec(cpu_model="XeonA", mips=2_000, cores=2))
    node.add_gpp(GPPSpec(cpu_model="XeonB", mips=2_000, cores=2))
    if with_fabric:
        node.add_rpe(device_by_model("XC5VLX330"), regions=3)
    rms = ResourceManagementSystem(scheduler=scheduler or HybridCostScheduler())
    rms.register_node(node)
    return rms


def software_tasks():
    return [
        (
            0.2 * i,
            simple_task(
                i,
                ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
                REF_SECONDS,
                workload_mi=REF_SECONDS * 1_000.0,
                function="kern",
            ),
        )
        for i in range(KERNELS)
    ]


def hardware_tasks():
    out = []
    for i in range(KERNELS):
        bs = Bitstream(
            5_000 + i, "XC5VLX330", 2_700_000, SLICES,
            implements="kern", speedup_vs_gpp=SPEEDUP,
        )
        out.append(
            (
                0.2 * i,
                simple_task(
                    i,
                    ExecReq(
                        node_type=PEClass.RPE,
                        constraints=(MinValue("slices", SLICES),),
                        artifacts=Artifacts(application_code="x", bitstream=bs),
                    ),
                    REF_SECONDS / SPEEDUP,
                    workload_mi=REF_SECONDS * 1_000.0,
                    function="kern",
                ),
            )
        )
    return out


def run_world(with_fabric: bool, tasks, scheduler=None):
    rms = build_rms(with_fabric, scheduler)
    sim = DReAMSim(rms)
    sim.submit_workload(tasks)
    report = sim.run()
    energy = EnergyAuditor(rms).audit(sim)
    return report, energy


def bench_energy_efficiency(benchmark):
    sw_report, sw_energy = run_world(False, software_tasks())
    hw_report, hw_energy = run_world(True, hardware_tasks())
    ea_report, ea_energy = run_world(True, hardware_tasks(), EnergyAwareScheduler())

    print("\nEnergy: the same 80 x 10-GPP-second kernels, two worlds")
    print(f"{'world':24s} {'makespan s':>10s} {'total J':>10s} {'J/task':>8s}")
    for label, r, e in (
        ("software (2 Xeons)", sw_report, sw_energy),
        ("hardware (LX330, hybrid)", hw_report, hw_energy),
        ("hardware (energy-aware)", ea_report, ea_energy),
    ):
        print(
            f"{label:24s} {r.makespan_s:10.1f} {e.total_j:10.1f} {e.joules_per_task:8.2f}"
        )

    assert sw_report.completed == hw_report.completed == KERNELS
    # More performance...
    assert hw_report.makespan_s < sw_report.makespan_s / 3
    # ...at lower power (energy): per task and in total.
    assert hw_energy.joules_per_task < sw_energy.joules_per_task / 5
    assert hw_energy.total_j < sw_energy.total_j
    # The energy-aware scheduler is no worse on joules than hybrid.
    assert ea_energy.total_j <= hw_energy.total_j * 1.05

    report, _ = benchmark(run_world, True, hardware_tasks())
    assert report.completed == KERNELS


if __name__ == "__main__":
    for label, flag, tasks in (
        ("software", False, software_tasks()),
        ("hardware", True, hardware_tasks()),
    ):
        r, e = run_world(flag, tasks)
        print(label, round(r.makespan_s, 1), round(e.total_j, 1), round(e.joules_per_task, 2))
