"""Table I: parameters of different processing elements.

Regenerates the table by collecting the capability descriptor of one
representative of each PE class and checking that every Table I
parameter row is present.  The timed kernel is descriptor generation +
constraint evaluation over the whole device catalog -- the operation the
RMS performs on every scheduling decision.
"""

from repro.core.execreq import Equals, ExecReq, MinValue
from repro.hardware.catalog import DEVICE_CATALOG, device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.gpu import GPUSpec
from repro.hardware.softcore import RHO_VEX_4ISSUE
from repro.hardware.taxonomy import PEClass

#: Table I rows: PE class -> capability keys that realize each parameter.
TABLE1_ROWS = {
    "FPGA": [
        ("Logic cells / Slices / LUTs", ["logic_cells", "slices", "luts"]),
        ("BRAM / Memory blocks", ["bram_kb"]),
        ("DSP slices", ["dsp_slices"]),
        ("Speed grades", ["speed_grade", "max_frequency_mhz"]),
        ("Reconfiguration bandwidth", ["reconfig_bandwidth_mbps"]),
        ("IOBs", ["iobs"]),
        ("Ethernet MAC", ["ethernet_macs"]),
    ],
    "GPP": [
        ("CPU type/model", ["cpu_model"]),
        ("MIPS ratings", ["mips"]),
        ("OS", ["os"]),
        ("RAM", ["ram_mb"]),
        ("Cores", ["cores"]),
    ],
    "Softcore (VLIW)": [
        ("FU type", ["alus", "multipliers", "memory_units", "branch_units"]),
        ("Issue width", ["issue_width"]),
        ("Memory", ["imem_kb", "dmem_kb"]),
        ("Register file", ["registers"]),
        ("Pipeline", ["pipeline_stages"]),
        ("Clusters", ["clusters"]),
    ],
    "GPU": [
        ("Model", ["gpu_model"]),
        ("Shader cores", ["shader_cores"]),
        ("Warp size", ["warp_size"]),
        ("SIMD pipeline width", ["simd_pipeline_width"]),
        ("Shared memory/core", ["shared_mem_per_core_kb"]),
        ("Memory frequency", ["memory_frequency_mhz"]),
    ],
}


def representatives():
    return {
        "FPGA": device_by_model("XC5VLX155").capabilities(),
        "GPP": GPPSpec(cpu_model="Xeon-5160", mips=24_000).capabilities(),
        "Softcore (VLIW)": RHO_VEX_4ISSUE.capabilities(device_by_model("XC5VLX155")),
        "GPU": GPUSpec(model="Tesla-C1060", shader_cores=240).capabilities(),
    }


def regenerate_table1() -> list[str]:
    """Render the Table I reproduction."""
    caps = representatives()
    lines = ["Table I: parameters of different processing elements", ""]
    for pe_class, rows in TABLE1_ROWS.items():
        lines.append(f"-- {pe_class} --")
        for parameter, keys in rows:
            values = ", ".join(f"{k}={caps[pe_class][k]}" for k in keys)
            lines.append(f"  {parameter:32s} {values}")
    return lines


def bench_table1_descriptor_coverage(benchmark):
    caps = representatives()
    # Every Table I parameter must be realized by the models.
    for pe_class, rows in TABLE1_ROWS.items():
        for parameter, keys in rows:
            for key in keys:
                assert key in caps[pe_class], f"{pe_class}: {parameter} ({key})"
    print("\n".join(regenerate_table1()))

    # Timed kernel: capability generation + matching across the catalog.
    req = ExecReq(
        node_type=PEClass.RPE,
        constraints=(Equals("device_family", "virtex-5"), MinValue("slices", 18_707)),
    )

    def catalog_matchmaking():
        return sum(1 for d in DEVICE_CATALOG.values() if req.matches(d.capabilities()))

    hits = benchmark(catalog_matchmaking)
    assert hits >= 3  # LX155(T), LX220(T), LX330(T)


if __name__ == "__main__":
    print("\n".join(regenerate_table1()))
