"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index): it prints the regenerated
artifact (run with ``-s`` to see it), asserts the paper-shape claims,
and times the underlying computation with pytest-benchmark.
"""

import pytest


@pytest.fixture(scope="session")
def case_study_grid():
    """The Figure 5 grid wired to an RMS, fresh per session."""
    from repro.casestudy.nodes import build_case_study_nodes, case_study_network
    from repro.grid.rms import ResourceManagementSystem

    rms = ResourceManagementSystem(network=case_study_network())
    for node in build_case_study_nodes():
        rms.register_node(node)
    return rms
