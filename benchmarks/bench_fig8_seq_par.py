"""Figure 8: execution of App{Seq(T2), Par(T4,T1,T7), Seq(T5,T10)}.

Runs the Eq. 4 example application on the simulator and regenerates the
Figure 8 timeline: T2 first, then T1/T4/T7 concurrently, then T5, then
T10.  The timed kernel is a full simulator run of the application.
"""

import pytest

from repro.core.application import Application, Par, Seq, parse_application
from repro.core.execreq import Artifacts, ExecReq
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.gpp import GPPSpec
from repro.hardware.taxonomy import PEClass
from repro.sim.simulator import DReAMSim

DURATIONS = {2: 1.0, 4: 2.0, 1: 1.5, 7: 1.0, 5: 1.0, 10: 0.5}


def build_sim():
    node = Node(node_id=0)
    for i in range(3):  # enough GPPs for the widest Par step
        node.add_gpp(GPPSpec(cpu_model=f"cpu{i}", mips=1_000))
    rms = ResourceManagementSystem()
    rms.register_node(node)
    return DReAMSim(rms)


def run_app():
    sim = build_sim()
    app = parse_application("App{Seq(T2), Par(T4, T1, T7), Seq,(T5, T10)}")
    tasks = {
        i: simple_task(
            i,
            ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
            DURATIONS[i],
        )
        for i in DURATIONS
    }
    job_id = sim.submit_application(app, tasks)
    report = sim.run()
    return sim, job_id, report


def bench_fig8_application_execution(benchmark):
    sim, job_id, report = run_app()
    job = sim.jss.job(job_id)

    print("\nFigure 8: Eq. 4 execution timeline")
    for task_id in (2, 4, 1, 7, 5, 10):
        rec = job.record(task_id)
        print(f"  T{task_id:<3d} start={rec.start_time:5.2f}  finish={rec.finish_time:5.2f}")

    # The Figure 8 ordering: clause barriers hold.
    t2 = job.record(2)
    par = [job.record(i) for i in (4, 1, 7)]
    t5, t10 = job.record(5), job.record(10)
    assert all(p.start_time >= t2.finish_time for p in par)
    par_end = max(p.finish_time for p in par)
    assert t5.start_time >= par_end
    assert t10.start_time >= t5.finish_time
    # Par step genuinely overlaps.
    assert min(p.finish_time for p in par) > max(p.start_time for p in par)
    # Makespan = 1 + max(2, 1.5, 1) + 1 + 0.5.
    assert report.makespan_s == pytest.approx(4.5)
    # Matches the analytic Application.makespan with unlimited PEs.
    app = Application(clauses=(Seq(2), Par(4, 1, 7), Seq(5, 10)))
    assert report.makespan_s == pytest.approx(app.makespan(DURATIONS))

    benchmark(run_app)


if __name__ == "__main__":
    _, _, report = run_app()
    print("\n".join(report.summary_lines()))
