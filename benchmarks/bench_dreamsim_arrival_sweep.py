"""DReAMSim ablation: waiting time vs arrival rate (load sweep).

The canonical queueing figure from the DReAMSim studies [20]: mean
task waiting time as a function of the Poisson arrival rate, one curve
per grid configuration.  Expected shape: waits stay near zero while
the grid is under-subscribed, then grow sharply as the arrival rate
approaches the grid's service capacity -- and the hybrid GPP+RPE grid
sustains a higher rate than the GPP-only grid before the knee, because
accelerated tasks release resources ~10x sooner.

The kernel lives in :mod:`repro.bench.cases` (case ``arrival-sweep``).
"""

from repro.bench import standalone_main
from repro.bench.cases import ARRIVAL_TASKS as TASKS
from repro.bench.cases import run_arrival_point as run_point
from repro.sim.runner import parallel_map

RATES = (0.5, 1.0, 2.0, 4.0)


def _run_point_star(args: tuple[float, bool]):
    """Module-level unpacking wrapper so points pickle into workers."""
    return run_point(*args)


def regenerate():
    """All (rate, grid) sample points, run wide across processes."""
    points = [(rate, fabric) for rate in RATES for fabric in (True, False)]
    reports = parallel_map(_run_point_star, points)
    by_point = dict(zip(points, reports))
    return [
        (rate, by_point[(rate, True)], by_point[(rate, False)]) for rate in RATES
    ]


def bench_arrival_rate_sweep(benchmark):
    rows = regenerate()
    print("\nDReAMSim load sweep: mean wait vs Poisson arrival rate")
    print(f"{'rate/s':>7s} {'hybrid wait s':>14s} {'gpp-only wait s':>16s}")
    for rate, hybrid, gpp in rows:
        print(f"{rate:7.1f} {hybrid.mean_wait_s:14.3f} {gpp.mean_wait_s:16.3f}")

    hybrid_waits = [h.mean_wait_s for _, h, _ in rows]
    gpp_waits = [g.mean_wait_s for _, _, g in rows]
    # Waits grow with load (monotone within noise: compare ends).
    assert hybrid_waits[-1] > hybrid_waits[0]
    assert gpp_waits[-1] > gpp_waits[0]
    # At every load point the hybrid grid waits no longer; at high load
    # the gap is large (the GPP-only knee has passed).
    for (rate, h, g) in rows:
        assert h.mean_wait_s <= g.mean_wait_s + 1e-9, rate
    assert gpp_waits[-1] > 3 * hybrid_waits[-1]
    # Everyone eventually finishes (the sweep measures waits, not loss).
    for _, h, g in rows:
        assert h.completed == TASKS and g.completed == TASKS

    report = benchmark(run_point, 2.0, True)
    assert report.completed == TASKS


if __name__ == "__main__":
    raise SystemExit(standalone_main("arrival-sweep"))
