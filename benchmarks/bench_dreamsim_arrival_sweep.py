"""DReAMSim ablation: waiting time vs arrival rate (load sweep).

The canonical queueing figure from the DReAMSim studies [20]: mean
task waiting time as a function of the Poisson arrival rate, one curve
per grid configuration.  Expected shape: waits stay near zero while
the grid is under-subscribed, then grow sharply as the arrival rate
approaches the grid's service capacity -- and the hybrid GPP+RPE grid
sustains a higher rate than the GPP-only grid before the knee, because
accelerated tasks release resources ~10x sooner.
"""

import numpy as np

from repro.core.node import Node
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.scheduling import HybridCostScheduler
from repro.sim.runner import parallel_map
from repro.sim.simulator import DReAMSim
from repro.sim.workload import (
    ConfigurationPool,
    PoissonArrivals,
    SyntheticWorkload,
    WorkloadSpec,
)

TASKS = 150
SEED = 13
RATES = (0.5, 1.0, 2.0, 4.0)


def build_rms(with_fabric: bool) -> ResourceManagementSystem:
    node = Node(node_id=0)
    node.add_gpp(GPPSpec(cpu_model="XeonA", mips=1_000))
    node.add_gpp(GPPSpec(cpu_model="XeonB", mips=1_000))
    if with_fabric:
        node.add_rpe(device_by_model("XC5VLX330"), regions=3)
    rms = ResourceManagementSystem(scheduler=HybridCostScheduler())
    rms.register_node(node)
    return rms


def run_point(rate: float, with_fabric: bool):
    """One (rate, grid) sample.  Without fabric, hardware tasks are
    resubmitted as plain software tasks so both grids face the same
    logical workload."""
    rms = build_rms(with_fabric)
    pool = ConfigurationPool(5, area_range=(4_000, 15_000), speedup_range=(8.0, 15.0), seed=3)
    if with_fabric:
        pool.populate_repository(
            rms.virtualization.repository, [device_by_model("XC5VLX330")]
        )
    workload = SyntheticWorkload(
        WorkloadSpec(
            task_count=TASKS,
            gpp_fraction=1.0 if not with_fabric else 0.5,
            required_time_range_s=(0.5, 2.0),
        ),
        pool,
        PoissonArrivals(rate_per_s=rate),
        seed=SEED,
    )
    sim = DReAMSim(rms)
    sim.submit_workload(workload.generate())
    return sim.run()


def _run_point_star(args: tuple[float, bool]):
    """Module-level unpacking wrapper so points pickle into workers."""
    return run_point(*args)


def regenerate():
    """All (rate, grid) sample points, run wide across processes."""
    points = [(rate, fabric) for rate in RATES for fabric in (True, False)]
    reports = parallel_map(_run_point_star, points)
    by_point = dict(zip(points, reports))
    return [
        (rate, by_point[(rate, True)], by_point[(rate, False)]) for rate in RATES
    ]


def bench_arrival_rate_sweep(benchmark):
    rows = regenerate()
    print("\nDReAMSim load sweep: mean wait vs Poisson arrival rate")
    print(f"{'rate/s':>7s} {'hybrid wait s':>14s} {'gpp-only wait s':>16s}")
    for rate, hybrid, gpp in rows:
        print(f"{rate:7.1f} {hybrid.mean_wait_s:14.3f} {gpp.mean_wait_s:16.3f}")

    hybrid_waits = [h.mean_wait_s for _, h, _ in rows]
    gpp_waits = [g.mean_wait_s for _, _, g in rows]
    # Waits grow with load (monotone within noise: compare ends).
    assert hybrid_waits[-1] > hybrid_waits[0]
    assert gpp_waits[-1] > gpp_waits[0]
    # At every load point the hybrid grid waits no longer; at high load
    # the gap is large (the GPP-only knee has passed).
    for (rate, h, g) in rows:
        assert h.mean_wait_s <= g.mean_wait_s + 1e-9, rate
    assert gpp_waits[-1] > 3 * hybrid_waits[-1]
    # Everyone eventually finishes (the sweep measures waits, not loss).
    for _, h, g in rows:
        assert h.completed == TASKS and g.completed == TASKS

    report = benchmark(run_point, 2.0, True)
    assert report.completed == TASKS


if __name__ == "__main__":
    for rate, h, g in regenerate():
        print(rate, round(h.mean_wait_s, 3), round(g.mean_wait_s, 3))
