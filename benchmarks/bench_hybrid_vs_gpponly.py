"""The paper's headline claim: hybrid GPP+RPE grids beat GPP-only grids.

"More performance can be achieved by utilizing reconfigurable hardware
[...] The resources can be utilized in a more effective manner when the
processing elements are both GPPs and RPEs.  Those grid applications
which contain more parallelism can get more benefit if executed on the
reconfigurable hardware." (Section I)

Three comparisons on one grid:

1. a mixed workload under the hybrid scheduler vs the traditional
   GPP-only scheduler (which cannot express RPE tasks at all);
2. the *accelerable* workload run entirely in software vs on fabric --
   the turnaround speedup from acceleration;
3. the Section III-A soft-core fallback: GPP-class tasks flooding a
   grid whose GPPs are saturated, with and without RPEs allowed to
   host soft cores.

The mixed-workload kernel lives in :mod:`repro.bench.cases` (case
``hybrid-vs-gpponly``).
"""

from repro.bench import standalone_main
from repro.bench.cases import HYBRID_TASKS as TASKS
from repro.bench.cases import build_hybrid_rms as build_rms
from repro.bench.cases import run_mixed
from repro.core.execreq import Artifacts, ExecReq
from repro.core.task import simple_task
from repro.hardware.softcore import RHO_VEX_8ISSUE
from repro.hardware.taxonomy import PEClass
from repro.scheduling import GPPOnlyScheduler, HybridCostScheduler
from repro.sim.simulator import DReAMSim


def run_softcore_fallback(allow_softcores: bool):
    """Saturating GPP-class burst; RPEs may host soft cores (III-A)."""
    rms = build_rms(HybridCostScheduler())
    if allow_softcores:
        for _ in range(3):
            rms.virtualization.provisioner.provision(
                rms.node(0).rpes[0], RHO_VEX_8ISSUE
            )
    tasks = [
        (
            0.1 * i,
            simple_task(
                i,
                ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
                2.0,
                workload_mi=2_000.0,
            ),
        )
        for i in range(40)
    ]
    sim = DReAMSim(rms)
    sim.submit_workload(tasks)
    return sim.run()


def bench_hybrid_vs_gpponly(benchmark):
    hybrid = run_mixed(HybridCostScheduler(), 0.5)
    gpp_only = run_mixed(GPPOnlyScheduler(), 0.5)
    sw_world = run_mixed(HybridCostScheduler(), 1.0)

    print("\nHybrid GPP+RPE grid vs traditional GPP-only grid (200 tasks)")
    print(f"{'configuration':28s} {'completed':>9s} {'pending':>8s} {'turnd s':>8s} {'makespan':>9s}")
    for label, r in (
        ("hybrid, mixed workload", hybrid),
        ("gpp-only, mixed workload", gpp_only),
        ("hybrid, all-software", sw_world),
    ):
        print(
            f"{label:28s} {r.completed:9d} {r.pending:8d} "
            f"{r.mean_turnaround_s:8.3f} {r.makespan_s:9.2f}"
        )

    # A traditional grid cannot run RPE tasks at all.
    assert hybrid.completed == TASKS
    assert gpp_only.completed < TASKS
    assert gpp_only.pending > 0
    # Acceleration: the mixed workload (half of it 8-25x hardware
    # kernels) turns around faster than an all-software world.
    assert hybrid.mean_turnaround_s < sw_world.mean_turnaround_s

    soft = run_softcore_fallback(True)
    hard = run_softcore_fallback(False)
    print("\nSection III-A soft-core fallback (GPP burst, 40 tasks)")
    print(f"  with soft cores:    wait {soft.mean_wait_s:7.3f} s  makespan {soft.makespan_s:7.2f} s")
    print(f"  without soft cores: wait {hard.mean_wait_s:7.3f} s  makespan {hard.makespan_s:7.2f} s")
    assert soft.completed == hard.completed == 40
    # Extra (slower) capacity still cuts queueing delay under burst.
    assert soft.mean_wait_s < hard.mean_wait_s

    report = benchmark(run_mixed, HybridCostScheduler(), 0.5)
    assert report.completed == TASKS


if __name__ == "__main__":
    raise SystemExit(standalone_main("hybrid-vs-gpponly"))
