"""Figure 2: virtualization/abstraction levels on a reconfigurable grid.

Section III-C's claim: descending the abstraction stack, the user adds
more specification and gets more performance.  This bench runs the SAME
kernel (8,000 MI, 10x hardware speedup) through the grid at every
level and tabulates what the user supplied, what the grid did, and the
resulting times:

* SOFTWARE_ONLY      -- code only; runs on a GPP.
* PREDETERMINED_HW   -- code + soft-core choice; pays provisioning, but
  rescues the task when every GPP is busy (Section III-A's fallback).
* USER_DEFINED_HW    -- code + generic HDL; pays provider-side synthesis
  on first contact, then reuses the archived bitstream.
* DEVICE_SPECIFIC_HW -- code + ready bitstream; pays only the transfer
  and configuration-port time.
"""

import pytest

from repro.core.abstraction import AbstractionLevel
from repro.core.execreq import Artifacts, Equals, ExecReq, MinValue
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.network import Network
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.bitstream import Bitstream, HDLDesign
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.softcore import RHO_VEX_8ISSUE
from repro.hardware.taxonomy import PEClass

WORKLOAD_MI = 8_000.0
HW_EXEC_S = 0.8  # 10x over the 1000-MIPS reference
SLICES = 5_000


def fresh_rms() -> ResourceManagementSystem:
    node = Node(node_id=0, name="Node_0")
    node.add_gpp(GPPSpec(cpu_model="Xeon", mips=1_000))
    # One region: the 8-issue soft core needs ~12k of the 17k slices.
    node.add_rpe(device_by_model("XC5VLX110"), regions=1)
    net = Network.fully_connected([0], bandwidth_mbps=100.0, latency_s=0.005)
    rms = ResourceManagementSystem(network=net)
    rms.register_node(node)
    return rms


def task_at_level(level: AbstractionLevel, task_id: int):
    base = dict(application_code="kernel", input_data_bytes=1 << 20)
    if level is AbstractionLevel.SOFTWARE_ONLY:
        req = ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(**base))
        return simple_task(task_id, req, 8.0, workload_mi=WORKLOAD_MI, function="kern")
    if level is AbstractionLevel.PREDETERMINED_HW:
        req = ExecReq(
            node_type=PEClass.SOFTCORE,
            artifacts=Artifacts(**base, softcore=RHO_VEX_8ISSUE),
        )
        return simple_task(task_id, req, 8.0, workload_mi=WORKLOAD_MI, function="kern")
    if level is AbstractionLevel.USER_DEFINED_HW:
        hdl = HDLDesign("kern_hdl", "VHDL", 900, estimated_slices=SLICES, implements="kern")
        req = ExecReq(
            node_type=PEClass.RPE,
            constraints=(MinValue("slices", SLICES),),
            artifacts=Artifacts(**base, hdl_design=hdl),
        )
        return simple_task(task_id, req, HW_EXEC_S, workload_mi=WORKLOAD_MI, function="kern")
    device = device_by_model("XC5VLX110")
    bs = Bitstream(
        7_000 + task_id,
        device.model,
        device.bitstream_size_bytes(SLICES),
        SLICES,
        implements="kern",
        speedup_vs_gpp=10.0,
    )
    req = ExecReq(
        node_type=PEClass.RPE,
        constraints=(Equals("device_model", device.model),),
        artifacts=Artifacts(**base, bitstream=bs),
    )
    return simple_task(task_id, req, HW_EXEC_S, workload_mi=WORKLOAD_MI, function="kern")


def measure_level(level: AbstractionLevel) -> dict:
    rms = fresh_rms()
    first = rms.plan_placement(task_at_level(level, 0))
    rms.run_placement(first)
    steady = rms.plan_placement(task_at_level(level, 1))
    rms.run_placement(steady)
    return {
        "level": level,
        "first_total_s": first.total_time_s,
        "steady_total_s": steady.total_time_s,
        "exec_s": first.exec_time_s,
        "synthesis_s": first.synthesis_time_s,
        "effort": level.development_effort,
    }


def regenerate() -> list[dict]:
    return [measure_level(level) for level in sorted(AbstractionLevel, reverse=True)]


def bench_fig2_abstraction_sweep(benchmark):
    rows = regenerate()
    print("\nFigure 2: abstraction level sweep (same kernel at every level)")
    print(f"{'level':22s} {'effort':>6s} {'exec s':>8s} {'synth s':>8s} {'1st total':>10s} {'steady':>8s}")
    for r in rows:
        print(
            f"{r['level'].name:22s} {r['effort']:6.2f} {r['exec_s']:8.3f} "
            f"{r['synthesis_s']:8.2f} {r['first_total_s']:10.2f} {r['steady_total_s']:8.3f}"
        )
    by = {r["level"]: r for r in rows}

    # Section III-C: lower abstraction -> more performance (execution).
    assert (
        by[AbstractionLevel.DEVICE_SPECIFIC_HW]["exec_s"]
        < by[AbstractionLevel.SOFTWARE_ONLY]["exec_s"]
    )
    # III-B2 vs III-B3: generic HDL pays synthesis once; bitstreams don't.
    assert by[AbstractionLevel.USER_DEFINED_HW]["synthesis_s"] > 0
    assert by[AbstractionLevel.DEVICE_SPECIFIC_HW]["synthesis_s"] == 0
    assert (
        by[AbstractionLevel.USER_DEFINED_HW]["first_total_s"]
        > by[AbstractionLevel.DEVICE_SPECIFIC_HW]["first_total_s"]
    )
    # Steady state: synthesis amortized away by the bitstream repository.
    assert (
        by[AbstractionLevel.USER_DEFINED_HW]["steady_total_s"]
        < by[AbstractionLevel.USER_DEFINED_HW]["first_total_s"]
    )
    # User effort grows monotonically toward the hardware.
    efforts = [r["effort"] for r in rows]
    assert efforts == sorted(efforts)

    # Section III-A scenario: all GPPs busy -> the soft-core fallback
    # beats queueing behind the 60-second incumbent.
    rms = fresh_rms()
    rms.node(0).gpps[0].assign(999)  # busy "for 60 s"
    software_total = 60.0 + WORKLOAD_MI / 1_000.0
    fallback = rms.plan_placement(task_at_level(AbstractionLevel.PREDETERMINED_HW, 5))
    assert fallback is not None
    assert fallback.total_time_s < software_total

    benchmark(measure_level, AbstractionLevel.DEVICE_SPECIFIC_HW)


if __name__ == "__main__":
    for row in regenerate():
        print(row)
