"""Figure 4: the application task model (Eq. 2).

Builds tasks with n inputs, m outputs and k ExecReq parameters exactly
as Figure 4 draws them, then times the hot path: ExecReq evaluation of
a large task batch against a grid's capability descriptors.
"""

from repro.core.execreq import Equals, ExecReq, MinValue
from repro.core.task import DataIn, DataOut, Task
from repro.hardware.catalog import DEVICE_CATALOG
from repro.hardware.taxonomy import PEClass


def figure4_task(task_id: int = 42, n: int = 3, m: int = 2, k: int = 4) -> Task:
    """A task with n DataIN sources, m outputs, and k ExecReq params."""
    constraint_pool = [
        MinValue("slices", 10_000),
        Equals("device_family", "virtex-5"),
        MinValue("bram_kb", 128),
        MinValue("dsp_slices", 32),
        MinValue("max_frequency_mhz", 300.0),
    ]
    return Task(
        task_id=task_id,
        data_in=tuple(DataIn(task_id - i - 1, i, 1 << 20) for i in range(n)),
        data_out=tuple(DataOut(i, 1 << 19) for i in range(m)),
        exec_req=ExecReq(node_type=PEClass.RPE, constraints=tuple(constraint_pool[:k])),
        t_estimated=2.0,
    )


def bench_fig4_execreq_matching(benchmark):
    task = figure4_task()
    print("\nFigure 4: task tuple")
    print(f"  TaskID       = {task.task_id}")
    for d in task.data_in:
        print(f"  DataIN       = (TaskID={d.source_task_id}, DataID={d.data_id}, DSize={d.size_bytes})")
    for d in task.data_out:
        print(f"  DataOUT      = (DataID={d.data_id}, DSize={d.size_bytes})")
    print(f"  ExecReq      = {task.exec_req.describe()}")
    print(f"  t_estimated  = {task.t_estimated}")

    assert task.predecessor_ids == {39, 40, 41}
    assert task.total_input_bytes == 3 << 20

    # Timed kernel: 1,000 tasks x whole catalog ExecReq evaluation.
    tasks = [figure4_task(task_id=100 + i, k=1 + i % 5) for i in range(1_000)]
    descriptors = [d.capabilities() for d in DEVICE_CATALOG.values()]

    def match_batch():
        return sum(
            1 for t in tasks for caps in descriptors if t.exec_req.matches(caps)
        )

    hits = benchmark(match_batch)
    assert hits > 0


if __name__ == "__main__":
    print(figure4_task().exec_req.describe())
