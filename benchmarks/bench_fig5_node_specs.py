"""Figure 5: specifications of the 3 case-study grid nodes.

Regenerates the three spec sheets (Node_0 .. Node_2) from the node
models and checks the paper-stated facts: composition, device families,
the >24,000-slice Virtex-5 claim, and the initial idle/unconfigured
states.  The timed kernel is full spec-sheet generation.
"""

from repro.casestudy.nodes import build_case_study_nodes


def spec_sheets(nodes) -> list[str]:
    lines = ["Figure 5: case-study node specifications", ""]
    for node in nodes:
        lines.append(f"== {node.name} ==")
        for i, caps in enumerate(node.gpp_caps()):
            lines.append(
                f"  GPP_{i}: {caps['cpu_model']}, {caps['mips']:.0f} MIPS, "
                f"{caps['os']}, {caps['ram_mb']} MB, {caps['cores']} cores"
            )
        for i, caps in enumerate(node.rpe_caps()):
            lines.append(
                f"  RPE_{i}: {caps['device_model']} ({caps['device_family']}), "
                f"{caps['slices']} slices, {caps['bram_kb']} KB BRAM, "
                f"{caps['dsp_slices']} DSP, state={caps['state']}, "
                f"resident={list(caps['resident_functions'])}"
            )
        lines.append("")
    return lines


def bench_fig5_spec_generation(benchmark):
    nodes = build_case_study_nodes()
    print("\n" + "\n".join(spec_sheets(nodes)))

    node0, node1, node2 = nodes
    assert (len(node0.gpps), len(node0.rpes)) == (2, 2)
    assert (len(node1.gpps), len(node1.rpes)) == (1, 2)
    assert (len(node2.gpps), len(node2.rpes)) == (0, 1)
    assert node0.rpes[0].device.model == "XC6VLX365T"
    for rpe in node1.rpes + node2.rpes:
        assert rpe.device.family == "virtex-5" and rpe.device.slices > 24_000
    # "both RPEs are currently available and idle" / unconfigured.
    for node in nodes:
        for rpe in node.rpes:
            assert rpe.state.value == "idle"
            assert rpe.fabric.resident_configurations() == []

    sheets = benchmark(spec_sheets, nodes)
    assert any("XC6VLX365T" in line for line in sheets)


if __name__ == "__main__":
    print("\n".join(spec_sheets(build_case_study_nodes())))
