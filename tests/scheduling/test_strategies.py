"""Unit tests for the scheduling strategies."""

import pytest

from repro.core.execreq import Artifacts, ExecReq, MinValue
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.bitstream import Bitstream
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.taxonomy import PEClass
from repro.scheduling import (
    ALL_STRATEGIES,
    BestFitAreaScheduler,
    FCFSScheduler,
    FirstFitScheduler,
    GPPOnlyScheduler,
    HybridCostScheduler,
    RandomScheduler,
)


def build_rms(scheduler):
    node0 = Node(node_id=0, name="Node_0")
    node0.add_gpp(GPPSpec(cpu_model="slow", mips=1_000))
    node0.add_rpe(device_by_model("XC5VLX330"))  # huge: wasteful for small tasks
    node1 = Node(node_id=1, name="Node_1")
    node1.add_gpp(GPPSpec(cpu_model="fast", mips=8_000))
    node1.add_rpe(device_by_model("XC5VLX50"))  # small: tight fit
    rms = ResourceManagementSystem(scheduler=scheduler)
    rms.register_node(node0)
    rms.register_node(node1)
    return rms


def gpp_task(task_id=0, t=1.0):
    return simple_task(
        task_id,
        ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
        t,
    )


def hw_task(task_id=0, slices=5_000, function="fft", model=None):
    constraints = (MinValue("slices", slices),)
    artifacts = dict(application_code="x")
    if model:
        bs = Bitstream(300 + task_id, model, 1_000_000, slices, implements=function)
        artifacts["bitstream"] = bs
    else:
        from repro.hardware.bitstream import HDLDesign

        artifacts["hdl_design"] = HDLDesign(
            name=function, language="VHDL", source_lines=200,
            estimated_slices=slices, implements=function,
        )
    return simple_task(
        task_id,
        ExecReq(node_type=PEClass.RPE, constraints=constraints, artifacts=Artifacts(**artifacts)),
        1.0,
        function=function,
    )


class TestRegistry:
    def test_all_strategies_registered(self):
        assert set(ALL_STRATEGIES) == {
            "fcfs", "first-fit", "best-fit-area", "random", "hybrid-cost",
            "energy-aware", "gpp-only",
        }

    def test_every_strategy_places_a_simple_task(self):
        for name, cls in ALL_STRATEGIES.items():
            rms = build_rms(cls())
            placement = rms.plan_placement(gpp_task())
            assert placement is not None, name


class TestFCFS:
    def test_takes_first_candidate(self):
        rms = build_rms(FCFSScheduler())
        placement = rms.plan_placement(gpp_task())
        assert placement.candidate.node_id == 0

    def test_defers_on_empty(self):
        assert FCFSScheduler().choose(gpp_task(), [], None) is None


class TestFirstFit:
    def test_prefers_resident_configuration(self):
        rms = build_rms(FirstFitScheduler())
        first = rms.plan_placement(hw_task(0, function="fft"))
        rms.run_placement(first)
        assert first.candidate.node_id == 0  # first in node order
        # Make function resident on node 1 instead: force fresh rms.
        rms2 = build_rms(FirstFitScheduler())
        node1_rpe = rms2.node(1).rpes[0]
        bs = Bitstream(999, node1_rpe.device.model, 1_000, 5_000, implements="fft")
        region = node1_rpe.fabric.find_placeable(5_000)
        node1_rpe.fabric.begin_reconfiguration(region, bs)
        node1_rpe.fabric.finish_reconfiguration(region)
        placement = rms2.plan_placement(hw_task(1, function="fft"))
        assert placement.candidate.node_id == 1
        assert placement.reused_configuration


class TestBestFitArea:
    def test_picks_tightest_fabric(self):
        rms = build_rms(BestFitAreaScheduler())
        placement = rms.plan_placement(hw_task(slices=5_000))
        # XC5VLX50 (7,200) wastes 2,200; XC5VLX330 wastes 46,840.
        assert placement.candidate.node_id == 1

    def test_picks_fastest_gpp(self):
        rms = build_rms(BestFitAreaScheduler())
        placement = rms.plan_placement(gpp_task())
        assert placement.candidate.node_id == 1  # the 8,000-MIPS CPU

    def test_defers_when_nothing_fits(self):
        scheduler = BestFitAreaScheduler()
        assert scheduler.choose(hw_task(), [], None) is None


class TestHybridCost:
    def test_minimizes_total_time(self):
        rms = build_rms(HybridCostScheduler())
        placement = rms.plan_placement(gpp_task(t=8.0))
        # 8000 MI: 8 s on the slow CPU, 1 s on the fast one.
        assert placement.candidate.node_id == 1

    def test_reuse_beats_fresh_reconfiguration(self):
        rms = build_rms(HybridCostScheduler())
        first = rms.plan_placement(hw_task(0, function="fft"))
        rms.run_placement(first)
        second = rms.plan_placement(hw_task(1, function="fft"))
        assert second.reused_configuration
        assert second.candidate.node_id == first.candidate.node_id

    def test_area_weight_validation(self):
        with pytest.raises(ValueError):
            HybridCostScheduler(area_weight=-1)

    def test_area_weight_breaks_time_ties(self):
        rms = build_rms(HybridCostScheduler(area_weight=10.0))
        placement = rms.plan_placement(hw_task(slices=5_000))
        assert placement.candidate.node_id == 1  # tight fit preferred


class TestGPPOnly:
    def test_never_uses_fabric(self):
        rms = build_rms(GPPOnlyScheduler())
        assert rms.plan_placement(hw_task()) is None

    def test_still_schedules_software(self):
        rms = build_rms(GPPOnlyScheduler())
        placement = rms.plan_placement(gpp_task())
        assert placement.candidate.kind is PEClass.GPP


class TestRandom:
    def test_deterministic_under_seed(self):
        def run(seed):
            rms = build_rms(RandomScheduler(seed=seed))
            return [rms.plan_placement(gpp_task(i)).candidate.node_id for i in range(2)]

        assert run(7) == run(7)

    def test_defers_on_empty(self):
        assert RandomScheduler().choose(gpp_task(), [], None) is None
