"""Unit tests for the energy-aware scheduler."""

import pytest

from repro.core.execreq import Artifacts, ExecReq, MinValue
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.bitstream import Bitstream
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.taxonomy import PEClass
from repro.scheduling import EnergyAwareScheduler


def build_rms():
    node = Node(node_id=0)
    node.add_gpp(GPPSpec(cpu_model="Xeon-big", mips=20_000, cores=2))  # ~160 W
    node.add_gpp(GPPSpec(cpu_model="Atom", mips=3_000, cores=1))  # ~12 W
    node.add_rpe(device_by_model("XC5VLX155"), regions=2)
    rms = ResourceManagementSystem(scheduler=EnergyAwareScheduler())
    rms.register_node(node)
    return rms


def test_validation():
    with pytest.raises(ValueError):
        EnergyAwareScheduler(deadline_weight=-1)


def test_prefers_efficient_gpp_for_software():
    """20,000 MI: big Xeon takes 1 s at ~160 W (160 J); Atom takes
    6.7 s at ~12 W (~80 J) -- energy-aware picks the Atom."""
    rms = build_rms()
    task = simple_task(
        0,
        ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
        1.0,
        workload_mi=20_000.0,
    )
    placement = rms.plan_placement(task)
    assert rms.node(0).gpp(placement.candidate.resource_id).spec.cpu_model == "Atom"


def test_deadline_weight_flips_to_fast_cpu():
    rms = build_rms()
    rms.scheduler = EnergyAwareScheduler(deadline_weight=100.0)
    task = simple_task(
        0,
        ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
        1.0,
        workload_mi=20_000.0,
    )
    placement = rms.plan_placement(task)
    assert rms.node(0).gpp(placement.candidate.resource_id).spec.cpu_model == "Xeon-big"


def test_places_hardware_tasks():
    rms = build_rms()
    bs = Bitstream(1, "XC5VLX155", 1_000_000, 9_000, implements="fft")
    task = simple_task(
        1,
        ExecReq(
            node_type=PEClass.RPE,
            constraints=(MinValue("slices", 9_000),),
            artifacts=Artifacts(application_code="x", bitstream=bs),
        ),
        1.0,
        function="fft",
    )
    placement = rms.plan_placement(task)
    assert placement is not None
    assert placement.candidate.kind is PEClass.RPE


def test_defers_on_empty():
    task = simple_task(
        0, ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")), 1.0
    )
    assert EnergyAwareScheduler().choose(task, [], None) is None
