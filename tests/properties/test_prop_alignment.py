"""Property-based tests for the alignment kernels.

The wavefront Gotoh and the Hirschberg recursion are checked against
naive per-cell oracles on random inputs, plus structural invariants:
symmetry, self-alignment optimality, and input recovery.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bioinfo.pairalign import (
    GAP_CHAR,
    align_pair,
    forward_pass,
    gotoh_reference,
    hirschberg_align,
    needleman_wunsch_reference,
)
from repro.bioinfo.scoring import (
    DNA_ALPHABET,
    GapPenalty,
    blosum62,
    dna_matrix,
)
from repro.bioinfo.sequences import Sequence

PROTEIN = blosum62()
DNA = dna_matrix()

protein_seq = st.text(alphabet=PROTEIN.alphabet, min_size=1, max_size=24)
dna_seq = st.text(alphabet=DNA_ALPHABET, min_size=1, max_size=24)
gaps = st.builds(
    GapPenalty,
    open=st.floats(min_value=0.5, max_value=20.0),
    extend=st.floats(min_value=0.0, max_value=0.5),
)


@settings(max_examples=60, deadline=None)
@given(x=protein_seq, y=protein_seq, gap=gaps)
def test_wavefront_matches_percell_oracle(x, y, gap):
    fast = forward_pass(PROTEIN.encode(x), PROTEIN.encode(y), PROTEIN, gap)
    slow = gotoh_reference(x, y, PROTEIN, gap)
    assert np.isclose(fast, slow)


@settings(max_examples=60, deadline=None)
@given(x=dna_seq, y=dna_seq, gap=gaps)
def test_wavefront_symmetric_in_inputs(x, y, gap):
    a = forward_pass(DNA.encode(x), DNA.encode(y), DNA, gap)
    b = forward_pass(DNA.encode(y), DNA.encode(x), DNA, gap)
    assert np.isclose(a, b)


@settings(max_examples=40, deadline=None)
@given(x=protein_seq, gap=gaps)
def test_self_alignment_is_optimal(x, gap):
    """No alignment of x against x can beat the gapless diagonal (the
    substitution matrix diagonal dominates every row)."""
    score = forward_pass(PROTEIN.encode(x), PROTEIN.encode(x), PROTEIN, gap)
    diagonal = sum(PROTEIN.score(c, c) for c in x)
    assert np.isclose(score, diagonal)


@settings(max_examples=40, deadline=None)
@given(x=protein_seq, y=protein_seq, gap=gaps)
def test_alignment_recovers_inputs_and_score(x, y, gap):
    result = align_pair(Sequence("x", x), Sequence("y", y), PROTEIN, gap)
    assert result.aligned_x.replace(GAP_CHAR, "") == x
    assert result.aligned_y.replace(GAP_CHAR, "") == y
    assert len(result.aligned_x) == len(result.aligned_y)
    # No column may be all-gap.
    assert all(
        not (a == GAP_CHAR and b == GAP_CHAR)
        for a, b in zip(result.aligned_x, result.aligned_y)
    )
    # Traceback score must equal the DP score.
    score, prev = 0.0, None
    for a, b in zip(result.aligned_x, result.aligned_y):
        if a == GAP_CHAR:
            score -= gap.extend if prev == "E" else gap.open
            prev = "E"
        elif b == GAP_CHAR:
            score -= gap.extend if prev == "F" else gap.open
            prev = "F"
        else:
            score += PROTEIN.score(a, b)
            prev = "M"
    assert np.isclose(score, result.score)


@settings(max_examples=60, deadline=None)
@given(x=dna_seq, y=dna_seq, g=st.floats(min_value=0.0, max_value=12.0))
def test_hirschberg_matches_nw_oracle(x, y, g):
    result = hirschberg_align(Sequence("x", x), Sequence("y", y), DNA, g)
    oracle = needleman_wunsch_reference(x, y, DNA, g)
    assert np.isclose(result.score, oracle)
    assert result.aligned_x.replace(GAP_CHAR, "") == x
    assert result.aligned_y.replace(GAP_CHAR, "") == y


@settings(max_examples=30, deadline=None)
@given(x=protein_seq, y=protein_seq, gap=gaps, extra=protein_seq)
def test_score_upper_bounded_by_self_alignments(x, y, gap, extra):
    """Cross-alignment can never beat the smaller self-alignment: every
    matched pair scores at most min(s(a,a), s(b,b)) by diagonal
    dominance, and gaps only subtract."""
    cross = forward_pass(PROTEIN.encode(x), PROTEIN.encode(y), PROTEIN, gap)
    self_x = sum(PROTEIN.score(c, c) for c in x)
    self_y = sum(PROTEIN.score(c, c) for c in y)
    assert cross <= max(self_x, self_y) + 1e-9
