"""Property-based tests for the slice-granularity allocator."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.hardware.catalog import device_by_model
from repro.hardware.flexfabric import AllocationError, FlexibleFabric

DEVICE = device_by_model("XC5VLX50")  # 7,200 slices: small => collisions


class FlexFabricMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.fabric = FlexibleFabric(DEVICE)
        self.live = []

    @rule(size=st.integers(min_value=1, max_value=3_000))
    def allocate(self, size):
        can = self.fabric.can_allocate(size)
        try:
            span = self.fabric.allocate(size)
            assert can, "allocate succeeded although can_allocate said no"
            self.live.append(span)
        except AllocationError:
            assert not can, "allocate failed although can_allocate said yes"

    @rule(index=st.integers(min_value=0, max_value=10))
    def release(self, index):
        if self.live:
            span = self.live.pop(index % len(self.live))
            self.fabric.release(span)

    @rule()
    def compact(self):
        self.fabric.compact()
        assert self.fabric.external_fragmentation() == 0.0
        # After compaction, anything up to the free total fits.
        free = self.fabric.free_slices
        if free > 0:
            assert self.fabric.can_allocate(free)

    @invariant()
    def area_conserved(self):
        assert (
            self.fabric.allocated_slices + self.fabric.free_slices
            == self.fabric.total_slices
        )
        assert self.fabric.allocated_slices == sum(s.slices for s in self.live)

    @invariant()
    def spans_disjoint_and_in_bounds(self):
        spans = sorted(self.fabric.spans, key=lambda s: s.start)
        for span in spans:
            assert 0 <= span.start and span.end <= self.fabric.total_slices
        for a, b in zip(spans, spans[1:]):
            assert a.end <= b.start

    @invariant()
    def holes_complement_spans(self):
        hole_total = sum(size for _, size in self.fabric.holes())
        assert hole_total == self.fabric.free_slices

    @invariant()
    def fragmentation_in_unit_interval(self):
        assert 0.0 <= self.fabric.external_fragmentation() <= 1.0


FlexFabricMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestFlexFabricStateMachine = FlexFabricMachine.TestCase
