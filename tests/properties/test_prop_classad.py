"""Property-based tests for the ClassAd evaluator.

The evaluator is differential-tested against Python's own ``eval`` on a
generated subset of expressions where both are defined (all attributes
present, no division), and checked for UNDEFINED totality when
attributes are missing: evaluation must never raise, and three-valued
logic must absorb UNDEFINED correctly.
"""

from hypothesis import given, settings, strategies as st

from repro.grid.classad import MatchError, UNDEFINED, evaluate

KEYS = ["a", "b", "c"]
number = st.integers(min_value=-50, max_value=50)


@st.composite
def comparisons(draw):
    """Expressions over target.a/b/c with comparisons and boolean ops."""
    def atom():
        key = draw(st.sampled_from(KEYS))
        op = draw(st.sampled_from([">", ">=", "<", "<=", "==", "!="]))
        value = draw(number)
        return f"target.{key} {op} {value}"

    terms = [atom() for _ in range(draw(st.integers(min_value=1, max_value=4)))]
    expr = terms[0]
    for term in terms[1:]:
        joiner = draw(st.sampled_from(["and", "or"]))
        if draw(st.booleans()):
            term = f"not ({term})"
        expr = f"({expr}) {joiner} ({term})"
    return expr


@settings(max_examples=150, deadline=None)
@given(expr=comparisons(), values=st.tuples(number, number, number))
def test_differential_against_python_eval(expr, values):
    target = dict(zip(KEYS, values))
    ours = evaluate(expr, target=target)
    theirs = eval(  # noqa: S307 - generated from a known-safe grammar
        expr.replace("target.", "t_"),
        {"__builtins__": {}},
        {f"t_{k}": v for k, v in target.items()},
    )
    assert ours == theirs


@settings(max_examples=150, deadline=None)
@given(
    expr=comparisons(),
    values=st.tuples(number, number, number),
    present=st.sets(st.sampled_from(KEYS)),
)
def test_total_under_missing_attributes(expr, values, present):
    """With any subset of attributes missing, evaluation returns a
    value (bool or UNDEFINED) and never raises."""
    target = {k: v for k, v in zip(KEYS, values) if k in present}
    result = evaluate(expr, target=target)
    assert result is True or result is False or result is UNDEFINED


@settings(max_examples=100, deadline=None)
@given(expr=comparisons(), values=st.tuples(number, number, number))
def test_negation_involution(expr, values):
    target = dict(zip(KEYS, values))
    inner = evaluate(expr, target=target)
    double_neg = evaluate(f"not (not ({expr}))", target=target)
    assert double_neg == inner


@settings(max_examples=100, deadline=None)
@given(expr=comparisons())
def test_short_circuit_absorption(expr):
    """False and X == False; True or X == True, even with X undefined."""
    assert evaluate(f"1 == 2 and ({expr})", target={}) is False
    assert evaluate(f"1 == 1 or ({expr})", target={}) is True


@settings(max_examples=60, deadline=None)
@given(key=st.sampled_from(KEYS), value=number)
def test_undefined_comparisons_poison(key, value):
    assert evaluate(f"target.{key} > {value}", target={}) is UNDEFINED
    assert evaluate(f"target.{key} == {value}", target={}) is UNDEFINED
