"""Property-based tests for the task graph."""

from hypothesis import given, settings, strategies as st

from repro.core.execreq import ExecReq
from repro.core.task import DataIn, DataOut, Task
from repro.core.taskgraph import TaskGraph
from repro.hardware.taxonomy import PEClass


@st.composite
def random_dags(draw):
    """Random DAG: edges only from lower to higher TaskID (acyclic by
    construction)."""
    n = draw(st.integers(min_value=1, max_value=14))
    tasks = []
    for task_id in range(n):
        predecessors = draw(
            st.sets(st.integers(min_value=0, max_value=max(0, task_id - 1)), max_size=4)
        ) if task_id else set()
        data_in = tuple(DataIn(p, 0, 8) for p in sorted(predecessors))
        tasks.append(
            Task(
                task_id=task_id,
                data_in=data_in,
                data_out=(DataOut(0, 8),),
                exec_req=ExecReq(node_type=PEClass.GPP),
                t_estimated=float(draw(st.integers(min_value=1, max_value=5))),
            )
        )
    return TaskGraph(tasks)


@settings(max_examples=60, deadline=None)
@given(graph=random_dags())
def test_topological_order_respects_edges(graph):
    order = graph.topological_order()
    assert sorted(order) == sorted(graph.tasks)
    position = {t: i for i, t in enumerate(order)}
    for task_id in graph.tasks:
        for pred in graph.predecessors(task_id):
            assert position[pred] < position[task_id]


@settings(max_examples=60, deadline=None)
@given(graph=random_dags())
def test_simulated_frontier_execution_terminates(graph):
    """Repeatedly executing the ready frontier completes every task in
    at most len(generations) rounds, and the frontier is never empty
    while work remains."""
    completed: set[int] = set()
    rounds = 0
    while len(completed) < len(graph):
        ready = graph.ready_tasks(completed)
        assert ready, "deadlock: no ready task but work remains"
        completed |= ready
        rounds += 1
    assert rounds == len(graph.generations())


@settings(max_examples=60, deadline=None)
@given(graph=random_dags())
def test_generations_partition_tasks(graph):
    gens = graph.generations()
    flat = [t for gen in gens for t in gen]
    assert sorted(flat) == sorted(graph.tasks)
    level = {t: i for i, gen in enumerate(gens) for t in gen}
    for task_id in graph.tasks:
        for pred in graph.predecessors(task_id):
            assert level[pred] < level[task_id]


@settings(max_examples=60, deadline=None)
@given(graph=random_dags())
def test_critical_path_bounds(graph):
    path, length = graph.critical_path()
    # The critical path is a real path.
    for a, b in zip(path, path[1:]):
        assert b in graph.successors(a)
    # Its length bounds: at least the longest single task, at most the
    # serial total.
    longest_task = max(t.t_estimated for t in graph.tasks.values())
    assert length >= longest_task - 1e-9
    assert length <= graph.total_work() + 1e-9
    # And it equals the sum of its tasks' estimates.
    assert abs(sum(graph.task(t).t_estimated for t in path) - length) < 1e-9


@settings(max_examples=60, deadline=None)
@given(graph=random_dags())
def test_entry_exit_consistency(graph):
    entries = graph.entry_tasks()
    exits = graph.exit_tasks()
    assert entries and exits
    for t in entries:
        assert not graph.predecessors(t)
    for t in exits:
        assert not graph.successors(t)
