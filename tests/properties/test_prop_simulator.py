"""Property-based tests for the DReAMSim simulator.

Conservation and sanity invariants over randomized grids and workloads:
every submitted task is accounted for exactly once (completed,
discarded, or pending); per-resource busy time never exceeds the run
horizon; hardware accounting (reconfigurations + reuses = hardware
tasks) balances; and identical seeds give identical runs.
"""

from hypothesis import given, settings, strategies as st

from repro.core.node import Node
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.scheduling import ALL_STRATEGIES, RandomScheduler
from repro.sim.simulator import DReAMSim
from repro.sim.workload import (
    ConfigurationPool,
    PoissonArrivals,
    SyntheticWorkload,
    WorkloadSpec,
)

STRATEGY_NAMES = [n for n in ALL_STRATEGIES if n != "gpp-only"]


def build_sim(strategy_name: str, *, gpps: int, rpes: int, seed: int) -> DReAMSim:
    cls = ALL_STRATEGIES[strategy_name]
    scheduler = cls(seed=seed) if cls is RandomScheduler else cls()
    node = Node(node_id=0)
    for i in range(gpps):
        node.add_gpp(GPPSpec(cpu_model=f"cpu{i}", mips=1_000.0 + 500.0 * i))
    for _ in range(rpes):
        node.add_rpe(device_by_model("XC5VLX220"), regions=2)
    rms = ResourceManagementSystem(scheduler=scheduler)
    rms.register_node(node)
    return DReAMSim(rms)


def run(strategy_name: str, *, gpps: int, rpes: int, tasks: int, seed: int):
    sim = build_sim(strategy_name, gpps=gpps, rpes=rpes, seed=seed)
    pool = ConfigurationPool(4, area_range=(2_000, 12_000), seed=seed)
    pool.populate_repository(
        sim.rms.virtualization.repository,
        [rpe.device for node in sim.rms.nodes for rpe in node.rpes],
    )
    workload = SyntheticWorkload(
        WorkloadSpec(task_count=tasks, gpp_fraction=0.5,
                     required_time_range_s=(0.2, 1.5)),
        pool,
        PoissonArrivals(rate_per_s=3.0),
        seed=seed,
    )
    sim.submit_workload(workload.generate())
    report = sim.run()
    return sim, report


@settings(max_examples=25, deadline=None)
@given(
    strategy=st.sampled_from(STRATEGY_NAMES),
    gpps=st.integers(min_value=1, max_value=3),
    rpes=st.integers(min_value=1, max_value=2),
    tasks=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_conservation_and_sanity(strategy, gpps, rpes, tasks, seed):
    sim, report = run(strategy, gpps=gpps, rpes=rpes, tasks=tasks, seed=seed)

    # Every submitted task accounted exactly once.
    assert report.completed + report.discarded + report.pending == tasks
    assert report.discarded == 0  # no discard deadline configured
    assert report.pending == 0  # every task is placeable on this grid
    # Hardware accounting balances.
    hw = report.tasks_by_pe_kind.get("RPE", 0)
    assert report.reconfigurations + report.reuse_hits == hw
    # Busy time per resource bounded by the horizon.
    for usage in sim.metrics.resources.values():
        assert usage.busy_s <= report.horizon_s + 1e-9
    # Timeline ordering per task.
    for tm in sim.metrics.tasks.values():
        assert tm.dispatch >= tm.arrival - 1e-9
        assert tm.start >= tm.dispatch - 1e-9
        assert tm.finish >= tm.start - 1e-9
    # Makespan is the last finish.
    assert report.makespan_s == max(t.finish for t in sim.metrics.tasks.values())


@settings(max_examples=10, deadline=None)
@given(
    strategy=st.sampled_from(STRATEGY_NAMES),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_bit_reproducibility(strategy, seed):
    _, first = run(strategy, gpps=2, rpes=1, tasks=25, seed=seed)
    _, second = run(strategy, gpps=2, rpes=1, tasks=25, seed=seed)
    assert first == second


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000))
def test_gpp_only_never_touches_fabric(seed):
    sim = build_sim("gpp-only", gpps=2, rpes=1, seed=seed)
    pool = ConfigurationPool(4, area_range=(2_000, 12_000), seed=seed)
    pool.populate_repository(
        sim.rms.virtualization.repository,
        [rpe.device for node in sim.rms.nodes for rpe in node.rpes],
    )
    workload = SyntheticWorkload(
        WorkloadSpec(task_count=20, gpp_fraction=0.5),
        pool,
        PoissonArrivals(rate_per_s=3.0),
        seed=seed,
    )
    sim.submit_workload(workload.generate())
    report = sim.run()
    assert report.tasks_by_pe_kind.get("RPE", 0) == 0
    assert report.reconfigurations == 0
    # Pending tasks are exactly the hardware-class ones.
    assert report.completed + report.pending == 20
