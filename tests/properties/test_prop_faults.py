"""Property-based tests for fault injection and recovery.

The headline invariant: **no task is ever lost**.  Whatever fault
schedule a seed draws -- crashes with rejoin, configuration failures,
SEUs, link degradation -- every submitted task ends in a terminal
state (completed, discarded, or failed), the online trace checker
stays satisfied throughout, and identical ``(seed, FaultSpec)`` pairs
reproduce identical canonical traces.
"""

from hypothesis import given, settings, strategies as st

from repro.core.node import Node
from repro.grid.network import Network
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.sim.faults import FaultInjector, FaultSpec, RetryPolicy
from repro.sim.simulator import DReAMSim
from repro.sim.tracing import InMemorySink, TraceInvariantChecker, Tracer, canonical_events
from repro.sim.workload import (
    ConfigurationPool,
    PoissonArrivals,
    SyntheticWorkload,
    WorkloadSpec,
)

fault_specs = st.builds(
    FaultSpec,
    crash_rate_per_s=st.floats(0.0, 0.08),
    downtime_range_s=st.just((2.0, 8.0)),
    config_fault_prob=st.floats(0.0, 0.4),
    seu_rate_per_s=st.floats(0.0, 0.1),
    link_fault_rate_per_s=st.floats(0.0, 0.08),
    degrade_factor=st.floats(0.05, 1.0),
    horizon_s=st.just(60.0),
)


def run_chaos(spec: FaultSpec, seed: int, tasks: int):
    """One seeded chaotic run over a 2-node hybrid grid; returns
    (report, checker, canonical trace lines)."""
    network = Network.fully_connected([0, 1])
    rms = ResourceManagementSystem(network=network)
    for node_id in range(2):
        node = Node(node_id=node_id)
        node.add_gpp(GPPSpec(cpu_model=f"cpu{node_id}", mips=1_500))
        node.add_rpe(device_by_model("XC5VLX155"), regions=2)
        rms.register_node(node)
    # Area bounded by the smallest PR region so every hardware task is
    # placeable once its node is back up.
    pool = ConfigurationPool(4, area_range=(2_000, 12_000), seed=seed)
    pool.populate_repository(
        rms.virtualization.repository,
        [rpe.device for node in rms.nodes for rpe in node.rpes],
    )
    workload = SyntheticWorkload(
        WorkloadSpec(task_count=tasks, gpp_fraction=0.5,
                     required_time_range_s=(0.2, 1.5)),
        pool,
        PoissonArrivals(rate_per_s=2.0),
        seed=seed,
    )
    checker = TraceInvariantChecker()
    sink = InMemorySink()
    sim = DReAMSim(
        rms,
        tracer=Tracer(checker, sink),
        faults=FaultInjector(spec, seed=seed),
        retry=RetryPolicy(backoff_base_s=0.2),
    )
    sim.submit_workload(workload.generate())
    report = sim.run()
    lines = [e.to_json() for e in canonical_events(list(sink.events))]
    return report, checker, lines


@given(spec=fault_specs, seed=st.integers(0, 2**32 - 1), tasks=st.integers(1, 18))
@settings(max_examples=20, deadline=None)
def test_no_task_is_ever_lost(spec, seed, tasks):
    report, checker, _ = run_chaos(spec, seed, tasks)
    # Exact accounting: every submission reaches a terminal state.
    assert report.completed + report.discarded + report.failed == tasks
    assert report.pending == 0
    checker.assert_quiescent()
    checker.assert_no_lost_tasks()
    assert 0.0 <= report.availability <= 1.0
    assert report.wasted_work_s >= 0.0
    if report.fault_events == 0:
        assert report.failed == 0
        assert report.wasted_work_s == 0.0


@given(spec=fault_specs, seed=st.integers(0, 2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_identical_fault_schedules_reproduce_traces(spec, seed):
    _, _, first = run_chaos(spec, seed, tasks=10)
    _, _, second = run_chaos(spec, seed, tasks=10)
    assert first == second
