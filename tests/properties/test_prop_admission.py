"""Property-based tests for the overload-protection layer.

The headline invariant is **exact conservation**: whatever admission
policies are armed -- bounded queue with or without backpressure,
token-bucket rate limiting, utilization gating, staged brownout -- and
whatever faults fire alongside them, every submission reaches exactly
one terminal state::

    submitted == completed + failed + discarded + shed

checked both from the report and from the online trace ledger, on both
event engines.  Determinism rides along: identical seeded runs must
reproduce identical traces even with admission and faults both armed,
because no admission decision ever draws randomness.
"""

from hypothesis import given, settings, strategies as st

from repro.core.node import Node
from repro.grid.network import Network
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.sim.admission import (
    AdmissionSpec,
    BrownoutSpec,
    QueueBoundSpec,
    TokenBucketSpec,
    UtilizationSpec,
)
from repro.sim.faults import FaultInjector, FaultSpec, RetryPolicy
from repro.sim.simulator import DReAMSim
from repro.sim.tracing import InMemorySink, TraceInvariantChecker, Tracer, canonical_events
from repro.sim.workload import (
    ConfigurationPool,
    PoissonArrivals,
    SyntheticWorkload,
    WorkloadSpec,
)

queue_specs = st.builds(
    QueueBoundSpec,
    max_pending=st.integers(1, 12),
    defer=st.booleans(),
    defer_delay_s=st.floats(0.1, 1.0),
    max_defers=st.integers(1, 5),
)

rate_specs = st.builds(
    TokenBucketSpec,
    rate_per_s=st.floats(0.5, 20.0),
    burst=st.floats(1.0, 10.0),
)

utilization_specs = st.builds(
    UtilizationSpec,
    threshold=st.floats(0.3, 1.0, exclude_min=True),
)

#: enter strictly above exit, so the hysteresis invariant holds by
#: construction (8-20 vs 0-7).
brownout_specs = st.builds(
    BrownoutSpec,
    enter_pending=st.integers(8, 20),
    exit_pending=st.integers(0, 7),
    dwell_s=st.floats(0.1, 1.5),
    max_stage=st.integers(1, 3),
)

admission_specs = st.builds(
    AdmissionSpec,
    queue=st.one_of(st.none(), queue_specs),
    rate=st.one_of(st.none(), rate_specs),
    utilization=st.one_of(st.none(), utilization_specs),
    brownout=st.one_of(st.none(), brownout_specs),
)

fault_specs = st.builds(
    FaultSpec,
    crash_rate_per_s=st.floats(0.0, 0.08),
    downtime_range_s=st.just((2.0, 8.0)),
    config_fault_prob=st.floats(0.0, 0.4),
    seu_rate_per_s=st.floats(0.0, 0.1),
    horizon_s=st.just(40.0),
)


def run_protected_burst(admission, faults, seed, tasks, engine):
    """One seeded bursty run (arrivals fast enough to exercise the
    queue bound) over a 2-node hybrid grid with admission armed;
    returns (report, checker, lines)."""
    network = Network.fully_connected([0, 1])
    rms = ResourceManagementSystem(network=network)
    for node_id in range(2):
        node = Node(node_id=node_id)
        node.add_gpp(GPPSpec(cpu_model=f"cpu{node_id}", mips=1_500))
        node.add_rpe(device_by_model("XC5VLX155"), regions=2)
        rms.register_node(node)
    pool = ConfigurationPool(4, area_range=(2_000, 12_000), seed=seed)
    pool.populate_repository(
        rms.virtualization.repository,
        [rpe.device for node in rms.nodes for rpe in node.rpes],
    )
    workload = SyntheticWorkload(
        WorkloadSpec(
            task_count=tasks,
            gpp_fraction=0.5,
            required_time_range_s=(0.2, 1.5),
            low_priority_fraction=0.4,
        ),
        pool,
        PoissonArrivals(rate_per_s=8.0),
        seed=seed,
    )
    checker = TraceInvariantChecker()
    sink = InMemorySink()
    sim = DReAMSim(
        rms,
        engine=engine,
        tracer=Tracer(checker, sink),
        faults=FaultInjector(faults, seed=seed) if faults is not None else None,
        retry=RetryPolicy(backoff_base_s=0.2),
        admission=admission,
    )
    sim.submit_workload(workload.generate())
    report = sim.run()
    lines = [e.to_json() for e in canonical_events(list(sink.events))]
    return report, checker, lines


@given(
    admission=admission_specs,
    faults=st.one_of(st.none(), fault_specs),
    seed=st.integers(0, 2**32 - 1),
    tasks=st.integers(1, 24),
    engine=st.sampled_from(["heap", "calendar"]),
)
@settings(max_examples=25, deadline=None)
def test_conservation_holds_under_any_admission_policy(
    admission, faults, seed, tasks, engine
):
    report, checker, _ = run_protected_burst(
        admission, faults, seed, tasks, engine
    )
    # Exact accounting, from the report...
    assert (
        report.completed + report.failed + report.discarded + report.shed
        == tasks
    )
    assert report.pending == 0
    # ... and independently from the online trace ledger.
    checker.assert_quiescent()
    checker.assert_no_lost_tasks()
    checker.assert_conservation()
    ledger = checker.conservation()
    assert ledger["submitted"] == tasks
    assert ledger["shed"] == report.shed
    # Policy-off implies metric-zero.
    if admission.queue is None and admission.rate is None:
        if admission.brownout is None:
            assert report.shed == 0
    if admission.brownout is None:
        assert report.brownout_transitions == 0
        assert report.brownout_time_s == 0.0
        assert report.brownout_degraded == 0
    if admission.utilization is None:
        assert report.placements_gated == 0
    if not (admission.queue is not None and admission.queue.defer):
        assert report.admission_deferrals == 0
    assert report.brownout_time_s >= 0.0
    assert 0 <= report.brownout_max_stage <= 3


@given(
    admission=admission_specs,
    faults=st.one_of(st.none(), fault_specs),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=10, deadline=None)
def test_identical_protected_runs_reproduce_traces(admission, faults, seed):
    *_, first = run_protected_burst(admission, faults, seed, 12, "heap")
    *_, second = run_protected_burst(admission, faults, seed, 12, "heap")
    assert first == second


@given(
    admission=admission_specs,
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=10, deadline=None)
def test_engines_agree_under_admission(admission, seed):
    """The calendar engine must replay the heap engine's protected
    runs byte-for-byte -- admission decisions depend on event order,
    so this is a real behavioral lock, not just a smoke test."""
    *_, heap = run_protected_burst(admission, None, seed, 12, "heap")
    *_, calendar = run_protected_burst(admission, None, seed, 12, "calendar")
    assert heap == calendar
