"""Property-based tests for the Eq. 3 application grammar."""

from hypothesis import given, settings, strategies as st

from repro.core.application import Application, Clause, ClauseKind, parse_application


@st.composite
def applications(draw):
    n_clauses = draw(st.integers(min_value=1, max_value=6))
    pool = iter(range(100))
    clauses = []
    for _ in range(n_clauses):
        kind = draw(st.sampled_from(list(ClauseKind)))
        size = draw(st.integers(min_value=1, max_value=5))
        clauses.append(Clause(kind, tuple(next(pool) for _ in range(size))))
    return Application(clauses=tuple(clauses))


@settings(max_examples=80, deadline=None)
@given(app=applications())
def test_describe_parse_roundtrip(app):
    reparsed = parse_application(app.describe())
    assert reparsed.clauses == app.clauses


@settings(max_examples=80, deadline=None)
@given(app=applications())
def test_steps_partition_tasks_in_order(app):
    steps = app.execution_steps()
    flat = [t for step in steps for t in step]
    assert tuple(flat) == app.task_ids
    assert all(step for step in steps)


@settings(max_examples=80, deadline=None)
@given(app=applications(), base=st.floats(min_value=0.1, max_value=10.0))
def test_makespan_between_max_and_sum(app, base):
    durations = {t: base * (1 + (t % 3)) for t in app.task_ids}
    makespan = app.makespan(durations)
    assert makespan <= sum(durations.values()) + 1e-9
    assert makespan >= max(durations.values()) - 1e-9
    # All-Seq applications take exactly the serial sum.
    if all(c.kind is not ClauseKind.PAR for c in app.clauses):
        assert abs(makespan - sum(durations.values())) < 1e-9
