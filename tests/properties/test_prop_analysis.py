"""Property-based tests for causal run analysis.

The headline invariant is conservation: whatever the run throws at a
task -- admission deferrals, brownout, faults with retries and GPP
fallback, control-plane failover with orphan recovery -- the phase
ledger folded from its trace must sum to its turnaround exactly
(within 1e-9), on both event engines.  The analysis layer is a pure
fold over the trace, so determinism is structural: identical traces
must analyze identically, down to the exemplar task ids.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.analysis import CONSERVATION_TOL, PHASES, analyze_events
from repro.sim.tracing import TraceEvent
from tests.properties.test_prop_failover import (
    admission_specs,
    control_plane_faults,
    failover_specs,
    run_chaos_burst,
)


def analyze_lines(lines):
    return analyze_events([TraceEvent.from_json(line) for line in lines])


@given(
    failover=st.one_of(st.none(), failover_specs),
    faults=st.one_of(st.none(), control_plane_faults),
    admission=admission_specs,
    seed=st.integers(0, 2**32 - 1),
    tasks=st.integers(1, 24),
    engine=st.sampled_from(["heap", "calendar"]),
)
@settings(max_examples=25, deadline=None)
def test_phases_sum_to_turnaround_under_chaos(
    failover, faults, admission, seed, tasks, engine
):
    report, _, lines = run_chaos_burst(
        failover, faults, admission, seed, tasks, engine
    )
    analysis = analyze_lines(lines)
    # Every submission folded into a ledger...
    assert len(analysis.ledgers) == tasks
    # ... and every terminal ledger conserves exactly.
    assert analysis.conservation_violations(tol=CONSERVATION_TOL) == []
    # The ledger's outcome census agrees with the report's.
    outcomes = [l.outcome for l in analysis.ledgers.values()]
    assert outcomes.count("complete") == report.completed
    assert outcomes.count("failed") == report.failed
    assert outcomes.count("shed") == report.shed
    assert outcomes.count("discarded") == report.discarded
    # No phase can absorb negative time.
    for ledger in analysis.ledgers.values():
        for phase in PHASES:
            assert ledger.phases[phase] >= 0.0
    # Feature-off implies phase-zero: no admission layer, no admission
    # or brownout time; no faults, no recovery or orphan time.
    if admission is None:
        for ledger in analysis.ledgers.values():
            assert ledger.phases["admission"] == 0.0
            assert ledger.phases["brownout"] == 0.0
    if faults is None:
        for ledger in analysis.ledgers.values():
            assert ledger.phases["recovery"] == 0.0
            assert ledger.phases["orphan"] == 0.0


@given(
    faults=control_plane_faults,
    seed=st.integers(0, 2**32 - 1),
    tasks=st.integers(4, 24),
)
@settings(max_examples=10, deadline=None)
def test_exemplars_are_deterministic_for_a_seed(faults, seed, tasks):
    """Same seed, same run, same analysis: the exemplar capture has no
    hidden iteration-order or tie-break nondeterminism."""
    *_, first_lines = run_chaos_burst(None, faults, None, seed, tasks, "heap")
    *_, second_lines = run_chaos_burst(None, faults, None, seed, tasks, "heap")
    first = analyze_lines(first_lines)
    second = analyze_lines(second_lines)
    assert first.percentiles == second.percentiles
    for bucket in ("p50", "p95", "p99"):
        assert (
            [l.key for l in first.exemplars.get(bucket, [])]
            == [l.key for l in second.exemplars.get(bucket, [])]
        )
    assert first.dominant_phase("p99") == second.dominant_phase("p99")
