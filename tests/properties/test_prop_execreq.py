"""Property-based tests for ExecReq matching.

Key invariant (requirement-matching monotonicity): *improving* a
capability descriptor -- raising a numeric capability, adding a new key
-- can never break an existing MinValue/Exists-style match, and adding
constraints to a requirement can only shrink the set of matching
descriptors.
"""

from hypothesis import given, settings, strategies as st

from repro.core.execreq import Equals, ExecReq, Exists, MinValue, OneOf
from repro.hardware.taxonomy import PEClass

cap_values = st.integers(min_value=0, max_value=10**6)


@st.composite
def descriptors(draw):
    keys = draw(
        st.lists(
            st.sampled_from(["slices", "luts", "bram_kb", "dsp_slices", "mips", "cores"]),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    caps = {k: draw(cap_values) for k in keys}
    caps["pe_class"] = "RPE"
    return caps


@st.composite
def min_reqs(draw, from_caps=None):
    n = draw(st.integers(min_value=0, max_value=4))
    constraints = []
    for _ in range(n):
        key = draw(
            st.sampled_from(["slices", "luts", "bram_kb", "dsp_slices", "mips", "cores"])
        )
        constraints.append(MinValue(key, draw(cap_values)))
    return ExecReq(node_type=PEClass.RPE, constraints=tuple(constraints))


@settings(max_examples=100, deadline=None)
@given(caps=descriptors(), req=min_reqs(), boost=cap_values)
def test_raising_capabilities_preserves_match(caps, req, boost):
    if not req.matches(caps):
        return
    improved = {
        k: (v + boost if isinstance(v, int) and k != "pe_class" else v)
        for k, v in caps.items()
    }
    assert req.matches(improved)


@settings(max_examples=100, deadline=None)
@given(caps=descriptors(), req=min_reqs(), extra_key=st.text(min_size=1, max_size=8), extra_val=cap_values)
def test_adding_capabilities_preserves_match(caps, req, extra_key, extra_val):
    if extra_key in caps or not req.matches(caps):
        return
    augmented = {**caps, extra_key: extra_val}
    assert req.matches(augmented)


@settings(max_examples=100, deadline=None)
@given(caps=descriptors(), req=min_reqs(), key=st.sampled_from(["slices", "mips"]), value=cap_values)
def test_adding_constraints_only_shrinks_matches(caps, req, key, value):
    refined = req.with_constraints(MinValue(key, value))
    if refined.matches(caps):
        assert req.matches(caps)


@settings(max_examples=100, deadline=None)
@given(caps=descriptors())
def test_unmet_constraints_iff_no_match(caps):
    req = ExecReq(
        node_type=PEClass.RPE,
        constraints=(MinValue("slices", 500_000), Exists("pe_class")),
    )
    unmet = req.unmet_constraints(caps)
    assert req.matches(caps) == (len(unmet) == 0)


@settings(max_examples=60, deadline=None)
@given(caps=descriptors(), values=st.lists(cap_values, min_size=1, max_size=5))
def test_oneof_equivalent_to_any_equals(caps, values):
    one_of = OneOf("slices", tuple(values))
    any_equals = any(Equals("slices", v).satisfied_by(caps) for v in values)
    assert one_of.satisfied_by(caps) == any_equals
