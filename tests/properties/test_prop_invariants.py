"""Property tests: the trace invariant checker vs the stock simulator.

Across random workloads, strategies, grids, and discard deadlines, the
checker must never fire on an event stream the simulator actually
produced -- and must always fire on streams corrupted in ways that
break causality, slice conservation, or reuse accounting.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.node import Node
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.scheduling import ALL_STRATEGIES, RandomScheduler
from repro.sim.simulator import DReAMSim
from repro.sim.tracing import (
    InMemorySink,
    InvariantViolation,
    TraceEvent,
    TraceInvariantChecker,
    Tracer,
    verify_trace,
)
from repro.sim.workload import (
    ConfigurationPool,
    PoissonArrivals,
    SyntheticWorkload,
    WorkloadSpec,
)

STRATEGY_NAMES = sorted(ALL_STRATEGIES)


def traced_run(
    strategy: str,
    *,
    tasks: int,
    seed: int,
    gpp_fraction: float,
    discard_after_s: float | None = None,
    leave_at: float | None = None,
) -> tuple[DReAMSim, list[TraceEvent]]:
    cls = ALL_STRATEGIES[strategy]
    scheduler = cls(seed=seed) if cls is RandomScheduler else cls()
    node0 = Node(node_id=0)
    node0.add_gpp(GPPSpec(cpu_model="cpu0", mips=1_200.0))
    node0.add_rpe(device_by_model("XC5VLX220"), regions=2)
    node1 = Node(node_id=1)
    node1.add_gpp(GPPSpec(cpu_model="cpu1", mips=1_500.0))
    node1.add_rpe(device_by_model("XC5VLX110"), regions=2)
    rms = ResourceManagementSystem(scheduler=scheduler)
    rms.register_node(node0)
    rms.register_node(node1)
    sink = InMemorySink()
    sim = DReAMSim(
        rms,
        discard_after_s=discard_after_s,
        tracer=Tracer(TraceInvariantChecker(), sink),
    )
    if leave_at is not None:
        sim.schedule_node_leave(leave_at, 1)
    pool = ConfigurationPool(4, area_range=(2_000, 10_000), seed=seed)
    pool.populate_repository(
        rms.virtualization.repository,
        [rpe.device for node in rms.nodes for rpe in node.rpes],
    )
    workload = SyntheticWorkload(
        WorkloadSpec(
            task_count=tasks,
            gpp_fraction=gpp_fraction,
            required_time_range_s=(0.2, 1.5),
        ),
        pool,
        PoissonArrivals(rate_per_s=3.0),
        seed=seed,
    )
    sim.submit_workload(workload.generate())
    sim.run()
    return sim, list(sink.events)


@settings(max_examples=25, deadline=None)
@given(
    strategy=st.sampled_from(STRATEGY_NAMES),
    tasks=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=10_000),
    gpp_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_checker_never_fires_on_stock_runs(strategy, tasks, seed, gpp_fraction):
    sim, events = traced_run(
        strategy, tasks=tasks, seed=seed, gpp_fraction=gpp_fraction
    )
    checker = sim.tracer.checker
    # Online validation saw every emitted event and raised nothing.
    assert checker.events_checked == len(events)
    # A fully drained run holds no fabric slices (gpp-only may leave
    # hardware tasks pending, but pending tasks own no regions).
    assert checker.live_allocations == 0
    # The stream verifies offline as well.
    assert verify_trace(events) == len(events)


@settings(max_examples=15, deadline=None)
@given(
    strategy=st.sampled_from([n for n in STRATEGY_NAMES if n != "gpp-only"]),
    seed=st.integers(min_value=0, max_value=1_000),
    discard_after_s=st.floats(min_value=0.1, max_value=2.0),
)
def test_checker_clean_under_discard_deadlines(strategy, seed, discard_after_s):
    sim, events = traced_run(
        strategy,
        tasks=30,
        seed=seed,
        gpp_fraction=0.5,
        discard_after_s=discard_after_s,
    )
    assert sim.tracer.checker.events_checked == len(events)
    submits = sum(1 for e in events if e.kind == "submit")
    discards = sum(1 for e in events if e.kind == "discard")
    completes = sum(1 for e in events if e.kind == "complete")
    assert submits == 30
    assert discards + completes == 30  # this grid leaves nothing pending


@settings(max_examples=10, deadline=None)
@given(
    strategy=st.sampled_from([n for n in STRATEGY_NAMES if n != "gpp-only"]),
    seed=st.integers(min_value=0, max_value=1_000),
    leave_at=st.floats(min_value=0.5, max_value=5.0),
)
def test_checker_clean_under_node_departure(strategy, seed, leave_at):
    sim, events = traced_run(
        strategy, tasks=25, seed=seed, gpp_fraction=0.5, leave_at=leave_at
    )
    assert any(e.kind == "node-leave" for e in events)
    assert sim.tracer.checker.events_checked == len(events)
    assert verify_trace(events) == len(events)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    drop=st.sampled_from(["submit", "dispatch", "start", "complete"]),
    victim=st.integers(min_value=0, max_value=10_000),
)
def test_dropping_any_lifecycle_event_is_rejected(seed, drop, victim):
    _, events = traced_run("hybrid-cost", tasks=15, seed=seed, gpp_fraction=0.5)
    indices = [i for i, e in enumerate(events) if e.kind == drop]
    assert indices  # every lifecycle kind occurs in a fully drained run
    corrupted = list(events)
    del corrupted[indices[victim % len(indices)]]
    with pytest.raises(InvariantViolation):
        verify_trace(corrupted)
        # Dropping a terminal event only shows up at quiescence.
        checker = TraceInvariantChecker()
        for e in corrupted:
            checker.emit(e)
        checker.assert_quiescent()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000),
       victim=st.integers(min_value=0, max_value=10_000))
def test_swapping_adjacent_task_events_is_rejected(seed, victim):
    """Reordering a task's dispatch before its submit breaks causality."""
    _, events = traced_run("fcfs", tasks=15, seed=seed, gpp_fraction=0.5)
    pairs = [
        i
        for i, e in enumerate(events[:-1])
        if e.kind == "submit" and events[i + 1].kind == "dispatch"
        and e.key == events[i + 1].key
    ]
    if not pairs:  # pragma: no cover - depends on draw
        return
    i = pairs[victim % len(pairs)]
    corrupted = list(events)
    corrupted[i], corrupted[i + 1] = corrupted[i + 1], corrupted[i]
    with pytest.raises(InvariantViolation):
        verify_trace(corrupted)
