"""Property-based battery for the online SLO monitor.

Randomized objective bundles (all four kinds, tenant/priority scopes,
random windows and budgets) run against randomized admission policies
and fault schedules on both event engines.  Three invariants:

* **Pairing** -- every ``slo-alert-fire`` has a matching resolve and
  every ``slo-breach`` begin a matching end in the finalized trace
  (checked both by counting and by the online checker's
  ``assert_slo_closed``), and the report's counters agree with the
  event stream exactly.
* **Bounded results** -- attainment and error-budget-remaining are in
  ``[0, 1]``, breach seconds are non-negative and never exceed the
  simulated horizon.
* **Observation-only** -- stripping ``slo-*`` events from an armed
  run's canonical trace reproduces the unarmed run byte-for-byte, and
  the two engines agree on the armed trace byte-for-byte (alert
  timing depends on event order, so this is a real behavioral lock).
"""

from hypothesis import given, settings, strategies as st

from repro.sim.admission import AdmissionSpec, BrownoutSpec, QueueBoundSpec
from repro.sim.experiment import ExperimentSpec, run_experiment
from repro.sim.faults import FaultSpec
from repro.sim.slo import OBJECTIVE_KINDS, SLOObjective, SLOSpec
from repro.sim.tracing import (
    InMemorySink,
    TraceInvariantChecker,
    Tracer,
    canonical_events,
)

SLO_KINDS = frozenset({"slo-breach", "slo-alert-fire", "slo-alert-resolve"})


@st.composite
def slo_specs(draw):
    count = draw(st.integers(1, 4))
    objectives = []
    for i in range(count):
        kind = draw(st.sampled_from(OBJECTIVE_KINDS))
        target = draw({
            "latency": st.floats(0.05, 5.0),
            "throughput": st.floats(0.1, 20.0),
            "availability": st.floats(0.5, 1.0),
            "queue-depth": st.floats(0.0, 16.0),
        }[kind])
        objectives.append(SLOObjective(
            kind, target, name=f"obj{i}",
            metric=draw(st.sampled_from(("turnaround", "wait"))),
            percentile=draw(st.floats(50.0, 99.0)),
            window_s=draw(st.floats(0.5, 20.0)),
            tenant=draw(st.sampled_from(("", "tenant0", "tenant1"))),
            priority=draw(st.sampled_from((None, 0, 1))),
            budget_fraction=draw(st.floats(0.01, 0.5)),
            burn_threshold=draw(st.floats(0.5, 2.0)),
        ))
    return SLOSpec(objectives=tuple(objectives))


admission_specs = st.one_of(
    st.none(),
    st.builds(
        AdmissionSpec,
        queue=st.one_of(st.none(), st.builds(
            QueueBoundSpec, max_pending=st.integers(1, 12),
        )),
        brownout=st.one_of(st.none(), st.builds(
            BrownoutSpec,
            enter_pending=st.integers(8, 20),
            exit_pending=st.integers(0, 7),
            dwell_s=st.floats(0.1, 1.5),
        )),
    ),
)

fault_specs = st.one_of(
    st.none(),
    st.builds(
        FaultSpec,
        crash_rate_per_s=st.floats(0.0, 0.08),
        downtime_range_s=st.just((2.0, 8.0)),
        config_fault_prob=st.floats(0.0, 0.4),
        seu_rate_per_s=st.floats(0.0, 0.1),
        horizon_s=st.just(40.0),
    ),
)


def run_monitored(slo, admission, faults, seed, tasks, engine):
    """One seeded bursty multi-tenant run with the monitor armed;
    returns (report, checker, raw events)."""
    spec = ExperimentSpec(
        tasks=tasks, configurations=4, arrival_rate_per_s=8.0,
        area_range=(2_000, 14_000), gpp_fraction=0.3, seed=seed,
        engine=engine, tenants=3, low_priority_fraction=0.3,
        faults=faults, admission=admission, slo=slo,
    )
    checker = TraceInvariantChecker()
    sink = InMemorySink()
    report = run_experiment(spec, tracer=Tracer(checker, sink)).report
    return report, checker, list(sink.events)


def canonical_lines(events, *, strip_slo=False):
    events = canonical_events(list(events))
    if strip_slo:
        events = [e for e in events if e.kind not in SLO_KINDS]
    return [e.to_json() for e in events]


@given(
    slo=slo_specs(),
    admission=admission_specs,
    faults=fault_specs,
    seed=st.integers(0, 2**32 - 1),
    tasks=st.integers(1, 20),
    engine=st.sampled_from(["heap", "calendar"]),
)
@settings(max_examples=20, deadline=None)
def test_alert_pairing_and_bounded_results(
    slo, admission, faults, seed, tasks, engine
):
    report, checker, events = run_monitored(
        slo, admission, faults, seed, tasks, engine
    )
    # The online checker's closure invariant after finalize.
    checker.assert_slo_closed()
    # Per-objective pairing, recounted independently from the stream.
    for obj in slo.objectives:
        mine = [e for e in events if e.kind in SLO_KINDS
                and e.payload.get("objective") == obj.name]
        begins = sum(1 for e in mine if e.kind == "slo-breach"
                     and e.payload.get("action") == "begin")
        ends = sum(1 for e in mine if e.kind == "slo-breach"
                   and e.payload.get("action") == "end")
        fires = sum(1 for e in mine if e.kind == "slo-alert-fire")
        resolves = sum(1 for e in mine if e.kind == "slo-alert-resolve")
        assert begins == ends, obj.name
        assert fires == resolves, obj.name
    # Report counters agree with the event stream exactly.
    assert report.slo_objectives == len(slo.objectives)
    assert report.slo_breaches == sum(
        1 for e in events if e.kind == "slo-breach"
        and e.payload.get("action") == "begin"
    )
    assert report.slo_alerts_fired == sum(
        1 for e in events if e.kind == "slo-alert-fire"
    )
    assert report.slo_alerts_resolved == report.slo_alerts_fired
    # Bounded results for every objective.
    names = {o.name for o in slo.objectives}
    assert set(report.slo_attainment) == names
    for name in names:
        assert 0.0 <= report.slo_attainment[name] <= 1.0
        assert 0.0 <= report.slo_error_budget_remaining[name] <= 1.0
        assert 0.0 <= report.slo_breach_seconds[name] <= report.horizon_s + 1e-9
    assert set(report.slo_violated) <= names


@given(
    slo=slo_specs(),
    admission=admission_specs,
    faults=fault_specs,
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=10, deadline=None)
def test_armed_monitor_is_observation_only(slo, admission, faults, seed):
    """Stripping slo-* events from the armed trace reproduces the
    unarmed run byte-for-byte: the monitor never perturbs simulated
    behavior, whatever is armed alongside it."""
    *_, armed = run_monitored(slo, admission, faults, seed, 12, "heap")
    *_, unarmed = run_monitored(None, admission, faults, seed, 12, "heap")
    assert canonical_lines(armed, strip_slo=True) == canonical_lines(unarmed)


@given(
    slo=slo_specs(),
    admission=admission_specs,
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=10, deadline=None)
def test_engines_agree_on_armed_traces(slo, admission, seed):
    """The calendar engine must replay the heap engine's armed run
    byte-for-byte *including* the slo-* events -- breach and alert
    timing depend on observation order, so agreement here proves the
    monitor sees the identical event sequence on both engines."""
    *_, heap = run_monitored(slo, admission, None, seed, 12, "heap")
    *_, calendar = run_monitored(slo, admission, None, seed, 12, "calendar")
    assert canonical_lines(heap) == canonical_lines(calendar)
