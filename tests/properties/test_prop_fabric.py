"""Property-based tests for the fabric model.

Invariant under any legal operation sequence: region areas are
conserved, at most one configuration per region, and the available/
free slice accounting always equals the sum over region states.
"""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.hardware.bitstream import Bitstream
from repro.hardware.catalog import device_by_model
from repro.hardware.fabric import Fabric, FabricError, RegionState

DEVICE = device_by_model("XC5VLX110")


@settings(max_examples=30, deadline=None)
@given(regions=st.integers(min_value=1, max_value=16))
def test_partition_conserves_area(regions):
    fabric = Fabric.for_device(DEVICE, regions=regions)
    assert sum(r.slices for r in fabric.regions) == DEVICE.slices
    assert fabric.available_slices == DEVICE.slices


class FabricMachine(RuleBasedStateMachine):
    """Drive a 4-region fabric through random legal transitions."""

    def __init__(self):
        super().__init__()
        self.fabric = Fabric.for_device(DEVICE, regions=4)
        self.counter = 0

    def _bitstream(self, slices: int, name: str) -> Bitstream:
        self.counter += 1
        return Bitstream(
            bitstream_id=self.counter,
            target_model=DEVICE.model,
            size_bytes=DEVICE.bitstream_size_bytes(slices),
            required_slices=slices,
            implements=name,
        )

    @rule(idx=st.integers(min_value=0, max_value=3), frac=st.floats(min_value=0.1, max_value=1.0))
    def reconfigure(self, idx, frac):
        region = self.fabric.regions[idx]
        slices = max(1, int(region.slices * frac))
        bs = self._bitstream(slices, f"fn{self.counter % 3}")
        if region.is_available:
            self.fabric.begin_reconfiguration(region, bs)
            self.fabric.finish_reconfiguration(region)
        else:
            try:
                self.fabric.begin_reconfiguration(region, bs)
                raise AssertionError("reconfigured an unavailable region")
            except FabricError:
                pass

    @rule(idx=st.integers(min_value=0, max_value=3))
    def occupy(self, idx):
        region = self.fabric.regions[idx]
        if region.state is RegionState.CONFIGURED:
            self.fabric.occupy(region)
        else:
            try:
                self.fabric.occupy(region)
                raise AssertionError("occupied a non-configured region")
            except FabricError:
                pass

    @rule(idx=st.integers(min_value=0, max_value=3))
    def vacate(self, idx):
        region = self.fabric.regions[idx]
        if region.state is RegionState.BUSY:
            self.fabric.vacate(region)
        else:
            try:
                self.fabric.vacate(region)
                raise AssertionError("vacated a non-busy region")
            except FabricError:
                pass

    @rule(idx=st.integers(min_value=0, max_value=3))
    def clear(self, idx):
        region = self.fabric.regions[idx]
        if region.state is not RegionState.BUSY:
            self.fabric.clear(region)

    @invariant()
    def area_conserved(self):
        assert sum(r.slices for r in self.fabric.regions) == DEVICE.slices

    @invariant()
    def accounting_matches_states(self):
        available = sum(r.slices for r in self.fabric.regions if r.is_available)
        free = sum(
            r.slices for r in self.fabric.regions if r.state is RegionState.FREE
        )
        assert self.fabric.available_slices == available
        assert self.fabric.free_slices == free
        assert free <= available <= self.fabric.total_slices

    @invariant()
    def busy_regions_hold_configurations(self):
        for region in self.fabric.regions:
            if region.state in (RegionState.BUSY, RegionState.CONFIGURED):
                assert region.configuration is not None
            if region.state is RegionState.FREE:
                assert region.configuration is None

    @invariant()
    def resident_list_matches_regions(self):
        resident = self.fabric.resident_configurations()
        holders = [r for r in self.fabric.regions if r.configuration is not None]
        assert len(resident) == len(holders)


TestFabricStateMachine = FabricMachine.TestCase
