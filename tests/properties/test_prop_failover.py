"""Property-based tests for control-plane fault tolerance.

The headline invariant extends PR 7's exact conservation over the
failover path: whatever control-plane faults fire -- RMS crashes, gray
failures, heartbeat loss, correlated node-crash bursts -- and whatever
failover policy is armed (none, detection-only, replicated with
leases), every submission still reaches exactly one terminal state::

    submitted == completed + failed + discarded + shed

with **zero tasks lost**: an orphaned placement is re-queued, never
dropped.  Checked both from the report and from the online trace
ledger, on both event engines, with admission control riding along.
Determinism rides along too: the only randomness the failover layer
can introduce (heartbeat-loss draws) lives on its own fault stream, so
identically-seeded runs replay identical traces.
"""

from hypothesis import given, settings, strategies as st

from repro.core.node import Node
from repro.grid.network import Network
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.sim.admission import AdmissionSpec, QueueBoundSpec
from repro.sim.failover import FailoverSpec, HeartbeatSpec
from repro.sim.faults import FaultInjector, FaultSpec, RetryPolicy
from repro.sim.simulator import DReAMSim
from repro.sim.tracing import (
    InMemorySink,
    TraceInvariantChecker,
    Tracer,
    canonical_events,
)
from repro.sim.workload import (
    ConfigurationPool,
    PoissonArrivals,
    SyntheticWorkload,
    WorkloadSpec,
)

heartbeat_specs = st.builds(
    HeartbeatSpec,
    interval_s=st.floats(0.25, 1.0),
    suspect_after=st.floats(1.5, 4.0),
    # Strictly above any suspect_after drawn, so validation holds by
    # construction.
    confirm_after=st.floats(4.5, 9.0),
    ewma_alpha=st.floats(0.1, 1.0),
    min_samples=st.integers(1, 4),
)

#: Leases must exceed the heartbeat interval (validated); drawing from
#: (1.5, 8.0) against intervals capped at 1.0 keeps specs valid.
failover_specs = st.builds(
    FailoverSpec,
    heartbeat=st.one_of(st.none(), heartbeat_specs),
    standbys=st.integers(0, 2),
    takeover_delay_s=st.floats(0.0, 1.0),
    lease_s=st.one_of(st.none(), st.floats(1.5, 8.0)),
)

#: Control-plane chaos: RMS crashes and gray failures, lost
#: heartbeats, plus the classic node crashes and correlated bursts.
control_plane_faults = st.builds(
    FaultSpec,
    crash_rate_per_s=st.floats(0.0, 0.06),
    downtime_range_s=st.just((2.0, 8.0)),
    config_fault_prob=st.floats(0.0, 0.3),
    rms_crash_rate_per_s=st.floats(0.0, 0.08),
    rms_downtime_range_s=st.just((2.0, 6.0)),
    rms_gray_rate_per_s=st.floats(0.0, 0.05),
    rms_gray_duration_range_s=st.just((1.0, 4.0)),
    heartbeat_loss_prob=st.floats(0.0, 0.2),
    burst_rate_per_s=st.floats(0.0, 0.02),
    burst_size=st.integers(1, 2),
    horizon_s=st.just(40.0),
)

#: A slim admission layer so backpressure and failover compose.
admission_specs = st.one_of(
    st.none(),
    st.builds(
        AdmissionSpec,
        queue=st.builds(
            QueueBoundSpec,
            max_pending=st.integers(4, 16),
            defer=st.booleans(),
        ),
    ),
)


def run_chaos_burst(failover, faults, admission, seed, tasks, engine):
    """One seeded bursty run over a 2-node hybrid grid with
    control-plane chaos armed; returns (report, checker, lines)."""
    network = Network.fully_connected([0, 1])
    rms = ResourceManagementSystem(network=network)
    for node_id in range(2):
        node = Node(node_id=node_id)
        node.add_gpp(GPPSpec(cpu_model=f"cpu{node_id}", mips=1_500))
        node.add_rpe(device_by_model("XC5VLX155"), regions=2)
        rms.register_node(node)
    pool = ConfigurationPool(4, area_range=(2_000, 12_000), seed=seed)
    pool.populate_repository(
        rms.virtualization.repository,
        [rpe.device for node in rms.nodes for rpe in node.rpes],
    )
    workload = SyntheticWorkload(
        WorkloadSpec(
            task_count=tasks,
            gpp_fraction=0.5,
            required_time_range_s=(0.2, 1.5),
            low_priority_fraction=0.4,
        ),
        pool,
        PoissonArrivals(rate_per_s=8.0),
        seed=seed,
    )
    checker = TraceInvariantChecker()
    sink = InMemorySink()
    sim = DReAMSim(
        rms,
        engine=engine,
        tracer=Tracer(checker, sink),
        faults=FaultInjector(faults, seed=seed) if faults is not None else None,
        retry=RetryPolicy(backoff_base_s=0.2),
        admission=admission,
        failover=failover,
    )
    sim.submit_workload(workload.generate())
    report = sim.run()
    lines = [e.to_json() for e in canonical_events(list(sink.events))]
    return report, checker, lines


@given(
    failover=st.one_of(st.none(), failover_specs),
    faults=control_plane_faults,
    admission=admission_specs,
    seed=st.integers(0, 2**32 - 1),
    tasks=st.integers(1, 24),
    engine=st.sampled_from(["heap", "calendar"]),
)
@settings(max_examples=25, deadline=None)
def test_conservation_holds_under_control_plane_chaos(
    failover, faults, admission, seed, tasks, engine
):
    report, checker, _ = run_chaos_burst(
        failover, faults, admission, seed, tasks, engine
    )
    # Exact accounting, from the report...
    assert (
        report.completed + report.failed + report.discarded + report.shed
        == tasks
    )
    # ... zero tasks stranded: orphan recovery re-queues, never drops.
    assert report.pending == 0
    # ... and independently from the online trace ledger.
    checker.assert_quiescent()
    checker.assert_no_lost_tasks()
    checker.assert_conservation()
    assert checker.conservation()["submitted"] == tasks
    # Every orphan was recovered (the counters are two views of the
    # same ledger and must agree).
    assert report.orphans_recovered == report.orphaned_tasks
    # Feature-off implies metric-zero.
    if failover is None or not failover.enabled:
        assert report.failovers == 0
        assert report.false_suspicions == 0
        assert report.leases_expired == 0
    if failover is None or failover.standbys == 0:
        assert report.failovers == 0
    if faults.rms_crash_rate_per_s == 0 and faults.rms_gray_rate_per_s == 0:
        assert report.rms_crashes == 0
        assert report.rms_gray_events == 0
        assert report.control_plane_downtime_s == 0.0
    assert report.control_plane_downtime_s >= 0.0
    assert report.detection_latency_p95_s >= report.detection_latency_p50_s


@given(
    failover=failover_specs,
    faults=control_plane_faults,
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=10, deadline=None)
def test_identical_chaos_runs_reproduce_traces(failover, faults, seed):
    *_, first = run_chaos_burst(failover, faults, None, seed, 12, "heap")
    *_, second = run_chaos_burst(failover, faults, None, seed, 12, "heap")
    assert first == second


@given(
    failover=failover_specs,
    faults=control_plane_faults,
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=10, deadline=None)
def test_engines_agree_under_failover(failover, faults, seed):
    """The calendar engine must replay the heap engine's failover runs
    byte-for-byte -- detection, promotion, and lease expiry all depend
    on event order, so this is a real behavioral lock."""
    *_, heap = run_chaos_burst(failover, faults, None, seed, 12, "heap")
    *_, calendar = run_chaos_burst(failover, faults, None, seed, 12, "calendar")
    assert heap == calendar
