"""Property-based tests for the discrete-event engine."""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import SimulationEngine


@settings(max_examples=80, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
def test_events_fire_in_nondecreasing_time(delays):
    engine = SimulationEngine()
    fired: list[float] = []
    for d in delays:
        engine.schedule(d, lambda: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert engine.now == max(delays)


@settings(max_examples=60, deadline=None)
@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=2, max_size=30),
    cancel_mask=st.lists(st.booleans(), min_size=2, max_size=30),
)
def test_cancelled_events_never_fire(delays, cancel_mask):
    engine = SimulationEngine()
    fired: list[int] = []
    handles = [
        engine.schedule(d, lambda i=i: fired.append(i)) for i, d in enumerate(delays)
    ]
    for handle, cancel in zip(handles, cancel_mask):
        if cancel:
            handle.cancel()
    engine.run()
    cancelled = {i for i, c in enumerate(zip(cancel_mask, delays)) if cancel_mask[i]}
    assert set(fired).isdisjoint(cancelled)
    expected = {i for i in range(len(delays)) if i >= len(cancel_mask) or not cancel_mask[i]}
    assert set(fired) == expected


@settings(max_examples=60, deadline=None)
@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=30),
    until=st.floats(min_value=0.0, max_value=60.0),
)
def test_run_until_is_a_clean_cut(delays, until):
    engine = SimulationEngine()
    fired: list[float] = []
    for d in delays:
        engine.schedule(d, lambda d=d: fired.append(d))
    engine.run(until=until)
    assert all(d <= until for d in fired)
    assert engine.pending_events == sum(1 for d in delays if d > until)
    assert engine.now == until or (engine.now <= until and not delays)
