"""Property-based tests for the discrete-event engines.

The original single-engine properties now run against both the heap
and the calendar queue; on top of those, a differential battery drives
random schedule/batch/cancel/run programs through the two engines and
requires identical firing orders, clocks, and event counts.  The
calendar queue earns its place by being *indistinguishable*, not just
fast.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import ENGINES, make_engine

ENGINE_NAMES = sorted(ENGINES)

pytestmark = pytest.mark.parametrize("engine_name", ENGINE_NAMES)


@settings(max_examples=80, deadline=None)
@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40))
def test_events_fire_in_nondecreasing_time(engine_name, delays):
    engine = make_engine(engine_name)
    fired: list[float] = []
    for d in delays:
        engine.schedule(d, lambda: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert engine.now == max(delays)


@settings(max_examples=60, deadline=None)
@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=2, max_size=30),
    cancel_mask=st.lists(st.booleans(), min_size=2, max_size=30),
)
def test_cancelled_events_never_fire(engine_name, delays, cancel_mask):
    engine = make_engine(engine_name)
    fired: list[int] = []
    handles = [
        engine.schedule(d, lambda i=i: fired.append(i)) for i, d in enumerate(delays)
    ]
    for handle, cancel in zip(handles, cancel_mask):
        if cancel:
            handle.cancel()
    engine.run()
    cancelled = {i for i, c in enumerate(zip(cancel_mask, delays)) if cancel_mask[i]}
    assert set(fired).isdisjoint(cancelled)
    expected = {i for i in range(len(delays)) if i >= len(cancel_mask) or not cancel_mask[i]}
    assert set(fired) == expected


@settings(max_examples=60, deadline=None)
@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=30),
    until=st.floats(min_value=0.0, max_value=60.0),
)
def test_run_until_is_a_clean_cut(engine_name, delays, until):
    engine = make_engine(engine_name)
    fired: list[float] = []
    for d in delays:
        engine.schedule(d, lambda d=d: fired.append(d))
    engine.run(until=until)
    assert all(d <= until for d in fired)
    assert engine.pending_events == sum(1 for d in delays if d > until)
    assert engine.now == until or (engine.now <= until and not delays)


# ----------------------------------------------------------------------
# Differential battery: heap vs calendar on random programs
# ----------------------------------------------------------------------

_DELAY = st.floats(min_value=0.0, max_value=50.0)

#: One program instruction.  Every operation the simulator performs on
#: an engine is representable: single scheduling, bulk scheduling with
#: and without handles, cancellation, bounded runs, single steps.
_OP = st.one_of(
    st.tuples(st.just("schedule"), _DELAY),
    st.tuples(
        st.just("batch"),
        st.lists(_DELAY, min_size=0, max_size=8),
        st.booleans(),
    ),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10_000)),
    st.tuples(st.just("run_until"), st.floats(min_value=0.0, max_value=60.0)),
    st.tuples(st.just("step")),
)


def _execute(engine_name: str, program):
    """Run *program* on a fresh engine; return its observable history.

    Each scheduled event carries a unique tag, so the fired list pins
    the exact (time, seq) order -- equal-time events included.
    """
    eng = make_engine(engine_name)
    fired: list[tuple[int, float]] = []
    handles: list = []
    next_tag = [0]

    def cb(tag: int):
        return lambda: fired.append((tag, eng.now))

    for op in program:
        kind = op[0]
        if kind == "schedule":
            tag = next_tag[0]
            next_tag[0] += 1
            handles.append(eng.schedule(op[1], cb(tag)))
        elif kind == "batch":
            delays, want_handles = op[1], op[2]
            times = [eng.now + d for d in delays]
            tags = range(next_tag[0], next_tag[0] + len(delays))
            next_tag[0] += len(delays)
            out = eng.schedule_batch(
                times, [cb(t) for t in tags], handles=want_handles
            )
            if want_handles and out:
                handles.extend(out)
        elif kind == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif kind == "run_until":
            eng.run(until=eng.now + op[1])
        elif kind == "step":
            eng.step()
    eng.run()
    return fired, eng.now, eng.processed_events, eng.pending_events


@settings(max_examples=200, deadline=None)
@given(program=st.lists(_OP, min_size=1, max_size=25))
def test_engines_agree_on_random_programs(engine_name, program):
    """THE differential lock: every engine replays any program with
    the exact firing order, final clock, and event counts of the
    reference heap engine."""
    got = _execute(engine_name, program)
    want = _execute("heap", program)
    assert got[0] == want[0], "firing order diverged"
    assert got[1] == want[1], "final clock diverged"
    assert got[2] == want[2], "processed_events diverged"
    assert got[3] == want[3], "pending_events diverged"
