"""Property-based tests for the adaptive resilience layer.

Two headline invariants, whatever the seed draws:

* **An open breaker never receives a placement.**  Replayed offline
  from the trace (independent of the online checker's bookkeeping):
  between a ``quarantine``/open and the matching close, the only thing
  that may lift the embargo is an explicit sanctioned ``probe``.
* **No task is ever lost**, even with every resilience mechanism armed
  at once -- deadlines failing tasks, checkpoints shrinking them,
  replicas racing them.  Terminal accounting stays exact and the
  online invariant checker stays satisfied.
"""

from hypothesis import given, settings, strategies as st

from repro.core.node import Node
from repro.grid.health import HealthPolicy
from repro.grid.network import Network
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.sim.faults import FaultInjector, FaultSpec, RetryPolicy
from repro.sim.resilience import (
    CheckpointSpec,
    DeadlineSpec,
    ResilienceSpec,
    SpeculationSpec,
)
from repro.sim.simulator import DReAMSim
from repro.sim.tracing import InMemorySink, TraceInvariantChecker, Tracer, canonical_events
from repro.sim.workload import (
    ConfigurationPool,
    PoissonArrivals,
    SyntheticWorkload,
    WorkloadSpec,
)

fault_specs = st.builds(
    FaultSpec,
    crash_rate_per_s=st.floats(0.0, 0.08),
    downtime_range_s=st.just((2.0, 8.0)),
    config_fault_prob=st.floats(0.0, 0.4),
    seu_rate_per_s=st.floats(0.0, 0.1),
    link_fault_rate_per_s=st.floats(0.0, 0.08),
    degrade_factor=st.floats(0.05, 1.0),
    horizon_s=st.just(60.0),
)

health_policies = st.builds(
    HealthPolicy,
    ewma_alpha=st.floats(0.2, 0.9),
    open_threshold=st.floats(0.3, 0.9),
    min_events=st.integers(1, 4),
    open_duration_s=st.floats(2.0, 15.0),
    half_open_probes=st.integers(1, 2),
    close_after=st.integers(1, 3),
)

#: soft factors top out below the hard floors, so hard >= soft holds.
deadline_specs = st.builds(
    DeadlineSpec,
    soft_factor=st.floats(2.0, 6.0),
    hard_factor=st.floats(8.0, 30.0),
    slack_s=st.floats(0.0, 2.0),
    reschedule=st.booleans(),
)

resilience_specs = st.builds(
    ResilienceSpec,
    breaker=st.one_of(st.none(), health_policies),
    deadlines=st.one_of(st.none(), deadline_specs),
    checkpoint=st.one_of(
        st.none(),
        st.builds(
            CheckpointSpec,
            interval_s=st.floats(0.1, 1.0),
            overhead_s=st.floats(0.0, 0.05),
        ),
    ),
    speculation=st.one_of(
        st.none(),
        st.builds(SpeculationSpec, slowdown_factor=st.floats(1.2, 3.0)),
    ),
)


def run_resilient_chaos(faults, resilience, seed, tasks):
    """One seeded chaotic run with the resilience layer armed over a
    2-node hybrid grid; returns (report, checker, events, lines)."""
    network = Network.fully_connected([0, 1])
    rms = ResourceManagementSystem(network=network)
    for node_id in range(2):
        node = Node(node_id=node_id)
        node.add_gpp(GPPSpec(cpu_model=f"cpu{node_id}", mips=1_500))
        node.add_rpe(device_by_model("XC5VLX155"), regions=2)
        rms.register_node(node)
    pool = ConfigurationPool(4, area_range=(2_000, 12_000), seed=seed)
    pool.populate_repository(
        rms.virtualization.repository,
        [rpe.device for node in rms.nodes for rpe in node.rpes],
    )
    workload = SyntheticWorkload(
        WorkloadSpec(task_count=tasks, gpp_fraction=0.5,
                     required_time_range_s=(0.2, 1.5)),
        pool,
        PoissonArrivals(rate_per_s=2.0),
        seed=seed,
    )
    checker = TraceInvariantChecker()
    sink = InMemorySink()
    sim = DReAMSim(
        rms,
        tracer=Tracer(checker, sink),
        faults=FaultInjector(faults, seed=seed),
        retry=RetryPolicy(backoff_base_s=0.2),
        resilience=resilience,
    )
    sim.submit_workload(workload.generate())
    report = sim.run()
    events = list(sink.events)
    lines = [e.to_json() for e in canonical_events(events)]
    return report, checker, events, lines


def assert_open_breaker_never_dispatched(events):
    """Offline replay of the quarantine windows: a dispatch may not
    target an embargoed node.  A ``probe`` is the one sanctioned
    exception -- it lifts the embargo for the placement it announces
    (and a re-open re-imposes it)."""
    embargoed: set[int] = set()
    for event in events:
        if event.kind == "quarantine":
            node = event.payload["node"]
            if event.payload["phase"] == "open":
                embargoed.add(node)
            else:
                embargoed.discard(node)
        elif event.kind == "probe":
            embargoed.discard(event.payload["node"])
        elif event.kind == "dispatch":
            node = event.payload["node"]
            assert node not in embargoed, (
                f"dispatch to node {node} at t={event.time} while its "
                f"circuit breaker was open"
            )


@given(
    faults=fault_specs,
    resilience=resilience_specs,
    seed=st.integers(0, 2**32 - 1),
    tasks=st.integers(1, 18),
)
@settings(max_examples=20, deadline=None)
def test_no_task_lost_and_no_dispatch_to_open_breaker(
    faults, resilience, seed, tasks
):
    report, checker, events, _ = run_resilient_chaos(
        faults, resilience, seed, tasks
    )
    # Exact accounting: every submission reaches a terminal state, even
    # when watchdogs fail tasks and replicas race primaries.
    assert report.completed + report.discarded + report.failed == tasks
    assert report.pending == 0
    checker.assert_quiescent()
    checker.assert_no_lost_tasks()
    assert_open_breaker_never_dispatched(events)
    assert 0.0 <= report.availability <= 1.0
    assert report.wasted_work_s >= 0.0
    assert report.wasted_work_saved_s >= 0.0
    assert report.checkpoint_overhead_s >= 0.0
    assert report.speculative_wins <= report.speculative_launches
    assert 0.0 <= report.deadline_miss_rate <= 1.0
    if resilience.breaker is None:
        assert report.quarantines == 0
        assert report.quarantine_time_s == 0.0
    if resilience.deadlines is None:
        assert report.deadline_soft_misses == 0
        assert report.deadline_hard_misses == 0


@given(
    faults=fault_specs,
    resilience=resilience_specs,
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=10, deadline=None)
def test_identical_resilient_runs_reproduce_traces(faults, resilience, seed):
    *_, first = run_resilient_chaos(faults, resilience, seed, tasks=10)
    *_, second = run_resilient_chaos(faults, resilience, seed, tasks=10)
    assert first == second
