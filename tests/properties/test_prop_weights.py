"""Property-based tests for guide-tree sequence weighting."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bioinfo.guidetree import TreeNode, upgma
from repro.bioinfo.weights import sequence_weights


@st.composite
def random_ultrametric_trees(draw):
    """Random binary ultrametric tree over n leaves, built bottom-up by
    UPGMA over a random distance matrix (guaranteed valid)."""
    n = draw(st.integers(min_value=2, max_value=10))
    tri = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        )
    )
    dist = np.zeros((n, n))
    k = 0
    for i in range(n):
        for j in range(i + 1, n):
            dist[i, j] = dist[j, i] = tri[k]
            k += 1
    return upgma(dist), n


@settings(max_examples=60, deadline=None)
@given(data=random_ultrametric_trees())
def test_weights_positive_and_normalized(data):
    tree, n = data
    weights = sequence_weights(tree)
    assert set(weights) == set(range(n))
    assert all(w > 0 for w in weights.values())
    assert np.mean(list(weights.values())) == 1.0 or abs(
        np.mean(list(weights.values())) - 1.0
    ) < 1e-9


@settings(max_examples=60, deadline=None)
@given(data=random_ultrametric_trees())
def test_unnormalized_weights_sum_to_tree_length(data):
    """Each branch's length is fully distributed among the leaves under
    it, so the weights sum to the total branch length of the tree."""
    tree, _ = data
    weights = sequence_weights(tree, normalize=False)

    def total_branch_length(node: TreeNode, parent_height: float) -> float:
        own = max(0.0, parent_height - (0.0 if node.is_leaf else node.height))
        if node.is_leaf:
            return own
        assert node.left is not None and node.right is not None
        return (
            own
            + total_branch_length(node.left, node.height)
            + total_branch_length(node.right, node.height)
        )

    assert sum(weights.values()) == np.float64(
        total_branch_length(tree, tree.height)
    ) or abs(sum(weights.values()) - total_branch_length(tree, tree.height)) < 1e-9


@settings(max_examples=40, deadline=None)
@given(data=random_ultrametric_trees())
def test_sibling_symmetry(data):
    """Two leaves that are direct siblings share every edge above their
    cherry, so their weights are equal."""
    tree, _ = data
    weights = sequence_weights(tree, normalize=False)

    def find_cherries(node: TreeNode):
        if node.is_leaf:
            return
        assert node.left is not None and node.right is not None
        if node.left.is_leaf and node.right.is_leaf:
            yield node.left.leaf, node.right.leaf
        yield from find_cherries(node.left)
        yield from find_cherries(node.right)

    for a, b in find_cherries(tree):
        assert abs(weights[a] - weights[b]) < 1e-9
