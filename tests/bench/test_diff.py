"""Tests for the run-diff engine: loading, tolerances, refusals."""

import json

import pytest

from repro.bench.diff import (
    DEFAULT_METRIC_TOLERANCE,
    DEFAULT_WALL_TOLERANCE,
    Artifact,
    diff_artifacts,
    load_artifact,
)

PROV = {"spec_hash": "abc", "seed": 0, "cache_format": 4}


def make_bench_doc(*, median=0.010, makespan=100.0, mode="quick", env=None):
    return {
        "format": 1,
        "kind": "bench-suite",
        "mode": mode,
        "created_utc": None,
        "env": dict(env) if env else {"git_sha": "deadbeef", "cache_format": 4},
        "cases": [
            {
                "name": "sim-baseline",
                "group": "sim",
                "repeat": 3,
                "warmup": 0,
                "quick": mode == "quick",
                "wall_s": {"median": median, "p10": median, "p90": median,
                           "best": median, "all": [median] * 3},
                "metrics": {"makespan_s": makespan, "completed": 80.0},
            }
        ],
    }


def write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


class TestLoadArtifact:
    def test_bench_suite_namespaces_keys(self, tmp_path):
        art = load_artifact(write(tmp_path, "b.json", make_bench_doc()))
        assert art.flavor == "bench"
        assert art.mode == "quick"
        assert art.wall == {"sim-baseline/wall_median_s": 0.010}
        assert art.metrics == {"sim-baseline/makespan_s": 100.0,
                               "sim-baseline/completed": 80.0}

    def test_report_dump_takes_scalar_fields(self, tmp_path):
        doc = {"kind": "report-dump", "provenance": dict(PROV),
               "report": {"completed": 80, "makespan_s": 41.5,
                          "partial": True, "nodes": [1, 2]}}
        art = load_artifact(write(tmp_path, "r.json", doc))
        assert art.flavor == "report"
        assert art.provenance == PROV
        # booleans and non-scalars are skipped
        assert art.metrics == {"completed": 80.0, "makespan_s": 41.5}

    def test_telemetry_series_value_count_and_checksum(self, tmp_path):
        from repro.sim.telemetry import TELEMETRY_FORMAT

        doc = {
            "format": TELEMETRY_FORMAT,
            "meta": {"provenance": dict(PROV)},
            "series": [
                {"name": "queue", "labels": {}, "points": [[0, 1], [2, 7]]},
                {"name": "util", "labels": {"node": "n0"}, "points": [[1, 0.5]]},
                {"name": "empty", "labels": {}, "points": []},
            ],
        }
        art = load_artifact(write(tmp_path, "t.json", doc))
        assert art.flavor == "telemetry"
        assert art.metrics["queue"] == 7.0
        assert art.metrics["queue/samples"] == 2.0
        assert art.metrics["util{node=n0}"] == 0.5
        assert art.metrics["util{node=n0}/samples"] == 1.0
        assert set(art.metrics) == {
            "queue", "queue/samples", "queue/points_crc32",
            "util{node=n0}", "util{node=n0}/samples",
            "util{node=n0}/points_crc32",
        }

    def test_telemetry_mid_run_divergence_is_caught(self, tmp_path):
        # Same sample count, same final value -- only the trajectory
        # checksum distinguishes the runs.
        from repro.sim.telemetry import TELEMETRY_FORMAT

        def doc(points):
            return {
                "format": TELEMETRY_FORMAT,
                "meta": {"provenance": dict(PROV)},
                "series": [{"name": "queue", "labels": {}, "points": points}],
            }

        a = write(tmp_path, "a.json", doc([[0, 1], [1, 5], [2, 7]]))
        b = write(tmp_path, "b.json", doc([[0, 1], [1, 6], [2, 7]]))
        report = diff_artifacts(a, b)
        assert report.exit_code == 1
        assert [row.key for row in report.failures] == ["queue/points_crc32"]
        # Identical trajectories still diff clean.
        c = write(tmp_path, "c.json", doc([[0, 1], [1, 5], [2, 7]]))
        assert diff_artifacts(a, c).exit_code == 0

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("not json at all")
        with pytest.raises(ValueError, match="cannot read artifact"):
            load_artifact(path)
        path.write_text(json.dumps({"who": "knows"}))
        with pytest.raises(ValueError, match="unrecognized artifact"):
            load_artifact(path)
        with pytest.raises(ValueError, match="cannot read artifact"):
            load_artifact(tmp_path / "missing.json")


class TestDiffVerdicts:
    def test_identical_runs_zero_diff(self, tmp_path):
        a = write(tmp_path, "a.json", make_bench_doc())
        b = write(tmp_path, "b.json", make_bench_doc())
        report = diff_artifacts(a, b)
        assert report.verdict == "ok"
        assert report.exit_code == 0
        assert report.failures == []
        assert all(row.status == "ok" for row in report.rows)
        assert {row.key for row in report.rows} == {
            "sim-baseline/wall_median_s",
            "sim-baseline/makespan_s",
            "sim-baseline/completed",
        }

    def test_wall_tolerance_boundary(self, tmp_path):
        a = write(tmp_path, "a.json", make_bench_doc(median=0.100))
        inside = write(tmp_path, "in.json", make_bench_doc(median=0.120))
        outside = write(tmp_path, "out.json", make_bench_doc(median=0.200))
        assert diff_artifacts(a, inside,
                              wall_tolerance=0.25).exit_code == 0
        report = diff_artifacts(a, outside, wall_tolerance=0.25)
        assert report.exit_code == 1
        (row,) = report.failures
        assert row.status == "regression" and row.kind == "wall"
        assert row.rel_change == pytest.approx(1.0)

    def test_wall_is_one_sided_faster_never_fails(self, tmp_path):
        a = write(tmp_path, "a.json", make_bench_doc(median=0.100))
        b = write(tmp_path, "b.json", make_bench_doc(median=0.020))
        report = diff_artifacts(a, b, wall_tolerance=0.25)
        assert report.exit_code == 0
        (row,) = [r for r in report.rows if r.kind == "wall"]
        assert row.status == "improved"

    def test_metric_drift_is_two_sided(self, tmp_path):
        a = write(tmp_path, "a.json", make_bench_doc(makespan=100.0))
        for drifted in (101.0, 99.0):
            b = write(tmp_path, "b.json", make_bench_doc(makespan=drifted))
            report = diff_artifacts(a, b)
            assert report.exit_code == 1
            (row,) = report.failures
            assert row.status == "drift" and row.key == "sim-baseline/makespan_s"

    def test_tiny_absolute_difference_is_equal(self, tmp_path):
        a = write(tmp_path, "a.json", make_bench_doc(makespan=0.0))
        b = write(tmp_path, "b.json", make_bench_doc(makespan=1e-13))
        assert diff_artifacts(a, b).exit_code == 0

    def test_added_removed_keys_are_informational(self, tmp_path):
        base = make_bench_doc()
        cur = make_bench_doc()
        del cur["cases"][0]["metrics"]["completed"]
        cur["cases"][0]["metrics"]["extra"] = 5.0
        report = diff_artifacts(write(tmp_path, "a.json", base),
                                write(tmp_path, "b.json", cur))
        statuses = {row.key: row.status for row in report.rows}
        assert statuses["sim-baseline/extra"] == "added"
        assert statuses["sim-baseline/completed"] == "removed"
        assert report.exit_code == 0  # never fail on shape changes alone


class TestRefusals:
    def report_art(self, path, prov):
        return Artifact(path=path, flavor="report", provenance=prov,
                        metrics={"completed": 80.0})

    def test_mismatched_provenance_refused(self):
        a = self.report_art("a", dict(PROV))
        b = self.report_art("b", dict(PROV, seed=1))
        report = diff_artifacts(a, b)
        assert report.verdict == "incomparable"
        assert report.exit_code == 2
        assert "seed differs" in report.refusal
        assert "REFUSED" in report.render()

    def test_force_overrides_refusal(self):
        a = self.report_art("a", dict(PROV))
        b = Artifact(path="b", flavor="report",
                     provenance=dict(PROV, seed=1),
                     metrics={"completed": 79.0})
        report = diff_artifacts(a, b, force=True)
        assert report.refusal is None and report.forced
        assert report.exit_code == 1  # the drift is now visible

    def test_missing_provenance_is_allowed(self):
        # Pre-provenance dumps lack a stamp; refusal needs evidence.
        a = self.report_art("a", None)
        b = self.report_art("b", dict(PROV))
        assert diff_artifacts(a, b).exit_code == 0

    def test_flavor_mismatch_refused(self):
        a = Artifact(path="a", flavor="report", provenance=None)
        b = Artifact(path="b", flavor="telemetry", provenance=None)
        report = diff_artifacts(a, b)
        assert report.exit_code == 2
        assert "different flavors" in report.refusal

    def test_bench_mode_mismatch_refused(self, tmp_path):
        a = write(tmp_path, "a.json", make_bench_doc(mode="quick"))
        b = write(tmp_path, "b.json", make_bench_doc(mode="full"))
        report = diff_artifacts(a, b)
        assert report.exit_code == 2
        assert "different modes" in report.refusal


class TestRendering:
    def test_render_hides_ok_rows_unless_verbose(self, tmp_path):
        a = write(tmp_path, "a.json", make_bench_doc())
        b = write(tmp_path, "b.json", make_bench_doc())
        report = diff_artifacts(a, b)
        terse = report.render()
        assert "verdict: ok" in terse
        assert "makespan_s" not in terse
        verbose = report.render(verbose=True)
        assert "makespan_s" in verbose

    def test_to_json_verdict_document(self, tmp_path):
        a = write(tmp_path, "a.json", make_bench_doc(makespan=100.0))
        b = write(tmp_path, "b.json", make_bench_doc(makespan=150.0))
        doc = diff_artifacts(a, b).to_json()
        assert doc["verdict"] == "regression"
        assert doc["exit_code"] == 1
        assert doc["failures"] == 1
        assert doc["metric_tolerance"] == DEFAULT_METRIC_TOLERANCE
        assert doc["wall_tolerance"] == DEFAULT_WALL_TOLERANCE
        failing = [r for r in doc["rows"] if r["status"] == "drift"]
        assert failing and failing[0]["key"] == "sim-baseline/makespan_s"
