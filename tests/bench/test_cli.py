"""End-to-end CLI tests: `repro bench` and `repro diff` exit codes."""

import json

import pytest

from repro.cli import main


def make_bench_doc(*, median=0.010, makespan=100.0, mode="quick"):
    return {
        "format": 1,
        "kind": "bench-suite",
        "mode": mode,
        "created_utc": None,
        "env": {"git_sha": "deadbeef"},
        "cases": [
            {
                "name": "sim-baseline",
                "group": "sim",
                "repeat": 3,
                "warmup": 0,
                "quick": mode == "quick",
                "wall_s": {"median": median, "p10": median, "p90": median,
                           "best": median, "all": [median] * 3},
                "metrics": {"makespan_s": makespan},
            }
        ],
    }


def write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


class TestBenchCommand:
    def test_list_shows_every_case(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "taxonomy-classify" in out
        assert "sim-baseline" in out
        assert "registered bench cases" in out

    def test_run_one_case_and_write_json(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_test.json"
        code = main([
            "bench", "--filter", "taxonomy", "--quick",
            "--repeat", "2", "--warmup", "0", "--json", str(out_path),
        ])
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert doc["kind"] == "bench-suite"
        assert doc["mode"] == "quick"
        assert doc["created_utc"]  # stamped at write time
        assert {"git_sha", "python", "cpu_count", "cache_format"} <= set(doc["env"])
        assert [c["name"] for c in doc["cases"]] == ["taxonomy-classify"]
        out = capsys.readouterr().out
        assert "taxonomy-classify" in out

    def test_unmatched_filter_exits_2(self, capsys):
        assert main(["bench", "--filter", "zzz-no-such-case"]) == 2
        err = capsys.readouterr().err
        assert "no case matches" in err
        assert "--list" in err

    def test_invalid_filter_regex_exits_2(self, capsys):
        assert main(["bench", "--filter", "("]) == 2
        err = capsys.readouterr().err
        assert "invalid --filter regex" in err

    def test_bad_repeat_rejected_at_parser(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--repeat", "0"])
        assert exc.value.code == 2


class TestDiffCommand:
    def test_identical_exits_0(self, tmp_path, capsys):
        a = write(tmp_path, "a.json", make_bench_doc())
        b = write(tmp_path, "b.json", make_bench_doc())
        assert main(["diff", a, b]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_slowdown_exits_1(self, tmp_path, capsys):
        a = write(tmp_path, "a.json", make_bench_doc(median=0.010))
        b = write(tmp_path, "b.json", make_bench_doc(median=0.020))
        verdict_path = tmp_path / "verdict.json"
        code = main(["diff", a, b, "--json", str(verdict_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        verdict = json.loads(verdict_path.read_text())
        assert verdict["verdict"] == "regression"

    def test_loose_wall_tolerance_passes(self, tmp_path):
        a = write(tmp_path, "a.json", make_bench_doc(median=0.010))
        b = write(tmp_path, "b.json", make_bench_doc(median=0.020))
        assert main(["diff", a, b, "--wall-tolerance", "1.5"]) == 0

    def test_metric_drift_exits_1(self, tmp_path, capsys):
        a = write(tmp_path, "a.json", make_bench_doc(makespan=100.0))
        b = write(tmp_path, "b.json", make_bench_doc(makespan=100.1))
        assert main(["diff", a, b]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_mode_mismatch_exits_2(self, tmp_path, capsys):
        a = write(tmp_path, "a.json", make_bench_doc(mode="quick"))
        b = write(tmp_path, "b.json", make_bench_doc(mode="full"))
        assert main(["diff", a, b]) == 2
        assert "REFUSED" in capsys.readouterr().out

    def test_unreadable_artifact_exits_2(self, tmp_path, capsys):
        a = write(tmp_path, "a.json", make_bench_doc())
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert main(["diff", a, str(bad)]) == 2
        assert "repro diff: error" in capsys.readouterr().err

    def test_negative_tolerance_rejected(self, tmp_path):
        a = write(tmp_path, "a.json", make_bench_doc())
        with pytest.raises(SystemExit) as exc:
            main(["diff", a, a, "--wall-tolerance", "-1"])
        assert exc.value.code == 2


class TestSimulateReportDumpDiff:
    """The satellite workflow: simulate --report-json twice, then diff."""

    ARGS = ["simulate", "--tasks", "30", "--rate", "4.0"]

    def run_dump(self, tmp_path, name, seed, capsys):
        path = tmp_path / name
        assert main(self.ARGS + ["--seed", str(seed),
                                 "--report-json", str(path)]) == 0
        capsys.readouterr()  # drop the simulate output
        return str(path)

    def test_same_seed_runs_diff_clean(self, tmp_path, capsys):
        a = self.run_dump(tmp_path, "a.json", 0, capsys)
        b = self.run_dump(tmp_path, "b.json", 0, capsys)
        doc = json.loads(open(a).read())
        assert doc["kind"] == "report-dump"
        assert {"spec_hash", "seed", "cache_format"} <= set(doc["provenance"])
        assert main(["diff", a, b]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_different_seed_refused_then_forced(self, tmp_path, capsys):
        a = self.run_dump(tmp_path, "a.json", 0, capsys)
        b = self.run_dump(tmp_path, "b.json", 1, capsys)
        assert main(["diff", a, b]) == 2
        out = capsys.readouterr().out
        assert "REFUSED" in out and "differs" in out
        # --force compares anyway; different seeds drift in metrics.
        assert main(["diff", a, b, "--force"]) == 1
