"""Tests for the bench harness core: registry, runner, BENCH schema."""

import json

import pytest

from repro.bench.core import (
    BENCH_FORMAT,
    BenchCase,
    all_cases,
    default_bench_filename,
    get_case,
    load_bench_json,
    match_cases,
    run_case,
    run_suite,
    suite_to_json,
    summary_table,
    write_bench_json,
    _percentile,
)


def _case(name="t", metrics=None, group="g", quick_eligible=True):
    return BenchCase(
        name=name, group=group,
        fn=lambda quick: dict(metrics if metrics is not None else {"x": 1.0}),
        quick_eligible=quick_eligible,
    )


class TestRegistry:
    def test_catalog_covers_the_acceptance_floor(self):
        quick = [c for c in all_cases() if c.quick_eligible]
        assert len(quick) >= 10
        names = {c.name for c in all_cases()}
        # The headline simulator cases are all registered.
        assert {"sim-baseline", "grid-scaling", "hybrid-vs-gpponly",
                "fault-chaos", "fabric-allocation"} <= names

    def test_every_case_has_group_and_description(self):
        for case in all_cases():
            assert case.group
            assert case.description

    def test_get_case_unknown_name(self):
        with pytest.raises(KeyError, match="unknown bench case"):
            get_case("no-such-case")

    def test_match_cases_by_name_group_and_quick(self):
        assert [c.name for c in match_cases("taxonomy")] == ["taxonomy-classify"]
        by_group = match_cases("^figures$")
        assert {c.name for c in by_group} == {"table2-mappings",
                                              "taxonomy-classify"}
        assert all(c.quick_eligible for c in match_cases(None, quick=True))
        assert match_cases("zzz-no-match") == []


class TestRunCase:
    def test_stats_over_repetitions(self):
        result = run_case(_case(), repeat=5, warmup=0)
        assert len(result.wall_times_s) == 5
        assert result.best_s == min(result.wall_times_s)
        assert result.p10_s <= result.median_s <= result.p90_s
        assert result.metrics == {"x": 1.0}

    def test_rejects_bad_repeat_and_warmup(self):
        with pytest.raises(ValueError):
            run_case(_case(), repeat=0)
        with pytest.raises(ValueError):
            run_case(_case(), warmup=-1)

    def test_nondeterministic_metrics_raise(self):
        ticker = iter(range(100))
        case = BenchCase(
            name="drift", group="g",
            fn=lambda quick: {"x": float(next(ticker))},
        )
        with pytest.raises(AssertionError, match="nondeterministic"):
            run_case(case, repeat=2, warmup=0)

    def test_non_dict_return_raises(self):
        case = BenchCase(name="bad", group="g", fn=lambda quick: 42)
        with pytest.raises(TypeError, match="metrics dict"):
            case.run_once()

    def test_percentile_interpolates(self):
        assert _percentile([1.0], 90) == 1.0
        assert _percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        assert _percentile([1.0, 2.0], 100) == 2.0


class TestSuiteJson:
    def test_schema_versioned_document(self, tmp_path):
        results = run_suite([_case("a"), _case("b", {"y": 2.0})],
                            repeat=2, warmup=0, quick=True)
        doc = suite_to_json(results, quick=True, created_utc="2026-01-01T00:00:00Z")
        assert doc["format"] == BENCH_FORMAT
        assert doc["kind"] == "bench-suite"
        assert doc["mode"] == "quick"
        # The environment fingerprint carries the run-identity keys.
        assert {"git_sha", "python", "cpu_count", "cache_format",
                "repro_version"} <= set(doc["env"])
        assert [c["name"] for c in doc["cases"]] == ["a", "b"]
        assert {"median", "p10", "p90", "best", "all"} <= set(
            doc["cases"][0]["wall_s"]
        )
        path = tmp_path / "BENCH_test.json"
        write_bench_json(path, doc)
        assert load_bench_json(path) == json.loads(path.read_text())

    def test_load_rejects_wrong_kind_and_format(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"kind": "other"}))
        with pytest.raises(ValueError, match="not a bench suite"):
            load_bench_json(path)
        path.write_text(json.dumps({"kind": "bench-suite", "format": 99}))
        with pytest.raises(ValueError, match="unsupported bench format"):
            load_bench_json(path)

    def test_default_filename_shape(self):
        import time

        name = default_bench_filename(time.gmtime(0))
        assert name == "BENCH_19700101T000000Z.json"

    def test_summary_table_mentions_cases(self):
        results = run_suite([_case("tab-case")], repeat=1, warmup=0)
        table = summary_table(results)
        assert "tab-case" in table and "median ms" in table

    def test_progress_lines(self):
        lines = []
        run_suite([_case("p1"), _case("p2")], repeat=1, warmup=0,
                  progress=lines.append)
        assert len(lines) == 2
        assert lines[0].startswith("[1/2] p1:")


class TestRealCase:
    def test_quick_taxonomy_case_end_to_end(self):
        result = run_case(get_case("taxonomy-classify"), repeat=2, warmup=0,
                          quick=True)
        assert result.metrics["specimens"] > 0
        assert result.metrics["rounds"] == 20  # quick workload selected
        assert result.quick
