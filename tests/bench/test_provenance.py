"""Tests for the provenance stamp and its comparability rules."""

from repro.provenance import (
    COMPARABILITY_KEYS,
    comparability_error,
    environment_fingerprint,
    run_provenance,
)
from repro.sim.experiment import ExperimentSpec


class TestStamp:
    def test_fingerprint_carries_run_identity(self):
        env = environment_fingerprint()
        assert {"git_sha", "git_dirty", "repro_version", "python",
                "cpu_count", "numpy", "cache_format"} <= set(env)
        assert isinstance(env["cache_format"], int)

    def test_stamp_is_deterministic(self):
        # No wall-clock timestamps or hostnames: two stamps from the
        # same tree are byte-identical (golden traces depend on this).
        assert run_provenance() == run_provenance()

    def test_spec_stamp_adds_seed_and_hash(self):
        spec = ExperimentSpec(tasks=10, seed=42)
        stamp = run_provenance(spec)
        assert stamp["seed"] == 42
        assert stamp["spec_hash"]
        # Same spec, same hash; different seed, different hash.
        assert run_provenance(spec)["spec_hash"] == stamp["spec_hash"]
        other = run_provenance(spec.with_(seed=43))
        assert other["spec_hash"] != stamp["spec_hash"]

    def test_report_dump_and_telemetry_carry_the_stamp(self, tmp_path):
        import json

        from repro.sim.experiment import run_experiment
        from repro.sim.metrics import write_report_dump
        from repro.sim.telemetry import TelemetryRegistry

        spec = ExperimentSpec(tasks=10, arrival_rate_per_s=6.0, seed=3)
        telemetry = TelemetryRegistry()
        result = run_experiment(spec, telemetry=telemetry)

        dump_path = tmp_path / "report.json"
        write_report_dump(dump_path, spec, result.report)
        dump = json.loads(dump_path.read_text())
        assert dump["kind"] == "report-dump"
        prov = dump["provenance"]
        assert prov["seed"] == 3 and prov["spec_hash"]

        telem_path = tmp_path / "telemetry.json"
        telemetry.write_json(telem_path)
        telem = json.loads(telem_path.read_text())
        telem_prov = telem["meta"]["provenance"]
        assert telem_prov["spec_hash"] == prov["spec_hash"]
        assert telem_prov["seed"] == 3


class TestComparability:
    BASE = {"spec_hash": "h", "seed": 0, "cache_format": 4}

    def test_equal_stamps_compare(self):
        assert comparability_error(dict(self.BASE), dict(self.BASE),
                                   what="runs") is None

    def test_each_identity_key_gates(self):
        for key in COMPARABILITY_KEYS:
            other = dict(self.BASE, **{key: "different"})
            message = comparability_error(self.BASE, other, what="runs")
            assert message is not None and key in message

    def test_environment_keys_never_refuse(self):
        # Differing SHAs/pythons are what a cross-run diff measures.
        a = dict(self.BASE, git_sha="aaa", python="3.11.1")
        b = dict(self.BASE, git_sha="bbb", python="3.12.0")
        assert comparability_error(a, b, what="runs") is None

    def test_missing_stamp_is_not_evidence(self):
        assert comparability_error(None, self.BASE, what="runs") is None
        assert comparability_error({}, self.BASE, what="runs") is None
        # A key present on only one side does not refuse either.
        partial = {"seed": 0}
        assert comparability_error(partial, self.BASE, what="runs") is None
