"""Unit tests for the Section V case study (Figures 5, 6 and Table II)."""

import pytest

from repro.casestudy.mappings import (
    PAPER_TABLE2,
    admissible_levels,
    enumerate_mappings,
    matches_paper,
    table2,
)
from repro.casestudy.nodes import build_case_study_nodes, case_study_network
from repro.casestudy.tasks import (
    MALIGN_SLICES,
    PAIRALIGN_SLICES,
    TASK3_DEVICE,
    build_case_study_tasks,
)
from repro.core.abstraction import AbstractionLevel
from repro.grid.network import USER_SITE
from repro.hardware.taxonomy import PEClass


@pytest.fixture(scope="module")
def nodes():
    return build_case_study_nodes()


@pytest.fixture(scope="module")
def tasks():
    return build_case_study_tasks()


class TestFigure5Nodes(object):
    def test_node0_composition(self, nodes):
        node0 = nodes[0]
        assert len(node0.gpps) == 2 and len(node0.rpes) == 2
        assert node0.rpes[0].device.model == "XC6VLX365T"

    def test_node1_composition(self, nodes):
        node1 = nodes[1]
        assert len(node1.gpps) == 1 and len(node1.rpes) == 2
        # "Virtex-5 type devices with more than 24,000 slices".
        for rpe in node1.rpes:
            assert rpe.device.family == "virtex-5"
            assert rpe.device.slices > 24_000

    def test_node2_composition(self, nodes):
        node2 = nodes[2]
        assert len(node2.gpps) == 0 and len(node2.rpes) == 1
        assert node2.rpes[0].device.family == "virtex-5"
        assert node2.rpes[0].device.slices > 30_790

    def test_rpes_start_idle_and_unconfigured(self, nodes):
        # Figure 5: "both RPEs are currently available and idle ... not
        # configured with any processor configuration".
        for node in nodes:
            for rpe in node.rpes:
                assert rpe.fabric.resident_configurations() == []
                assert rpe.state.value == "idle"

    def test_network_reaches_all_nodes(self):
        net = case_study_network()
        for node_id in (0, 1, 2):
            assert net.has_route(USER_SITE, node_id)


class TestFigure6Tasks:
    def test_task0_is_gpp_class(self, tasks):
        assert tasks[0].exec_req.node_type is PEClass.GPP
        assert tasks[0].abstraction_level is AbstractionLevel.SOFTWARE_ONLY

    def test_task1_requires_malign_slices(self, tasks):
        req = tasks[1].exec_req
        assert req.node_type is PEClass.RPE
        assert any(
            getattr(c, "value", None) == MALIGN_SLICES and c.key == "slices"
            for c in req.constraints
        )

    def test_task2_requires_pairalign_slices(self, tasks):
        req = tasks[2].exec_req
        assert any(
            getattr(c, "value", None) == PAIRALIGN_SLICES and c.key == "slices"
            for c in req.constraints
        )

    def test_task3_pins_device_and_ships_bitstream(self, tasks):
        req = tasks[3].exec_req
        assert any(getattr(c, "value", None) == TASK3_DEVICE for c in req.constraints)
        assert req.artifacts.bitstream is not None
        assert req.artifacts.bitstream.target_model == TASK3_DEVICE

    def test_task_graph_edges(self, tasks):
        # Task_1 and Task_2 consume Task_0's outputs.
        assert tasks[1].predecessor_ids == frozenset({0})
        assert tasks[2].predecessor_ids == frozenset({0})

    def test_slice_overrides(self):
        custom = build_case_study_tasks(pairalign_slices=40_000, malign_slices=20_000)
        assert any(
            getattr(c, "value", None) == 40_000 for c in custom[2].exec_req.constraints
        )


class TestTableII:
    def test_exact_reproduction(self, tasks, nodes):
        assert matches_paper(tasks, nodes)

    def test_row_contents(self, tasks, nodes):
        mappings = enumerate_mappings(tasks, nodes)
        for task_id, expected in PAPER_TABLE2.items():
            assert sorted(mappings[task_id]) == sorted(expected), f"Task_{task_id}"

    def test_abstraction_level_column(self, tasks, nodes):
        rows = {row.task_id: row for row in table2(tasks, nodes)}
        assert rows[0].levels == (
            AbstractionLevel.SOFTWARE_ONLY,
            AbstractionLevel.PREDETERMINED_HW,
        )
        assert rows[1].levels == (
            AbstractionLevel.USER_DEFINED_HW,
            AbstractionLevel.DEVICE_SPECIFIC_HW,
        )
        assert rows[2].levels == rows[1].levels
        assert rows[3].levels == (AbstractionLevel.DEVICE_SPECIFIC_HW,)

    def test_row_formatting(self, tasks, nodes):
        text = table2(tasks, nodes)[0].format()
        assert text.startswith("Task_0:")
        assert "GPP_0 <-> Node_0" in text

    def test_mutating_grid_changes_mappings(self, tasks):
        # Sanity: the table is derived, not hard-coded.  Removing
        # Node_2's RPE must drop it from Task_1/Task_2 rows.
        nodes = build_case_study_nodes()
        nodes[2].remove_rpe(nodes[2].rpes[0].resource_id)
        mappings = enumerate_mappings(tasks, nodes)
        assert "RPE_0 <-> Node_2" not in mappings[1]
        assert "RPE_0 <-> Node_2" not in mappings[2]
        assert not matches_paper(tasks, nodes)

    def test_admissible_levels_for_bitstream_only_task(self, tasks):
        assert admissible_levels(tasks[3]) == (AbstractionLevel.DEVICE_SPECIFIC_HW,)
