"""End-to-end test of the Section V methodology."""

import pytest

from repro.casestudy.pipeline import run_case_study


@pytest.fixture(scope="module")
def outcome():
    # Small family: the pipeline's *structure* is under test, not the
    # profile percentages (those are benched with a realistic size).
    return run_case_study(family_size=8, sequence_length=60, seed=0)


class TestCaseStudyPipeline:
    def test_pairalign_dominates_profile(self, outcome):
        assert outcome.pairalign_pct > 50.0
        assert outcome.pairalign_pct > outcome.malign_pct

    def test_top10_has_known_kernels(self, outcome):
        names = {row.name for row in outcome.profile_rows}
        assert "pairalign" in names or "_wavefront" in names
        assert any("malign" in n or "pdiff" in n for n in names)

    def test_quipu_anchors_reproduced(self, outcome):
        assert outcome.pairalign_slices == 30_790
        assert outcome.malign_slices == 18_707

    def test_table2_matches_paper(self, outcome):
        assert outcome.matches_paper_table2

    def test_all_four_tasks_execute(self, outcome):
        assert outcome.simulation.completed == 4
        assert outcome.simulation.discarded == 0
        kinds = outcome.simulation.tasks_by_pe_kind
        assert kinds.get("GPP", 0) == 1
        assert kinds.get("RPE", 0) == 3

    def test_profiler_left_no_patches(self, outcome):
        import importlib

        pa = importlib.import_module("repro.bioinfo.pairalign")
        assert pa.pairalign.__module__ == "repro.bioinfo.pairalign"
        assert not hasattr(pa.pairalign, "__wrapped__")
