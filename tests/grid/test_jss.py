"""Unit tests for the Job Submission System."""

import pytest

from repro.core.abstraction import AbstractionLevel, SubmissionError
from repro.core.application import Par, Seq, Application
from repro.core.execreq import Artifacts, ExecReq
from repro.core.task import simple_task
from repro.grid.jss import JobStatus, JobSubmissionSystem
from repro.hardware.bitstream import Bitstream
from repro.hardware.taxonomy import PEClass


def sw_task(task_id=0, code="print()"):
    return simple_task(
        task_id,
        ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code=code)),
        1.0,
    )


class TestValidation:
    def test_accepts_valid_software_task(self):
        jss = JobSubmissionSystem()
        job = jss.submit_task(sw_task())
        assert job.status is JobStatus.SUBMITTED
        assert job.records[0].level is AbstractionLevel.SOFTWARE_ONLY

    def test_rejects_missing_code(self):
        jss = JobSubmissionSystem()
        with pytest.raises(SubmissionError):
            jss.submit_task(sw_task(code=""))
        assert jss.rejected == 1
        assert jss.jobs == {}

    def test_explicit_level_enforced(self):
        # A task claiming DEVICE_SPECIFIC must actually carry a bitstream.
        task = simple_task(
            0,
            ExecReq(node_type=PEClass.RPE, artifacts=Artifacts(application_code="x")),
            1.0,
        )
        import dataclasses

        task = dataclasses.replace(
            task, abstraction_level=AbstractionLevel.DEVICE_SPECIFIC_HW
        )
        jss = JobSubmissionSystem()
        with pytest.raises(SubmissionError, match="bitstream"):
            jss.submit_task(task)

    def test_level_inferred_from_artifacts(self):
        bs = Bitstream(1, "XC5VLX110", 100, 50, implements="f")
        task = simple_task(
            0,
            ExecReq(
                node_type=PEClass.RPE,
                artifacts=Artifacts(application_code="x", bitstream=bs),
            ),
            1.0,
        )
        jss = JobSubmissionSystem()
        job = jss.submit_task(task)
        assert job.records[0].level is AbstractionLevel.DEVICE_SPECIFIC_HW


class TestGraphSubmission:
    def test_atomic_admission(self):
        jss = JobSubmissionSystem()
        good, bad = sw_task(0), sw_task(1, code="")
        with pytest.raises(SubmissionError):
            jss.submit_graph([good, bad])
        assert jss.jobs == {}  # nothing admitted

    def test_graph_attached(self):
        jss = JobSubmissionSystem()
        t0 = sw_task(0)
        t1 = simple_task(
            1,
            ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="y")),
            1.0,
            sources=(0,),
            in_bytes=8,
        )
        job = jss.submit_graph([t0, t1])
        assert job.graph is not None
        assert job.graph.predecessors(1) == {0}


class TestApplicationSubmission:
    def test_task_set_must_match_clauses(self):
        jss = JobSubmissionSystem()
        app = Application(clauses=(Seq(1), Par(2, 3)))
        with pytest.raises(SubmissionError, match="missing task bodies"):
            jss.submit_application(app, {1: sw_task(1)})
        with pytest.raises(SubmissionError, match="unreferenced"):
            jss.submit_application(
                app, {i: sw_task(i) for i in (1, 2, 3, 4)}
            )

    def test_valid_application(self):
        jss = JobSubmissionSystem()
        app = Application(clauses=(Seq(1), Par(2, 3)))
        job = jss.submit_application(app, {i: sw_task(i) for i in (1, 2, 3)})
        assert job.application is app
        assert len(job.records) == 3


class TestStatusTracking:
    def test_lifecycle_rollup(self):
        jss = JobSubmissionSystem()
        job = jss.submit_graph([sw_task(0), sw_task(1)])
        assert job.status is JobStatus.SUBMITTED
        jss.mark_started(job.job_id, 0, time=1.0, node_id=3)
        assert job.status is JobStatus.RUNNING
        jss.mark_completed(job.job_id, 0, time=2.0)
        assert job.status is JobStatus.RUNNING  # task 1 outstanding
        jss.mark_started(job.job_id, 1, time=2.0, node_id=3)
        jss.mark_completed(job.job_id, 1, time=4.0)
        assert job.status is JobStatus.COMPLETED
        assert job.record(0).turnaround_s == pytest.approx(2.0)

    def test_failure_dominates(self):
        jss = JobSubmissionSystem()
        job = jss.submit_graph([sw_task(0), sw_task(1)])
        jss.mark_completed(job.job_id, 0, time=1.0)
        jss.mark_failed(job.job_id, 1, time=1.0)
        assert job.status is JobStatus.FAILED

    def test_unknown_ids_raise(self):
        jss = JobSubmissionSystem()
        job = jss.submit_task(sw_task(0))
        with pytest.raises(KeyError):
            jss.job(999)
        with pytest.raises(KeyError):
            job.record(999)
