"""Unit tests for the Figure 9 user services."""

import pytest

from repro.core.abstraction import AbstractionLevel
from repro.core.execreq import Artifacts, ExecReq, MinValue
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.jss import JobStatus
from repro.grid.rms import ResourceManagementSystem, SchedulingError
from repro.grid.services import (
    CostModel,
    EventKind,
    Monitor,
    MonitorEvent,
    QoSRequirement,
    QoSViolation,
    UserServices,
)
from repro.hardware.bitstream import Bitstream
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.taxonomy import PEClass


def build_services():
    node = Node(node_id=0)
    node.add_gpp(GPPSpec(cpu_model="Xeon", mips=2_000))
    node.add_rpe(device_by_model("XC5VLX155"))
    rms = ResourceManagementSystem()
    rms.register_node(node)
    return UserServices(rms)


def sw_task(task_id=0, t=1.0):
    return simple_task(
        task_id,
        ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
        t,
    )


def hw_task(task_id=1):
    bs = Bitstream(50, "XC5VLX155", 1_000_000, 9_000, implements="fft")
    return simple_task(
        task_id,
        ExecReq(
            node_type=PEClass.RPE,
            constraints=(MinValue("slices", 9_000),),
            artifacts=Artifacts(application_code="x", bitstream=bs),
        ),
        1.0,
        function="fft",
    )


class TestQoSRequirement:
    def test_validation(self):
        with pytest.raises(ValueError):
            QoSRequirement(deadline_s=0)
        with pytest.raises(ValueError):
            QoSRequirement(budget=-1)


class TestCostModel:
    def test_rpe_seconds_cost_more_than_gpp(self):
        model = CostModel()
        assert model.rate_for(PEClass.RPE) > model.rate_for(PEClass.GPP)

    def test_reconfiguration_fee_charged(self):
        svc = build_services()
        placement = svc.rms.plan_placement(hw_task())
        cost = svc.cost_model.placement_cost(placement)
        no_fee = CostModel(reconfiguration_fee=0.0).placement_cost(placement)
        assert cost == pytest.approx(no_fee + CostModel().reconfiguration_fee)


class TestSubmitExecuteQuery:
    def test_minimum_service_loop(self):
        # Figure 9: "submit his application tasks and get results".
        svc = build_services()
        job = svc.submit(sw_task())
        makespan = svc.execute(job)
        assert makespan > 0
        response = svc.query(job.job_id)
        assert response.status is JobStatus.COMPLETED
        assert response.completed_tasks == response.total_tasks == 1
        assert response.accrued_cost > 0
        kinds = [e.kind for e in response.events]
        assert kinds == [
            EventKind.SUBMITTED,
            EventKind.DISPATCHED,
            EventKind.COMPLETED,
        ]

    def test_deadline_violation_detected(self):
        svc = build_services()
        job = svc.submit(sw_task(t=10.0), QoSRequirement(deadline_s=0.001))
        with pytest.raises(QoSViolation, match="deadline"):
            svc.execute(job)

    def test_budget_violation_detected(self):
        svc = build_services()
        job = svc.submit(sw_task(t=10.0), QoSRequirement(budget=0.0001))
        with pytest.raises(QoSViolation, match="budget"):
            svc.execute(job)

    def test_abstraction_floor_admission(self):
        svc = build_services()
        qos = QoSRequirement(max_abstraction_level=AbstractionLevel.SOFTWARE_ONLY)
        # A device-specific submission is *below* the SOFTWARE_ONLY floor.
        with pytest.raises(QoSViolation, match="below"):
            svc.submit(hw_task(), qos)
        # The floor admits its own level.
        svc.submit(sw_task(), qos)

    def test_unplaceable_task_fails_loudly(self):
        svc = build_services()
        impossible = simple_task(
            9,
            ExecReq(
                node_type=PEClass.GPP,
                constraints=(MinValue("mips", 10**9),),
                artifacts=Artifacts(application_code="x"),
            ),
            1.0,
        )
        job = svc.submit(impossible)
        with pytest.raises(SchedulingError):
            svc.execute(job)
        assert svc.query(job.job_id).status is JobStatus.FAILED


class TestMonitor:
    def test_histories_and_counts(self):
        monitor = Monitor()
        monitor.record(MonitorEvent(0.0, EventKind.SUBMITTED, job_id=1, task_id=0))
        monitor.record(MonitorEvent(1.0, EventKind.STARTED, job_id=1, task_id=0, node_id=2))
        monitor.record(MonitorEvent(2.0, EventKind.NODE_LEFT, node_id=2))
        assert len(monitor.task_history(1, 0)) == 2
        assert len(monitor.node_events(2)) == 2
        assert monitor.counts()[EventKind.SUBMITTED] == 1
