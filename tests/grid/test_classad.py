"""Unit tests for the ClassAd matchmaking language."""

import pytest

from repro.grid.classad import (
    ClassAd,
    MatchError,
    UNDEFINED,
    best_match,
    evaluate,
    symmetric_match,
)


class TestEvaluator:
    def test_comparisons(self):
        assert evaluate("target.slices >= 18707", target={"slices": 24_320}) is True
        assert evaluate("target.slices >= 18707", target={"slices": 17_280}) is False

    def test_arithmetic(self):
        assert evaluate("2 * target.x + 1", target={"x": 5}) == 11
        assert evaluate("10 / 4") == 2.5
        assert evaluate("10 // 4") == 2
        assert evaluate("-target.x", target={"x": 3}) == -3

    def test_membership(self):
        ctx = {"os": "Linux"}
        assert evaluate("target.os in ('Linux', 'Solaris')", target=ctx) is True
        assert evaluate("target.os not in ('Windows',)", target=ctx) is True

    def test_boolean_logic(self):
        my = {"a": 1}
        assert evaluate("my.a == 1 and not (my.a == 2)", my=my) is True
        assert evaluate("my.a == 2 or my.a == 1", my=my) is True

    def test_chained_comparison(self):
        assert evaluate("1 < target.x < 10", target={"x": 5}) is True
        assert evaluate("1 < target.x < 10", target={"x": 20}) is False

    def test_my_and_target_scopes(self):
        result = evaluate(
            "my.budget >= target.price", my={"budget": 10}, target={"price": 7}
        )
        assert result is True


class TestUndefinedSemantics:
    def test_missing_attribute_is_undefined(self):
        assert evaluate("target.nope", target={}) is UNDEFINED

    def test_comparison_with_undefined_is_undefined(self):
        assert evaluate("target.nope > 3", target={}) is UNDEFINED

    def test_and_short_circuits_false(self):
        assert evaluate("target.x == 1 and target.nope > 3", target={"x": 2}) is False

    def test_or_short_circuits_true(self):
        assert evaluate("target.x == 1 or target.nope > 3", target={"x": 1}) is True

    def test_undefined_propagates_through_and(self):
        assert evaluate("target.x == 1 and target.nope > 3", target={"x": 1}) is UNDEFINED

    def test_type_mismatch_is_undefined(self):
        assert evaluate("target.x > 3", target={"x": "hello"}) is UNDEFINED

    def test_undefined_is_falsy(self):
        assert not UNDEFINED


class TestSafety:
    @pytest.mark.parametrize(
        "expr",
        [
            "__import__('os')",
            "open('/etc/passwd')",
            "target.x.__class__",
            "[x for x in target]",
            "lambda: 1",
            "target.f()",
        ],
    )
    def test_dangerous_syntax_rejected(self, expr):
        with pytest.raises(MatchError):
            evaluate(expr, target={"x": 1, "f": print})

    def test_unknown_name_rejected(self):
        with pytest.raises(MatchError, match="unknown name"):
            evaluate("os.path", target={})

    def test_syntax_error_reported(self):
        with pytest.raises(MatchError, match="syntax"):
            evaluate("target.x >=", target={})

    def test_division_by_zero_reported(self):
        with pytest.raises(MatchError, match="arithmetic"):
            evaluate("1 / 0")


class TestMatching:
    def rpe_offer(self, slices=24_320):
        return ClassAd(
            attributes={"pe_class": "RPE", "slices": slices, "price": 3.0},
            requirements="target.budget >= my.price",
        )

    def task_request(self, min_slices=18_707, budget=5.0):
        return ClassAd(
            attributes={"budget": budget},
            requirements=f"target.pe_class == 'RPE' and target.slices >= {min_slices}",
            rank="target.slices",
        )

    def test_symmetric_match(self):
        assert symmetric_match(self.task_request(), self.rpe_offer())

    def test_one_sided_failure(self):
        poor = self.task_request(budget=1.0)
        assert poor.matches(self.rpe_offer())  # task accepts the RPE
        assert not self.rpe_offer().matches(poor)  # RPE rejects the budget
        assert not symmetric_match(poor, self.rpe_offer())

    def test_undefined_requirement_is_no_match(self):
        vague = ClassAd(attributes={}, requirements="target.nonexistent > 1")
        assert not vague.matches(self.rpe_offer())

    def test_best_match_uses_rank(self):
        small = self.rpe_offer(slices=20_000)
        big = self.rpe_offer(slices=50_000)
        assert best_match(self.task_request(), [small, big]) is big

    def test_best_match_none_when_nothing_fits(self):
        assert best_match(self.task_request(min_slices=99_999), [self.rpe_offer()]) is None

    def test_rank_defaults_to_zero_on_undefined(self):
        req = ClassAd(attributes={}, requirements="True", rank="target.nope")
        assert req.rank_of(self.rpe_offer()) == 0.0

    def test_tie_prefers_first_offer(self):
        a, b = self.rpe_offer(), self.rpe_offer()
        request = ClassAd(attributes={"budget": 5.0}, requirements="True", rank="1")
        assert best_match(request, [a, b]) is a
