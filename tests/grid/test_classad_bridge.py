"""Tests for the ClassAd bridge, cross-validated against the typed
matchmaker on the paper's own Table II."""

import pytest

from repro.casestudy.mappings import PAPER_TABLE2
from repro.casestudy.nodes import build_case_study_nodes
from repro.casestudy.tasks import build_case_study_tasks
from repro.core.execreq import Equals, ExecReq, Exists, MaxValue, MinValue, OneOf
from repro.core.matching import find_candidates
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.classad import evaluate
from repro.grid.classad_bridge import (
    classad_candidates,
    compile_constraint,
    compile_execreq,
    node_to_ads,
    task_to_ad,
)
from repro.hardware.gpp import GPPSpec
from repro.hardware.softcore import RHO_VEX_4ISSUE
from repro.hardware.catalog import device_by_model
from repro.hardware.taxonomy import PEClass


class TestConstraintCompilation:
    CAPS = {"slices": 24_320, "device_family": "virtex-5", "os": "Linux", "partial_reconfig": True}

    @pytest.mark.parametrize(
        "constraint",
        [
            MinValue("slices", 18_707),
            MinValue("slices", 30_790),
            MaxValue("slices", 30_000),
            Equals("device_family", "virtex-5"),
            Equals("device_family", "virtex-6"),
            OneOf("os", ("Linux", "Solaris")),
            OneOf("os", ("Windows",)),
            Exists("partial_reconfig"),
            Exists("nonexistent"),
        ],
    )
    def test_compiled_form_agrees_with_typed_form(self, constraint):
        expr = compile_constraint(constraint)
        typed = constraint.satisfied_by(self.CAPS)
        classad = evaluate(expr, target=self.CAPS) is True
        assert typed == classad, expr

    def test_execreq_gpp_accepts_softcore(self):
        req = ExecReq(node_type=PEClass.GPP)
        expr = compile_execreq(req)
        assert evaluate(expr, target={"pe_class": "SOFTCORE"}) is True
        assert evaluate(expr, target={"pe_class": "RPE"}) is False


class TestNodeAds:
    def test_one_ad_per_pe(self):
        node = Node(node_id=0)
        node.add_gpp(GPPSpec(cpu_model="Xeon", mips=1_000))
        node.add_rpe(device_by_model("XC5VLX155"), regions=2)
        node.rpes[0].host_softcore(RHO_VEX_4ISSUE)
        ads = node_to_ads(node)
        kinds = [c.kind for _, c in ads]
        assert kinds.count(PEClass.GPP) == 1
        assert kinds.count(PEClass.RPE) == 1
        assert kinds.count(PEClass.SOFTCORE) == 1

    def test_task_ad_carries_identity(self):
        task = simple_task(7, ExecReq(node_type=PEClass.GPP), 1.0, function="fft")
        ad = task_to_ad(task)
        assert ad.attributes["task_id"] == 7
        assert ad.attributes["function"] == "fft"


class TestTable2CrossValidation:
    def test_classad_path_reproduces_table2(self):
        tasks = build_case_study_tasks()
        nodes = build_case_study_nodes()
        for task_id, expected in PAPER_TABLE2.items():
            labels = [c.label for c in classad_candidates(tasks[task_id], nodes)]
            assert sorted(labels) == sorted(expected), f"Task_{task_id}"

    def test_agrees_with_typed_matcher_everywhere(self):
        tasks = build_case_study_tasks()
        nodes = build_case_study_nodes()
        for task in tasks.values():
            typed = {c.label for c in find_candidates(task, nodes)}
            via_ads = {c.label for c in classad_candidates(task, nodes)}
            assert typed == via_ads, task.task_id
