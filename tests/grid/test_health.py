"""Unit tests for node health scoring and circuit breakers."""

import pytest

from repro.grid.health import BreakerState, HealthPolicy, HealthTracker


def make_tracker(**overrides) -> HealthTracker:
    defaults = dict(
        ewma_alpha=0.5,
        open_threshold=0.6,
        min_events=2,
        open_duration_s=10.0,
        half_open_probes=1,
        close_after=2,
    )
    defaults.update(overrides)
    return HealthTracker(HealthPolicy(**defaults))


def trip(tracker: HealthTracker, node_id: int = 0, now: float = 0.0) -> None:
    """Drive *node_id*'s breaker OPEN with consecutive failures."""
    for _ in range(10):
        if tracker.record_failure(node_id, now) == "open":
            return
    raise AssertionError("breaker never tripped")


class TestPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"open_threshold": 0.0},
            {"min_events": 0},
            {"open_duration_s": 0.0},
            {"half_open_probes": 0},
            {"close_after": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            HealthPolicy(**kwargs)


class TestScoring:
    def test_ewma_update(self):
        tracker = make_tracker(min_events=100)  # never trips
        tracker.record_failure(0, 0.0)
        assert tracker.node(0).score == pytest.approx(0.5)
        tracker.record_failure(0, 1.0)
        assert tracker.node(0).score == pytest.approx(0.75)
        tracker.record_success(0, 2.0)
        assert tracker.node(0).score == pytest.approx(0.375)

    def test_min_events_guards_cold_nodes(self):
        tracker = make_tracker(min_events=3)
        # Score after 1 failure (0.5) is below 0.6; after two it is
        # 0.75 >= 0.6, but min_events=3 still holds the breaker.
        assert tracker.record_failure(0, 0.0) is None
        assert tracker.record_failure(0, 0.0) is None
        assert tracker.state(0, 0.0) is BreakerState.CLOSED
        assert tracker.record_failure(0, 0.0) == "open"

    def test_success_keeps_breaker_closed(self):
        tracker = make_tracker()
        for t in range(20):
            assert tracker.record_success(0, float(t)) is None
        assert tracker.state(0, 20.0) is BreakerState.CLOSED
        assert tracker.blocked_nodes(20.0) == set()


class TestTripAndQuarantine:
    def test_open_blocks_node(self):
        tracker = make_tracker()
        trip(tracker, now=5.0)
        assert tracker.state(0, 5.0) is BreakerState.OPEN
        assert tracker.is_blocked(0, 5.0)
        assert tracker.blocked_nodes(6.0) == {0}

    def test_other_nodes_unaffected(self):
        tracker = make_tracker()
        tracker.register_node(1)
        trip(tracker, node_id=0)
        assert not tracker.is_blocked(1, 0.0)
        assert tracker.blocked_nodes(0.0) == {0}

    def test_half_open_after_window(self):
        tracker = make_tracker(open_duration_s=10.0)
        trip(tracker, now=0.0)
        assert tracker.state(0, 9.999) is BreakerState.OPEN
        assert tracker.state(0, 10.0) is BreakerState.HALF_OPEN
        # HALF_OPEN with free probe slots is not blocked...
        assert not tracker.is_blocked(0, 10.0)
        assert tracker.is_probation(0, 10.0)
        # ...until the quota is taken.
        tracker.note_probe(0)
        assert tracker.is_blocked(0, 11.0)

    def test_probe_failure_reopens_full_window(self):
        tracker = make_tracker(open_duration_s=10.0)
        trip(tracker, now=0.0)
        tracker.state(0, 10.0)
        tracker.note_probe(0)
        assert tracker.record_failure(0, 12.0, probe=True) == "open"
        assert tracker.state(0, 12.0) is BreakerState.OPEN
        assert tracker.state(0, 21.0) is BreakerState.OPEN  # 12 + 10 > 21
        assert tracker.state(0, 22.0) is BreakerState.HALF_OPEN

    def test_probes_close_breaker(self):
        tracker = make_tracker(close_after=2, open_duration_s=10.0)
        trip(tracker, now=0.0)
        tracker.state(0, 10.0)
        tracker.note_probe(0)
        assert tracker.record_success(0, 11.0, probe=True) is None
        tracker.note_probe(0)
        assert tracker.record_success(0, 12.0, probe=True) == "close"
        assert tracker.state(0, 12.0) is BreakerState.CLOSED
        # Close resets the score: the node starts from a clean slate.
        assert tracker.node(0).score == 0.0

    def test_non_probe_success_does_not_close(self):
        """Stragglers dispatched before the trip complete during
        quarantine without rehabilitating the node."""
        tracker = make_tracker(close_after=1)
        trip(tracker, now=0.0)
        tracker.state(0, 10.0)  # HALF_OPEN
        assert tracker.record_success(0, 11.0, probe=False) is None
        assert tracker.state(0, 11.0) is BreakerState.HALF_OPEN

    def test_abort_probe_returns_slot_without_judgment(self):
        tracker = make_tracker(half_open_probes=1)
        trip(tracker, now=0.0)
        tracker.state(0, 10.0)
        tracker.note_probe(0)
        assert tracker.is_blocked(0, 10.5)
        tracker.abort_probe(0)
        assert not tracker.is_blocked(0, 10.5)
        assert tracker.state(0, 10.5) is BreakerState.HALF_OPEN


class TestAccounting:
    def test_quarantine_time_spans_open_and_half_open(self):
        tracker = make_tracker(open_duration_s=10.0, close_after=1)
        trip(tracker, now=5.0)
        # Still open: accounted against `now`.
        assert tracker.total_quarantine_s(8.0) == pytest.approx(3.0)
        tracker.state(0, 15.0)
        tracker.note_probe(0)
        tracker.record_success(0, 17.0, probe=True)  # closes at 17
        assert tracker.total_quarantine_s(100.0) == pytest.approx(12.0)
        assert tracker.total_quarantine_episodes() == 1

    def test_reopen_during_probation_is_one_episode(self):
        """OPEN -> HALF_OPEN -> OPEN is a single continuous quarantine
        episode, not two."""
        tracker = make_tracker(open_duration_s=10.0)
        trip(tracker, now=0.0)
        tracker.state(0, 10.0)
        tracker.note_probe(0)
        tracker.record_failure(0, 12.0, probe=True)  # re-open
        assert tracker.total_quarantine_episodes() == 1
        assert tracker.total_quarantine_s(20.0) == pytest.approx(20.0)

    def test_register_is_idempotent(self):
        tracker = make_tracker()
        trip(tracker, now=0.0)
        tracker.register_node(0)  # node rejoins after downtime
        assert tracker.state(0, 1.0) is BreakerState.OPEN
