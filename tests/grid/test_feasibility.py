"""Tests for the pre-submission feasibility query (Figure 9)."""

import pytest

from repro.casestudy.mappings import PAPER_TABLE2
from repro.casestudy.nodes import build_case_study_nodes
from repro.casestudy.tasks import build_case_study_tasks
from repro.core.execreq import Artifacts, ExecReq, MinValue
from repro.core.task import simple_task
from repro.grid.rms import ResourceManagementSystem
from repro.grid.services import UserServices
from repro.hardware.taxonomy import PEClass


@pytest.fixture
def services():
    rms = ResourceManagementSystem()
    for node in build_case_study_nodes():
        rms.register_node(node)
    return UserServices(rms)


class TestFeasibilityQuery:
    def test_reproduces_table2_per_task(self, services):
        tasks = build_case_study_tasks()
        for task_id, expected in PAPER_TABLE2.items():
            response = services.feasibility_query(tasks[task_id])
            assert response.feasible
            assert sorted(response.candidate_labels) == sorted(expected)

    def test_estimates_time_for_feasible_task(self, services):
        tasks = build_case_study_tasks()
        response = services.feasibility_query(tasks[0])
        assert response.estimated_time_s is not None
        assert response.estimated_time_s > 0

    def test_infeasible_task_explains_rejections(self, services):
        impossible = simple_task(
            99,
            ExecReq(
                node_type=PEClass.GPP,
                constraints=(MinValue("mips", 10**9),),
                artifacts=Artifacts(application_code="x"),
            ),
            1.0,
        )
        response = services.feasibility_query(impossible)
        assert not response.feasible
        assert response.candidate_labels == ()
        assert response.estimated_time_s is None
        # Every GPP rejection names the failing constraint.
        gpp_rejections = [r for r in response.rejections if r[0].startswith("GPP")]
        assert gpp_rejections
        assert all("mips >= 1000000000" in reason for _, reason in gpp_rejections)

    def test_wrong_pe_class_reported(self, services):
        gpu_task = simple_task(
            98,
            ExecReq(node_type=PEClass.GPU, artifacts=Artifacts(application_code="x")),
            1.0,
        )
        response = services.feasibility_query(gpu_task)
        assert not response.feasible
        assert any("pe_class" in reason for _, reason in response.rejections)
