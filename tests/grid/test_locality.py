"""Tests for data-locality-aware input staging.

The Section V parameter list includes "the time required to send
configuration bitstreams" and, implicitly, task data.  With the
producer's location known, the RMS prices producer->consumer transfers
instead of user->consumer -- so cost-driven strategies co-locate
consumers with their producers when the network makes that worthwhile.
"""

import pytest

from repro.core.execreq import Artifacts, ExecReq
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.network import Link, Network, USER_SITE
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.gpp import GPPSpec
from repro.hardware.taxonomy import PEClass
from repro.scheduling import HybridCostScheduler
from repro.sim.simulator import DReAMSim

MB = 1 << 20


def slow_wan() -> Network:
    """Two sites joined by a slow WAN; the user uplinks to site 0."""
    net = Network()
    # High-latency user uplinks so node-to-node traffic cannot shortcut
    # through the user site: the slow WAN is the only sensible route.
    net.connect(USER_SITE, 0, Link(bandwidth_mbps=100.0, latency_s=0.2))
    net.connect(USER_SITE, 1, Link(bandwidth_mbps=100.0, latency_s=0.2))
    net.connect(0, 1, Link(bandwidth_mbps=2.0, latency_s=0.05))  # slow WAN
    return net


def build_rms():
    rms = ResourceManagementSystem(network=slow_wan(), scheduler=HybridCostScheduler())
    for node_id in (0, 1):
        node = Node(node_id=node_id, name=f"Node_{node_id}")
        node.add_gpp(GPPSpec(cpu_model=f"cpu{node_id}", mips=1_000))
        rms.register_node(node)
    return rms


def gpp_task(task_id, t=1.0, sources=(), in_bytes=0):
    return simple_task(
        task_id,
        ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
        t,
        sources=sources,
        in_bytes=in_bytes,
    )


class TestPricing:
    def test_known_producer_prices_node_to_node(self):
        rms = build_rms()
        consumer = gpp_task(1, sources=(0,), in_bytes=40 * MB)
        candidates = rms.find_candidates(consumer)
        by_node = {c.node_id: c for c in candidates}

        # Producer output on node 0: placing there is free, placing on
        # node 1 pays the slow WAN.
        rms._data_sites = {0: 0}
        try:
            local = rms._price(consumer, by_node[0])
            remote = rms._price(consumer, by_node[1])
        finally:
            rms._data_sites = None
        assert local.transfer_time_s == 0.0
        assert remote.transfer_time_s == pytest.approx(
            rms.network.transfer_time(40 * MB, 0, 1)
        )

    def test_unknown_producer_ships_from_user(self):
        rms = build_rms()
        consumer = gpp_task(1, sources=(0,), in_bytes=40 * MB)
        candidate = rms.find_candidates(consumer)[0]
        placement = rms._price(consumer, candidate)
        assert placement.transfer_time_s == pytest.approx(
            rms.network.transfer_time(40 * MB, USER_SITE, candidate.node_id)
        )

    def test_parallel_streams_take_the_max(self):
        rms = build_rms()
        from repro.core.task import DataIn, DataOut, Task

        consumer = Task(
            task_id=2,
            data_in=(DataIn(0, 0, 40 * MB), DataIn(1, 0, 5 * MB)),
            data_out=(DataOut(0, MB),),
            exec_req=ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
            t_estimated=1.0,
        )
        by_node = {c.node_id: c for c in rms.find_candidates(consumer)}
        rms._data_sites = {0: 0, 1: 1}
        try:
            placement = rms._price(consumer, by_node[1])
        finally:
            rms._data_sites = None
        # The 40 MB edge crosses the WAN; the 5 MB edge is local.
        assert placement.transfer_time_s == pytest.approx(
            rms.network.transfer_time(40 * MB, 0, 1)
        )


class TestSchedulerCoLocation:
    def test_hybrid_follows_the_data(self):
        """Chain A -> B with a huge intermediate: the cost model must
        keep B on A's node rather than pay the WAN."""
        rms = build_rms()
        sim = DReAMSim(rms)
        chain = [
            gpp_task(0, t=1.0),
            gpp_task(1, t=1.0, sources=(0,), in_bytes=100 * MB),
        ]
        job_id = sim.submit_graph(chain)
        sim.run()
        t0 = sim.metrics.tasks[(job_id, 0)]
        t1 = sim.metrics.tasks[(job_id, 1)]
        assert t1.node_id == t0.node_id
        assert t1.transfer_time == 0.0

    def test_colocation_abandoned_when_producer_node_leaves(self):
        rms = build_rms()
        sim = DReAMSim(rms)
        chain = [
            gpp_task(0, t=1.0),
            gpp_task(1, t=1.0, sources=(0,), in_bytes=10 * MB),
        ]
        job_id = sim.submit_graph(chain)
        # Drop whichever node ran T0 the moment it finishes.
        sim.engine.schedule_at(1.5, lambda: None)  # keep clock comparable
        report_mid = sim.run(until=1.2)
        t0 = sim.metrics.tasks[(job_id, 0)]
        leaving = t0.node_id
        sim.schedule_node_leave(1.2, leaving)
        sim.run()
        t1 = sim.metrics.tasks[(job_id, 1)]
        assert t1.finish is not None
        assert t1.node_id != leaving
