"""Unit tests for the virtualization layer."""

import pytest

from repro.core.execreq import Artifacts, ExecReq
from repro.core.node import Node
from repro.core.task import simple_task
from repro.core.abstraction import AbstractionLevel
from repro.grid.virtualizer import (
    BitstreamRepository,
    SoftcoreProvisioner,
    SynthesisService,
    VirtualizationError,
    VirtualizationLayer,
)
from repro.hardware.bitstream import Bitstream, HDLDesign
from repro.hardware.catalog import device_by_model
from repro.hardware.softcore import RHO_VEX_2ISSUE, RHO_VEX_4ISSUE
from repro.hardware.taxonomy import PEClass


def make_design(name="acc", slices=2_000, implements="fft"):
    return HDLDesign(
        name=name, language="VHDL", source_lines=500,
        estimated_slices=slices, implements=implements,
    )


def rpe_node():
    node = Node(node_id=0)
    node.add_rpe(device_by_model("XC5VLX110"), regions=2)
    return node


class TestSynthesisService:
    def test_caches_per_design_device(self):
        service = SynthesisService()
        device = device_by_model("XC5VLX110")
        first = service.synthesize(make_design(), device)
        second = service.synthesize(make_design(), device)
        assert first is second
        assert service.synthesis_runs == 1
        assert service.cache_hits == 1

    def test_different_device_is_a_new_run(self):
        service = SynthesisService()
        service.synthesize(make_design(), device_by_model("XC5VLX110"))
        service.synthesize(make_design(), device_by_model("XC5VLX220"))
        assert service.synthesis_runs == 2

    def test_provider_without_cad_tools_refuses(self):
        # Section III-B3 provider: no CAD tools.
        service = SynthesisService(has_cad_tools=False)
        with pytest.raises(VirtualizationError, match="CAD tools"):
            service.synthesize(make_design(), device_by_model("XC5VLX110"))


class TestBitstreamRepository:
    def bs(self, implements="fft", model="XC5VLX110"):
        return Bitstream(1, model, 1_000, 500, implements=implements)

    def test_put_get(self):
        repo = BitstreamRepository()
        repo.put(self.bs())
        assert repo.get("fft", "XC5VLX110") is not None
        assert repo.get("fft", "XC5VLX220") is None
        assert repo.get("fir", "XC5VLX110") is None

    def test_anonymous_bitstream_rejected(self):
        repo = BitstreamRepository()
        with pytest.raises(ValueError, match="declare"):
            repo.put(Bitstream(1, "XC5VLX110", 1_000, 500))

    def test_for_function_spans_devices(self):
        repo = BitstreamRepository()
        repo.put(self.bs(model="XC5VLX110"))
        repo.put(self.bs(model="XC5VLX220"))
        repo.put(self.bs(implements="fir"))
        assert len(repo.for_function("fft")) == 2
        assert len(repo) == 3


class TestSoftcoreProvisioner:
    def test_provision_hosts_and_prices_reconfig(self):
        prov = SoftcoreProvisioner()
        node = rpe_node()
        region, reconfig_s = prov.provision(node.rpes[0])
        assert reconfig_s > 0
        assert prov.provisioned == 1
        assert node.rpes[0].hosted_softcores[region.region_id].name == "rho-VEX-4issue"

    def test_registry(self):
        prov = SoftcoreProvisioner()
        prov.register(RHO_VEX_2ISSUE)
        assert prov.core("rho-VEX-2issue") is RHO_VEX_2ISSUE
        with pytest.raises(VirtualizationError, match="unknown soft core"):
            prov.core("pentium")


class TestConfigurationPlanning:
    def rpe_task(self, **artifact_kwargs):
        return simple_task(
            1,
            ExecReq(
                node_type=PEClass.RPE,
                artifacts=Artifacts(application_code="x", **artifact_kwargs),
            ),
            1.0,
            function="fft",
        )

    def test_resolution_prefers_resident(self):
        layer = VirtualizationLayer()
        node = rpe_node()
        rpe = node.rpes[0]
        bs = Bitstream(9, rpe.device.model, 1_000, 500, implements="fft")
        region = rpe.fabric.find_placeable(500)
        rpe.fabric.begin_reconfiguration(region, bs)
        rpe.fabric.finish_reconfiguration(region)
        plan = layer.plan_rpe_configuration(self.rpe_task(hdl_design=make_design()), rpe)
        assert not plan.needs_reconfiguration

    def test_user_bitstream_used_directly(self):
        layer = VirtualizationLayer()
        rpe = rpe_node().rpes[0]
        bs = Bitstream(9, rpe.device.model, 1_000, 500, implements="fft")
        plan = layer.plan_rpe_configuration(self.rpe_task(bitstream=bs), rpe)
        assert plan.bitstream is bs
        assert plan.synthesis_time_s == 0.0

    def test_wrong_device_bitstream_rejected(self):
        layer = VirtualizationLayer()
        rpe = rpe_node().rpes[0]
        bs = Bitstream(9, "XC5VLX330", 1_000, 500, implements="fft")
        with pytest.raises(VirtualizationError, match="targets"):
            layer.plan_rpe_configuration(self.rpe_task(bitstream=bs), rpe)

    def test_repository_hit_avoids_synthesis(self):
        layer = VirtualizationLayer()
        rpe = rpe_node().rpes[0]
        cached = Bitstream(9, rpe.device.model, 1_000, 500, implements="fft")
        layer.repository.put(cached)
        plan = layer.plan_rpe_configuration(self.rpe_task(hdl_design=make_design()), rpe)
        assert plan.bitstream is cached
        assert layer.synthesis.synthesis_runs == 0

    def test_hdl_synthesized_without_repo_side_effect(self):
        # Planning is pure: the repository is only written when the RMS
        # commits a placement (cost estimation must not mutate state).
        layer = VirtualizationLayer()
        rpe = rpe_node().rpes[0]
        plan = layer.plan_rpe_configuration(self.rpe_task(hdl_design=make_design()), rpe)
        assert plan.needs_reconfiguration
        assert plan.synthesis_time_s > 0
        assert layer.repository.get("fft", rpe.device.model) is None

    def test_replanning_hdl_hits_synthesis_cache(self):
        layer = VirtualizationLayer()
        rpe = rpe_node().rpes[0]
        task = self.rpe_task(hdl_design=make_design())
        first = layer.plan_rpe_configuration(task, rpe)
        second = layer.plan_rpe_configuration(task, rpe)
        assert first.bitstream is second.bitstream
        assert layer.synthesis.synthesis_runs == 1

    def test_nothing_to_configure_with(self):
        layer = VirtualizationLayer()
        rpe = rpe_node().rpes[0]
        with pytest.raises(VirtualizationError, match="neither"):
            layer.plan_rpe_configuration(self.rpe_task(), rpe)


class TestLevelInference:
    def test_inference_order(self):
        layer = VirtualizationLayer()
        base = dict(application_code="x")
        bs = Bitstream(1, "XC5VLX110", 100, 50, implements="x")

        def task_with(**kwargs):
            return simple_task(
                1,
                ExecReq(node_type=PEClass.RPE, artifacts=Artifacts(**base, **kwargs)),
                1.0,
            )

        assert layer.required_abstraction_level(task_with(bitstream=bs)) is AbstractionLevel.DEVICE_SPECIFIC_HW
        assert layer.required_abstraction_level(task_with(hdl_design=make_design())) is AbstractionLevel.USER_DEFINED_HW
        assert layer.required_abstraction_level(task_with(softcore=RHO_VEX_4ISSUE)) is AbstractionLevel.PREDETERMINED_HW
        assert layer.required_abstraction_level(task_with()) is AbstractionLevel.SOFTWARE_ONLY
