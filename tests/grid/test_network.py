"""Unit tests for the grid network model."""

import pytest

from repro.grid.network import Link, Network, NetworkError, USER_SITE


class TestLink:
    def test_transfer_time_formula(self):
        link = Link(bandwidth_mbps=100.0, latency_s=0.01)
        # 10 MB at 100 MB/s = 0.1 s, plus latency.
        assert link.transfer_time(10_000_000) == pytest.approx(0.11)

    def test_zero_bytes_costs_latency_only(self):
        assert Link(100.0, 0.02).transfer_time(0) == pytest.approx(0.02)

    @pytest.mark.parametrize("kwargs", [dict(bandwidth_mbps=0), dict(latency_s=-1)])
    def test_validation(self, kwargs):
        params = dict(bandwidth_mbps=100.0, latency_s=0.0)
        params.update(kwargs)
        with pytest.raises(ValueError):
            Link(**params)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Link(100.0, 0.0).transfer_time(-1)


class TestTopology:
    def test_fully_connected_has_all_routes(self):
        net = Network.fully_connected([0, 1, 2])
        for a in (0, 1, 2, USER_SITE):
            for b in (0, 1, 2, USER_SITE):
                assert net.has_route(a, b)

    def test_self_link_rejected(self):
        net = Network()
        with pytest.raises(ValueError):
            net.connect(1, 1, Link(100.0, 0.0))

    def test_user_uplink_can_differ(self):
        net = Network.fully_connected(
            [0, 1], bandwidth_mbps=100.0, latency_s=0.001,
            user_bandwidth_mbps=10.0, user_latency_s=0.05,
        )
        size = 10_000_000
        assert net.transfer_time(size, USER_SITE, 0) > net.transfer_time(size, 0, 1)

    def test_remove_site(self):
        net = Network.fully_connected([0, 1])
        net.remove_site(1)
        assert not net.has_route(0, 1)
        assert 1 not in net

    def test_user_site_cannot_be_removed(self):
        with pytest.raises(ValueError):
            Network().remove_site(USER_SITE)

    def test_disconnect(self):
        net = Network()
        net.connect(0, 1, Link(100.0, 0.0))
        net.disconnect(0, 1)
        assert not net.has_route(0, 1)
        with pytest.raises(NetworkError):
            net.disconnect(0, 1)


class TestTransferTimes:
    def test_same_site_is_free(self):
        net = Network.fully_connected([0, 1])
        assert net.transfer_time(10**9, 0, 0) == 0.0

    def test_multi_hop_sums_latency_uses_bottleneck(self):
        net = Network()
        net.connect(0, 1, Link(bandwidth_mbps=100.0, latency_s=0.01))
        net.connect(1, 2, Link(bandwidth_mbps=10.0, latency_s=0.02))
        t = net.transfer_time(10_000_000, 0, 2)
        # latencies 0.01 + 0.02, bottleneck 10 MB/s -> 1 s serialization.
        assert t == pytest.approx(1.03)

    def test_no_route_raises(self):
        net = Network()
        net.connect(0, 1, Link(100.0, 0.0))
        net.connect(2, 3, Link(100.0, 0.0))
        with pytest.raises(NetworkError, match="no route"):
            net.transfer_time(100, 0, 3)

    def test_unknown_site_raises(self):
        net = Network()
        with pytest.raises(NetworkError, match="unknown"):
            net.path(0, 42)

    def test_min_latency_path_chosen(self):
        net = Network()
        net.connect(0, 1, Link(1000.0, 0.5))  # fast but high latency
        net.connect(0, 2, Link(1000.0, 0.01))
        net.connect(2, 1, Link(1000.0, 0.01))
        assert net.path(0, 1) == [0, 2, 1]
