"""Unit tests for the Resource Management System."""

import pytest

from repro.core.execreq import Artifacts, Equals, ExecReq, MinValue
from repro.core.node import Node
from repro.core.state import PEState
from repro.core.task import simple_task
from repro.grid.network import Network
from repro.grid.rms import ResourceManagementSystem, SchedulingError
from repro.hardware.bitstream import Bitstream, HDLDesign
from repro.hardware.catalog import device_by_model
from repro.hardware.fabric import RegionState
from repro.hardware.gpp import GPPSpec
from repro.hardware.softcore import RHO_VEX_4ISSUE
from repro.hardware.taxonomy import PEClass


def build_rms(network=True):
    node = Node(node_id=0, name="Node_0")
    node.add_gpp(GPPSpec(cpu_model="Xeon", mips=2_000))
    node.add_rpe(device_by_model("XC5VLX155"), regions=2)
    net = Network.fully_connected([0], bandwidth_mbps=100.0, latency_s=0.01) if network else None
    rms = ResourceManagementSystem(network=net)
    rms.register_node(node)
    return rms, node


def gpp_task(task_id=0, t=1.0, in_bytes=0):
    return simple_task(
        task_id,
        ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
        t,
        in_bytes=in_bytes,
    )


def rpe_bitstream_task(task_id=1, slices=9_000, function="fft", model="XC5VLX155"):
    bs = Bitstream(task_id + 100, model, 2_000_000, slices, implements=function)
    return simple_task(
        task_id,
        ExecReq(
            node_type=PEClass.RPE,
            constraints=(MinValue("slices", slices),),
            artifacts=Artifacts(application_code="x", bitstream=bs),
        ),
        1.0,
        function=function,
    )


class TestRegistry:
    def test_register_unregister(self):
        rms, node = build_rms()
        assert rms.nodes == [node]
        rms.unregister_node(0)
        assert rms.nodes == []
        with pytest.raises(SchedulingError):
            rms.unregister_node(0)

    def test_double_register_rejected(self):
        rms, node = build_rms()
        with pytest.raises(SchedulingError, match="already"):
            rms.register_node(node)

    def test_status_table(self):
        rms, _ = build_rms()
        status = rms.status()
        assert 0 in status
        assert status[0].idle_gpp_count == 1

    def test_unknown_node_lookup(self):
        rms, _ = build_rms()
        with pytest.raises(SchedulingError):
            rms.node(42)


class TestPricing:
    def test_gpp_exec_time_uses_mips(self):
        rms, _ = build_rms(network=False)
        placement = rms.plan_placement(gpp_task(t=1.0))
        # 1000 MI on a 2000-MIPS GPP.
        assert placement.exec_time_s == pytest.approx(0.5)
        assert placement.transfer_time_s == 0.0

    def test_input_data_priced_over_network(self):
        rms, _ = build_rms()
        placement = rms.plan_placement(gpp_task(in_bytes=10_000_000))
        assert placement.transfer_time_s > 0

    def test_user_bitstream_adds_transfer_and_reconfig(self):
        rms, _ = build_rms()
        placement = rms.plan_placement(rpe_bitstream_task())
        assert placement.reconfig_time_s > 0
        assert placement.transfer_time_s > 0
        assert not placement.reused_configuration
        assert placement.setup_time_s == pytest.approx(
            placement.transfer_time_s + placement.reconfig_time_s
        )

    def test_reuse_zeroes_reconfiguration(self):
        rms, _ = build_rms()
        first = rms.plan_placement(rpe_bitstream_task())
        rms.run_placement(first)
        second = rms.plan_placement(rpe_bitstream_task())
        assert second.reused_configuration
        assert second.reconfig_time_s == 0.0
        assert second.bitstream is None

    def test_partial_reconfiguration_knob(self):
        rms_partial, _ = build_rms()
        rms_full, _ = build_rms()
        rms_full.partial_reconfiguration = False
        p = rms_partial.plan_placement(rpe_bitstream_task())
        f = rms_full.plan_placement(rpe_bitstream_task())
        assert f.reconfig_time_s > p.reconfig_time_s

    def test_synthesis_time_charged_for_hdl(self):
        rms, _ = build_rms()
        hdl = HDLDesign("acc", "VHDL", 500, estimated_slices=5_000, implements="fir")
        task = simple_task(
            2,
            ExecReq(
                node_type=PEClass.RPE,
                artifacts=Artifacts(application_code="x", hdl_design=hdl),
            ),
            1.0,
            function="fir",
        )
        placement = rms.plan_placement(task)
        assert placement.synthesis_time_s > 0

    def test_estimate_cost_matches_placement_total(self):
        rms, _ = build_rms()
        task = gpp_task(in_bytes=1_000_000)
        candidates = rms.find_candidates(task)
        cost = rms.estimate_cost_s(task, candidates[0])
        placement = rms.plan_placement(task)
        assert cost == pytest.approx(placement.total_time_s)


class TestLifecycle:
    def test_gpp_lifecycle(self):
        rms, node = build_rms(network=False)
        placement = rms.plan_placement(gpp_task())
        rms.commit(placement)
        assert node.gpps[0].state is PEState.BUSY
        rms.begin_execution(placement)
        rms.finish_execution(placement)
        assert node.gpps[0].state is PEState.IDLE

    def test_rpe_lifecycle_states(self):
        rms, node = build_rms()
        placement = rms.plan_placement(rpe_bitstream_task())
        rms.commit(placement)
        region = node.rpes[0].fabric.regions[0]
        assert region.state is RegionState.CONFIGURING
        rms.begin_execution(placement)
        assert region.state is RegionState.BUSY
        rms.finish_execution(placement)
        assert region.state is RegionState.CONFIGURED  # resident for reuse

    def test_double_commit_rejected(self):
        rms, _ = build_rms(network=False)
        placement = rms.plan_placement(gpp_task())
        rms.commit(placement)
        with pytest.raises(SchedulingError, match="already committed"):
            rms.commit(placement)
        rms.begin_execution(placement)
        with pytest.raises(SchedulingError, match="already executing"):
            rms.begin_execution(placement)

    def test_execution_requires_commit(self):
        rms, _ = build_rms(network=False)
        placement = rms.plan_placement(gpp_task())
        with pytest.raises(SchedulingError, match="committed"):
            rms.begin_execution(placement)
        with pytest.raises(SchedulingError, match="not executing"):
            rms.finish_execution(placement)

    def test_committed_gpp_not_offered_again(self):
        rms, _ = build_rms(network=False)
        p1 = rms.plan_placement(gpp_task(0))
        rms.commit(p1)
        assert rms.plan_placement(gpp_task(1)) is None

    def test_softcore_provisioning_placement(self):
        rms, node = build_rms(network=False)
        # Occupy the only GPP so the soft-core path is the only option...
        node.gpps[0].assign(99)
        task = simple_task(
            5,
            ExecReq(
                node_type=PEClass.SOFTCORE,
                artifacts=Artifacts(application_code="x", softcore=RHO_VEX_4ISSUE),
            ),
            1.0,
            workload_mi=1_000.0,
        )
        placement = rms.plan_placement(task)
        assert placement is not None
        assert placement.provision_softcore is RHO_VEX_4ISSUE
        assert placement.reconfig_time_s > 0
        total = rms.run_placement(placement)
        assert total > 0
        assert node.rpes[0].hosted_softcores  # core stays resident


class TestSchedulerIntegration:
    def test_custom_scheduler_is_consulted(self):
        calls = []

        class Probe:
            def choose(self, task, candidates, rms):
                calls.append(len(candidates))
                return None

        rms, _ = build_rms(network=False)
        rms.scheduler = Probe()
        assert rms.plan_placement(gpp_task()) is None
        assert calls == [1]
