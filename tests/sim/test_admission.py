"""Overload protection: admission control, backpressure, shedding,
and brownout degradation.

Unit tests drive :class:`AdmissionController` decisions directly (they
are pure functions of time + state, so no simulator is needed);
scenario tests drive :class:`DReAMSim` with hand-built grids, the same
idiom as ``test_resilience.py``.  The acceptance test at the bottom
pins the PR's headline claim: under a 5x flash crowd, the protected
run keeps the queue depth bounded and the admitted-task p95 wait far
below the unprotected baseline -- with exact conservation
(submitted == completed + failed + discarded + shed) on both runs.
"""

import math
from dataclasses import replace

import pytest

from repro.core.execreq import Artifacts, ExecReq, MinValue
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.bitstream import Bitstream
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.taxonomy import PEClass
from repro.sim.admission import (
    ADMISSION_PRESETS,
    ADMIT,
    DEFER,
    SHED,
    AdmissionController,
    AdmissionSpec,
    BrownoutSpec,
    QueueBoundSpec,
    TokenBucketSpec,
    UtilizationSpec,
    grid_occupancy,
)
from repro.sim.experiment import ExperimentSpec, run_experiment
from repro.sim.simulator import DReAMSim
from repro.sim.telemetry import TelemetryRegistry
from repro.sim.tracing import (
    InMemorySink,
    TraceInvariantChecker,
    Tracer,
    canonical_events,
)


def gpp_req():
    return ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x"))


def gpp_task(task_id, t=1.0, **kwargs):
    return simple_task(task_id, gpp_req(), t, **kwargs)


def hw_task(task_id, function="fft", slices=9_000, t=1.0):
    bs = Bitstream(200 + task_id, "XC5VLX155", 1_000_000, slices, implements=function)
    return simple_task(
        task_id,
        ExecReq(
            node_type=PEClass.RPE,
            constraints=(MinValue("slices", slices),),
            artifacts=Artifacts(application_code="x", bitstream=bs),
        ),
        t,
        function=function,
        workload_mi=2_000.0,  # a GPP cost, so stage-2 degradation can rewrite it
    )


def gpp_rms(*, nodes=1, mips=1_000):
    rms = ResourceManagementSystem()
    for node_id in range(nodes):
        node = Node(node_id=node_id)
        node.add_gpp(GPPSpec(cpu_model=f"cpu{node_id}", mips=mips))
        rms.register_node(node)
    return rms


def hybrid_rms():
    rms = ResourceManagementSystem()
    node = Node(node_id=0)
    node.add_rpe(device_by_model("XC5VLX155"), regions=2)
    node.add_gpp(GPPSpec(cpu_model="cpu0", mips=1_000))
    rms.register_node(node)
    return rms


def checked_sim(rms, admission, **kwargs):
    """A simulator with the online invariant checker attached, so every
    scenario also validates its own conservation ledger."""
    tracer = Tracer(TraceInvariantChecker(), InMemorySink())
    return DReAMSim(rms, tracer=tracer, admission=admission, **kwargs), tracer


class TestSpecs:
    def test_queue_bound_validation(self):
        with pytest.raises(ValueError):
            QueueBoundSpec(max_pending=0)
        with pytest.raises(ValueError):
            QueueBoundSpec(defer_delay_s=0.0)
        with pytest.raises(ValueError):
            QueueBoundSpec(defer_delay_s=float("nan"))
        with pytest.raises(ValueError):
            QueueBoundSpec(max_defers=0)

    def test_token_bucket_validation(self):
        with pytest.raises(ValueError):
            TokenBucketSpec(rate_per_s=0.0)
        with pytest.raises(ValueError):
            TokenBucketSpec(rate_per_s=float("inf"))
        with pytest.raises(ValueError):
            TokenBucketSpec(rate_per_s=4.0, burst=0.5)

    def test_utilization_validation(self):
        with pytest.raises(ValueError):
            UtilizationSpec(threshold=0.0)
        with pytest.raises(ValueError):
            UtilizationSpec(threshold=1.5)
        UtilizationSpec(threshold=1.0)  # inclusive upper bound is legal

    def test_brownout_validation(self):
        with pytest.raises(ValueError):
            BrownoutSpec(enter_pending=0)
        with pytest.raises(ValueError):
            BrownoutSpec(enter_pending=10, exit_pending=10)  # hysteresis
        with pytest.raises(ValueError):
            BrownoutSpec(dwell_s=0.0)
        with pytest.raises(ValueError):
            BrownoutSpec(max_stage=4)

    def test_enabled_property(self):
        assert not AdmissionSpec().enabled
        assert AdmissionSpec(queue=QueueBoundSpec()).enabled
        assert AdmissionSpec(brownout=BrownoutSpec()).enabled

    def test_describe_lists_only_armed_policies(self):
        spec = AdmissionSpec(
            queue=QueueBoundSpec(max_pending=10),
            brownout=BrownoutSpec(enter_pending=8, exit_pending=2),
        )
        described = spec.describe()
        assert set(described) == {"queue", "brownout"}
        assert described["queue"]["max_pending"] == 10
        assert AdmissionSpec().describe() == {}

    def test_presets(self):
        assert ADMISSION_PRESETS["none"].enabled is False
        for name in ("bounded", "backpressure", "brownout", "strict"):
            assert ADMISSION_PRESETS[name].enabled, name
        assert ADMISSION_PRESETS["backpressure"].queue.defer is True


class TestControllerQueueAndRate:
    def test_queue_bound_admits_below_and_sheds_at_capacity(self):
        ctl = AdmissionController(AdmissionSpec(queue=QueueBoundSpec(max_pending=2)))
        assert ctl.decide_submit(0.0, 1) == (ADMIT, "")
        assert ctl.decide_submit(0.0, 2) == (SHED, "queue-full")

    def test_defer_then_shed_after_max_defers(self):
        spec = AdmissionSpec(
            queue=QueueBoundSpec(max_pending=1, defer=True, max_defers=2)
        )
        ctl = AdmissionController(spec)
        assert ctl.decide_submit(0.0, 1) == (DEFER, "queue-full")
        assert ctl.decide_reoffer(1, defers=1) == (DEFER, "queue-full")
        assert ctl.decide_reoffer(1, defers=2) == (SHED, "queue-full")
        assert ctl.decide_reoffer(0, defers=2) == (ADMIT, "")

    def test_token_bucket_burst_then_starve_then_refill(self):
        ctl = AdmissionController(
            AdmissionSpec(rate=TokenBucketSpec(rate_per_s=2.0, burst=2.0))
        )
        assert ctl.decide_submit(0.0, 0)[0] == ADMIT
        assert ctl.decide_submit(0.0, 0)[0] == ADMIT
        assert ctl.decide_submit(0.0, 0) == (SHED, "rate-limit")
        # 0.5 s at 2 tokens/s refills one whole token.
        assert ctl.decide_submit(0.5, 0)[0] == ADMIT
        assert ctl.decide_submit(0.5, 0) == (SHED, "rate-limit")

    def test_token_bucket_caps_at_burst(self):
        ctl = AdmissionController(
            AdmissionSpec(rate=TokenBucketSpec(rate_per_s=10.0, burst=2.0))
        )
        # A long quiet period must not bank more than `burst` tokens.
        for _ in range(2):
            assert ctl.decide_submit(100.0, 0)[0] == ADMIT
        assert ctl.decide_submit(100.0, 0) == (SHED, "rate-limit")

    def test_rate_limit_checked_before_queue(self):
        ctl = AdmissionController(
            AdmissionSpec(
                rate=TokenBucketSpec(rate_per_s=1.0, burst=1.0),
                queue=QueueBoundSpec(max_pending=1, defer=True),
            )
        )
        ctl.decide_submit(0.0, 0)
        # Bucket empty *and* queue full: the rate limit sheds first, so
        # the submission never competes for defer slots.
        assert ctl.decide_submit(0.0, 1) == (SHED, "rate-limit")


class TestBrownoutController:
    def spec(self, **kw):
        params = dict(enter_pending=10, exit_pending=4, dwell_s=1.0)
        params.update(kw)
        return AdmissionSpec(brownout=BrownoutSpec(**params))

    def test_escalates_only_after_sustained_dwell(self):
        ctl = AdmissionController(self.spec())
        assert ctl.observe(0.0, 12) is None  # arms the pressure anchor
        assert ctl.observe(0.5, 12) is None  # dwell not yet served
        assert ctl.observe(1.0, 12) == (0, 1)
        assert ctl.stage == 1

    def test_momentary_spike_does_not_escalate(self):
        ctl = AdmissionController(self.spec())
        ctl.observe(0.0, 12)
        assert ctl.observe(0.5, 6) is None  # back to the middle zone
        assert ctl.next_review() is None  # anchor disarmed
        assert ctl.observe(2.0, 12) is None  # pressure restarts from zero
        assert ctl.observe(2.9, 12) is None
        assert ctl.stage == 0

    def test_recovery_needs_its_own_dwell_and_hysteresis_gap(self):
        ctl = AdmissionController(self.spec())
        ctl.observe(0.0, 12)
        ctl.observe(1.0, 12)
        assert ctl.stage == 1
        # Depth in the hysteresis band (exit < depth < enter): holds.
        for t in (1.5, 5.0, 50.0):
            assert ctl.observe(t, 7) is None
            assert ctl.next_review() is None
        # Sustained relief below exit_pending recovers one stage.
        assert ctl.observe(51.0, 2) is None
        assert ctl.observe(52.0, 2) == (1, 0)
        assert ctl.stage == 0

    def test_steady_mid_band_depth_never_oscillates(self):
        ctl = AdmissionController(self.spec())
        ctl.observe(0.0, 12)
        ctl.observe(1.0, 12)
        transitions = ctl.brownout_transitions
        for i in range(100):
            assert ctl.observe(2.0 + i * 0.1, 7) is None
        assert ctl.brownout_transitions == transitions

    def test_stage_caps_at_max_stage(self):
        ctl = AdmissionController(self.spec(max_stage=2))
        for t in (0.0, 1.0, 2.0, 3.0, 4.0, 5.0):
            ctl.observe(t, 12)
        assert ctl.stage == 2
        # Pinned at the cap: no anchor stays armed, no review owed.
        assert ctl.next_review() is None

    def test_next_review_tracks_pending_dwell(self):
        ctl = AdmissionController(self.spec())
        assert ctl.next_review() is None
        ctl.observe(3.0, 12)
        assert ctl.next_review() == pytest.approx(4.0)

    def test_dwell_comparison_tolerates_float_rounding(self):
        """Regression: the review event fires at exactly
        ``anchor + dwell_s``, and ``(anchor + dwell) - anchor`` can land
        one ULP short of ``dwell`` (7.1 + 1.0 - 7.1 < 1.0).  The dwell
        comparison must still transition, else the simulator reschedules
        the review for the same instant forever -- a frozen-clock
        livelock."""
        anchor = 7.1
        ctl = AdmissionController(self.spec(dwell_s=1.0))
        ctl.observe(anchor, 12)
        # One ULP short of the exact dwell expiry: the worst rounding
        # the scheduled review time can exhibit.
        review_at = math.nextafter(anchor + 1.0, 0.0)
        assert review_at - anchor < 1.0  # the hazard is real
        assert ctl.observe(review_at, 12) == (0, 1)

    def test_residency_accounting(self):
        ctl = AdmissionController(self.spec())
        ctl.observe(0.0, 12)
        ctl.observe(1.0, 12)  # enters brownout at t=1
        ctl.note_completion()
        ctl.observe(2.0, 2)
        ctl.observe(3.0, 2)  # recovers at t=3
        assert ctl.brownout_time_s == pytest.approx(2.0)
        assert ctl.brownout_completions == 1
        ctl.note_completion()  # healthy again: not goodput-under-degradation
        assert ctl.brownout_completions == 1

    def test_finalize_closes_open_residency_window(self):
        ctl = AdmissionController(self.spec())
        ctl.observe(0.0, 12)
        ctl.observe(1.0, 12)
        ctl.finalize(4.5)
        assert ctl.brownout_time_s == pytest.approx(3.5)


class TestGridOccupancy:
    def test_empty_grid_is_idle(self):
        rms = hybrid_rms()
        assert grid_occupancy(rms.nodes) == 0.0

    def test_busy_fraction_counts_in_flight_work(self):
        rms = gpp_rms(nodes=2)
        sim, _ = checked_sim(rms, None)
        sim.submit_workload([(0.0, gpp_task(0, t=10.0))])
        sim.run(until=1.0)
        assert grid_occupancy(rms.nodes) == pytest.approx(0.5)


class TestSimulatorIntegration:
    def test_bounded_queue_sheds_with_exact_conservation(self):
        spec = AdmissionSpec(queue=QueueBoundSpec(max_pending=2))
        sim, tracer = checked_sim(gpp_rms(), spec)
        sim.submit_workload([(0.0, gpp_task(i, t=5.0)) for i in range(6)])
        report = sim.run()
        # One dispatches immediately, two queue, three are shed.
        assert report.shed == 3
        assert report.completed == 3
        checker = tracer.checker
        checker.assert_no_lost_tasks()
        checker.assert_conservation()
        assert checker.conservation()["shed"] == 3

    def test_shed_task_fails_its_jss_job(self):
        spec = AdmissionSpec(queue=QueueBoundSpec(max_pending=1))
        sim, _ = checked_sim(gpp_rms(), spec)
        sim.submit_workload([(0.0, gpp_task(i, t=5.0)) for i in range(3)])
        report = sim.run()
        assert report.shed == 1
        reasons = [
            record.failure_reason
            for job in sim.jss.jobs.values()
            for record in job.records.values()
            if record.failure_reason
        ]
        assert any(r.startswith("shed:") for r in reasons)

    def test_backpressure_defers_then_admits_after_drain(self):
        spec = AdmissionSpec(
            queue=QueueBoundSpec(
                max_pending=1, defer=True, defer_delay_s=0.5, max_defers=10
            )
        )
        sim, tracer = checked_sim(gpp_rms(), spec)
        sim.submit_workload([(0.0, gpp_task(i, t=1.0)) for i in range(4)])
        report = sim.run()
        # Nothing is lost: deferred work parks outside the queue and is
        # re-offered until the bound admits it.
        assert report.completed == 4
        assert report.shed == 0
        assert report.admission_deferrals > 0
        tracer.checker.assert_conservation()
        kinds = [e.kind for e in tracer.sinks[1].events]
        assert "defer" in kinds and "admit" in kinds

    def test_utilization_gate_defers_placement_without_deadlock(self):
        spec = AdmissionSpec(utilization=UtilizationSpec(threshold=0.5))
        sim, tracer = checked_sim(gpp_rms(nodes=2), spec)
        sim.submit_workload([(0.0, gpp_task(0, t=2.0)), (0.1, gpp_task(1, t=2.0))])
        report = sim.run()
        # The second task waits for the first completion (occupancy 0.5
        # >= threshold), then places: gated but never deadlocked.
        assert report.completed == 2
        assert report.placements_gated > 0
        assert report.makespan_s == pytest.approx(4.0, abs=0.5)
        tracer.checker.assert_conservation()

    def test_brownout_stage2_forces_low_priority_to_gpp(self):
        # max_stage=2 pins the controller below the shedding stage, so
        # every queued low-priority dispatch happens *while* degraded.
        spec = AdmissionSpec(
            brownout=BrownoutSpec(
                enter_pending=2, exit_pending=1, dwell_s=0.2, max_stage=2
            )
        )
        sim, tracer = checked_sim(hybrid_rms(), spec)
        stream = []
        for i in range(10):
            task = hw_task(i, function=f"f{i}", t=2.0)
            stream.append((0.0, replace(task, priority=-1)))
        sim.submit_workload(stream)
        report = sim.run()
        assert report.brownout_max_stage == 2
        assert report.brownout_degraded > 0
        assert report.completed == 10
        kinds = [e.kind for e in tracer.sinks[1].events]
        assert "degrade" in kinds and "brownout" in kinds
        tracer.checker.assert_conservation()

    def test_brownout_stage3_sheds_newest_lowest_priority_first(self):
        spec = AdmissionSpec(
            brownout=BrownoutSpec(enter_pending=3, exit_pending=1, dwell_s=0.1)
        )
        sim, tracer = checked_sim(gpp_rms(), spec)
        stream = [(0.0, gpp_task(0, t=30.0))]
        for i in range(1, 7):
            prio = -1 if i >= 4 else 0
            stream.append((0.0, replace(gpp_task(i, t=30.0), priority=prio)))
        sim.submit_workload(stream)
        report = sim.run(until=5.0)
        shed_ids = [
            e.key[1]  # (job_id, task_id)
            for e in tracer.sinks[1].events
            if e.kind == "shed"
        ]
        assert len(shed_ids) == 5  # depth 6 -> exit_pending 1
        # All low-priority pending work goes before any normal-priority.
        assert set(shed_ids[:3]) == {4, 5, 6}
        assert report.brownout_max_stage == 3

    def test_brownout_recovers_after_queue_drains(self):
        spec = AdmissionSpec(
            brownout=BrownoutSpec(enter_pending=3, exit_pending=1, dwell_s=0.2)
        )
        sim, tracer = checked_sim(gpp_rms(), spec)
        sim.submit_workload([(0.0, gpp_task(i, t=0.4)) for i in range(8)])
        report = sim.run()
        assert report.completed + report.shed == 8
        stages = [
            e.payload["stage"]
            for e in tracer.sinks[1].events
            if e.kind == "brownout"
        ]
        assert stages and stages[-1] == 0, "run must end fully recovered"
        assert report.brownout_transitions == len(stages)
        assert report.brownout_time_s > 0.0

    def test_rate_limit_sheds_with_reason(self):
        spec = AdmissionSpec(rate=TokenBucketSpec(rate_per_s=1.0, burst=1.0))
        sim, tracer = checked_sim(gpp_rms(), spec)
        sim.submit_workload([(0.0, gpp_task(i, t=0.1)) for i in range(3)])
        report = sim.run()
        assert report.shed == 2
        reasons = {
            e.payload["reason"]
            for e in tracer.sinks[1].events
            if e.kind == "shed"
        }
        assert reasons == {"rate-limit"}


class TestZeroCostWhenDisabled:
    def trace_lines(self, admission):
        sink = InMemorySink()
        tracer = Tracer(TraceInvariantChecker(), sink)
        spec = ExperimentSpec(
            tasks=12, configurations=4, arrival_rate_per_s=6.0,
            gpp_fraction=0.3, seed=3, admission=admission,
        )
        run_experiment(spec, tracer=tracer)
        return [e.to_json() for e in canonical_events(list(sink.events))]

    def test_inert_spec_is_byte_identical_to_none(self):
        assert self.trace_lines(None) == self.trace_lines(AdmissionSpec())

    def test_armed_spec_changes_only_annotated_events(self):
        """A generous bound that never binds adds admit events but must
        not perturb the seeded workload or its scheduling."""
        baseline = self.trace_lines(None)
        armed = self.trace_lines(
            AdmissionSpec(queue=QueueBoundSpec(max_pending=10_000))
        )
        import json

        stripped = [
            line for line in armed
            if json.loads(line)["kind"] != "admit"
        ]
        assert stripped == baseline


class TestFlashCrowdAcceptance:
    """The PR's headline claim, as an executable assertion."""

    def run_surge(self, admission):
        telemetry = TelemetryRegistry()
        tracer = Tracer(TraceInvariantChecker(), InMemorySink(capacity=1))
        spec = ExperimentSpec(
            tasks=250,
            arrival_rate_per_s=4.0,
            flash_crowd=(2.0, 12.0, 6.0),  # >= 5x surge
            area_range=(2_000, 12_000),
            seed=7,
            admission=admission,
        )
        result = run_experiment(spec, tracer=tracer, telemetry=telemetry)
        tracer.checker.assert_no_lost_tasks()
        tracer.checker.assert_conservation()
        depth = max(
            (value for s in telemetry.series("sim_queue_depth")
             for _, value in s.points),
            default=0.0,
        )
        return result.report, depth

    def test_protection_bounds_depth_and_wait_under_5x_surge(self):
        unprotected, depth0 = self.run_surge(None)
        protected, depth1 = self.run_surge(ADMISSION_PRESETS["brownout"])
        max_pending = ADMISSION_PRESETS["brownout"].queue.max_pending
        assert depth1 <= max_pending
        assert depth1 < depth0
        assert protected.p95_wait_s < unprotected.p95_wait_s / 2
        assert protected.shed > 0
        assert protected.brownout_transitions > 0
        assert protected.overload_goodput_tasks_per_s > 0.0
        # Conservation, spelled out: every submission is accounted for.
        total = (
            protected.completed + protected.failed
            + protected.discarded + protected.shed
        )
        assert total == 250
