"""Unit tests for the declarative experiment API."""

import pytest

from repro.sim.experiment import (
    ExperimentSpec,
    NodeSpec,
    build_grid,
    run_experiment,
    sweep,
)
from repro.sim.workload import TraceArrivals


class TestSpecValidation:
    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            ExperimentSpec(strategy="magic")

    def test_needs_nodes(self):
        with pytest.raises(ValueError, match="node"):
            ExperimentSpec(nodes=())

    def test_node_spec_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(gpps=-1)
        with pytest.raises(ValueError):
            NodeSpec(gpps=0, rpe_models=())
        with pytest.raises(ValueError):
            NodeSpec(regions_per_rpe=0)

    def test_with_creates_modified_copy(self):
        base = ExperimentSpec(tasks=10)
        changed = base.with_(tasks=20, seed=5)
        assert base.tasks == 10
        assert changed.tasks == 20 and changed.seed == 5


class TestBuildGrid:
    def test_grid_matches_spec(self):
        spec = ExperimentSpec(
            nodes=(
                NodeSpec(gpps=2, rpe_models=("XC5VLX110", "XC5VLX220")),
                NodeSpec(gpps=0, rpe_models=("XC5VLX330",)),
            )
        )
        rms = build_grid(spec)
        assert len(rms.nodes) == 2
        assert len(rms.nodes[0].gpps) == 2
        assert [r.device.model for r in rms.nodes[0].rpes] == ["XC5VLX110", "XC5VLX220"]
        assert len(rms.nodes[1].gpps) == 0


class TestRunExperiment:
    def small_spec(self, **overrides):
        params = dict(tasks=30, arrival_rate_per_s=4.0, seed=7)
        params.update(overrides)
        return ExperimentSpec(**params)

    def test_completes_and_reports(self):
        result = run_experiment(self.small_spec())
        assert result.report.completed == 30
        assert result.energy is None

    def test_energy_audit_optional(self):
        result = run_experiment(self.small_spec(), audit_energy=True)
        assert result.energy is not None
        assert result.energy.total_j > 0

    def test_reproducible(self):
        a = run_experiment(self.small_spec())
        b = run_experiment(self.small_spec())
        assert a.report == b.report

    def test_seed_changes_outcome(self):
        a = run_experiment(self.small_spec(seed=1))
        b = run_experiment(self.small_spec(seed=2))
        assert a.report != b.report

    def test_trace_arrivals_override(self):
        trace = TraceArrivals([0.1 * i for i in range(30)])
        result = run_experiment(self.small_spec(), arrivals=trace)
        assert result.report.completed == 30

    def test_discard_knob(self):
        # One slow node, instant arrivals, tight discard deadline.
        spec = self.small_spec(
            nodes=(NodeSpec(gpps=1, rpe_models=()),),
            gpp_fraction=1.0,
            discard_after_s=0.5,
            arrival_rate_per_s=100.0,
        )
        result = run_experiment(spec)
        assert result.report.discarded > 0
        assert (
            result.report.completed + result.report.discarded + result.report.pending
            == 30
        )


class TestSweep:
    def test_strategy_sweep(self):
        base = ExperimentSpec(tasks=20, seed=3)
        results = sweep(base, "strategy", ["fcfs", "hybrid-cost"])
        assert [r.spec.strategy for r in results] == ["fcfs", "hybrid-cost"]
        assert all(r.report.completed == 20 for r in results)

    def test_load_sweep_waits_grow(self):
        base = ExperimentSpec(
            tasks=60,
            nodes=(NodeSpec(gpps=1, rpe_models=("XC5VLX220",)),),
            seed=11,
        )
        slow, fast = sweep(base, "arrival_rate_per_s", [0.5, 8.0])
        assert fast.report.mean_wait_s >= slow.report.mean_wait_s


class TestReplication:
    def test_aggregates_over_seeds(self):
        from repro.sim.experiment import replicate

        base = ExperimentSpec(tasks=25, arrival_rate_per_s=4.0)
        summary = replicate(base, seeds=[1, 2, 3])
        assert summary.seeds == (1, 2, 3)
        assert summary.mean_makespan_s > 0
        assert summary.std_makespan_s >= 0
        assert any("replications" in line for line in summary.summary_lines())

    def test_identical_seeds_zero_variance(self):
        from repro.sim.experiment import replicate

        base = ExperimentSpec(tasks=20)
        summary = replicate(base, seeds=[5, 5])
        assert summary.std_wait_s == 0.0
        assert summary.std_makespan_s == 0.0

    def test_needs_seeds(self):
        from repro.sim.experiment import replicate

        with pytest.raises(ValueError):
            replicate(ExperimentSpec(tasks=5), seeds=[])
