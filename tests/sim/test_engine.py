"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationEngine, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        engine = SimulationEngine()
        fired = []
        for tag in "abc":
            engine.schedule(1.0, lambda t=tag: fired.append(t))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_times(self):
        engine = SimulationEngine()
        times = []
        engine.schedule(2.5, lambda: times.append(engine.now))
        engine.schedule(5.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [2.5, 5.0]
        assert engine.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule(-1.0, lambda: None)

    def test_schedule_in_the_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    def test_callbacks_can_schedule_more(self):
        engine = SimulationEngine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                engine.schedule(1.0, lambda: chain(n + 1))

        engine.schedule(0.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        engine.run()
        assert fired == []

    def test_pending_events_excludes_cancelled(self):
        engine = SimulationEngine()
        h1 = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        h1.cancel()
        assert engine.pending_events == 1

    def test_peek_skips_cancelled(self):
        engine = SimulationEngine()
        h1 = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        h1.cancel()
        assert engine.peek_time() == 2.0


class TestRunBounds:
    def test_until_stops_before_later_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        assert engine.pending_events == 1

    def test_until_past_everything_advances_clock(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run(until=100.0)
        assert engine.now == 100.0

    def test_max_events_bounds_runaway(self):
        engine = SimulationEngine()

        def forever():
            engine.schedule(1.0, forever)

        engine.schedule(0.0, forever)
        engine.run(max_events=50)
        assert engine.processed_events == 50

    def test_step_returns_false_when_dry(self):
        engine = SimulationEngine()
        assert engine.step() is False
        engine.schedule(1.0, lambda: None)
        assert engine.step() is True
        assert engine.step() is False
