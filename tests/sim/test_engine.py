"""Unit tests for the discrete-event engines.

Every behavioral test runs against both registered engines (heap and
calendar queue) -- the calendar queue is a drop-in replacement, so any
observable difference is a bug.
"""

import math

import pytest

from repro.sim.engine import ENGINES, SimulationError, make_engine


@pytest.fixture(params=sorted(ENGINES))
def engine(request):
    return make_engine(request.param)


class TestScheduling:
    def test_events_fire_in_time_order(self, engine):
        fired = []
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_scheduling_order(self, engine):
        fired = []
        for tag in "abc":
            engine.schedule(1.0, lambda t=tag: fired.append(t))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_times(self, engine):
        times = []
        engine.schedule(2.5, lambda: times.append(engine.now))
        engine.schedule(5.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [2.5, 5.0]
        assert engine.now == 5.0

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_schedule_in_the_past_rejected(self, engine):
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    def test_callbacks_can_schedule_more(self, engine):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                engine.schedule(1.0, lambda: chain(n + 1))

        engine.schedule(0.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 3.0


class TestNonFiniteRejection:
    """Regression lock: non-finite times used to slip into the heap
    and silently corrupt its ordering (NaN compares false against
    everything, so heap invariants break downstream).  Both engines
    must reject them loudly at the boundary."""

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_schedule_at_rejects_non_finite(self, engine, bad):
        with pytest.raises(SimulationError):
            engine.schedule_at(bad, lambda: None)
        assert engine.pending_events == 0

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_schedule_rejects_non_finite_delay(self, engine, bad):
        with pytest.raises(SimulationError):
            engine.schedule(bad, lambda: None)
        assert engine.pending_events == 0

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_schedule_batch_rejects_non_finite(self, engine, bad):
        with pytest.raises(SimulationError):
            engine.schedule_batch([1.0, bad], [lambda: None, lambda: None])
        assert engine.pending_events == 0

    def test_engine_still_usable_after_rejection(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule_at(math.nan, lambda: None)
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.run()
        assert fired == [1]


class TestBatchScheduling:
    def test_batch_fires_in_time_then_submission_order(self, engine):
        fired = []
        engine.schedule_batch(
            [2.0, 1.0, 1.0],
            [lambda: fired.append("late"),
             lambda: fired.append("a"),
             lambda: fired.append("b")],
        )
        engine.run()
        assert fired == ["a", "b", "late"]

    def test_batch_without_handles_fires_identically(self, engine):
        fired = []
        engine.schedule_batch(
            [2.0, 1.0],
            [lambda: fired.append("late"), lambda: fired.append("early")],
            handles=False,
        )
        engine.run()
        assert fired == ["early", "late"]

    def test_batch_handles_are_cancellable(self, engine):
        fired = []
        handles = engine.schedule_batch(
            [1.0, 2.0], [lambda: fired.append(1), lambda: fired.append(2)]
        )
        handles[0].cancel()
        engine.run()
        assert fired == [2]

    def test_batch_length_mismatch_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.schedule_batch([1.0, 2.0], [lambda: None])

    def test_batch_in_the_past_rejected(self, engine):
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_batch([1.0], [lambda: None])

    def test_empty_batch_is_a_no_op(self, engine):
        assert engine.schedule_batch([], []) == []
        assert engine.schedule_batch([], [], handles=False) is None
        assert engine.pending_events == 0

    def test_batch_interleaves_with_singles(self, engine):
        fired = []
        engine.schedule(1.5, lambda: fired.append("single"))
        engine.schedule_batch(
            [1.0, 2.0],
            [lambda: fired.append("b1"), lambda: fired.append("b2")],
            handles=False,
        )
        engine.run()
        assert fired == ["b1", "single", "b2"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, engine):
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        engine.run()
        assert fired == []

    def test_pending_events_excludes_cancelled(self, engine):
        h1 = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        h1.cancel()
        assert engine.pending_events == 1

    def test_peek_skips_cancelled(self, engine):
        h1 = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        h1.cancel()
        assert engine.peek_time() == 2.0


class TestRunBounds:
    def test_until_stops_before_later_events(self, engine):
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        assert engine.pending_events == 1

    def test_until_past_everything_advances_clock(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run(until=100.0)
        assert engine.now == 100.0

    def test_max_events_bounds_runaway(self, engine):
        def forever():
            engine.schedule(1.0, forever)

        engine.schedule(0.0, forever)
        engine.run(max_events=50)
        assert engine.processed_events == 50

    def test_step_returns_false_when_dry(self, engine):
        assert engine.step() is False
        engine.schedule(1.0, lambda: None)
        assert engine.step() is True
        assert engine.step() is False


def test_make_engine_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown engine"):
        make_engine("fibonacci")
