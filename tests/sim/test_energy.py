"""Unit tests for the energy auditor."""

import pytest

from repro.core.execreq import Artifacts, ExecReq, MinValue
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.bitstream import Bitstream
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.power import energy_per_task_j, fpga_active_power, gpp_power
from repro.hardware.taxonomy import PEClass
from repro.sim.energy import EnergyAuditor, EnergyReport
from repro.sim.simulator import DReAMSim


def build(gpp=True, rpe=False):
    node = Node(node_id=0)
    if gpp:
        node.add_gpp(GPPSpec(cpu_model="Xeon", mips=1_000))
    if rpe:
        node.add_rpe(device_by_model("XC5VLX155"), regions=2)
    rms = ResourceManagementSystem()
    rms.register_node(node)
    return rms, node


def gpp_task(task_id=0, t=2.0):
    return simple_task(
        task_id,
        ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
        t,
        workload_mi=t * 1_000.0,
    )


def hw_task(task_id=0, slices=9_000, t=1.0):
    bs = Bitstream(700 + task_id, "XC5VLX155", 1_000_000, slices, implements="fft")
    return simple_task(
        task_id,
        ExecReq(
            node_type=PEClass.RPE,
            constraints=(MinValue("slices", slices),),
            artifacts=Artifacts(application_code="x", bitstream=bs),
        ),
        t,
        function="fft",
    )


class TestEnergyReport:
    def test_totals_and_per_task(self):
        report = EnergyReport(
            horizon_s=10.0, active_j=50.0, reconfig_j=5.0, idle_j=45.0, completed_tasks=4
        )
        assert report.total_j == pytest.approx(100.0)
        assert report.joules_per_task == pytest.approx(25.0)

    def test_no_tasks_no_division(self):
        report = EnergyReport(1.0, 0.0, 0.0, 10.0, 0)
        assert report.joules_per_task == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EnergyReport(1.0, -1.0, 0.0, 0.0, 0)

    def test_summary_lines(self):
        lines = EnergyReport(10.0, 1.0, 2.0, 3.0, 1).summary_lines()
        assert any("energy total" in l for l in lines)


class TestGPPAudit:
    def test_known_analytic_case(self):
        """One 2-second task on a lone GPP, horizon 2 s: active energy
        = P(full) * 2, idle energy = 0 (the GPP never idles)."""
        rms, node = build()
        sim = DReAMSim(rms)
        sim.submit_workload([(0.0, gpp_task(t=2.0))])
        sim.run()
        report = EnergyAuditor(rms).audit(sim)
        spec = node.gpps[0].spec
        expected_active = energy_per_task_j(gpp_power(spec, load=1.0), 2.0)
        assert report.active_j == pytest.approx(expected_active)
        assert report.idle_j == pytest.approx(0.0, abs=1e-9)
        assert report.reconfig_j == 0.0

    def test_idle_tail_charged(self):
        rms, node = build()
        sim = DReAMSim(rms)
        sim.submit_workload([(0.0, gpp_task(t=1.0))])
        sim.run(until=5.0)
        report = EnergyAuditor(rms).audit(sim)
        spec = node.gpps[0].spec
        expected_idle = gpp_power(spec, load=0.0).total_w * 4.0
        assert report.idle_j == pytest.approx(expected_idle)


class TestRPEAudit:
    def test_hardware_task_energy(self):
        rms, node = build(gpp=False, rpe=True)
        sim = DReAMSim(rms)
        sim.submit_workload([(0.0, hw_task(t=1.0))])
        sim.run()
        report = EnergyAuditor(rms).audit(sim)
        device = node.rpes[0].device
        expected_active = energy_per_task_j(fpga_active_power(device, 9_000), 1.0)
        assert report.active_j == pytest.approx(expected_active)
        assert report.reconfig_j > 0
        assert report.completed_tasks == 1

    def test_acceleration_beats_software_in_joules(self):
        """The paper's power claim end to end: the same workload done as
        a 10x hardware kernel consumes far less total energy."""
        # Software world: 10-second task on a Xeon-class GPP.
        rms_sw, _ = build(gpp=True)
        rms_sw.node(0).gpps[0] = rms_sw.node(0).gpps[0]  # no-op clarity
        sim_sw = DReAMSim(rms_sw)
        sim_sw.submit_workload([(0.0, gpp_task(t=10.0))])
        sim_sw.run()
        sw = EnergyAuditor(rms_sw).audit(sim_sw)

        # Hardware world: same logical work, 1 second on fabric.
        rms_hw, _ = build(gpp=False, rpe=True)
        sim_hw = DReAMSim(rms_hw)
        sim_hw.submit_workload([(0.0, hw_task(t=1.0))])
        sim_hw.run()
        hw = EnergyAuditor(rms_hw).audit(sim_hw)

        assert hw.active_j < sw.active_j / 2
        assert hw.total_j < sw.total_j


class TestChurnRobustness:
    def test_departed_node_tasks_skipped(self):
        rms, _ = build()
        sim = DReAMSim(rms)
        sim.submit_workload([(0.0, gpp_task(t=1.0))])
        sim.run()
        rms.unregister_node(0)
        report = EnergyAuditor(rms).audit(sim)
        # Node gone: its task energy cannot be attributed; audit
        # degrades gracefully to zero rather than crashing.
        assert report.active_j == 0.0
        assert report.completed_tasks == 1
