"""Unit + integration tests for the online SLO layer (sim/slo.py).

The golden byte-identity locks (inert spec, armed observation-only)
live in test_golden_traces.py; the randomized battery in
tests/properties/test_prop_slo.py.  This file covers the declarative
spec/parsers, the monitor's windowed semantics under a hand-driven
clock, the offline trace evaluator against the committed chaos golden,
the report/telemetry integration, the tenant-tag round trip (satellite:
workload -> trace -> metrics -> report, both collectors), and the
``repro slo`` / ``repro trend`` / ``repro analyze --tenant`` CLI exits.
"""

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.sim.slo import (
    SLO_PRESETS,
    SLOMonitor,
    SLOObjective,
    SLOSpec,
    evaluate_trace,
    parse_objective,
    parse_slo,
)

DATA_DIR = Path(__file__).resolve().parent.parent / "data"
CHAOS_GOLDEN = DATA_DIR / "golden_trace_chaos.jsonl"


def read_chaos_events():
    from repro.sim.tracing import TraceEvent

    lines = CHAOS_GOLDEN.read_text(encoding="ascii").splitlines()
    return [TraceEvent.from_json(line) for line in lines]


class TestParseObjective:
    def test_latency_percentile(self):
        obj = parse_objective("latency-p95:2.5")
        assert obj.kind == "latency"
        assert obj.metric == "turnaround"
        assert obj.percentile == 95.0
        assert obj.target == 2.5
        assert obj.name == "turnaround-p95"

    def test_wait_percentile_with_window_and_tenant(self):
        obj = parse_objective("wait-p99:0.5:60:tenant2")
        assert obj.metric == "wait"
        assert obj.percentile == 99.0
        assert obj.window_s == 60.0
        assert obj.tenant == "tenant2"
        assert obj.name == "wait-p99@tenant2"

    def test_explicit_name(self):
        obj = parse_objective("gold=availability:0.99")
        assert obj.name == "gold"
        assert obj.kind == "availability"

    def test_queue_and_throughput(self):
        assert parse_objective("queue:64").kind == "queue-depth"
        assert parse_objective("throughput:1.5").kind == "throughput"

    @pytest.mark.parametrize("bad", [
        "latency-p95",            # no target
        "nope:1.0",               # unknown kind
        "latency-pXX:1.0",        # bad percentile
        "queue:abc",              # bad target
        "queue:1:2:3:4",          # too many fields
        "availability:2.0",       # target outside (0, 1]
        "latency-p95:1.0:-3",     # negative window
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_objective(bad)


class TestParseSlo:
    def test_empty_is_none(self):
        assert parse_slo(None) is None
        assert parse_slo([]) is None

    def test_single_preset_name(self):
        assert parse_slo(["default"]) is SLO_PRESETS["default"]
        assert parse_slo(["strict"]) is SLO_PRESETS["strict"]

    def test_objective_list(self):
        spec = parse_slo(["latency-p95:2.0", "queue:16"])
        assert [o.kind for o in spec.objectives] == ["latency", "queue-depth"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_slo(["latency-p95:2.0", "latency-p95:3.0"])

    def test_presets_are_enabled_and_describable(self):
        for name, spec in SLO_PRESETS.items():
            assert spec.enabled, name
            described = spec.describe()
            assert described["objectives"], name
            json.dumps(described)  # JSON-safe


class TestMonitorSemantics:
    """The monitor under a hand-driven clock: no simulator involved."""

    def make(self, objectives, emitted=None):
        clock = {"now": 0.0}

        def emit(kind, key=None, **payload):
            assert key is None
            if emitted is not None:
                emitted.append((clock["now"], kind, payload))

        monitor = SLOMonitor(
            SLOSpec(objectives=tuple(objectives)),
            clock=lambda: clock["now"], emit=emit,
        )
        return monitor, clock

    def test_latency_breach_opens_and_closes(self):
        emitted = []
        obj = SLOObjective("latency", 1.0, percentile=50.0, window_s=2.0)
        monitor, clock = self.make([obj], emitted)
        clock["now"] = 0.5
        monitor.observe_completion(turnaround=5.0)  # p50 = 5 > 1: breach
        assert [k for _, k, _ in emitted] == ["slo-breach"]
        assert emitted[0][2]["action"] == "begin"
        # The bad sample ages out of the 2 s window; a good one closes it.
        clock["now"] = 3.0
        monitor.observe_completion(turnaround=0.1)
        actions = [p.get("action") for _, k, p in emitted if k == "slo-breach"]
        assert actions == ["begin", "end"]
        results = {r.name: r for r in monitor.results(4.0)}
        r = results[obj.name]
        assert r.breach_count == 1
        assert r.breach_seconds == pytest.approx(2.5)
        assert r.attainment == pytest.approx(1 - 2.5 / 4.0)

    def test_tenant_scope_filters_observations(self):
        obj = SLOObjective("latency", 1.0, percentile=50.0, tenant="gold")
        monitor, clock = self.make([obj])
        clock["now"] = 1.0
        monitor.observe_completion(tenant="bronze", turnaround=99.0)
        state = monitor._states[0]
        assert state.observations == 0  # filtered out
        monitor.observe_completion(tenant="gold", turnaround=0.5)
        assert state.observations == 1

    def test_throughput_cold_start_is_not_a_breach(self):
        obj = SLOObjective("throughput", 10.0, window_s=5.0)
        monitor, clock = self.make([obj])
        clock["now"] = 1.0
        monitor.observe_completion(turnaround=0.1)
        assert not monitor._states[0].in_breach  # now < window_s
        clock["now"] = 6.0
        monitor.observe_completion(turnaround=0.1)
        assert monitor._states[0].in_breach  # 2/5 s << 10/s

    def test_alert_fires_and_resolves_with_hysteresis(self):
        emitted = []
        obj = SLOObjective("queue-depth", 1.0, window_s=2.0,
                           budget_fraction=0.05)
        monitor, clock = self.make([obj], emitted)
        clock["now"] = 1.0
        monitor.observe_queue(5)  # breach opens
        # Let the breach burn >5% of both windows.
        clock["now"] = 2.0
        monitor.observe_queue(6)
        kinds = [k for _, k, _ in emitted]
        assert "slo-alert-fire" in kinds
        # Drain the queue; burn decays below threshold/2 -> resolve.
        clock["now"] = 2.5
        monitor.observe_queue(0)
        clock["now"] = 30.0
        monitor.observe_queue(0)
        kinds = [k for _, k, _ in emitted]
        assert kinds.count("slo-alert-fire") == kinds.count(
            "slo-alert-resolve"
        ) == 1

    def test_finalize_closes_and_is_idempotent(self):
        emitted = []
        obj = SLOObjective("queue-depth", 1.0, window_s=2.0)
        monitor, clock = self.make([obj], emitted)
        clock["now"] = 1.0
        monitor.observe_queue(10)
        clock["now"] = 2.0
        monitor.observe_queue(11)
        monitor.finalize(2.0)
        monitor.finalize(2.0)  # idempotent: no duplicate closes
        kinds = [k for _, k, _ in emitted]
        assert kinds.count("slo-breach") == 2  # one begin + one end
        assert kinds.count("slo-alert-fire") == kinds.count("slo-alert-resolve")
        resolves = [p for _, k, p in emitted if k == "slo-alert-resolve"]
        assert all(p.get("reason") == "horizon" for p in resolves)

    def test_results_bounded_and_violation_rule(self):
        obj = SLOObjective("queue-depth", 1.0, window_s=2.0,
                           budget_fraction=0.1)
        monitor, clock = self.make([obj])
        clock["now"] = 0.0
        monitor.observe_queue(10)  # breach from t=0
        clock["now"] = 10.0
        monitor.finalize(10.0)
        (r,) = monitor.results(10.0)
        assert r.attainment == pytest.approx(0.0)
        assert r.error_budget_remaining == pytest.approx(0.0)
        assert r.violated  # breach fraction 1.0 > budget 0.1
        assert 0.0 <= r.attainment <= 1.0
        assert 0.0 <= r.error_budget_remaining <= 1.0


class TestEvaluateTraceChaosGolden:
    """Offline evaluation against the committed chaos golden."""

    def test_permissive_objective_holds(self):
        results, emitted = evaluate_trace(
            read_chaos_events(), parse_slo(["latency-p95:1000"])
        )
        (r,) = results
        assert not r.violated
        assert r.attainment == 1.0
        assert r.observations > 0
        assert emitted == []

    def test_tight_objective_is_violated_with_paired_alerts(self):
        results, emitted = evaluate_trace(
            read_chaos_events(),
            parse_slo(["latency-p95:0.05:5"]),
        )
        (r,) = results
        assert r.violated
        assert r.breach_count >= 1
        assert r.breach_seconds > 0
        kinds = [k for _, k, _ in emitted]
        assert kinds.count("slo-alert-fire") == kinds.count(
            "slo-alert-resolve"
        ) == r.alerts_fired == r.alerts_resolved
        begins = sum(
            1 for _, k, p in emitted
            if k == "slo-breach" and p.get("action") == "begin"
        )
        ends = sum(
            1 for _, k, p in emitted
            if k == "slo-breach" and p.get("action") == "end"
        )
        assert begins == ends == r.breach_count

    def test_emitted_events_are_time_ordered(self):
        _, emitted = evaluate_trace(
            read_chaos_events(), parse_slo(["latency-p95:0.05:5", "queue:0"])
        )
        times = [t for t, _, _ in emitted]
        assert times == sorted(times)


ARMED_SPEC_OBJECTIVES = (
    SLOObjective("latency", 0.5, percentile=95.0, window_s=5.0),
    SLOObjective("availability", 0.999, window_s=5.0),
    SLOObjective("queue-depth", 2.0, window_s=5.0),
    SLOObjective("latency", 0.5, percentile=90.0, window_s=5.0,
                 tenant="tenant0"),
)


def chaos_tenant_spec(engine="heap"):
    from repro.sim.experiment import ExperimentSpec
    from repro.sim.faults import FaultSpec

    return ExperimentSpec(
        tasks=40, configurations=4, arrival_rate_per_s=8.0,
        area_range=(2_000, 14_000), gpp_fraction=0.2, seed=7,
        engine=engine, tenants=3,
        faults=FaultSpec(
            crash_rate_per_s=0.25, downtime_range_s=(1.0, 3.0),
            config_fault_prob=0.35, seu_rate_per_s=0.2, horizon_s=8.0,
        ),
    )


class TestSimulatorIntegration:
    def test_report_and_telemetry_carry_slo_results(self):
        from repro.sim.experiment import run_experiment
        from repro.sim.telemetry import TelemetryRegistry

        spec = chaos_tenant_spec().with_(
            slo=SLOSpec(objectives=ARMED_SPEC_OBJECTIVES)
        )
        telemetry = TelemetryRegistry()
        report = run_experiment(spec, telemetry=telemetry).report
        assert report.slo_objectives == len(ARMED_SPEC_OBJECTIVES)
        names = {o.name for o in ARMED_SPEC_OBJECTIVES}
        assert set(report.slo_attainment) == names
        assert set(report.slo_error_budget_remaining) == names
        assert set(report.slo_breach_seconds) == names
        for value in report.slo_attainment.values():
            assert 0.0 <= value <= 1.0
        assert set(report.slo_violated) <= names
        # Gauges published per objective.
        for gauge in ("slo_attainment", "slo_error_budget_remaining",
                      "slo_breach_seconds"):
            labels = {
                s.labels.get("objective") for s in telemetry.series(gauge)
            }
            assert labels == names, gauge
        # Telemetry meta + summary surface the armed contract.
        assert telemetry.meta["slo"] == spec.slo.describe()
        lines = "\n".join(report.summary_lines())
        assert "SLO" in lines and "attainment" in lines

    def test_unarmed_report_has_empty_slo_fields(self):
        from repro.sim.experiment import run_experiment

        report = run_experiment(chaos_tenant_spec()).report
        assert report.slo_objectives == 0
        assert report.slo_attainment == {}
        assert report.slo_violated == []

    def test_provenance_stamps_armed_slo(self):
        from repro.provenance import run_provenance

        spec = chaos_tenant_spec().with_(
            slo=SLOSpec(objectives=ARMED_SPEC_OBJECTIVES)
        )
        stamp = run_provenance(spec)
        assert stamp["slo"] == spec.slo.describe()
        assert "slo" not in run_provenance(chaos_tenant_spec())


class TestTenantRoundTrip:
    """Satellite lock: workload tenant tags must round-trip through the
    trace (``extra['tenant']`` on submit), the metrics collectors, and
    the per-tenant report section -- on both engines, under faults,
    with byte-equal standard and bulk reports."""

    @pytest.mark.parametrize("engine", ["heap", "calendar"])
    def test_tenants_flow_from_workload_to_trace_and_report(self, engine):
        from repro.sim.experiment import run_experiment
        from repro.sim.tracing import InMemorySink, TraceInvariantChecker, Tracer

        sink = InMemorySink()
        report = run_experiment(
            chaos_tenant_spec(engine),
            tracer=Tracer(TraceInvariantChecker(), sink),
        ).report
        tags = {
            e.payload["tenant"] for e in sink.events
            if e.kind == "submit" and "tenant" in e.payload
        }
        assert tags == {"tenant0", "tenant1", "tenant2"}
        assert set(report.per_tenant) == tags
        # Every task is attributed to exactly one tenant.
        total = sum(
            row["completed"] + row["shed"] + row["failed"]
            for row in report.per_tenant.values()
        )
        assert total == report.completed + report.failed + report.shed
        for row in report.per_tenant.values():
            assert row["p95_wait_s"] >= 0.0
            assert row["p99_turnaround_s"] >= row["p50_turnaround_s"] >= 0.0
        lines = "\n".join(report.summary_lines())
        for tag in sorted(tags):
            assert tag in lines

    def test_standard_and_bulk_reports_byte_equal_with_tenants(self):
        from repro.sim.experiment import run_experiment
        from repro.sim.metrics import BulkMetricsCollector

        spec = chaos_tenant_spec().with_(
            slo=SLOSpec(objectives=ARMED_SPEC_OBJECTIVES)
        )
        standard = run_experiment(spec).report
        bulk = run_experiment(spec, metrics=BulkMetricsCollector()).report
        assert asdict(standard) == asdict(bulk)
        assert list(standard.per_tenant) == list(bulk.per_tenant)

    def test_untagged_run_has_no_per_tenant_section(self):
        from repro.sim.experiment import run_experiment

        report = run_experiment(chaos_tenant_spec().with_(tenants=1)).report
        assert report.per_tenant == {}


class TestCli:
    def test_slo_trace_mode_permissive_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["slo", str(CHAOS_GOLDEN), "-o", "latency-p95:1000"]) == 0
        out = capsys.readouterr().out
        assert "attainment" in out and "ok" in out

    def test_slo_trace_mode_violated_exits_one(self, capsys):
        from repro.cli import main

        assert main(["slo", str(CHAOS_GOLDEN), "-o", "latency-p95:0.05:5"]) == 1
        captured = capsys.readouterr()
        assert "VIOLATED" in captured.out
        assert "objectives violated" in captured.err

    def test_slo_unreadable_trace_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["slo", str(tmp_path / "missing.jsonl"),
                     "-o", "queue:1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_slo_bad_objective_exits_two(self, capsys):
        from repro.cli import main

        assert main(["slo", str(CHAOS_GOLDEN), "-o", "bogus:1"]) == 2
        assert "unknown objective kind" in capsys.readouterr().err

    def test_slo_live_mode_writes_diffable_artifact(self, tmp_path, capsys):
        from repro.bench.diff import diff_artifacts
        from repro.cli import main

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        argv = ["slo", "--tasks", "30", "--tenants", "2",
                "-o", "latency-p95:1000", "--json"]
        assert main(argv + [str(a)]) == 0
        capsys.readouterr()
        assert main(argv + [str(b)]) == 0
        capsys.readouterr()
        document = json.loads(a.read_text())
        assert document["kind"] == "slo-eval"
        assert "spec_hash" in document["provenance"]
        verdict = diff_artifacts(a, b)
        assert verdict.exit_code == 0
        assert verdict.flavor == "slo"

    def test_analyze_tenant_filter(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "t.jsonl"
        assert main(["simulate", "--tasks", "30", "--tenants", "3",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["analyze", str(trace), "--tenant", "tenant1"]) == 0
        filtered = capsys.readouterr().out
        assert main(["analyze", str(trace)]) == 0
        unfiltered = capsys.readouterr().out

        def analyzed(text):
            for line in text.splitlines():
                if line.startswith("tasks analyzed"):
                    return int(line.split()[2])
            raise AssertionError("no 'tasks analyzed' line")

        assert 0 < analyzed(filtered) < analyzed(unfiltered)

    def test_trend_flags_attainment_regression(self, tmp_path, capsys):
        from repro.cli import main

        def snapshot(stem, attainment):
            (tmp_path / f"BENCH_{stem}.json").write_text(json.dumps({
                "format": 1, "kind": "bench-suite", "mode": "quick",
                "cases": [{
                    "name": "sim-slo",
                    "metrics": {"attainment:turnaround-p95": attainment},
                }],
            }))

        snapshot("20260101T000000Z", 0.95)
        snapshot("20260102T000000Z", 0.80)
        assert main(["trend", "--dir", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "trajectory regressions" in captured.err
        # A recovering trajectory is healthy.
        snapshot("20260103T000000Z", 0.95)
        assert main(["trend", "--dir", str(tmp_path)]) == 0

    def test_trend_on_committed_snapshots(self, capsys):
        from repro.cli import main

        assert main(["trend"]) == 0
        assert "snapshots" in capsys.readouterr().out
