"""Tests for the structured trace layer: events, sinks, invariants."""

import pytest

from repro.core.node import Node
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.sim.experiment import ExperimentSpec, NodeSpec, run_experiment
from repro.sim.simulator import DReAMSim
from repro.sim.tracing import (
    InMemorySink,
    InvariantViolation,
    JsonlSink,
    TraceEvent,
    TraceInvariantChecker,
    Tracer,
    canonical_events,
    read_jsonl,
    verify_jsonl,
    verify_trace,
)
from repro.sim.workload import (
    ConfigurationPool,
    PoissonArrivals,
    SyntheticWorkload,
    WorkloadSpec,
)


def traced_run(spec: ExperimentSpec) -> tuple[Tracer, list[TraceEvent]]:
    sink = InMemorySink()
    tracer = Tracer(TraceInvariantChecker(), sink)
    run_experiment(spec, tracer=tracer)
    return tracer, list(sink.events)


SPEC = ExperimentSpec(tasks=25, configurations=4, seed=3)


class TestTraceEvent:
    def test_json_roundtrip_tuples_keys(self):
        event = TraceEvent(time=1.5, kind="dispatch", key=(3, 7),
                           payload={"node": 1, "reused": False})
        again = TraceEvent.from_json(event.to_json())
        assert again == event

    def test_json_roundtrip_none_key(self):
        event = TraceEvent(time=0.0, kind="node-join", payload={"node": 9})
        assert TraceEvent.from_json(event.to_json()) == event

    def test_json_lines_are_deterministic(self):
        event = TraceEvent(time=2.0, kind="submit", key=(0, 1),
                           payload={"function": "f", "pe_class": "RPE"})
        assert event.to_json() == event.to_json()
        assert '"kind": "submit"' in event.to_json()


class TestSinks:
    def test_in_memory_ring_capacity(self):
        sink = InMemorySink(capacity=3)
        for i in range(10):
            sink.emit(TraceEvent(time=float(i), kind="submit", key=i))
        assert len(sink) == 3
        assert [e.key for e in sink.events] == [7, 8, 9]

    def test_ring_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            InMemorySink(capacity=0)

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(sink)
        spec_sink = InMemorySink()
        tracer.add_sink(spec_sink)
        run_experiment(SPEC, tracer=tracer)
        tracer.close()
        loaded = read_jsonl(path)
        assert loaded == list(spec_sink.events)
        assert sink.lines_written == len(loaded) > 0

    def test_unknown_kind_rejected(self):
        tracer = Tracer(InMemorySink())
        with pytest.raises(ValueError, match="unknown event kind"):
            tracer.emit(0.0, "teleport", key=1)


class TestSimulatorEmission:
    def test_event_kinds_cover_lifecycle(self):
        tracer, events = traced_run(SPEC)
        kinds = {e.kind for e in events}
        assert {"submit", "dispatch", "start", "complete"} <= kinds
        # Hardware tasks exist in this spec, so fabric events appear.
        assert {"slice-alloc", "slice-free", "reconfigure"} <= kinds
        assert tracer.events_emitted == len(events)

    def test_per_task_event_counts_match_report(self):
        result_events = traced_run(SPEC)[1]
        by_kind = {}
        for e in result_events:
            by_kind[e.kind] = by_kind.get(e.kind, 0) + 1
        assert by_kind["submit"] == SPEC.tasks
        assert by_kind["complete"] == by_kind["dispatch"] == SPEC.tasks
        assert by_kind["slice-alloc"] == by_kind["slice-free"]

    def test_discard_events_emitted(self):
        # A starved single-GPP grid with an aggressive deadline discards.
        spec = ExperimentSpec(
            tasks=30,
            nodes=(NodeSpec(gpps=1, rpe_models=()),),
            gpp_fraction=1.0,
            arrival_rate_per_s=20.0,
            required_time_range_s=(1.0, 2.0),
            discard_after_s=0.5,
            seed=1,
        )
        tracer, events = traced_run(spec)
        assert any(e.kind == "discard" for e in events)
        # Still invariant-clean: discards fire only before dispatch.
        assert tracer.checker.events_checked == len(events)

    def test_untraced_run_unchanged(self):
        baseline = run_experiment(SPEC)
        traced = run_experiment(SPEC, tracer=Tracer(InMemorySink()))
        assert baseline.report == traced.report

    def test_node_join_leave_events(self):
        node0 = Node(node_id=0)
        node0.add_gpp(GPPSpec(cpu_model="a", mips=1_000))
        rms = ResourceManagementSystem()
        rms.register_node(node0)
        sink = InMemorySink()
        sim = DReAMSim(rms, tracer=Tracer(TraceInvariantChecker(), sink))

        late = Node(node_id=1)
        late.add_gpp(GPPSpec(cpu_model="b", mips=1_000))
        late.add_rpe(device_by_model("XC5VLX110"), regions=2)
        sim.schedule_node_join(1.0, late)
        sim.schedule_node_leave(5.0, 1)

        pool = ConfigurationPool(3, area_range=(2_000, 10_000), seed=2)
        pool.populate_repository(
            rms.virtualization.repository, [device_by_model("XC5VLX110")]
        )
        workload = SyntheticWorkload(
            WorkloadSpec(task_count=15, gpp_fraction=0.5,
                         required_time_range_s=(0.3, 1.0)),
            pool,
            PoissonArrivals(rate_per_s=4.0),
            seed=2,
        )
        sim.submit_workload(workload.generate())
        sim.run()
        kinds = [e.kind for e in sink.events]
        assert "node-join" in kinds
        assert "node-leave" in kinds
        # The leave's requeues (if any) preceded it and freed their slices.
        verify_trace(list(sink.events))


class TestInvariantChecker:
    def test_stock_run_passes_and_quiesces(self):
        tracer, events = traced_run(SPEC)
        checker = tracer.checker
        assert checker.events_checked == len(events) > 0
        checker.assert_quiescent()
        # The same stream verifies offline too.
        assert verify_trace(events) == len(events)

    def test_verify_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlSink(path))
        run_experiment(SPEC, tracer=tracer)
        tracer.close()
        assert verify_jsonl(path) == tracer.events_emitted

    def test_missing_submit_rejected(self):
        events = traced_run(SPEC)[1]
        corrupted = [e for e in events if e.kind != "submit"]
        with pytest.raises(InvariantViolation, match="expected one of submitted"):
            verify_trace(corrupted)

    def test_complete_before_start_rejected(self):
        events = traced_run(SPEC)[1]
        corrupted = [
            TraceEvent(e.time, "complete", e.key, e.payload) if e.kind == "start" else e
            for e in events
        ]
        with pytest.raises(InvariantViolation):
            verify_trace(corrupted)

    def test_time_reversal_rejected(self):
        events = traced_run(SPEC)[1]
        last = events[-1]
        corrupted = events[:-1] + [
            TraceEvent(0.0, last.kind, last.key, last.payload)
        ]
        with pytest.raises(InvariantViolation, match="time moved backwards"):
            verify_trace(corrupted)

    def test_fake_reuse_rejected(self):
        events = traced_run(SPEC)[1]
        corrupted = []
        flipped = False
        for e in events:
            if (
                not flipped
                and e.kind == "dispatch"
                and e.payload.get("pe_kind") == "RPE"
                and not e.payload.get("reused")
            ):
                payload = dict(e.payload)
                payload["reused"] = True
                payload["reconfig_time"] = 0.0
                e = TraceEvent(e.time, e.kind, e.key, payload)
                flipped = True
            corrupted.append(e)
        assert flipped
        with pytest.raises(InvariantViolation, match="reuse"):
            verify_trace(corrupted)

    def test_reuse_with_reconfig_time_rejected(self):
        checker = TraceInvariantChecker()
        checker.emit(TraceEvent(0.0, "submit", (0, 0), {"function": "f"}))
        with pytest.raises(InvariantViolation, match="zero reconfiguration"):
            checker.emit(
                TraceEvent(
                    1.0,
                    "dispatch",
                    (0, 0),
                    {"pe_kind": "RPE", "node": 0, "resource": 0, "region": 0,
                     "function": "f", "reused": True, "reconfig_time": 0.5},
                )
            )

    def test_double_allocation_rejected(self):
        events = traced_run(SPEC)[1]
        corrupted = []
        duplicated = False
        for e in events:
            corrupted.append(e)
            if e.kind == "slice-alloc" and not duplicated:
                corrupted.append(e)
                duplicated = True
        assert duplicated
        with pytest.raises(InvariantViolation, match="already allocated"):
            verify_trace(corrupted)

    def test_free_without_alloc_rejected(self):
        checker = TraceInvariantChecker()
        with pytest.raises(InvariantViolation, match="not allocated"):
            checker.emit(
                TraceEvent(0.0, "slice-free", (0, 0),
                           {"node": 0, "resource": 1, "region": 0,
                            "slices": 100, "capacity": 200})
            )

    def test_over_capacity_rejected(self):
        checker = TraceInvariantChecker()
        checker.emit(
            TraceEvent(0.0, "slice-alloc", (0, 0),
                       {"node": 0, "resource": 1, "region": 0,
                        "slices": 150, "capacity": 200})
        )
        with pytest.raises(InvariantViolation, match="exceeds capacity"):
            checker.emit(
                TraceEvent(0.0, "slice-alloc", (0, 1),
                           {"node": 0, "resource": 1, "region": 1,
                            "slices": 100, "capacity": 200})
            )

    def test_truncated_run_not_quiescent(self):
        events = traced_run(SPEC)[1]
        checker = TraceInvariantChecker()
        # Cut the stream right after the first dispatch.
        for e in events:
            checker.emit(e)
            if e.kind == "dispatch":
                break
        with pytest.raises(InvariantViolation):
            checker.assert_quiescent()


class TestJsonlFlush:
    def test_flushes_every_n_events(self, tmp_path):
        """A crashed run (sink never closed) still leaves the flushed
        prefix readable on disk."""
        path = tmp_path / "partial.jsonl"
        sink = JsonlSink(path, flush_every=4)
        for i in range(10):
            sink.emit(TraceEvent(time=float(i), kind="submit", key=(i, 0)))
        # Two full flush windows (8 events) are durable before close.
        on_disk = read_jsonl(path)
        assert len(on_disk) == 8
        assert [e.key for e in on_disk] == [(i, 0) for i in range(8)]
        sink.close()
        assert len(read_jsonl(path)) == 10

    def test_explicit_flush(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path, flush_every=None)
        sink.emit(TraceEvent(time=0.0, kind="submit", key=(0, 0)))
        sink.flush()
        assert len(read_jsonl(path)) == 1
        sink.close()
        sink.flush()  # no-op after close, never raises

    def test_bad_flush_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "t.jsonl", flush_every=0)


class TestResilienceRoundTrip:
    """PR 3's resilience event kinds must survive the full disk
    round-trip: emit -> JSONL -> read_jsonl -> canonical_events."""

    RESILIENCE_KINDS = ("quarantine", "probe", "timeout", "checkpoint",
                        "migrate", "speculate")

    def _resilient_spec(self):
        from repro.grid.health import HealthPolicy
        from repro.sim.faults import FaultSpec
        from repro.sim.resilience import (
            CheckpointSpec,
            DeadlineSpec,
            ResilienceSpec,
            SpeculationSpec,
        )

        return ExperimentSpec(
            tasks=14,
            configurations=4,
            arrival_rate_per_s=8.0,
            area_range=(2_000, 14_000),
            gpp_fraction=0.2,
            seed=11,
            faults=FaultSpec(
                crash_rate_per_s=0.25,
                downtime_range_s=(1.0, 3.0),
                config_fault_prob=0.35,
                seu_rate_per_s=0.2,
                horizon_s=8.0,
            ),
            resilience=ResilienceSpec(
                breaker=HealthPolicy(
                    min_events=2, open_threshold=0.4, open_duration_s=4.0
                ),
                deadlines=DeadlineSpec(
                    soft_factor=2.0, hard_factor=6.0, slack_s=0.25
                ),
                checkpoint=CheckpointSpec(interval_s=0.1),
                speculation=SpeculationSpec(slowdown_factor=1.5),
            ),
        )

    def test_kinds_survive_disk_roundtrip(self, tmp_path):
        path = tmp_path / "resilient.jsonl"
        memory = InMemorySink()
        tracer = Tracer(TraceInvariantChecker(), JsonlSink(path))
        tracer.add_sink(memory)
        run_experiment(self._resilient_spec(), tracer=tracer)
        tracer.close()

        loaded = canonical_events(read_jsonl(path))
        direct = canonical_events(list(memory.events))
        assert loaded == direct
        kinds = {e.kind for e in loaded}
        # Speculation needs a deterministic straggler this workload
        # lacks; its round-trip is locked synthetically below.
        for kind in ("quarantine", "probe", "timeout", "checkpoint", "migrate"):
            assert kind in kinds, f"run never emitted {kind!r}"

    def test_every_kind_roundtrips_synthetically(self, tmp_path):
        """Each resilience kind, with its real payload shape, survives
        JSONL -> read_jsonl -> canonical_events losslessly."""
        events = [
            TraceEvent(0.5, "quarantine", None,
                       {"node": 1, "phase": "open", "score": 0.25,
                        "episode": 1}),
            TraceEvent(1.0, "probe", (907, 3), {"node": 1}),
            TraceEvent(1.5, "timeout", (907, 3),
                       {"deadline": "soft", "action": "warn",
                        "budget_s": 2.0}),
            TraceEvent(2.0, "checkpoint", (907, 3),
                       {"node": 1, "region": 0, "frac": 0.5}),
            TraceEvent(2.5, "migrate", (908, 4),
                       {"node": 0, "from_node": 1}),
            TraceEvent(3.0, "speculate", (908, 4),
                       {"action": "win", "node": 0, "loser": 1}),
        ]
        path = tmp_path / "synthetic.jsonl"
        sink = JsonlSink(path)
        for event in events:
            sink.emit(event)
        sink.close()
        loaded = read_jsonl(path)
        assert loaded == events
        canon = canonical_events(loaded)
        assert [e.kind for e in canon] == [e.kind for e in events]
        assert [e.payload for e in canon] == [e.payload for e in events]
        # Job ids remapped densely (907 -> 0, 908 -> 1), subkeys kept.
        assert [e.key for e in canon] == [
            None, (0, 3), (0, 3), (0, 3), (1, 4), (1, 4),
        ]

    def test_payloads_preserved_exactly(self, tmp_path):
        path = tmp_path / "resilient.jsonl"
        tracer = Tracer(JsonlSink(path))
        run_experiment(self._resilient_spec(), tracer=tracer)
        tracer.close()
        loaded = read_jsonl(path)
        # Serialization is lossless line-by-line.
        for event in loaded:
            assert TraceEvent.from_json(event.to_json()) == event
        # Canonicalized resilience events keep tuple keys and payloads.
        for event in canonical_events(loaded):
            if event.kind in self.RESILIENCE_KINDS:
                assert event.payload
        # And the re-read stream still satisfies every invariant.
        assert verify_trace(loaded) == len(loaded)


class TestCanonicalization:
    def test_job_ids_remapped_densely(self):
        events = [
            TraceEvent(0.0, "submit", (1234, 0)),
            TraceEvent(0.1, "submit", (1235, 1)),
            TraceEvent(0.2, "dispatch", (1234, 0)),
        ]
        canon = canonical_events(events)
        assert [e.key for e in canon] == [(0, 0), (1, 1), (0, 0)]

    def test_two_runs_identical_after_canonicalization(self):
        first = canonical_events(traced_run(SPEC)[1])
        second = canonical_events(traced_run(SPEC)[1])
        assert [e.to_json() for e in first] == [e.to_json() for e in second]
