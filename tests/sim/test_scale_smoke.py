"""Scale smoke: a 1e5-task end-to-end run through the hot path.

Marked ``slow`` and deselected by default (``addopts = -m 'not slow'``);
run with ``pytest -m slow`` locally or via the scheduled CI job.  The
quick suite locks *correctness* of the scale machinery (differential
battery, golden byte-identity, stream-identity, bulk-metrics
equivalence); this file locks that the machinery actually *survives*
scale -- every task accounted for, monotone clock, and memory bounded
well below what 1e5 eager Task objects would cost.
"""

import tracemalloc

import pytest

from repro.sim.experiment import ExperimentSpec, run_scale_experiment

pytestmark = pytest.mark.slow

TASKS = 100_000

#: Peak *python-allocated* memory budget for the run.  Eagerly
#: materializing 1e5 Task trees costs ~0.5 KB each (>= 50 MB); the
#: columnar path keeps a few numpy arrays plus transient per-arrival
#: objects, so 64 MB is generous headroom while still catching any
#: regression back to per-task storage.
MEM_BUDGET_BYTES = 64 * 1024 * 1024


@pytest.fixture(scope="module")
def scale_result():
    spec = ExperimentSpec(tasks=TASKS, seed=5, engine="calendar")
    tracemalloc.start()
    try:
        result = run_scale_experiment(spec)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def test_no_task_is_lost(scale_result):
    report = scale_result[0].report
    assert report.completed + report.discarded + report.pending == TASKS
    assert report.completed > 0


def test_clock_is_monotone_and_covers_the_run(scale_result):
    report = scale_result[0].report
    assert report.horizon_s > 0.0
    # The makespan is the final engine clock; arrivals at ~2/s for 1e5
    # tasks put it around 5e4 simulated seconds.
    assert report.horizon_s >= TASKS / 4.0
    # Waits are derived from (dispatch - arrival) pairs; a non-monotone
    # clock would surface as a negative wait.
    assert report.mean_wait_s >= 0.0
    assert report.p95_wait_s >= 0.0


def test_memory_stays_bounded(scale_result):
    peak = scale_result[1]
    assert peak < MEM_BUDGET_BYTES, (
        f"peak traced memory {peak / 1e6:.1f} MB exceeds the "
        f"{MEM_BUDGET_BYTES / 1e6:.0f} MB scale budget -- did per-task "
        "allocation creep back into the hot path?"
    )
