"""The adaptive resilience layer: deadlines, checkpoint/restart +
migration, speculative replicas, and breaker-driven quarantine.

Scenario tests drive :class:`DReAMSim` directly with hand-built grids
(the same idiom as ``test_faults.py``); the acceptance test at the
bottom runs the declarative chaos path and pins the PR's headline
claim -- checkpointing strictly reduces wasted work under the chaos
preset at identical seeds.
"""

import pytest

from repro.core.execreq import Artifacts, ExecReq, MinValue
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.health import HealthPolicy
from repro.grid.jss import JobStatus
from repro.grid.network import Network
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.bitstream import Bitstream
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.taxonomy import PEClass
from repro.sim.experiment import ExperimentSpec, NodeSpec, run_experiment
from repro.sim.faults import FAULT_PRESETS, FaultSpec, RetryPolicy
from repro.sim.resilience import (
    RESILIENCE_PRESETS,
    CheckpointSpec,
    DeadlineSpec,
    ResilienceSpec,
    SpeculationSpec,
)
from repro.sim.simulator import DReAMSim
from repro.sim.tracing import InMemorySink, TraceInvariantChecker, Tracer


def gpp_req():
    return ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x"))


def gpp_task(task_id, t=1.0, **kwargs):
    return simple_task(task_id, gpp_req(), t, **kwargs)


def hw_task(task_id, function="fft", slices=9_000, t=1.0):
    bs = Bitstream(200 + task_id, "XC5VLX155", 1_000_000, slices, implements=function)
    return simple_task(
        task_id,
        ExecReq(
            node_type=PEClass.RPE,
            constraints=(MinValue("slices", slices),),
            artifacts=Artifacts(application_code="x", bitstream=bs),
        ),
        t,
        function=function,
    )


def hybrid_rms(*, nodes=1, network=False):
    net = Network.fully_connected(list(range(nodes))) if network else None
    rms = ResourceManagementSystem(network=net)
    for node_id in range(nodes):
        node = Node(node_id=node_id)
        node.add_rpe(device_by_model("XC5VLX155"), regions=2)
        node.add_gpp(GPPSpec(cpu_model=f"cpu{node_id}", mips=1_000))
        rms.register_node(node)
    return rms


def gpp_rms(*, nodes=1, mips=1_000):
    rms = ResourceManagementSystem()
    for node_id in range(nodes):
        node = Node(node_id=node_id)
        node.add_gpp(GPPSpec(cpu_model=f"cpu{node_id}", mips=mips))
        rms.register_node(node)
    return rms


def checked_sim(rms, resilience, **kwargs):
    """A simulator with the online invariant checker attached, so every
    scenario also validates its own event stream."""
    tracer = Tracer(TraceInvariantChecker(), InMemorySink())
    return DReAMSim(rms, tracer=tracer, resilience=resilience, **kwargs), tracer


class TestSpecs:
    def test_deadline_spec_validation(self):
        with pytest.raises(ValueError):
            DeadlineSpec(soft_factor=0.0)
        with pytest.raises(ValueError):
            DeadlineSpec(soft_factor=5.0, hard_factor=2.0)
        with pytest.raises(ValueError):
            DeadlineSpec(slack_s=-1.0)
        with pytest.raises(ValueError):
            CheckpointSpec(interval_s=0.0)
        with pytest.raises(ValueError):
            SpeculationSpec(slowdown_factor=1.0)

    def test_budget_derivation(self):
        spec = DeadlineSpec(soft_factor=4.0, hard_factor=12.0, slack_s=1.0)
        assert spec.soft_deadline_s(2.0) == pytest.approx(9.0)
        assert spec.hard_deadline_s(2.0) == pytest.approx(25.0)

    def test_enabled_property(self):
        assert not ResilienceSpec().enabled
        assert ResilienceSpec(breaker=HealthPolicy()).enabled
        assert ResilienceSpec(deadlines=DeadlineSpec()).enabled

    def test_presets(self):
        assert RESILIENCE_PRESETS["none"].enabled is False
        for name in ("defensive", "aggressive"):
            assert RESILIENCE_PRESETS[name].enabled, name


class TestDeadlines:
    def test_hard_deadline_fails_task(self):
        """A 10 s task against a 5 s hard budget dies at t=5 with the
        ``deadline_exceeded`` reason on its JSS record."""
        res = ResilienceSpec(
            deadlines=DeadlineSpec(
                soft_factor=0.2, hard_factor=0.5, slack_s=0.0, reschedule=False
            )
        )
        sim, tracer = checked_sim(gpp_rms(), res)
        sim.submit_workload([(0.0, gpp_task(0, t=10.0))])
        report = sim.run()
        tracer.close()
        assert report.completed == 0
        assert report.failed == 1
        assert report.deadline_soft_misses == 1
        assert report.deadline_hard_misses == 1
        assert report.deadline_miss_rate == 1.0
        job = sim.jss.job(next(j for j, _ in sim.metrics.tasks))
        record = job.records[0]
        assert record.status is JobStatus.FAILED
        assert record.finish_time == pytest.approx(5.0)
        assert record.failure_reason.startswith("deadline_exceeded")

    def test_soft_deadline_requeues_on_another_node(self):
        """The soft watchdog cancels the straggling placement, excludes
        its node, and the retry lands on the other node."""
        res = ResilienceSpec(
            deadlines=DeadlineSpec(soft_factor=0.3, hard_factor=10.0, slack_s=0.0)
        )
        sim, tracer = checked_sim(
            gpp_rms(nodes=2), res, retry=RetryPolicy(backoff_base_s=0.5)
        )
        sim.submit_workload([(0.0, gpp_task(0, t=10.0))])
        report = sim.run()
        tracer.close()
        assert report.completed == 1
        assert report.failed == 0
        assert report.deadline_soft_misses == 1
        assert report.deadline_hard_misses == 0
        # Cancelled at t=3, 0.5 s backoff, full 10 s rerun elsewhere.
        assert report.makespan_s == pytest.approx(13.5)
        assert report.wasted_work_s == pytest.approx(3.0)
        kinds = [e.kind for e in tracer.sinks[1].events]
        assert "timeout" in kinds

    def test_soft_miss_without_reschedule_only_warns(self):
        res = ResilienceSpec(
            deadlines=DeadlineSpec(
                soft_factor=0.3, hard_factor=10.0, slack_s=0.0, reschedule=False
            )
        )
        sim, tracer = checked_sim(gpp_rms(), res)
        sim.submit_workload([(0.0, gpp_task(0, t=10.0))])
        report = sim.run()
        tracer.close()
        assert report.completed == 1
        assert report.deadline_soft_misses == 1
        assert report.makespan_s == pytest.approx(10.0)  # undisturbed
        timeout = next(e for e in tracer.sinks[1].events if e.kind == "timeout")
        assert timeout.payload["action"] == "warn"

    def test_per_task_budgets_override_spec(self):
        """Explicit Task deadlines win over the spec's derived ones."""
        res = ResilienceSpec(
            deadlines=DeadlineSpec(soft_factor=100.0, hard_factor=100.0)
        )
        from dataclasses import replace

        task = replace(gpp_task(0, t=10.0), soft_deadline_s=1.0, hard_deadline_s=2.0)
        sim, tracer = checked_sim(gpp_rms(), res)
        sim.submit_workload([(0.0, task)])
        report = sim.run()
        tracer.close()
        assert report.failed == 1
        record = sim.jss.job(next(j for j, _ in sim.metrics.tasks)).records[0]
        assert record.finish_time == pytest.approx(2.0)

    def test_generous_deadlines_change_nothing(self):
        baseline = DReAMSim(gpp_rms())
        baseline.submit_workload([(0.0, gpp_task(0, t=2.0)), (0.5, gpp_task(1))])
        base_report = baseline.run()
        res = ResilienceSpec(deadlines=DeadlineSpec())
        sim, tracer = checked_sim(gpp_rms(), res)
        sim.submit_workload([(0.0, gpp_task(0, t=2.0)), (0.5, gpp_task(1))])
        report = sim.run()
        tracer.close()
        assert report.deadline_soft_misses == 0
        assert report.deadline_hard_misses == 0
        assert report.makespan_s == base_report.makespan_s
        assert report.mean_wait_s == base_report.mean_wait_s

    def test_hard_deadline_in_queue_fails_without_placement(self):
        """A task that never gets dispatched (grid saturated) still
        fails at its hard deadline, straight from the queue."""
        res = ResilienceSpec(
            deadlines=DeadlineSpec(
                soft_factor=1.0, hard_factor=2.0, slack_s=0.0, reschedule=False
            )
        )
        sim, tracer = checked_sim(gpp_rms(), res)
        # Task 0 occupies the only GPP for 10 s; task 1 (t=3) waits and
        # its hard deadline (6 s) fires while still queued.
        sim.submit_workload(
            [(0.0, gpp_task(0, t=10.0)), (0.0, gpp_task(1, t=3.0))]
        )
        report = sim.run()
        tracer.close()
        assert report.failed >= 1
        failed = [
            tm for tm in sim.metrics.tasks.values() if tm.failure_reason
        ]
        assert any(
            tm.failure_reason.startswith("deadline_exceeded") and tm.dispatch is None
            for tm in failed
        )


class TestCheckpoints:
    def run_hw(self, *, resilience, crash_at=None, t=4.0, retry=None):
        rms = hybrid_rms()
        sim, tracer = checked_sim(
            rms, resilience, retry=retry or RetryPolicy(backoff_base_s=0.5)
        )
        sim.submit_workload([(0.0, hw_task(0, t=t))])
        if crash_at is not None:
            sim.schedule_node_crash(crash_at, 0, rejoin_after_s=1.0)
        report = sim.run()
        tracer.close()
        return sim, report, tracer

    def test_checkpoints_taken_at_intervals(self):
        res = ResilienceSpec(checkpoint=CheckpointSpec(interval_s=1.0))
        sim, report, tracer = self.run_hw(resilience=res)
        assert report.completed == 1
        # 4 s of fabric execution, snapshots strictly before the end.
        assert report.checkpoints == 3
        fracs = [
            e.payload["frac"]
            for e in tracer.sinks[1].events
            if e.kind == "checkpoint"
        ]
        assert fracs == [pytest.approx(0.25), pytest.approx(0.5), pytest.approx(0.75)]

    def test_overhead_extends_execution(self):
        res = ResilienceSpec(
            checkpoint=CheckpointSpec(interval_s=1.0, overhead_s=0.1)
        )
        _, plain, _ = self.run_hw(
            resilience=ResilienceSpec(checkpoint=CheckpointSpec(interval_s=1.0))
        )
        _, taxed, _ = self.run_hw(resilience=res)
        assert taxed.checkpoint_overhead_s == pytest.approx(0.3)
        assert taxed.makespan_s == pytest.approx(plain.makespan_s + 0.3)

    def test_gpp_tasks_are_not_checkpointed(self):
        res = ResilienceSpec(checkpoint=CheckpointSpec(interval_s=0.25))
        sim, tracer = checked_sim(gpp_rms(), res)
        sim.submit_workload([(0.0, gpp_task(0, t=4.0))])
        report = sim.run()
        tracer.close()
        assert report.completed == 1
        assert report.checkpoints == 0

    def test_crash_resumes_from_last_checkpoint(self):
        """A crash mid-execution restarts from the newest snapshot:
        only the tail past it is re-run, and the saved head is
        accounted in ``wasted_work_saved_s``."""
        res = ResilienceSpec(checkpoint=CheckpointSpec(interval_s=1.0))
        # Locate the execution window first (setup is reconfig-time).
        sim0, plain, _ = self.run_hw(resilience=None)
        tm0 = next(iter(sim0.metrics.tasks.values()))
        crash_at = tm0.start + 2.5  # past the frac=0.5 snapshot
        _, without, _ = self.run_hw(resilience=None, crash_at=crash_at)
        sim1, with_ckpt, tracer = self.run_hw(resilience=res, crash_at=crash_at)
        assert without.completed == with_ckpt.completed == 1
        assert with_ckpt.wasted_work_saved_s == pytest.approx(2.0)
        # Without checkpoints the full 2.5 s is lost; with them only
        # the 0.5 s past the last snapshot is.
        assert without.wasted_work_s == pytest.approx(with_ckpt.wasted_work_s + 2.0)
        assert with_ckpt.makespan_s < without.makespan_s
        # The resumed dispatch is recorded as a migration.
        assert with_ckpt.migrations == 1
        kinds = [e.kind for e in tracer.sinks[1].events]
        assert "migrate" in kinds

    def test_short_tasks_skip_checkpointing(self):
        res = ResilienceSpec(checkpoint=CheckpointSpec(interval_s=10.0))
        _, report, _ = self.run_hw(resilience=res, t=4.0)
        assert report.checkpoints == 0


class TestSpeculation:
    def stretched(self, *, overhead_s, factor=1.5, nodes=2):
        """A fabric task whose checkpoint overhead stretches it past
        the speculation trigger -- a deterministic straggler."""
        res = ResilienceSpec(
            checkpoint=CheckpointSpec(interval_s=1.0, overhead_s=overhead_s),
            speculation=SpeculationSpec(slowdown_factor=factor),
        )
        rms = hybrid_rms(nodes=nodes, network=True)
        sim, tracer = checked_sim(rms, res)
        sim.submit_workload([(0.0, hw_task(0, t=4.0))])
        report = sim.run()
        tracer.close()
        return sim, report, tracer

    def test_replica_wins_against_straggler(self):
        # Primary: 4 s exec + 3 x 3 s overhead ~= 13 s; trigger at
        # ~1.5 x 4 s = 6 s; replica runs 4 s untaxed and wins at ~10 s.
        sim, report, tracer = self.stretched(overhead_s=3.0)
        assert report.completed == 1
        assert report.speculative_launches == 1
        assert report.speculative_wins == 1
        assert report.speculative_win_rate == 1.0
        tm = next(iter(sim.metrics.tasks.values()))
        assert tm.speculative_win
        win = next(
            e
            for e in tracer.sinks[1].events
            if e.kind == "speculate" and e.payload["action"] == "win"
        )
        assert win.payload["node"] != win.payload["loser"]
        # The task completed on the replica's node.
        assert tm.node_id == win.payload["node"]

    def test_replica_loses_against_recovering_primary(self):
        # Primary: 4 s + 3 x 1 s = 7 s finish; trigger at ~6 s; the
        # replica (4 s) would finish at ~10 s and loses.
        sim, report, tracer = self.stretched(overhead_s=1.0)
        assert report.completed == 1
        assert report.speculative_launches == 1
        assert report.speculative_wins == 0
        assert report.speculative_wasted_s > 0
        lose = next(
            e
            for e in tracer.sinks[1].events
            if e.kind == "speculate" and e.payload["action"] == "lose"
        )
        assert lose.key is not None

    def test_no_speculation_for_healthy_tasks(self):
        res = ResilienceSpec(speculation=SpeculationSpec(slowdown_factor=1.5))
        rms = hybrid_rms(nodes=2, network=True)
        sim, tracer = checked_sim(rms, res)
        sim.submit_workload([(0.0, hw_task(0, t=4.0)), (0.0, gpp_task(1))])
        report = sim.run()
        tracer.close()
        assert report.completed == 2
        assert report.speculative_launches == 0

    def test_single_node_grid_cannot_speculate(self):
        """No second node to host the replica: the trigger fires but
        finds no placement, and the run completes unreplicated."""
        sim, report, tracer = self.stretched(overhead_s=3.0, nodes=1)
        assert report.completed == 1
        assert report.speculative_launches == 0


class TestQuarantineIntegration:
    def flaky_grid_run(self, *, breaker=True, tasks=6):
        """Node 0 crashes repeatedly; with the breaker on it gets
        quarantined and later work avoids it."""
        policy = HealthPolicy(
            ewma_alpha=0.6,
            open_threshold=0.5,
            min_events=2,
            open_duration_s=30.0,
        )
        res = ResilienceSpec(breaker=policy) if breaker else None
        rms = gpp_rms(nodes=2)
        sim, tracer = checked_sim(
            rms, res, retry=RetryPolicy(backoff_base_s=0.25)
        )
        workload = [(float(i), gpp_task(i, t=2.0)) for i in range(tasks)]
        sim.submit_workload(workload)
        for crash_at in (0.5, 1.5, 2.5):
            sim.schedule_node_crash(crash_at, 0, rejoin_after_s=0.4)
        report = sim.run()
        tracer.close()
        return sim, report, tracer

    def test_breaker_quarantines_flaky_node(self):
        sim, report, tracer = self.flaky_grid_run()
        assert report.completed == 6
        assert report.quarantines >= 1
        assert report.quarantine_time_s > 0
        events = tracer.sinks[1].events
        opened = [
            e for e in events
            if e.kind == "quarantine" and e.payload["phase"] == "open"
        ]
        assert opened and all(e.payload["node"] == 0 for e in opened)
        # After the (first) trip, no dispatch lands on node 0.
        t_open = opened[0].time
        later = [
            e for e in events
            if e.kind == "dispatch" and e.time > t_open
        ]
        assert later and all(e.payload["node"] != 0 for e in later)

    def test_breaker_reduces_fault_exposure(self):
        _, without, _ = self.flaky_grid_run(breaker=False)
        _, with_breaker, _ = self.flaky_grid_run(breaker=True)
        assert with_breaker.completed == without.completed == 6
        # Quarantine steers work away from the crashing node, so fewer
        # placements are present to be killed.
        assert with_breaker.fault_events < without.fault_events

    def test_half_open_probe_rehabilitates_node(self):
        """After the quarantine window a probe trickles through and,
        when it succeeds, the breaker closes again."""
        policy = HealthPolicy(
            ewma_alpha=0.6,
            open_threshold=0.5,
            min_events=2,
            open_duration_s=5.0,
            half_open_probes=1,
            close_after=1,
        )
        res = ResilienceSpec(breaker=policy)
        rms = gpp_rms(nodes=2)
        sim, tracer = checked_sim(rms, res, retry=RetryPolicy(backoff_base_s=0.25))
        # Two early crashes trip node 0's breaker.  A long task pins
        # node 1 (submitted at 5.9, while node 0 is still OPEN), so the
        # late tasks can only run by probing the HALF_OPEN node 0.
        workload = [(float(i) * 0.5, gpp_task(i, t=1.0)) for i in range(4)]
        workload += [(5.9, gpp_task(20, t=30.0))]
        workload += [(float(8 + 2 * i), gpp_task(10 + i, t=1.0)) for i in range(4)]
        sim.submit_workload(workload)
        for crash_at in (0.25, 1.25):
            sim.schedule_node_crash(crash_at, 0, rejoin_after_s=0.3)
        report = sim.run()
        tracer.close()
        events = tracer.sinks[1].events
        kinds = [e.kind for e in events]
        assert "probe" in kinds
        closes = [
            e for e in events
            if e.kind == "quarantine" and e.payload["phase"] == "close"
        ]
        assert closes, "breaker never re-closed"
        assert report.completed == len(sim.metrics.tasks)


class TestStreamIsolation:
    def submit_times(self, spec):
        tracer = Tracer(TraceInvariantChecker(), InMemorySink())
        run_experiment(spec, tracer=tracer)
        tracer.close()
        return [
            (e.time, e.payload.get("task"))
            for e in tracer.sinks[1].events
            if e.kind == "submit"
        ]

    def test_resilience_does_not_perturb_arrivals_under_chaos(self):
        """Arming every resilience mechanism leaves the seeded arrival
        sequence untouched: the layer draws no randomness, so the
        PR 2 stream-splitting contract extends to the new layer."""
        spec = ExperimentSpec(tasks=40, seed=7, faults=FAULT_PRESETS["chaos"])
        plain = self.submit_times(spec)
        armed = self.submit_times(
            spec.with_(resilience=RESILIENCE_PRESETS["aggressive"])
        )
        assert len(plain) == 40
        assert plain == armed


class TestAcceptance:
    """The PR's measurable claim: under the chaos preset, enabling
    checkpointing strictly lowers the wasted slice-seconds at identical
    seeds."""

    #: Long fabric tasks (modest speedups, 4-10 s required times) so
    #: the chaos preset's crashes/SEUs land mid-execution, where
    #: checkpoints matter.
    SPEC = ExperimentSpec(
        tasks=80,
        nodes=(
            NodeSpec(gpps=1, gpp_mips=2_000, rpe_models=("XC5VLX330",), regions_per_rpe=3),
            NodeSpec(gpps=1, gpp_mips=1_500, rpe_models=("XC5VLX155",), regions_per_rpe=2),
        ),
        arrival_rate_per_s=2.0,
        area_range=(2_000, 12_000),
        gpp_fraction=0.2,
        required_time_range_s=(4.0, 10.0),
        speedup_range=(2.0, 5.0),
        seed=0,
        faults=FAULT_PRESETS["chaos"],
    )

    def test_checkpointing_strictly_cuts_wasted_work(self):
        without = run_experiment(self.SPEC).report
        with_ckpt = run_experiment(
            self.SPEC.with_(
                resilience=ResilienceSpec(checkpoint=CheckpointSpec(interval_s=0.25))
            )
        ).report
        assert without.fault_events > 0, "chaos preset must actually bite"
        assert with_ckpt.checkpoints > 0
        assert with_ckpt.wasted_work_saved_s > 0
        assert with_ckpt.wasted_slice_seconds < without.wasted_slice_seconds
