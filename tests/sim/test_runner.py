"""Tests for the parallel experiment runner and its result cache."""

import json
from dataclasses import asdict

import pytest

from repro.sim.experiment import ExperimentSpec, replicate, run_experiment, sweep
from repro.sim.runner import (
    ExperimentRunner,
    parallel_map,
    parallel_replicate,
    parallel_sweep,
    run_many,
    spec_cache_key,
)

BASE = ExperimentSpec(tasks=40, configurations=4, seed=9)
STRATEGIES = ["fcfs", "first-fit", "hybrid-cost", "best-fit-area"]


def report_bytes(result) -> bytes:
    """Canonical byte serialization of a report, for exact comparison."""
    return json.dumps(asdict(result.report), sort_keys=True).encode("ascii")


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"worker failure on {x}")


class TestParallelMap:
    def test_order_preserved(self):
        assert parallel_map(_square, range(10), jobs=2) == [x * x for x in range(10)]

    def test_serial_fallback_with_one_job(self):
        assert parallel_map(_square, [3, 4], jobs=1) == [9, 16]

    def test_worker_exception_surfaces(self):
        with pytest.raises(ValueError, match="worker failure"):
            parallel_map(_boom, [1, 2, 3], jobs=2)

    def test_worker_exception_surfaces_serially(self):
        with pytest.raises(ValueError, match="worker failure"):
            parallel_map(_boom, [1], jobs=1)

    def test_empty_batch(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1], jobs=0)


class TestParallelMatchesSerial:
    def test_strategy_sweep_byte_identical(self):
        specs = [BASE.with_(strategy=s) for s in STRATEGIES]
        serial = ExperimentRunner(jobs=1).run(specs)
        wide = ExperimentRunner(jobs=4).run(specs)
        assert [report_bytes(r) for r in serial] == [report_bytes(r) for r in wide]
        # And both match the plain serial experiment API.
        for spec, result in zip(specs, serial):
            assert report_bytes(result) == report_bytes(run_experiment(spec))

    def test_seed_replication_byte_identical(self):
        seeds = [1, 2, 3, 4]
        specs = [BASE.with_(seed=s) for s in seeds]
        serial = ExperimentRunner(jobs=1).run(specs)
        wide = ExperimentRunner(jobs=4).run(specs)
        assert [report_bytes(r) for r in serial] == [report_bytes(r) for r in wide]

    def test_parallel_sweep_matches_sweep(self):
        serial = sweep(BASE, "strategy", STRATEGIES)
        wide = parallel_sweep(BASE, "strategy", STRATEGIES, jobs=2)
        assert [report_bytes(r) for r in serial] == [report_bytes(r) for r in wide]

    def test_parallel_replicate_matches_replicate(self):
        seeds = [5, 6, 7]
        assert parallel_replicate(BASE, seeds, jobs=2) == replicate(BASE, seeds)

    def test_results_in_submission_order(self):
        specs = [BASE.with_(seed=s) for s in (30, 10, 20)]
        results = run_many(specs, jobs=3)
        assert [r.spec.seed for r in results] == [30, 10, 20]


class TestCache:
    def test_cache_hit_skips_execution(self, tmp_path):
        runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        specs = [BASE.with_(strategy=s) for s in STRATEGIES]
        first = runner.run(specs)
        assert runner.last_stats.executed == len(specs)
        assert runner.last_stats.cache_hits == 0

        again = runner.run(specs)
        assert runner.last_stats.executed == 0
        assert runner.last_stats.cache_hits == len(specs)
        assert [report_bytes(r) for r in first] == [report_bytes(r) for r in again]

    def test_cached_results_identical_across_runners(self, tmp_path):
        fresh = ExperimentRunner(jobs=1).run([BASE])[0]
        ExperimentRunner(jobs=1, cache_dir=tmp_path).run([BASE])
        cached = ExperimentRunner(jobs=1, cache_dir=tmp_path).run([BASE])[0]
        assert report_bytes(fresh) == report_bytes(cached)
        assert cached.spec == BASE

    def test_partial_cache_mixes_hits_and_misses(self, tmp_path):
        runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        runner.run([BASE.with_(strategy="fcfs")])
        results = runner.run(
            [BASE.with_(strategy="fcfs"), BASE.with_(strategy="hybrid-cost")]
        )
        assert runner.last_stats.cache_hits == 1
        assert runner.last_stats.executed == 1
        assert [r.spec.strategy for r in results] == ["fcfs", "hybrid-cost"]

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        runner.run([BASE])
        key = spec_cache_key(BASE)
        (tmp_path / f"{key}.json").write_text("not json{", encoding="ascii")
        results = runner.run([BASE])
        assert runner.last_stats.executed == 1
        assert report_bytes(results[0]) == report_bytes(run_experiment(BASE))

    def test_energy_flag_partitions_the_cache(self, tmp_path):
        plain = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        audited = ExperimentRunner(jobs=1, cache_dir=tmp_path, audit_energy=True)
        plain.run([BASE])
        results = audited.run([BASE])
        assert audited.last_stats.executed == 1  # not served the plain entry
        assert results[0].energy is not None
        # Audited entries round-trip with their energy report.
        again = audited.run([BASE])
        assert audited.last_stats.cache_hits == 1
        assert again[0].energy == results[0].energy


class TestSpecCacheKey:
    def test_equal_specs_equal_keys(self):
        assert spec_cache_key(BASE) == spec_cache_key(BASE.with_())

    def test_any_knob_changes_the_key(self):
        assert spec_cache_key(BASE) != spec_cache_key(BASE.with_(seed=10))
        assert spec_cache_key(BASE) != spec_cache_key(BASE.with_(strategy="fcfs"))
        assert spec_cache_key(BASE) != spec_cache_key(BASE, audit_energy=True)


class TestRunnerConfig:
    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(jobs=0)

    def test_stats_describe_last_batch(self):
        runner = ExperimentRunner(jobs=2)
        runner.run([BASE.with_(seed=s) for s in (1, 2)])
        stats = runner.last_stats
        assert stats.requested == 2
        assert stats.executed == 2
        assert stats.mode == "parallel"
        assert stats.wall_time_s > 0
        assert "2 executed" in stats.summary_line()
