"""Causal run analysis: ledger conservation, exemplars, critical path,
and the host-phase profiler's zero-cost-when-disabled contract."""

import json

import pytest

from repro.cli import main
from repro.sim.analysis import (
    CONSERVATION_TOL,
    PHASES,
    analyze_events,
    analyze_trace,
)
from repro.sim.hostprof import HostPhaseProfiler
from repro.sim.tracing import (
    InMemorySink,
    TraceEvent,
    TraceInvariantChecker,
    Tracer,
    canonical_events,
)
from tests.sim.test_golden_traces import DATA_DIR, GOLDEN
from tests.sim.test_simulator import gpp_rms, gpp_task


def golden_path(name):
    return DATA_DIR / GOLDEN[name][1]


class TestGoldenConservation:
    """The acceptance invariant on every committed golden: each task's
    phases sum to its turnaround within 1e-9."""

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_phases_sum_to_turnaround(self, name):
        analysis = analyze_trace(golden_path(name))
        assert analysis.ledgers, f"{name}: no tasks folded"
        assert analysis.conservation_violations() == []
        assert analysis.max_conservation_error <= CONSERVATION_TOL

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_dominant_p99_phase_is_named(self, name):
        analysis = analyze_trace(golden_path(name))
        dominant = analysis.dominant_phase("p99")
        assert dominant in PHASES

    def test_chaos_p99_is_dominated_by_recovery(self):
        """The chaos golden's slowest task loses most of its turnaround
        to fault recovery (retry backoff + re-placement) -- the exact
        diagnosis EXPERIMENTS.md walks through."""
        analysis = analyze_trace(golden_path("chaos"))
        assert analysis.dominant_phase("p99") == "recovery"

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_exemplars_are_deterministic(self, name):
        first = analyze_trace(golden_path(name))
        second = analyze_trace(golden_path(name))
        for bucket in ("p50", "p95", "p99"):
            assert (
                [l.key for l in first.exemplars.get(bucket, [])]
                == [l.key for l in second.exemplars.get(bucket, [])]
            )

    def test_render_names_every_section(self):
        analysis = analyze_trace(golden_path("chaos"))
        text = analysis.render()
        assert "Per-task phase ledger" in text
        assert "dominant p99 phase" in text
        assert "conservation         OK" in text
        assert "exemplars:" in text


class TestLedgerSemantics:
    def ev(self, t, kind, key=None, **payload):
        return TraceEvent(time=t, kind=kind, key=key, payload=payload)

    def test_queue_wait_under_brownout_splits_exactly(self):
        """Queue time inside a brownout window is attributed to the
        ``brownout`` phase; the split conserves by construction."""
        events = [
            self.ev(0.0, "submit", key=1, function="f", pe_class="GPP"),
            self.ev(1.0, "brownout", action="enter", stage=1, depth=9),
            self.ev(3.0, "brownout", action="exit", stage=0, depth=2),
            self.ev(4.0, "dispatch", key=1, node=0, reconfig_time=0.0),
            self.ev(4.0, "start", key=1, node=0),
            self.ev(5.0, "complete", key=1, node=0),
        ]
        analysis = analyze_events(events)
        ledger = analysis.ledgers[1]
        assert ledger.phases["brownout"] == pytest.approx(2.0)
        assert ledger.phases["queue"] == pytest.approx(2.0)
        assert ledger.phases["compute"] == pytest.approx(1.0)
        assert analysis.conservation_violations() == []
        assert analysis.brownout_windows == [(1.0, 3.0)]

    def test_reconfig_split_out_of_placement(self):
        events = [
            self.ev(0.0, "submit", key=1, function="f", pe_class="RPE"),
            self.ev(0.5, "dispatch", key=1, node=0, reconfig_time=0.3),
            self.ev(1.5, "start", key=1, node=0),
            self.ev(2.0, "complete", key=1, node=0),
        ]
        ledger = analyze_events(events).ledgers[1]
        assert ledger.phases["queue"] == pytest.approx(0.5)
        assert ledger.phases["reconfig"] == pytest.approx(0.3)
        assert ledger.phases["placement"] == pytest.approx(0.7)
        assert ledger.phases["compute"] == pytest.approx(0.5)

    def test_fault_recovery_and_orphan_attribution(self):
        events = [
            self.ev(0.0, "submit", key=1, function="f", pe_class="GPP"),
            self.ev(0.0, "dispatch", key=1, node=0, reconfig_time=0.0),
            self.ev(0.0, "start", key=1, node=0),
            self.ev(1.0, "fault", key=1, node=0, reason="seu"),
            self.ev(1.5, "retry", key=1, attempt=2),
            self.ev(2.0, "dispatch", key=1, node=1, reconfig_time=0.0),
            self.ev(2.0, "start", key=1, node=1),
            self.ev(2.5, "lease-expire", key=1, node=1, expired_at=2.5),
            self.ev(3.5, "orphan-recovered", key=1, node=1, reason="x"),
            self.ev(4.0, "dispatch", key=1, node=0, reconfig_time=0.0),
            self.ev(4.0, "start", key=1, node=0),
            self.ev(5.0, "complete", key=1, node=0),
        ]
        ledger = analyze_events(events).ledgers[1]
        # In-flight execution scrapped by the fault + post-retry wait.
        assert ledger.phases["recovery"] == pytest.approx(2.0)
        # Lease lapse -> recovery -> re-dispatch is orphan limbo.
        assert ledger.phases["orphan"] == pytest.approx(1.5)
        assert ledger.phases["compute"] == pytest.approx(1.5)
        assert ledger.conservation_error <= CONSERVATION_TOL

    def test_pending_tasks_are_excluded_from_conservation(self):
        events = [
            self.ev(0.0, "submit", key=1, function="f", pe_class="GPP"),
        ]
        analysis = analyze_events(events)
        assert analysis.ledgers[1].outcome == "pending"
        assert analysis.ledgers[1].turnaround is None
        assert analysis.conservation_violations() == []

    def test_violation_is_reported(self):
        events = [
            self.ev(0.0, "submit", key=1, function="f", pe_class="GPP"),
            self.ev(0.0, "dispatch", key=1, node=0, reconfig_time=0.0),
            self.ev(0.0, "start", key=1, node=0),
            self.ev(1.0, "complete", key=1, node=0),
        ]
        analysis = analyze_events(events)
        assert analysis.conservation_violations() == []
        analysis.ledgers[1].phases["compute"] += 0.5  # corrupt the ledger
        violations = analysis.conservation_violations()
        assert violations and violations[0][0] == 1
        assert violations[0][1] == pytest.approx(0.5)


class TestCriticalPath:
    def run_graph(self, tasks):
        rms, _ = gpp_rms(gpps=3)
        sink = InMemorySink()
        from repro.sim.simulator import DReAMSim

        sim = DReAMSim(rms, tracer=Tracer(TraceInvariantChecker(), sink))
        sim.submit_graph(tasks)
        sim.run()
        return analyze_events(canonical_events(list(sink.events)))

    def test_chain_critical_path_covers_makespan(self):
        analysis = self.run_graph([
            gpp_task(0),
            gpp_task(1, sources=(0,), in_bytes=8),
            gpp_task(2, sources=(1,), in_bytes=8),
        ])
        cp = analysis.critical_path
        assert cp is not None
        assert [k[1] for k in cp.keys] == [0, 1, 2]
        # A pure chain IS the makespan.
        assert cp.share_of_makespan == pytest.approx(1.0, rel=1e-6)
        assert len(cp.nodes) == 3
        for _, dominant, phases in cp.nodes:
            assert dominant in PHASES
            assert set(phases) == set(PHASES)

    def test_diamond_picks_the_heavier_arm(self):
        analysis = self.run_graph([
            gpp_task(0),
            gpp_task(1, t=2.0, sources=(0,), in_bytes=8),
            gpp_task(2, t=0.5, sources=(0,), in_bytes=8),
            gpp_task(3, sources=(1, 2), in_bytes=8),
        ])
        cp = analysis.critical_path
        assert cp is not None
        assert [k[1] for k in cp.keys] == [0, 1, 3]

    def test_synthetic_workloads_have_no_critical_path(self):
        analysis = analyze_trace(golden_path("hybrid-cost"))
        assert analysis.critical_path is None


class TestHostProfiler:
    def test_disabled_reports_no_host_phases(self):
        from repro.sim.experiment import run_experiment

        report = run_experiment(GOLDEN["fcfs"][0]).report
        assert report.host_phase_s == {}
        assert report.host_phase_calls == {}

    def test_enabled_profile_lands_on_the_report(self):
        from repro.sim.experiment import run_experiment

        prof = HostPhaseProfiler()
        report = run_experiment(GOLDEN["chaos"][0], hostprof=prof).report
        assert report.host_phase_s
        for phase in ("engine", "matchmaking", "dispatch", "faults",
                      "metrics"):
            assert report.host_phase_s.get(phase, 0.0) > 0.0, phase
            assert report.host_phase_calls.get(phase, 0) > 0, phase
        assert sum(report.host_phase_s.values()) == pytest.approx(
            prof.total_seconds()
        )
        assert "host phases" in "\n".join(report.summary_lines())

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    @pytest.mark.parametrize("engine", ["heap", "calendar"])
    def test_profiled_run_reproduces_golden_byte_identically(self, name, engine):
        """The profiler only reads the host clock: a profiled rerun of
        every golden scenario must replay the committed trace byte for
        byte, on both engines (the profiled drive loop steps the
        calendar engine event by event)."""
        from repro.sim.experiment import run_experiment

        spec, filename = GOLDEN[name]
        golden = (DATA_DIR / filename).read_text(encoding="ascii").splitlines()
        sink = InMemorySink()
        run_experiment(
            spec.with_(engine=engine),
            tracer=Tracer(TraceInvariantChecker(), sink),
            hostprof=HostPhaseProfiler(),
        )
        fresh = [e.to_json() for e in canonical_events(list(sink.events))]
        assert fresh == golden, (
            f"{name}/{engine}: the host-phase profiler changed the trace; "
            "it must be observation-only"
        )

    def test_scope_nesting_charges_self_time(self):
        prof = HostPhaseProfiler()
        prof.start()
        prof.enter("dispatch")
        prof.enter("matchmaking")
        prof.leave()
        prof.leave()
        prof.stop()
        seconds = prof.phase_seconds()
        assert set(seconds) >= {"dispatch", "matchmaking", "other"}
        assert prof.call_counts()["dispatch"] == 1
        assert prof.call_counts()["matchmaking"] == 1
        assert prof.total_seconds() == pytest.approx(sum(seconds.values()))
        assert "Host-phase profile" in prof.table()

    def test_scale_bench_case_reports_host_share(self):
        from repro.bench.cases import run_scale

        prof = HostPhaseProfiler()
        report = run_scale(400, hostprof=prof)
        assert report.completed > 0
        share = prof.phase_share()
        assert share.get("matchmaking", 0.0) > 0.0
        assert share.get("dispatch", 0.0) > 0.0
        assert sum(share.values()) == pytest.approx(1.0)


class TestAnalyzeCli:
    def test_analyze_all_goldens_exits_zero(self, capsys, tmp_path):
        out = tmp_path / "analysis.json"
        code = main(
            ["analyze"]
            + [str(golden_path(name)) for name in sorted(GOLDEN)]
            + ["--json", str(out)]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "Per-task phase ledger" in text
        assert "dominant p99 phase" in text
        doc = json.loads(out.read_text())
        assert doc["kind"] == "analysis-suite"
        assert len(doc["traces"]) == len(GOLDEN)
        for entry in doc["traces"].values():
            assert entry["conservation"]["violations"] == []

    def test_unreadable_trace_exits_two(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "missing.jsonl")]) == 2
        assert "error" in capsys.readouterr().err
