"""Golden-trace regression lock.

Small JSONL traces for one FCFS and one hybrid-cost scenario are
committed under ``tests/data/``; seeded reruns must reproduce them
byte-for-byte.  This pins the *entire* simulation pipeline -- workload
generation, matchmaking, the cost model, scheduler tie-breaking, the
event engine's ordering, and the trace serialization itself.  Any
future PR that changes simulated behaviour (even a reordering of
simultaneous events) trips these tests and must regenerate the goldens
deliberately::

    PYTHONPATH=src python tests/sim/test_golden_traces.py --write

Traces are canonicalized (dense job ids) before comparison, so they
are independent of process history and test execution order.
"""

import sys
from pathlib import Path

import pytest

from repro.grid.health import HealthPolicy
from repro.sim.experiment import ExperimentSpec, run_experiment
from repro.sim.faults import FaultSpec
from repro.sim.resilience import CheckpointSpec, DeadlineSpec, ResilienceSpec, SpeculationSpec
from repro.sim.tracing import (
    InMemorySink,
    TraceInvariantChecker,
    Tracer,
    canonical_events,
    verify_trace,
)

DATA_DIR = Path(__file__).resolve().parent.parent / "data"

#: One small, contended scenario (both strategies share it).  The high
#: arrival rate forces queueing so fcfs and hybrid-cost actually make
#: different placement decisions and the two goldens differ.
SPEC = ExperimentSpec(
    tasks=14,
    configurations=4,
    arrival_rate_per_s=8.0,
    area_range=(2_000, 14_000),
    gpp_fraction=0.2,
    seed=0,
)

#: The same scenario under an aggressive seeded fault schedule: a node
#: crash with rejoin, certain-to-fire configuration faults, and a hot
#: SEU hazard.  Locks the crash-recovery path -- fault, backoff, retry,
#: re-placement with node exclusion, and GPP fallback -- byte for byte.
CHAOS_SPEC = SPEC.with_(
    faults=FaultSpec(
        crash_rate_per_s=0.25,
        downtime_range_s=(1.0, 3.0),
        config_fault_prob=0.35,
        seu_rate_per_s=0.2,
        horizon_s=8.0,
    ),
)

#: The chaos scenario with the full adaptive resilience layer armed:
#: tight deadlines (so the watchdog requeues and fails tasks), dense
#: checkpoints (so a fault resumes from a snapshot and migrates), and a
#: twitchy breaker (so the crashing node gets quarantined and probed).
#: Seed 11 is chosen so the committed trace exercises quarantine,
#: probe, timeout, checkpoint, and migrate events in one file.
RESILIENCE_SPEC = CHAOS_SPEC.with_(
    seed=11,
    resilience=ResilienceSpec(
        breaker=HealthPolicy(min_events=2, open_threshold=0.4, open_duration_s=4.0),
        deadlines=DeadlineSpec(soft_factor=2.0, hard_factor=6.0, slack_s=0.25),
        checkpoint=CheckpointSpec(interval_s=0.1),
        speculation=SpeculationSpec(slowdown_factor=1.5),
    ),
)

#: The locked scenarios: name -> (spec, golden file).
GOLDEN = {
    "fcfs": (SPEC.with_(strategy="fcfs"), "golden_trace_fcfs.jsonl"),
    "hybrid-cost": (SPEC, "golden_trace_hybrid.jsonl"),
    "chaos": (CHAOS_SPEC, "golden_trace_chaos.jsonl"),
    "resilience": (RESILIENCE_SPEC, "golden_trace_resilience.jsonl"),
}


def generate_trace_lines(name: str, *, engine: str = "heap") -> list[str]:
    """Run the locked scenario and return canonical JSONL lines."""
    spec, _ = GOLDEN[name]
    sink = InMemorySink()
    tracer = Tracer(TraceInvariantChecker(), sink)
    run_experiment(spec.with_(engine=engine), tracer=tracer)
    events = canonical_events(list(sink.events))
    return [event.to_json() for event in events]


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_seeded_rerun_reproduces_golden_trace(name):
    golden_path = DATA_DIR / GOLDEN[name][1]
    golden = golden_path.read_text(encoding="ascii").splitlines()
    fresh = generate_trace_lines(name)
    assert fresh == golden, (
        f"{name} trace diverged from {golden_path.name}; if the "
        "behaviour change is intentional, regenerate with "
        "`python tests/sim/test_golden_traces.py --write`"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_calendar_engine_reproduces_golden_trace_byte_identically(name):
    """The engine-swap lock: the calendar queue must replay every
    committed golden byte-for-byte.  The goldens pin the full event
    *order* (simultaneous events included), so this proves the two
    engines are behaviorally indistinguishable on real scenarios --
    workload, scheduling, faults, and the resilience layer."""
    golden_path = DATA_DIR / GOLDEN[name][1]
    golden = golden_path.read_text(encoding="ascii").splitlines()
    fresh = generate_trace_lines(name, engine="calendar")
    assert fresh == golden, (
        f"{name}: calendar-queue engine diverged from {golden_path.name}; "
        "the engines must be byte-identical"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_inert_admission_spec_reproduces_golden_trace_byte_identically(name):
    """The zero-cost-when-disabled lock for overload protection: an
    explicit all-``None`` :class:`AdmissionSpec` must take the exact
    pre-admission code paths on every golden scenario -- no extra
    events, no reordering, byte for byte."""
    from repro.sim.admission import AdmissionSpec

    spec, filename = GOLDEN[name]
    golden = (DATA_DIR / filename).read_text(encoding="ascii").splitlines()
    sink = InMemorySink()
    run_experiment(
        spec.with_(admission=AdmissionSpec()),
        tracer=Tracer(TraceInvariantChecker(), sink),
    )
    fresh = [e.to_json() for e in canonical_events(list(sink.events))]
    assert fresh == golden, (
        f"{name}: an inert AdmissionSpec changed the trace; the "
        "admission layer must be zero-cost when disabled"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_inert_failover_spec_reproduces_golden_trace_byte_identically(name):
    """The zero-cost-when-disabled lock for control-plane fault
    tolerance: a :class:`FailoverSpec` with no heartbeat and no
    standbys must take the exact pre-failover code paths on every
    golden scenario -- no ticks, no extra events, byte for byte."""
    from repro.sim.failover import FailoverSpec

    spec, filename = GOLDEN[name]
    golden = (DATA_DIR / filename).read_text(encoding="ascii").splitlines()
    sink = InMemorySink()
    run_experiment(
        spec.with_(failover=FailoverSpec()),
        tracer=Tracer(TraceInvariantChecker(), sink),
    )
    fresh = [e.to_json() for e in canonical_events(list(sink.events))]
    assert fresh == golden, (
        f"{name}: an inert FailoverSpec changed the trace; the "
        "failover layer must be zero-cost when disabled"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_inert_slo_spec_reproduces_golden_trace_byte_identically(name):
    """The zero-cost-when-disabled lock for SLO monitoring: an empty
    :class:`SLOSpec` (no objectives) must take the exact pre-SLO code
    paths on every golden scenario -- no extra events, no reordering,
    byte for byte."""
    from repro.sim.slo import SLOSpec

    spec, filename = GOLDEN[name]
    golden = (DATA_DIR / filename).read_text(encoding="ascii").splitlines()
    sink = InMemorySink()
    run_experiment(
        spec.with_(slo=SLOSpec()),
        tracer=Tracer(TraceInvariantChecker(), sink),
    )
    fresh = [e.to_json() for e in canonical_events(list(sink.events))]
    assert fresh == golden, (
        f"{name}: an inert SLOSpec changed the trace; the SLO layer "
        "must be zero-cost when disabled"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN))
@pytest.mark.parametrize("engine", ["heap", "calendar"])
def test_armed_slo_monitor_is_observation_only(name, engine):
    """The observation-only lock: arming the monitor with aggressive
    objectives may only *add* ``slo-*`` events.  Stripping those from
    the armed trace must reproduce the committed golden byte for byte
    on both engines -- the monitor never schedules events, never draws
    randomness, never perturbs simulated state."""
    from repro.sim.slo import SLOObjective, SLOSpec

    spec, filename = GOLDEN[name]
    golden = (DATA_DIR / filename).read_text(encoding="ascii").splitlines()
    armed = spec.with_(engine=engine, slo=SLOSpec(objectives=(
        SLOObjective("latency", 0.05, percentile=95.0, window_s=2.0),
        SLOObjective("availability", 0.999, window_s=2.0),
        SLOObjective("queue-depth", 1.0, window_s=2.0),
    )))
    sink = InMemorySink()
    tracer = Tracer(TraceInvariantChecker(), sink)
    run_experiment(armed, tracer=tracer)
    tracer.checker.assert_slo_closed()
    events = canonical_events(list(sink.events))
    slo_kinds = {"slo-breach", "slo-alert-fire", "slo-alert-resolve"}
    stripped = [e.to_json() for e in events if e.kind not in slo_kinds]
    assert stripped == golden, (
        f"{name}/{engine}: an armed SLO monitor perturbed the trace "
        "beyond adding slo-* events; it must be observation-only"
    )
    assert any(e.kind in slo_kinds for e in events), (
        f"{name}/{engine}: aggressive objectives emitted no slo-* "
        "events -- the lock is vacuous"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_traces_satisfy_invariants(name):
    from repro.sim.tracing import TraceEvent

    lines = (DATA_DIR / GOLDEN[name][1]).read_text(encoding="ascii").splitlines()
    events = [TraceEvent.from_json(line) for line in lines]
    assert verify_trace(events) == len(events) > 0


def test_generation_is_stable_within_process():
    first = generate_trace_lines("fcfs")
    second = generate_trace_lines("fcfs")
    assert first == second


def test_chaos_golden_contains_recovery_sequence():
    """The committed chaos golden must actually exercise recovery:
    faults, retries, and a crash/rejoin pair."""
    from repro.sim.tracing import TraceEvent

    lines = (DATA_DIR / GOLDEN["chaos"][1]).read_text(encoding="ascii").splitlines()
    kinds = [TraceEvent.from_json(line).kind for line in lines]
    assert "fault" in kinds
    assert "retry" in kinds
    assert "node-leave" in kinds and "node-join" in kinds


def test_resilience_golden_contains_adaptive_sequence():
    """The committed resilience golden must exercise the adaptive
    layer: quarantine + sanctioned probe, deadline timeouts, and
    checkpoint + post-fault migration."""
    from repro.sim.tracing import TraceEvent

    lines = (
        DATA_DIR / GOLDEN["resilience"][1]
    ).read_text(encoding="ascii").splitlines()
    kinds = [TraceEvent.from_json(line).kind for line in lines]
    for kind in ("quarantine", "probe", "timeout", "checkpoint", "migrate"):
        assert kind in kinds, f"resilience golden lacks {kind!r} events"


def write_goldens() -> None:
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    for name, (_, filename) in GOLDEN.items():
        lines = generate_trace_lines(name)
        (DATA_DIR / filename).write_text("\n".join(lines) + "\n", encoding="ascii")
        print(f"wrote {DATA_DIR / filename} ({len(lines)} events)")


if __name__ == "__main__":
    if "--write" in sys.argv:
        write_goldens()
    else:
        print(__doc__)
