"""Fault injection and recovery: retry/backoff, GPP fallback, crash
and rejoin, link faults, and the recovery metrics.

These tests drive the machinery both directly (``schedule_node_crash``,
``FaultInjector`` with extreme probabilities) and through the
declarative :class:`ExperimentSpec` path, and pin the two properties
the subsystem promises: deterministic traces for a given
``(seed, FaultSpec)`` and an arrival sequence that is untouched by
enabling faults.
"""

import pytest

from repro.core.application import Application, Stream
from repro.core.execreq import Artifacts, ExecReq, MinValue
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.jss import JobStatus
from repro.grid.network import Network
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.bitstream import Bitstream
from repro.hardware.catalog import device_by_model
from repro.hardware.fabric import RegionState
from repro.hardware.gpp import GPPSpec
from repro.hardware.taxonomy import PEClass
from repro.sim.experiment import ExperimentSpec, NodeSpec, run_experiment
from repro.sim.faults import FAULT_PRESETS, FaultInjector, FaultSpec, RetryPolicy
from repro.sim.metrics import MetricsCollector
from repro.sim.simulator import DReAMSim
from repro.sim.tracing import InMemorySink, TraceInvariantChecker, Tracer, canonical_events


def gpp_req():
    return ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x"))


def gpp_task(task_id, t=1.0):
    return simple_task(task_id, gpp_req(), t)


def hw_task(task_id, function="fft", slices=9_000, t=1.0):
    bs = Bitstream(200 + task_id, "XC5VLX155", 1_000_000, slices, implements=function)
    return simple_task(
        task_id,
        ExecReq(
            node_type=PEClass.RPE,
            constraints=(MinValue("slices", slices),),
            artifacts=Artifacts(application_code="x", bitstream=bs),
        ),
        t,
        function=function,
    )


def hybrid_rms(*, nodes=1, network=False):
    """Node(s) with one XC5VLX155 RPE (2 regions) and one GPP each."""
    net = Network.fully_connected(list(range(nodes))) if network else None
    rms = ResourceManagementSystem(network=net)
    for node_id in range(nodes):
        node = Node(node_id=node_id)
        node.add_rpe(device_by_model("XC5VLX155"), regions=2)
        node.add_gpp(GPPSpec(cpu_model=f"cpu{node_id}", mips=1_000))
        rms.register_node(node)
    return rms


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base_s=0.5, backoff_factor=2.0)
        assert policy.backoff_s(1) == pytest.approx(0.5)
        assert policy.backoff_s(2) == pytest.approx(1.0)
        assert policy.backoff_s(3) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0)


class TestFaultSpec:
    def test_presets_are_valid_and_enabled(self):
        for name, spec in FAULT_PRESETS.items():
            assert spec.enabled, name

    def test_disabled_by_default(self):
        assert not FaultSpec().enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(crash_rate_per_s=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(config_fault_prob=1.5)
        with pytest.raises(ValueError):
            FaultSpec(downtime_range_s=(10.0, 5.0))
        with pytest.raises(ValueError):
            FaultSpec(degrade_factor=0.0)
        with pytest.raises(ValueError):
            FaultSpec(partition_window=(10.0, 10.0))
        with pytest.raises(ValueError):
            FaultSpec(horizon_s=0.0)


class TestConfigurationFaults:
    def certain_config_failure(self, **retry_kwargs):
        rms = hybrid_rms()
        injector = FaultInjector(FaultSpec(config_fault_prob=1.0), seed=0)
        sim = DReAMSim(rms, faults=injector, retry=RetryPolicy(**retry_kwargs))
        return sim, injector

    def test_fallback_to_gpp_after_budget(self):
        """Every configuration load fails, so the hardware task burns
        its retry budget and degrades gracefully to the GPP."""
        sim, injector = self.certain_config_failure(max_attempts=3)
        sim.submit_workload([(0.0, hw_task(0))])
        report = sim.run()
        assert report.completed == 1
        assert report.failed == 0
        assert report.fault_events == 3
        assert report.retries == 2  # attempts 2 and 3 were plain retries
        assert report.gpp_fallbacks == 1
        assert injector.injected_config_faults == 3
        tm = next(iter(sim.metrics.tasks.values()))
        assert tm.fell_back_to_gpp
        assert tm.faults == 3
        assert "configuration" in tm.failure_reason

    def test_terminal_failure_reaches_jss(self):
        """No fallback: the task fails terminally and the JSS record
        carries the originating fault reason and the attempt count."""
        sim, _ = self.certain_config_failure(max_attempts=2, gpp_fallback=False)
        sim.submit_workload([(0.0, hw_task(0))])
        report = sim.run()
        assert report.completed == 0
        assert report.failed == 1
        assert report.pending == 0
        job = sim.jss.job(next(j for j, _ in sim.metrics.tasks))
        assert job.status is JobStatus.FAILED
        record = job.records[0]
        assert record.status is JobStatus.FAILED
        assert "configuration" in record.failure_reason
        assert record.attempts == 2

    def test_backoff_delays_the_retry(self):
        sim, _ = self.certain_config_failure(
            max_attempts=2, backoff_base_s=3.0, backoff_factor=2.0
        )
        sim.submit_workload([(0.0, hw_task(0))])
        report = sim.run()
        assert report.completed == 1
        tm = next(iter(sim.metrics.tasks.values()))
        # Fault 1 -> 3 s backoff; exhaustion -> fallback with a fresh
        # budget and another 3 s backoff, plus 1 s of GPP execution:
        # the task cannot finish before t = 7.
        assert tm.finish > 7.0

    def test_fault_free_grid_unaffected(self):
        """config_fault_prob=0: the injector never fires and the run
        matches a fault-free one exactly."""
        rms = hybrid_rms()
        injector = FaultInjector(FaultSpec(), seed=0)
        sim = DReAMSim(rms, faults=injector)
        sim.submit_workload([(0.0, hw_task(0)), (0.5, gpp_task(1))])
        report = sim.run()
        assert report.completed == 2
        assert report.fault_events == 0
        assert report.availability == 1.0


class TestSEUFaults:
    def test_seu_interrupts_fabric_execution(self):
        """An (almost) certain SEU hits every fabric execution; the
        task survives via the GPP fallback, which is SEU-immune."""
        rms = hybrid_rms()
        injector = FaultInjector(FaultSpec(seu_rate_per_s=1_000.0), seed=0)
        sim = DReAMSim(rms, faults=injector, retry=RetryPolicy(max_attempts=2))
        sim.submit_workload([(0.0, hw_task(0, t=5.0))])
        report = sim.run()
        assert report.completed == 1
        assert injector.injected_seus == 2
        tm = next(iter(sim.metrics.tasks.values()))
        assert tm.fell_back_to_gpp
        assert "SEU" in tm.failure_reason
        # The SEU struck mid-execution, so work was genuinely wasted.
        assert report.wasted_work_s > 0
        assert report.wasted_slice_seconds > 0

    def test_seu_spares_gpp_tasks(self):
        rms = hybrid_rms()
        injector = FaultInjector(FaultSpec(seu_rate_per_s=1_000.0), seed=0)
        sim = DReAMSim(rms, faults=injector)
        sim.submit_workload([(0.0, gpp_task(0))])
        report = sim.run()
        assert report.completed == 1
        assert report.fault_events == 0


class TestNodeCrash:
    def single_gpp_grid(self):
        node = Node(node_id=10)
        node.add_gpp(GPPSpec(cpu_model="X", mips=1_000))
        rms = ResourceManagementSystem()
        rms.register_node(node)
        return rms

    def test_crash_faults_victims_and_rejoin_recovers(self):
        rms = self.single_gpp_grid()
        sim = DReAMSim(rms, retry=RetryPolicy(backoff_base_s=0.5))
        sim.submit_workload([(0.0, gpp_task(0, t=10.0))])
        sim.schedule_node_crash(2.0, 10, rejoin_after_s=3.0)
        report = sim.run()
        assert report.completed == 1
        assert report.fault_events == 1
        assert report.retries == 1
        # Faulted at t=2, restarted from scratch at the t=5 rejoin.
        assert report.makespan_s == pytest.approx(15.0)
        assert report.wasted_work_s == pytest.approx(2.0)
        assert report.mttr_s == pytest.approx(13.0)  # 15 - first fault at 2
        # Down 3 s of a 15 s single-node horizon.
        assert report.availability == pytest.approx(1.0 - 3.0 / 15.0)

    def test_crash_without_rejoin_counts_downtime_to_horizon(self):
        rms = self.single_gpp_grid()
        extra = Node(node_id=11)
        extra.add_gpp(GPPSpec(cpu_model="Y", mips=1_000))
        rms.register_node(extra)
        sim = DReAMSim(rms)
        sim.submit_workload([(0.0, gpp_task(0, t=4.0))])
        sim.schedule_node_crash(1.0, 10, rejoin_after_s=None)
        report = sim.run()
        assert report.completed == 1
        # Node 10 stays down from t=1 to the horizon; half the grid.
        assert 0.0 < report.availability < 1.0

    def test_crash_of_absent_node_is_noop(self):
        rms = self.single_gpp_grid()
        sim = DReAMSim(rms)
        sim.submit_workload([(0.0, gpp_task(0))])
        sim.schedule_node_crash(0.5, 999, rejoin_after_s=1.0)
        report = sim.run()
        assert report.completed == 1
        assert report.fault_events == 0

    def test_crash_wipes_resident_configurations(self):
        """A rejoined node comes back cold: the configuration loaded
        before the crash must be reloaded, not reused."""
        rms = hybrid_rms()
        sim = DReAMSim(rms)
        sim.submit_workload([(0.0, hw_task(0)), (10.0, hw_task(1))])
        sim.schedule_node_crash(5.0, 0, rejoin_after_s=2.0)
        report = sim.run()
        assert report.completed == 2
        assert report.reconfigurations == 2  # no reuse across the crash
        assert report.reuse_hits == 0

    def test_crash_during_configuring_region(self):
        """Node loss while a region is mid-reconfiguration: the abort
        path must unwind the CONFIGURING state, not strand it."""
        rms = hybrid_rms(nodes=2)
        sim = DReAMSim(rms, retry=RetryPolicy(backoff_base_s=0.1))
        task = hw_task(0, t=2.0)
        sim.submit_workload([(0.0, task)])
        placement = None

        def capture():
            nonlocal placement
            (entry,) = sim.active.values()
            placement = entry.placement
            assert placement.reconfig_time_s > 0
            node = sim.rms.node(placement.candidate.node_id)
            rpe = node.rpe(placement.candidate.resource_id)
            states = {r.state for r in rpe.fabric.regions}
            assert RegionState.CONFIGURING in states

        # The XC5VLX155 bitstream load takes ~a few ms; probe and crash
        # while the configuration port is mid-load.  Both nodes go down
        # so the victim is hit whichever one the scheduler picked.
        sim.engine.schedule_at(0.001, capture)
        sim.schedule_node_crash(0.002, 0, rejoin_after_s=None)
        sim.schedule_node_crash(0.002, 1, rejoin_after_s=None)
        sim.schedule_node_join(1.0, _fresh_hybrid_node(5))
        report = sim.run()
        assert placement is not None
        assert report.completed == 1
        assert report.fault_events == 1


def _fresh_hybrid_node(node_id):
    node = Node(node_id=node_id)
    node.add_rpe(device_by_model("XC5VLX155"), regions=2)
    node.add_gpp(GPPSpec(cpu_model=f"cpu{node_id}", mips=1_000))
    return node


class TestStreamingFaults:
    def test_mid_stream_chunk_requeues_and_job_completes(self):
        """A crash mid-pipeline re-queues the in-flight chunks; the
        stream picks back up after the rejoin and the job completes."""
        node = Node(node_id=0)
        for i in range(3):
            node.add_gpp(GPPSpec(cpu_model=f"cpu{i}", mips=1_000))
        rms = ResourceManagementSystem()
        rms.register_node(node)
        sim = DReAMSim(rms, retry=RetryPolicy(backoff_base_s=0.1))
        app = Application(clauses=(Stream(0, 1, 2),))
        tasks = {i: gpp_task(i) for i in (0, 1, 2)}
        job_id = sim.submit_application(app, tasks, stream_chunks=4)
        sim.schedule_node_crash(0.6, 0, rejoin_after_s=1.0)
        report = sim.run()
        assert sim.jss.job(job_id).status is JobStatus.COMPLETED
        assert report.fault_events >= 1
        assert report.failed == 0
        # Fault-free pipeline finishes at 1.5 s; recovery costs time.
        assert report.makespan_s > 1.5


class TestLinkFaults:
    def two_node_net_sim(self, tracer=None):
        rms = hybrid_rms(nodes=2, network=True)
        return DReAMSim(rms, tracer=tracer)

    def test_degrade_slows_new_placements_then_heals(self):
        sink = InMemorySink()
        tracer = Tracer(TraceInvariantChecker(), sink)
        sim = self.two_node_net_sim(tracer=tracer)
        healthy = sim.rms.network.link_between(0, 1)
        degraded = {}

        def probe():
            degraded["bw"] = sim.rms.network.link_between(0, 1).bandwidth_mbps

        sim.schedule_link_degrade(1.0, 0, 1, factor=0.1, duration_s=2.0)
        sim.engine.schedule_at(2.0, probe)
        sim.submit_workload([(0.0, gpp_task(0))])
        sim.run()
        assert degraded["bw"] == pytest.approx(healthy.bandwidth_mbps * 0.1)
        assert sim.rms.network.link_between(0, 1).bandwidth_mbps == pytest.approx(
            healthy.bandwidth_mbps
        )
        kinds = [e.kind for e in sink.events]
        assert "link-fault" in kinds and "link-restore" in kinds

    def test_partition_severs_and_heals_cross_links(self):
        sim = self.two_node_net_sim()
        seen = {}

        def probe():
            seen["during"] = sim.rms.network.graph.has_edge(0, 1)

        sim.schedule_partition(1.0, [0], [1], heal_at_s=3.0)
        sim.engine.schedule_at(2.0, probe)
        sim.submit_workload([(0.0, gpp_task(0))])
        sim.run()
        assert seen["during"] is False
        assert sim.rms.network.graph.has_edge(0, 1)

    def test_partition_must_heal_after_start(self):
        sim = self.two_node_net_sim()
        with pytest.raises(ValueError):
            sim.schedule_partition(5.0, [0], [1], heal_at_s=5.0)

    def test_degrade_of_severed_link_is_noop(self):
        """A degrade draw landing inside a partition window must not
        resurrect the severed link."""
        sim = self.two_node_net_sim()
        sim.schedule_partition(1.0, [0], [1], heal_at_s=10.0)
        sim.schedule_link_degrade(2.0, 0, 1, factor=0.5, duration_s=1.0)
        seen = {}

        def probe():
            seen["after_heal_attempt"] = sim.rms.network.graph.has_edge(0, 1)

        sim.engine.schedule_at(5.0, probe)
        sim.submit_workload([(0.0, gpp_task(0))])
        sim.run()
        assert seen["after_heal_attempt"] is False  # still partitioned


class TestRecoveryMetrics:
    def test_availability_and_downtime_windows(self):
        m = MetricsCollector()
        for node_id in (0, 1):
            m.register_node(node_id)
        m.record_node_down(0, 2.0)
        m.record_node_up(0, 6.0)
        m.record_node_down(1, 8.0)  # still down at the horizon
        report = m.report(10.0)
        # 4 s + 2 s downtime over 2 nodes x 10 s.
        assert report.availability == pytest.approx(1.0 - 6.0 / 20.0)

    def test_availability_is_one_without_nodes_or_faults(self):
        report = MetricsCollector().report(10.0)
        assert report.availability == 1.0
        assert report.mttr_s == 0.0
        assert report.goodput_tasks_per_s == 0.0

    def test_goodput_counts_only_completions(self):
        m = MetricsCollector()
        m.record_arrival(1, 0.0)
        m.record_dispatch(1, 0.0, pe_kind="gpp", node_id=0, transfer_time=0,
                          synthesis_time=0, reconfig_time=0, reused=False)
        m.record_start(1, 0.0)
        m.record_finish(1, 2.0, "node0:gpp0")
        m.record_arrival(2, 0.0)
        m.record_fault(2, 1.0, reason="boom")
        m.record_failed(2, 1.0, reason="boom")
        report = m.report(10.0)
        assert report.goodput_tasks_per_s == pytest.approx(1 / 10.0)
        assert report.completed == 1
        assert report.failed == 1
        assert report.pending == 0

    def test_summary_lines_mention_recovery_only_with_faults(self):
        quiet = MetricsCollector().report(1.0)
        assert not any("availability" in l for l in quiet.summary_lines())
        m = MetricsCollector()
        m.record_arrival(1, 0.0)
        m.record_fault(1, 0.5, reason="x")
        noisy = m.report(1.0)
        assert any("availability" in l for l in noisy.summary_lines())


class TestDeterminism:
    SPEC = ExperimentSpec(
        tasks=40,
        nodes=(
            NodeSpec(gpps=1, gpp_mips=2_000, rpe_models=("XC5VLX330",), regions_per_rpe=3),
            NodeSpec(gpps=1, gpp_mips=1_500, rpe_models=("XC5VLX155",), regions_per_rpe=2),
        ),
        arrival_rate_per_s=4.0,
        area_range=(2_000, 12_000),
        seed=5,
        faults=FAULT_PRESETS["chaos"],
    )

    def trace_lines(self, spec):
        sink = InMemorySink()
        run_experiment(spec, tracer=Tracer(TraceInvariantChecker(), sink))
        return [e.to_json() for e in canonical_events(list(sink.events))]

    def test_same_seed_same_fault_schedule_same_trace(self):
        assert self.trace_lines(self.SPEC) == self.trace_lines(self.SPEC)

    def test_different_seed_differs(self):
        assert self.trace_lines(self.SPEC) != self.trace_lines(self.SPEC.with_(seed=6))

    def test_arrival_sequence_is_fault_invariant(self):
        """Satellite guarantee: fault draws come from independent
        streams, so enabling faults never re-phases the workload."""

        def submits(spec):
            sink = InMemorySink()
            run_experiment(spec, tracer=Tracer(sink))
            # Canonicalize first: raw JSS job ids are process-global.
            return [
                (e.time, e.key, e.payload["function"])
                for e in canonical_events(list(sink.events))
                if e.kind == "submit"
            ]

        assert submits(self.SPEC) == submits(self.SPEC.with_(faults=None))

    def test_serial_and_parallel_runner_agree(self):
        from dataclasses import asdict

        from repro.sim.runner import ExperimentRunner

        specs = [self.SPEC, self.SPEC.with_(strategy="fcfs")]
        serial = ExperimentRunner(jobs=1).run(specs)
        wide = ExperimentRunner(jobs=2).run(specs)
        for a, b in zip(serial, wide):
            assert asdict(a.report) == asdict(b.report)

    def test_spec_round_trips_through_cache(self, tmp_path):
        from dataclasses import asdict

        from repro.sim.runner import ExperimentRunner

        runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        first = runner.run([self.SPEC])
        assert runner.last_stats.executed == 1
        second = runner.run([self.SPEC])
        assert runner.last_stats.cache_hits == 1
        assert asdict(first[0].report) == asdict(second[0].report)

    def test_fault_spec_changes_cache_key(self):
        from repro.sim.runner import spec_cache_key

        assert spec_cache_key(self.SPEC) != spec_cache_key(self.SPEC.with_(faults=None))
        assert spec_cache_key(self.SPEC) != spec_cache_key(
            self.SPEC.with_(retry=RetryPolicy(max_attempts=5))
        )
