"""Tests for the self-contained HTML dashboard renderer."""

import xml.etree.ElementTree as ET

from repro.sim.experiment import ExperimentSpec, run_experiment
from repro.sim.faults import FaultSpec
from repro.sim.telemetry import TelemetryRegistry, build_task_spans
from repro.sim.tracing import (
    InMemorySink,
    TraceInvariantChecker,
    Tracer,
    canonical_events,
)
from repro.report_html import (
    render_dashboard,
    svg_phase_bars,
    svg_span_timeline,
    svg_step_chart,
)

SPEC = ExperimentSpec(
    tasks=20,
    configurations=4,
    arrival_rate_per_s=6.0,
    gpp_fraction=0.3,
    seed=7,
    faults=FaultSpec(
        crash_rate_per_s=0.15,
        downtime_range_s=(1.0, 2.0),
        config_fault_prob=0.2,
        horizon_s=6.0,
    ),
)


def instrumented_run():
    telemetry = TelemetryRegistry()
    sink = InMemorySink()
    tracer = Tracer(TraceInvariantChecker(), sink)
    run_experiment(SPEC, tracer=tracer, telemetry=telemetry)
    return telemetry, canonical_events(list(sink.events))


def svgs_of(html_text: str) -> list[str]:
    out, pos = [], 0
    while True:
        start = html_text.find("<svg", pos)
        if start < 0:
            return out
        end = html_text.index("</svg>", start) + len("</svg>")
        out.append(html_text[start:end])
        pos = end


class TestStepChart:
    def test_renders_series_and_legend(self):
        svg = svg_step_chart(
            [("a", [(0.0, 1.0), (2.0, 3.0)]), ("b", [(0.0, 0.0), (1.0, 2.0)])],
            title="Test chart", unit="tasks", t_max=4.0,
        )
        ET.fromstring(svgs_of(svg)[0])  # well-formed
        assert "Test chart" in svg
        # Two series: the legend is mandatory and names both.
        assert 'class="legend"' in svg
        assert ">a</span>" in svg and ">b</span>" in svg

    def test_single_series_has_no_legend(self):
        svg = svg_step_chart(
            [("only", [(0.0, 1.0)])], title="Solo", unit="x", t_max=1.0,
        )
        assert 'class="legend"' not in svg

    def test_empty_series_yields_placeholder(self):
        html_text = svg_step_chart([], title="Nothing", unit="x", t_max=None)
        assert "no samples" in html_text
        assert "<svg" not in html_text

    def test_palette_never_cycles(self):
        many = [(f"s{i}", [(0.0, float(i))]) for i in range(12)]
        svg = svg_step_chart(many, title="Crowd", unit="x", t_max=1.0)
        assert "not drawn" in svg  # dropped series are disclosed


class TestSpanTimeline:
    def test_renders_rows_with_tooltips(self):
        _, events = instrumented_run()
        spans, instants = build_task_spans(events)
        svg = svg_span_timeline(spans, instants, title="Tasks")
        ET.fromstring(svgs_of(svg)[0])
        assert svg.count("<title>") >= len(spans[:40])

    def test_empty_spans_yield_placeholder(self):
        assert "no spans" in svg_span_timeline([], [], title="Empty")


class TestPhaseBars:
    def test_stacked_bars_with_tooltips_and_legend(self):
        svg = svg_phase_bars(
            [
                ("all tasks (3)", {"queue": 1.0, "compute": 3.0}),
                ("p99 bucket (1)", {"recovery": 2.0, "compute": 0.5}),
            ],
            title="Phases",
        )
        ET.fromstring(svgs_of(svg)[0])
        assert "Phases" in svg
        assert svg.count("<title>") == 4  # one tooltip per segment
        assert 'class="legend"' in svg
        for phase in ("queue", "compute", "recovery"):
            assert f">{phase}</span>" in svg

    def test_zero_time_rows_yield_placeholder(self):
        html_text = svg_phase_bars([("idle", {})], title="Nothing")
        assert "no phase time" in html_text
        assert "<svg" not in html_text


class TestDashboard:
    def test_full_document(self):
        telemetry, events = instrumented_run()
        html_text = render_dashboard(telemetry, events)
        assert html_text.startswith("<!DOCTYPE html>")
        # Self-contained: no external scripts, stylesheets, or images.
        assert "<script" not in html_text
        assert "http://" not in html_text and "https://" not in html_text
        # The acceptance trio of time-series plus the span timeline.
        assert "Node utilization" in html_text
        assert "Scheduler queue" in html_text
        assert "Task lifecycle spans" in html_text
        # Run header and summary surface the spec's knobs.
        assert "hybrid-cost" in html_text
        assert "mean wait" in html_text
        # The causal ledger's stacked panel rides along with the trace.
        assert "Phase breakdown" in html_text
        assert "Turnaround attribution by phase" in html_text
        assert "Dominant p99 phase" in html_text
        for svg in svgs_of(html_text):
            ET.fromstring(svg)

    def test_without_events_still_renders(self):
        telemetry, _ = instrumented_run()
        html_text = render_dashboard(telemetry)
        assert "Task lifecycle spans" not in html_text
        assert "Node utilization" in html_text
        # No trace means no ledger: the panel degrades to a banner.
        assert "Phase breakdown needs a trace" in html_text
        assert "Turnaround attribution by phase" not in html_text


class TestEmptyState:
    """Dumps with nothing to plot render a banner, not a traceback."""

    def test_fresh_registry_renders_banner(self):
        html_text = render_dashboard(TelemetryRegistry())
        assert "Nothing to plot" in html_text
        assert "Time series" not in html_text
        assert html_text.startswith("<!DOCTYPE html>")

    def test_dump_with_explicit_nulls(self, tmp_path):
        import json

        from repro.sim.telemetry import TELEMETRY_FORMAT, load_telemetry

        path = tmp_path / "empty.json"
        path.write_text(json.dumps({
            "format": TELEMETRY_FORMAT,
            "meta": None,
            "series": None,
            "histograms": None,
        }))
        registry = load_telemetry(path)
        html_text = render_dashboard(registry)
        assert "Nothing to plot" in html_text

    def test_dump_with_sampleless_series(self, tmp_path):
        import json

        from repro.sim.telemetry import TELEMETRY_FORMAT, load_telemetry

        path = tmp_path / "sampleless.json"
        path.write_text(json.dumps({
            "format": TELEMETRY_FORMAT,
            "meta": {},
            "series": [{"name": "sim_queue_depth", "type": "gauge",
                        "labels": {}, "points": []}],
            "histograms": [],
        }))
        html_text = render_dashboard(load_telemetry(path))
        assert "Nothing to plot" in html_text

    def test_real_run_has_no_banner(self):
        telemetry, _ = instrumented_run()
        assert "Nothing to plot" not in render_dashboard(telemetry)
