"""Unit tests for trace-driven arrivals."""

import numpy as np
import pytest

from repro.sim.workload import (
    ConfigurationPool,
    SyntheticWorkload,
    TraceArrivals,
    WorkloadSpec,
)


class TestTraceArrivals:
    def test_replays_exact_times(self):
        rng = np.random.default_rng(0)
        trace = TraceArrivals([0.5, 1.0, 4.0, 4.0])
        times = trace.arrival_times(4, rng)
        assert np.allclose(times, [0.5, 1.0, 4.0, 4.0])

    def test_exhaustion_raises(self):
        rng = np.random.default_rng(0)
        trace = TraceArrivals([1.0, 2.0])
        with pytest.raises(ValueError, match="trace"):
            trace.arrival_times(3, rng)

    def test_partial_consumption_then_exhaustion(self):
        rng = np.random.default_rng(0)
        trace = TraceArrivals([1.0, 2.0, 3.0])
        assert trace.interarrival(rng) == 1.0
        assert np.allclose(trace.arrival_times(2, rng) , [2.0, 3.0])
        with pytest.raises(ValueError):
            trace.interarrival(rng)

    @pytest.mark.parametrize(
        "times",
        [
            [],
            [2.0, 1.0],
            [-1.0, 0.0],
            # A NaN anywhere defeats the order comparisons (NaN < x is
            # always False), so finiteness must be checked element-wise.
            [float("nan")],
            [0.0, float("nan"), 2.0],
            [0.0, float("inf")],
        ],
    )
    def test_validation(self, times):
        with pytest.raises(ValueError):
            TraceArrivals(times)

    def test_drives_synthetic_workload(self):
        trace = TraceArrivals([0.0, 0.1, 5.0])
        workload = SyntheticWorkload(
            WorkloadSpec(task_count=3, gpp_fraction=1.0),
            ConfigurationPool(2, seed=0),
            trace,
            seed=1,
        )
        stream = workload.generate()
        assert [t for t, _ in stream] == [0.0, 0.1, 5.0]
