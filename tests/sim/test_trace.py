"""Unit tests for run-record export/import."""

import pytest

from repro.core.execreq import Artifacts, ExecReq
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.gpp import GPPSpec
from repro.hardware.taxonomy import PEClass
from repro.sim.simulator import DReAMSim
from repro.sim.trace import (
    export_report_json,
    export_task_records,
    export_trace,
    load_report_json,
    load_task_records,
)


@pytest.fixture
def finished_sim():
    node = Node(node_id=0)
    node.add_gpp(GPPSpec(cpu_model="Xeon", mips=1_000))
    rms = ResourceManagementSystem()
    rms.register_node(node)
    sim = DReAMSim(rms)
    tasks = [
        (
            float(i),
            simple_task(
                i,
                ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
                0.5,
            ),
        )
        for i in range(4)
    ]
    sim.submit_workload(tasks)
    report = sim.run()
    return sim, report


class TestTaskRecords:
    def test_roundtrip(self, finished_sim, tmp_path):
        sim, _ = finished_sim
        path = tmp_path / "tasks.csv"
        count = export_task_records(sim.metrics, path)
        assert count == 4
        records = load_task_records(path)
        assert len(records) == 4
        for record, tm in zip(records, sim.metrics.tasks.values()):
            assert record["pe_kind"] == tm.pe_kind
            assert record["node_id"] == tm.node_id
            assert record["arrival"] == pytest.approx(tm.arrival)
            assert record["finish"] == pytest.approx(tm.finish)
            assert record["reused_configuration"] == tm.reused_configuration
            assert record["discarded"] == tm.discarded

    def test_none_fields_roundtrip_as_none(self, tmp_path):
        from repro.sim.metrics import MetricsCollector

        collector = MetricsCollector()
        collector.record_arrival("pending", 1.0)
        path = tmp_path / "tasks.csv"
        export_task_records(collector, path)
        [record] = load_task_records(path)
        assert record["dispatch"] is None
        assert record["finish"] is None
        assert record["node_id"] is None


class TestTrace:
    def test_trace_rows(self, finished_sim, tmp_path):
        sim, _ = finished_sim
        path = tmp_path / "trace.csv"
        count = export_trace(sim.metrics, path)
        text = path.read_text()
        assert count == len(sim.metrics.trace)
        # 4 tasks x (arrival, dispatch, start, finish).
        assert count == 16
        assert text.startswith("time,event,key")
        assert "dispatch" in text


class TestReportJson:
    def test_roundtrip(self, finished_sim, tmp_path):
        _, report = finished_sim
        path = tmp_path / "report.json"
        export_report_json(report, path)
        loaded = load_report_json(path)
        assert loaded == report
