"""Tests for the sim-time telemetry layer: registry, instruments,
span derivation, Perfetto/OpenMetrics export, and the zero-perturbation
guarantee (telemetry on or off, the event trace is byte-identical)."""

import json
from pathlib import Path

import pytest

from repro.grid.health import HealthPolicy
from repro.sim.experiment import ExperimentSpec, run_experiment
from repro.sim.faults import FaultSpec
from repro.sim.resilience import CheckpointSpec, DeadlineSpec, ResilienceSpec
from repro.sim.telemetry import (
    ANNOTATION_KINDS,
    TELEMETRY_FORMAT,
    Counter,
    Gauge,
    Histogram,
    TelemetryRegistry,
    build_node_spans,
    build_task_spans,
    load_telemetry,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.sim.tracing import (
    InMemorySink,
    TraceInvariantChecker,
    Tracer,
    canonical_events,
)

SPEC = ExperimentSpec(tasks=25, configurations=4, seed=3)

#: A faulty, fully-armed scenario so every hook fires at least once.
RESILIENT_SPEC = ExperimentSpec(
    tasks=20,
    configurations=4,
    arrival_rate_per_s=8.0,
    gpp_fraction=0.2,
    seed=11,
    faults=FaultSpec(
        crash_rate_per_s=0.25,
        downtime_range_s=(1.0, 3.0),
        config_fault_prob=0.35,
        seu_rate_per_s=0.2,
        horizon_s=8.0,
    ),
    resilience=ResilienceSpec(
        breaker=HealthPolicy(min_events=2, open_threshold=0.4, open_duration_s=4.0),
        deadlines=DeadlineSpec(soft_factor=2.0, hard_factor=6.0, slack_s=0.25),
        checkpoint=CheckpointSpec(interval_s=0.1),
    ),
)


class TestInstruments:
    def test_counter_monotonic(self):
        reg = TelemetryRegistry()
        c = reg.counter("hits_total", help="hits")
        c.inc()
        c.inc(2.0)
        assert c.value == 3.0
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge_set_inc_dec(self):
        reg = TelemetryRegistry()
        g = reg.gauge("depth", help="queue depth")
        g.set(5.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 4.0

    def test_gauge_records_only_changes(self):
        reg = TelemetryRegistry()
        t = [0.0]
        reg.set_clock(lambda: t[0])
        g = reg.gauge("depth", help="d")
        g.set(1.0)
        t[0] = 1.0
        g.set(1.0)  # same value: no new point
        t[0] = 2.0
        g.set(3.0)
        assert g.points == [(0.0, 1.0), (2.0, 3.0)]

    def test_gauge_same_time_keeps_last_value(self):
        reg = TelemetryRegistry()
        g = reg.gauge("depth", help="d")
        g.set(1.0)
        g.set(2.0)  # clock still 0.0: replaces, never duplicates
        assert g.points == [(0.0, 2.0)]

    def test_value_at_bisects(self):
        reg = TelemetryRegistry()
        t = [0.0]
        reg.set_clock(lambda: t[0])
        g = reg.gauge("depth", help="d")
        g.set(1.0)
        t[0] = 5.0
        g.set(7.0)
        assert g.value_at(-1.0) == 0.0
        assert g.value_at(0.0) == 1.0
        assert g.value_at(4.9) == 1.0
        assert g.value_at(5.0) == 7.0

    def test_histogram_buckets_le_convention(self):
        reg = TelemetryRegistry()
        h = reg.histogram("wait", help="w", buckets=(1.0, 5.0))
        for v in (0.5, 1.0, 2.0, 10.0):
            h.observe(v)
        # le=1.0 counts 0.5 and 1.0; le=5.0 adds 2.0; +inf adds 10.0.
        assert h.cumulative_counts() == [2, 3, 4]
        assert h.count == 4
        assert h.sum == 13.5

    def test_labels_key_instruments(self):
        reg = TelemetryRegistry()
        a = reg.counter("x_total", help="x", node=0)
        b = reg.counter("x_total", help="x", node=1)
        again = reg.counter("x_total", help="x", node=0)
        assert a is again and a is not b

    def test_kind_mismatch_rejected(self):
        reg = TelemetryRegistry()
        reg.counter("x_total", help="x")
        with pytest.raises(TypeError):
            reg.gauge("x_total", help="x")


class TestRegistryExport:
    def _populated(self):
        reg = TelemetryRegistry()
        t = [0.0]
        reg.set_clock(lambda: t[0])
        reg.counter("runs_total", help="runs").inc()
        g = reg.gauge("depth", help="depth", node=0)
        g.set(2.0)
        t[0] = 1.5
        g.set(4.0)
        reg.histogram("wait_seconds", help="w", buckets=(1.0,)).observe(0.5)
        reg.meta["strategy"] = "fcfs"
        return reg

    def test_json_roundtrip(self, tmp_path):
        reg = self._populated()
        path = tmp_path / "telemetry.json"
        reg.write_json(path)
        loaded = load_telemetry(path)
        assert loaded.meta["strategy"] == "fcfs"
        assert [i.name for i in loaded.instruments] == [
            i.name for i in reg.instruments
        ]
        assert loaded.series("depth")[0].points == [(0.0, 2.0), (1.5, 4.0)]
        data = json.loads(path.read_text(encoding="ascii"))
        assert data["format"] == TELEMETRY_FORMAT

    def test_open_metrics_exposition(self):
        text = self._populated().open_metrics()
        assert "# TYPE runs_total counter" in text
        assert "# TYPE depth gauge" in text
        assert 'depth{node="0"} 4' in text
        assert 'wait_seconds_bucket{le="1"} 1' in text
        assert 'wait_seconds_bucket{le="+Inf"} 1' in text
        assert text.rstrip().endswith("# EOF")

    def test_load_rejects_bad_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 999}), encoding="ascii")
        with pytest.raises(ValueError, match="format"):
            load_telemetry(path)


class TestInstrumentedRun:
    def test_series_cover_the_run(self):
        telemetry = TelemetryRegistry()
        result = run_experiment(RESILIENT_SPEC, telemetry=telemetry)
        names = {i.name for i in telemetry.instruments}
        assert {
            "node_utilization",
            "sim_queue_depth",
            "sim_active_tasks",
            "node_breaker_state",
            "rpe_configured_slices",
            "jss_tasks_submitted_total",
            "jss_tasks_completed_total",
            "sim_faults_total",
            "task_wait_seconds",
            "task_turnaround_seconds",
        } <= names
        submitted = telemetry.series("jss_tasks_submitted_total")[0]
        assert submitted.value == RESILIENT_SPEC.tasks
        waits = next(
            i for i in telemetry.instruments if i.name == "task_wait_seconds"
        )
        # Wait is observed per dispatch, so retries re-observe it.
        assert waits.count >= result.report.completed
        turnarounds = next(
            i for i in telemetry.instruments if i.name == "task_turnaround_seconds"
        )
        assert turnarounds.count == result.report.completed
        assert telemetry.meta["strategy"] == RESILIENT_SPEC.strategy
        assert telemetry.meta["resilience"]  # armed mechanisms described

    def test_report_unchanged_by_telemetry(self):
        baseline = run_experiment(SPEC)
        observed = run_experiment(SPEC, telemetry=TelemetryRegistry())
        assert baseline.report == observed.report

    def test_trace_bytes_identical_with_telemetry(self):
        """Telemetry is purely observational: the event stream of an
        instrumented run is byte-for-byte the uninstrumented one."""
        def lines(telemetry):
            sink = InMemorySink()
            tracer = Tracer(TraceInvariantChecker(), sink)
            run_experiment(RESILIENT_SPEC, tracer=tracer, telemetry=telemetry)
            return [e.to_json() for e in canonical_events(list(sink.events))]

        assert lines(None) == lines(TelemetryRegistry())


class TestGoldenTracesWithTelemetryOff:
    """Tier-1 lock: a telemetry-free run (the default) must keep
    reproducing every committed golden trace byte-for-byte."""

    def test_all_goldens_byte_identical(self):
        from tests.sim.test_golden_traces import DATA_DIR, GOLDEN, generate_trace_lines

        for name in sorted(GOLDEN):
            golden = (DATA_DIR / GOLDEN[name][1]).read_text(
                encoding="ascii"
            ).splitlines()
            assert generate_trace_lines(name) == golden, name


def _traced_events(spec):
    sink = InMemorySink()
    run_experiment(spec, tracer=Tracer(TraceInvariantChecker(), sink))
    return canonical_events(list(sink.events))


class TestSpanBuilder:
    def test_task_spans_cover_lifecycle(self):
        events = _traced_events(SPEC)
        spans, instants = build_task_spans(events)
        phases = {s.phase for s in spans}
        assert {"queued", "execute"} <= phases
        executes = [s for s in spans if s.phase == "execute"]
        assert len(executes) == SPEC.tasks
        for s in spans:
            assert s.end >= s.start

    def test_annotations_from_faulty_run(self):
        events = _traced_events(RESILIENT_SPEC)
        spans, instants = build_task_spans(events)
        kinds = {i.kind for i in instants}
        assert kinds <= ANNOTATION_KINDS
        assert "fault" in kinds

    def test_node_spans_match_allocations(self):
        events = _traced_events(SPEC)
        allocs = sum(1 for e in events if e.kind == "slice-alloc")
        spans = build_node_spans(events)
        assert len(spans) == allocs
        for s in spans:
            assert s.phase == "occupied"
            assert s.end >= s.start


class TestChromeTrace:
    def test_structure_loads_in_tracing_format(self, tmp_path):
        """The export must be structurally valid Chrome trace-event
        JSON: a traceEvents array whose entries carry ph/pid/tid/ts."""
        events = _traced_events(RESILIENT_SPEC)
        doc = to_chrome_trace(events)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        trace_events = doc["traceEvents"]
        assert trace_events
        phases = {e["ph"] for e in trace_events}
        assert phases <= {"M", "X", "i"}
        for entry in trace_events:
            assert {"ph", "pid", "tid", "name"} <= set(entry)
            if entry["ph"] == "X":
                assert entry["dur"] >= 0 and entry["ts"] >= 0
            if entry["ph"] == "i":
                assert entry["s"] == "t" and "ts" in entry
        # Metadata names both process tracks.
        meta_names = {
            e["args"]["name"] for e in trace_events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"tasks", "fabric"} <= meta_names

        path = tmp_path / "perfetto.json"
        count = write_chrome_trace(path, events)
        assert count == len(trace_events)
        assert json.loads(path.read_text(encoding="ascii")) == doc
