"""Unit tests for arrival processes and synthetic workloads."""

import numpy as np
import pytest

from repro.grid.virtualizer import BitstreamRepository
from repro.hardware.catalog import device_by_model
from repro.hardware.taxonomy import PEClass
from repro.sim.workload import (
    ConfigurationPool,
    DeterministicArrivals,
    PoissonArrivals,
    SyntheticWorkload,
    UniformArrivals,
    WorkloadSpec,
)


class TestArrivalProcesses:
    def test_poisson_mean_matches_rate(self):
        rng = np.random.default_rng(0)
        process = PoissonArrivals(rate_per_s=4.0)
        gaps = [process.interarrival(rng) for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(0.25, rel=0.05)

    def test_uniform_bounds(self):
        rng = np.random.default_rng(0)
        process = UniformArrivals(0.5, 1.5)
        gaps = [process.interarrival(rng) for _ in range(1_000)]
        assert all(0.5 <= g <= 1.5 for g in gaps)

    def test_deterministic(self):
        rng = np.random.default_rng(0)
        process = DeterministicArrivals(2.0)
        assert [process.interarrival(rng) for _ in range(3)] == [2.0, 2.0, 2.0]

    def test_arrival_times_cumulative_and_sorted(self):
        rng = np.random.default_rng(1)
        times = PoissonArrivals(1.0).arrival_times(100, rng)
        assert len(times) == 100
        assert (np.diff(times) >= 0).all()

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: PoissonArrivals(0),
            lambda: UniformArrivals(-1, 2),
            lambda: UniformArrivals(3, 2),
            lambda: DeterministicArrivals(-1),
        ],
    )
    def test_validation(self, factory):
        with pytest.raises(ValueError):
            factory()


class TestConfigurationPool:
    def test_deterministic_under_seed(self):
        a = ConfigurationPool(8, seed=3)
        b = ConfigurationPool(8, seed=3)
        assert [(e.function, e.required_slices) for e in a.entries] == [
            (e.function, e.required_slices) for e in b.entries
        ]

    def test_area_range_respected(self):
        pool = ConfigurationPool(50, area_range=(1_000, 2_000), seed=0)
        assert all(1_000 <= e.required_slices <= 2_000 for e in pool.entries)

    def test_entry_lookup(self):
        pool = ConfigurationPool(3, seed=0)
        assert pool.entry("hwfunc_001").function == "hwfunc_001"
        with pytest.raises(KeyError):
            pool.entry("nope")

    def test_populate_repository_skips_oversized(self):
        pool = ConfigurationPool(10, area_range=(5_000, 40_000), seed=2)
        repo = BitstreamRepository()
        small = device_by_model("XC5VLX50")  # 7,200 slices
        stored = pool.populate_repository(repo, [small])
        fitting = sum(1 for e in pool.entries if e.required_slices <= small.slices)
        assert stored == fitting == len(repo)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfigurationPool(0)
        with pytest.raises(ValueError):
            ConfigurationPool(3, area_range=(0, 10))
        with pytest.raises(ValueError):
            ConfigurationPool(3, speedup_range=(5.0, 1.0))


class TestSyntheticWorkload:
    def make(self, **spec_overrides):
        spec_params = dict(task_count=200, gpp_fraction=0.5)
        spec_params.update(spec_overrides)
        return SyntheticWorkload(
            WorkloadSpec(**spec_params),
            ConfigurationPool(5, seed=1),
            PoissonArrivals(2.0),
            seed=42,
        )

    def test_deterministic_under_seed(self):
        s1 = self.make().generate()
        s2 = self.make().generate()
        assert [(t, task.task_id, task.function) for t, task in s1] == [
            (t, task.task_id, task.function) for t, task in s2
        ]

    def test_task_count_and_unique_ids(self):
        stream = self.make().generate()
        assert len(stream) == 200
        ids = [task.task_id for _, task in stream]
        assert len(set(ids)) == 200

    def test_pe_mix_follows_fraction(self):
        stream = self.make(task_count=2_000).generate()
        gpp = sum(1 for _, t in stream if t.exec_req.node_type is PEClass.GPP)
        assert gpp / 2_000 == pytest.approx(0.5, abs=0.05)

    def test_all_gpp_extreme(self):
        stream = self.make(gpp_fraction=1.0).generate()
        assert all(t.exec_req.node_type is PEClass.GPP for _, t in stream)

    def test_hw_tasks_reference_pool_functions(self):
        stream = self.make(gpp_fraction=0.0).generate()
        pool_functions = {e.function for e in self.make().pool.entries}
        assert all(t.function in pool_functions for _, t in stream)

    def test_hw_task_estimates_reflect_speedup(self):
        wl = self.make(gpp_fraction=0.0)
        for _, task in wl.generate():
            entry = wl.pool.entry(task.function)
            ref_time = task.effective_workload_mi / wl.spec.reference_mips
            assert task.t_estimated == pytest.approx(ref_time / entry.speedup_vs_gpp)

    def test_arrival_times_non_decreasing(self):
        times = [t for t, _ in self.make().generate()]
        assert times == sorted(times)


class TestVectorizedStreamIdentity:
    """The vectorization lock: every numpy-batched draw must be
    element-identical to the scalar loop it replaced, for the same
    seed.  numpy's Generator guarantees ``dist(size=n)`` consumes the
    bit stream exactly like n scalar ``dist()`` calls; these tests pin
    that contract so a numpy upgrade (or a careless refactor) cannot
    silently change seeded workloads."""

    @pytest.mark.parametrize(
        "process",
        [
            PoissonArrivals(rate_per_s=3.0),
            UniformArrivals(0.25, 1.75),
            DeterministicArrivals(0.5),
        ],
        ids=["poisson", "uniform", "deterministic"],
    )
    @pytest.mark.parametrize("n", [0, 1, 7, 1_000])
    def test_vectorized_arrival_times_match_scalar_reference(self, process, n):
        from repro.sim.workload import ArrivalProcess

        vec = process.arrival_times(n, np.random.default_rng(9))
        # The ABC base implementation is the scalar reference: a
        # python loop over interarrival() with a running sum.
        ref = ArrivalProcess.arrival_times(process, n, np.random.default_rng(9))
        assert vec.shape == ref.shape == (n,)
        np.testing.assert_array_equal(vec, ref)

    def make(self, **spec_overrides):
        spec_params = dict(task_count=500, gpp_fraction=0.3)
        spec_params.update(spec_overrides)
        return SyntheticWorkload(
            WorkloadSpec(**spec_params),
            ConfigurationPool(6, seed=4),
            PoissonArrivals(2.0),
            seed=1234,
            first_task_id=100,
        )

    def test_generate_columns_matches_scalar_reference(self):
        fast = self.make().generate_columns()
        slow = self.make().generate_columns_scalar()
        np.testing.assert_array_equal(fast.times, slow.times)
        np.testing.assert_array_equal(fast.ref_times, slow.ref_times)
        np.testing.assert_array_equal(fast.data_bytes, slow.data_bytes)
        np.testing.assert_array_equal(fast.is_gpp, slow.is_gpp)
        np.testing.assert_array_equal(fast.pool_idx, slow.pool_idx)

    @pytest.mark.parametrize("gpp_fraction", [0.0, 0.3, 1.0])
    def test_column_identity_across_class_mixes(self, gpp_fraction):
        wl = self.make(gpp_fraction=gpp_fraction, task_count=200)
        fast, slow = wl.generate_columns(), wl.generate_columns_scalar()
        np.testing.assert_array_equal(fast.is_gpp, slow.is_gpp)
        np.testing.assert_array_equal(fast.pool_idx, slow.pool_idx)

    def test_materialized_columns_build_generate_shaped_tasks(self):
        wl = self.make(task_count=50)
        columns = wl.generate_columns()
        stream = columns.materialize()
        assert len(stream) == len(columns) == 50
        for i, (t, task) in enumerate(stream):
            assert t == float(columns.times[i])
            assert task.task_id == 100 + i
            if columns.is_gpp[i]:
                assert task.exec_req.node_type is PEClass.GPP
                assert columns.pool_idx[i] == -1
                assert task.t_estimated == pytest.approx(float(columns.ref_times[i]))
            else:
                entry = wl.pool.entries[int(columns.pool_idx[i])]
                assert task.exec_req.node_type is PEClass.RPE
                assert task.function == entry.function
                assert task.t_estimated == pytest.approx(
                    float(columns.ref_times[i]) / entry.speedup_vs_gpp
                )
            assert task.workload_mi == pytest.approx(
                float(columns.ref_times[i]) * wl.spec.reference_mips
            )

    def test_pool_indices_cover_only_hardware_tasks(self):
        columns = self.make().generate_columns()
        assert (columns.pool_idx[columns.is_gpp] == -1).all()
        hw = columns.pool_idx[~columns.is_gpp]
        assert (hw >= 0).all() and (hw < len(columns.pool.entries)).all()

    def test_columns_deterministic_under_seed(self):
        a, b = self.make().generate_columns(), self.make().generate_columns()
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.pool_idx, b.pool_idx)
