"""Unit tests for arrival processes and synthetic workloads."""

import numpy as np
import pytest

from repro.grid.virtualizer import BitstreamRepository
from repro.hardware.catalog import device_by_model
from repro.hardware.taxonomy import PEClass
from repro.sim.workload import (
    ConfigurationPool,
    DeterministicArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    SyntheticWorkload,
    UniformArrivals,
    WorkloadSpec,
)


class TestArrivalProcesses:
    def test_poisson_mean_matches_rate(self):
        rng = np.random.default_rng(0)
        process = PoissonArrivals(rate_per_s=4.0)
        gaps = [process.interarrival(rng) for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(0.25, rel=0.05)

    def test_uniform_bounds(self):
        rng = np.random.default_rng(0)
        process = UniformArrivals(0.5, 1.5)
        gaps = [process.interarrival(rng) for _ in range(1_000)]
        assert all(0.5 <= g <= 1.5 for g in gaps)

    def test_deterministic(self):
        rng = np.random.default_rng(0)
        process = DeterministicArrivals(2.0)
        assert [process.interarrival(rng) for _ in range(3)] == [2.0, 2.0, 2.0]

    def test_arrival_times_cumulative_and_sorted(self):
        rng = np.random.default_rng(1)
        times = PoissonArrivals(1.0).arrival_times(100, rng)
        assert len(times) == 100
        assert (np.diff(times) >= 0).all()

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: PoissonArrivals(0),
            lambda: PoissonArrivals(float("nan")),
            lambda: PoissonArrivals(float("inf")),
            lambda: UniformArrivals(-1, 2),
            lambda: UniformArrivals(3, 2),
            lambda: UniformArrivals(0.5, float("inf")),
            lambda: DeterministicArrivals(-1),
            lambda: DeterministicArrivals(float("nan")),
        ],
    )
    def test_validation(self, factory):
        with pytest.raises(ValueError):
            factory()


class TestFlashCrowdArrivals:
    def make(self, **kw):
        params = dict(
            surge_start_s=5.0, surge_duration_s=10.0, surge_multiplier=6.0
        )
        params.update(kw)
        return FlashCrowdArrivals(2.0, **params)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"surge_start_s": -1.0},
            {"surge_duration_s": 0.0},
            {"surge_multiplier": 0.0},
            {"surge_start_s": float("nan")},
            {"surge_multiplier": float("inf")},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            self.make(**overrides)
        with pytest.raises(ValueError):
            FlashCrowdArrivals(
                0.0, surge_start_s=1.0, surge_duration_s=1.0, surge_multiplier=2.0
            )

    def test_rate_profile_is_piecewise_constant(self):
        process = self.make()
        assert process.rate_at(0.0) == 2.0
        assert process.rate_at(5.0) == 12.0  # surge window is half-open
        assert process.rate_at(14.999) == 12.0
        assert process.rate_at(15.0) == 2.0

    def test_surge_window_is_denser(self):
        times = self.make().arrival_times(600, np.random.default_rng(0))
        in_surge = np.count_nonzero((times >= 5.0) & (times < 15.0))
        before = np.count_nonzero(times < 5.0)
        # 10 s at 12/s vs 5 s at 2/s: expect ~120 vs ~10 arrivals.
        assert in_surge > 8 * before

    def test_arrival_times_non_decreasing(self):
        times = self.make().arrival_times(300, np.random.default_rng(3))
        assert (np.diff(times) >= 0).all()

    def test_vectorized_batch_matches_scalar_draws(self):
        """Stream identity for the stateful process: fresh instances,
        same seed, batched vs scalar must agree to the last bit."""
        vec = self.make().arrival_times(200, np.random.default_rng(9))
        scalar_process = self.make()
        rng = np.random.default_rng(9)
        ref = np.cumsum([scalar_process.interarrival(rng) for _ in range(200)])
        np.testing.assert_array_equal(vec, np.asarray(ref))

    def test_unit_multiplier_matches_plain_poisson(self):
        """A x1 surge is exactly a homogeneous Poisson process."""
        flash = FlashCrowdArrivals(
            3.0, surge_start_s=2.0, surge_duration_s=4.0, surge_multiplier=1.0
        )
        plain = PoissonArrivals(3.0)
        a = flash.arrival_times(500, np.random.default_rng(11))
        b = plain.arrival_times(500, np.random.default_rng(11))
        np.testing.assert_allclose(a, b)


class TestWorkloadPriorityAndTenants:
    def make(self, **spec_overrides):
        params = dict(task_count=200, gpp_fraction=0.4)
        params.update(spec_overrides)
        return SyntheticWorkload(
            WorkloadSpec(**params),
            ConfigurationPool(4, seed=2),
            PoissonArrivals(3.0),
            seed=77,
        )

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(task_count=5, low_priority_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(task_count=5, tenants=0)

    def test_low_priority_fraction_tags_tasks(self):
        wl = self.make(low_priority_fraction=0.5)
        priorities = [task.priority for _, task in wl.generate()]
        low = sum(1 for p in priorities if p < 0)
        assert set(priorities) == {-1, 0}
        assert 0.3 < low / len(priorities) < 0.7

    def test_default_stream_is_untagged_and_unperturbed(self):
        """priority/tenant default off must not consume RNG draws: the
        task stream is identical with and without the feature present."""
        plain = [(t, task) for t, task in self.make().generate()]
        tagged = [(t, task) for t, task in self.make(tenants=3).generate()]
        assert all(task.priority == 0 and task.tenant == "" for _, task in plain)
        for (t0, a), (t1, b) in zip(plain, tagged):
            assert t0 == t1
            assert a.task_id == b.task_id
            assert a.t_estimated == b.t_estimated

    def test_tenants_round_robin(self):
        wl = self.make(tenants=3)
        tenants = [task.tenant for _, task in wl.generate()]
        assert set(tenants) == {"tenant0", "tenant1", "tenant2"}
        assert tenants[0] != tenants[1] != tenants[2]


class TestConfigurationPool:
    def test_deterministic_under_seed(self):
        a = ConfigurationPool(8, seed=3)
        b = ConfigurationPool(8, seed=3)
        assert [(e.function, e.required_slices) for e in a.entries] == [
            (e.function, e.required_slices) for e in b.entries
        ]

    def test_area_range_respected(self):
        pool = ConfigurationPool(50, area_range=(1_000, 2_000), seed=0)
        assert all(1_000 <= e.required_slices <= 2_000 for e in pool.entries)

    def test_entry_lookup(self):
        pool = ConfigurationPool(3, seed=0)
        assert pool.entry("hwfunc_001").function == "hwfunc_001"
        with pytest.raises(KeyError):
            pool.entry("nope")

    def test_populate_repository_skips_oversized(self):
        pool = ConfigurationPool(10, area_range=(5_000, 40_000), seed=2)
        repo = BitstreamRepository()
        small = device_by_model("XC5VLX50")  # 7,200 slices
        stored = pool.populate_repository(repo, [small])
        fitting = sum(1 for e in pool.entries if e.required_slices <= small.slices)
        assert stored == fitting == len(repo)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfigurationPool(0)
        with pytest.raises(ValueError):
            ConfigurationPool(3, area_range=(0, 10))
        with pytest.raises(ValueError):
            ConfigurationPool(3, speedup_range=(5.0, 1.0))


class TestSyntheticWorkload:
    def make(self, **spec_overrides):
        spec_params = dict(task_count=200, gpp_fraction=0.5)
        spec_params.update(spec_overrides)
        return SyntheticWorkload(
            WorkloadSpec(**spec_params),
            ConfigurationPool(5, seed=1),
            PoissonArrivals(2.0),
            seed=42,
        )

    def test_deterministic_under_seed(self):
        s1 = self.make().generate()
        s2 = self.make().generate()
        assert [(t, task.task_id, task.function) for t, task in s1] == [
            (t, task.task_id, task.function) for t, task in s2
        ]

    def test_task_count_and_unique_ids(self):
        stream = self.make().generate()
        assert len(stream) == 200
        ids = [task.task_id for _, task in stream]
        assert len(set(ids)) == 200

    def test_pe_mix_follows_fraction(self):
        stream = self.make(task_count=2_000).generate()
        gpp = sum(1 for _, t in stream if t.exec_req.node_type is PEClass.GPP)
        assert gpp / 2_000 == pytest.approx(0.5, abs=0.05)

    def test_all_gpp_extreme(self):
        stream = self.make(gpp_fraction=1.0).generate()
        assert all(t.exec_req.node_type is PEClass.GPP for _, t in stream)

    def test_hw_tasks_reference_pool_functions(self):
        stream = self.make(gpp_fraction=0.0).generate()
        pool_functions = {e.function for e in self.make().pool.entries}
        assert all(t.function in pool_functions for _, t in stream)

    def test_hw_task_estimates_reflect_speedup(self):
        wl = self.make(gpp_fraction=0.0)
        for _, task in wl.generate():
            entry = wl.pool.entry(task.function)
            ref_time = task.effective_workload_mi / wl.spec.reference_mips
            assert task.t_estimated == pytest.approx(ref_time / entry.speedup_vs_gpp)

    def test_arrival_times_non_decreasing(self):
        times = [t for t, _ in self.make().generate()]
        assert times == sorted(times)


class TestVectorizedStreamIdentity:
    """The vectorization lock: every numpy-batched draw must be
    element-identical to the scalar loop it replaced, for the same
    seed.  numpy's Generator guarantees ``dist(size=n)`` consumes the
    bit stream exactly like n scalar ``dist()`` calls; these tests pin
    that contract so a numpy upgrade (or a careless refactor) cannot
    silently change seeded workloads."""

    @pytest.mark.parametrize(
        "process",
        [
            PoissonArrivals(rate_per_s=3.0),
            UniformArrivals(0.25, 1.75),
            DeterministicArrivals(0.5),
        ],
        ids=["poisson", "uniform", "deterministic"],
    )
    @pytest.mark.parametrize("n", [0, 1, 7, 1_000])
    def test_vectorized_arrival_times_match_scalar_reference(self, process, n):
        from repro.sim.workload import ArrivalProcess

        vec = process.arrival_times(n, np.random.default_rng(9))
        # The ABC base implementation is the scalar reference: a
        # python loop over interarrival() with a running sum.
        ref = ArrivalProcess.arrival_times(process, n, np.random.default_rng(9))
        assert vec.shape == ref.shape == (n,)
        np.testing.assert_array_equal(vec, ref)

    def make(self, **spec_overrides):
        spec_params = dict(task_count=500, gpp_fraction=0.3)
        spec_params.update(spec_overrides)
        return SyntheticWorkload(
            WorkloadSpec(**spec_params),
            ConfigurationPool(6, seed=4),
            PoissonArrivals(2.0),
            seed=1234,
            first_task_id=100,
        )

    def test_generate_columns_matches_scalar_reference(self):
        fast = self.make().generate_columns()
        slow = self.make().generate_columns_scalar()
        np.testing.assert_array_equal(fast.times, slow.times)
        np.testing.assert_array_equal(fast.ref_times, slow.ref_times)
        np.testing.assert_array_equal(fast.data_bytes, slow.data_bytes)
        np.testing.assert_array_equal(fast.is_gpp, slow.is_gpp)
        np.testing.assert_array_equal(fast.pool_idx, slow.pool_idx)

    @pytest.mark.parametrize("gpp_fraction", [0.0, 0.3, 1.0])
    def test_column_identity_across_class_mixes(self, gpp_fraction):
        wl = self.make(gpp_fraction=gpp_fraction, task_count=200)
        fast, slow = wl.generate_columns(), wl.generate_columns_scalar()
        np.testing.assert_array_equal(fast.is_gpp, slow.is_gpp)
        np.testing.assert_array_equal(fast.pool_idx, slow.pool_idx)

    def test_materialized_columns_build_generate_shaped_tasks(self):
        wl = self.make(task_count=50)
        columns = wl.generate_columns()
        stream = columns.materialize()
        assert len(stream) == len(columns) == 50
        for i, (t, task) in enumerate(stream):
            assert t == float(columns.times[i])
            assert task.task_id == 100 + i
            if columns.is_gpp[i]:
                assert task.exec_req.node_type is PEClass.GPP
                assert columns.pool_idx[i] == -1
                assert task.t_estimated == pytest.approx(float(columns.ref_times[i]))
            else:
                entry = wl.pool.entries[int(columns.pool_idx[i])]
                assert task.exec_req.node_type is PEClass.RPE
                assert task.function == entry.function
                assert task.t_estimated == pytest.approx(
                    float(columns.ref_times[i]) / entry.speedup_vs_gpp
                )
            assert task.workload_mi == pytest.approx(
                float(columns.ref_times[i]) * wl.spec.reference_mips
            )

    def test_pool_indices_cover_only_hardware_tasks(self):
        columns = self.make().generate_columns()
        assert (columns.pool_idx[columns.is_gpp] == -1).all()
        hw = columns.pool_idx[~columns.is_gpp]
        assert (hw >= 0).all() and (hw < len(columns.pool.entries)).all()

    def test_columns_deterministic_under_seed(self):
        a, b = self.make().generate_columns(), self.make().generate_columns()
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.pool_idx, b.pool_idx)
