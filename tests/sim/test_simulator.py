"""Integration-grade unit tests for the DReAMSim facade."""

import pytest

from repro.core.application import Application, Par, Seq, Stream
from repro.core.execreq import Artifacts, ExecReq, MinValue
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.jss import JobStatus
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.bitstream import Bitstream
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.taxonomy import PEClass
from repro.sim.simulator import DReAMSim


def gpp_req():
    return ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x"))


def gpp_task(task_id, t=1.0, sources=(), in_bytes=0):
    return simple_task(task_id, gpp_req(), t, sources=sources, in_bytes=in_bytes)


def gpp_rms(gpps=3, mips=1_000):
    node = Node()
    for i in range(gpps):
        node.add_gpp(GPPSpec(cpu_model=f"cpu{i}", mips=mips))
    rms = ResourceManagementSystem()
    rms.register_node(node)
    return rms, node


class TestIndependentTasks:
    def test_parallel_capacity(self):
        rms, _ = gpp_rms(gpps=3)
        sim = DReAMSim(rms)
        sim.submit_workload([(0.0, gpp_task(i)) for i in range(3)])
        report = sim.run()
        assert report.completed == 3
        assert report.makespan_s == pytest.approx(1.0)

    def test_queueing_when_saturated(self):
        rms, _ = gpp_rms(gpps=1)
        sim = DReAMSim(rms)
        sim.submit_workload([(0.0, gpp_task(i)) for i in range(3)])
        report = sim.run()
        assert report.completed == 3
        assert report.makespan_s == pytest.approx(3.0)
        # Mean wait: 0 + 1 + 2 over three tasks.
        assert report.mean_wait_s == pytest.approx(1.0)

    def test_jobs_tracked_through_jss(self):
        rms, _ = gpp_rms()
        sim = DReAMSim(rms)
        sim.submit_workload([(0.0, gpp_task(0))])
        sim.run()
        job = next(iter(sim.jss.jobs.values()))
        assert job.status is JobStatus.COMPLETED

    def test_discard_after_timeout(self):
        rms, _ = gpp_rms(gpps=1)
        sim = DReAMSim(rms, discard_after_s=0.5)
        # Second task cannot start within 0.5 s: the single GPP is busy for 10.
        sim.submit_workload([(0.0, gpp_task(0, t=10.0)), (0.0, gpp_task(1))])
        report = sim.run()
        assert report.completed == 1
        assert report.discarded == 1
        job1 = sim.jss.jobs[max(sim.jss.jobs)]
        assert job1.status is JobStatus.FAILED


class TestTaskGraphs:
    def test_dependencies_serialize(self):
        rms, _ = gpp_rms(gpps=3)
        sim = DReAMSim(rms)
        chain = [
            gpp_task(0),
            gpp_task(1, sources=(0,), in_bytes=8),
            gpp_task(2, sources=(1,), in_bytes=8),
        ]
        sim.submit_graph(chain)
        report = sim.run()
        assert report.completed == 3
        assert report.makespan_s == pytest.approx(3.0)

    def test_diamond_parallelism(self):
        rms, _ = gpp_rms(gpps=3)
        sim = DReAMSim(rms)
        tasks = [
            gpp_task(0),
            gpp_task(1, sources=(0,), in_bytes=8),
            gpp_task(2, sources=(0,), in_bytes=8),
            gpp_task(3, sources=(1, 2), in_bytes=8),
        ]
        sim.submit_graph(tasks)
        report = sim.run()
        # 1 + max(1,1) + 1 = 3, not 4: the middle pair overlaps.
        assert report.makespan_s == pytest.approx(3.0)


class TestApplications:
    def test_equation4_schedule(self):
        rms, _ = gpp_rms(gpps=3)
        sim = DReAMSim(rms)
        app = Application(clauses=(Seq(2), Par(4, 1, 7), Seq(5, 10)))
        tasks = {i: gpp_task(i) for i in (2, 4, 1, 7, 5, 10)}
        job_id = sim.submit_application(app, tasks)
        report = sim.run()
        # Figure 8: 1 (T2) + 1 (par step) + 1 (T5) + 1 (T10).
        assert report.makespan_s == pytest.approx(4.0)
        assert sim.jss.job(job_id).status is JobStatus.COMPLETED

    def test_par_step_limited_by_capacity(self):
        rms, _ = gpp_rms(gpps=1)
        sim = DReAMSim(rms)
        app = Application(clauses=(Par(1, 2, 3),))
        sim.submit_application(app, {i: gpp_task(i) for i in (1, 2, 3)})
        report = sim.run()
        assert report.makespan_s == pytest.approx(3.0)

    def test_stream_pipelines_chunks(self):
        rms, _ = gpp_rms(gpps=3)
        sim = DReAMSim(rms)
        app = Application(clauses=(Stream(0, 1, 2),))
        tasks = {i: gpp_task(i) for i in (0, 1, 2)}
        job_id = sim.submit_application(app, tasks, stream_chunks=4)
        report = sim.run()
        # 3 stages x 4 chunks of 0.25 s in a pipeline:
        # (stages + chunks - 1) * 0.25 = 1.5 s, vs 3.0 s sequentially.
        assert report.makespan_s == pytest.approx(1.5)
        assert sim.jss.job(job_id).status is JobStatus.COMPLETED

    def test_stream_chunks_must_be_positive(self):
        rms, _ = gpp_rms()
        sim = DReAMSim(rms)
        app = Application(clauses=(Stream(0),))
        with pytest.raises(ValueError):
            sim.submit_application(app, {0: gpp_task(0)}, stream_chunks=0)

    def test_mixed_application(self):
        rms, _ = gpp_rms(gpps=2)
        sim = DReAMSim(rms)
        app = Application(clauses=(Seq(0), Stream(1, 2), Seq(3)))
        tasks = {i: gpp_task(i) for i in range(4)}
        sim.submit_application(app, tasks, stream_chunks=2)
        report = sim.run()
        # 1 + pipeline((2 stages + 2 chunks - 1) * 0.5 = 1.5) + 1
        assert report.makespan_s == pytest.approx(3.5)


class TestReconfigurableGrid:
    def build(self):
        node = Node(node_id=0)
        node.add_rpe(device_by_model("XC5VLX155"), regions=2)
        rms = ResourceManagementSystem()
        rms.register_node(node)
        return rms

    def hw_task(self, task_id, function="fft", slices=9_000):
        bs = Bitstream(200 + task_id, "XC5VLX155", 1_000_000, slices, implements=function)
        return simple_task(
            task_id,
            ExecReq(
                node_type=PEClass.RPE,
                constraints=(MinValue("slices", slices),),
                artifacts=Artifacts(application_code="x", bitstream=bs),
            ),
            1.0,
            function=function,
        )

    def test_configuration_reuse_counted(self):
        rms = self.build()
        sim = DReAMSim(rms)
        # Arrivals spaced wider than exec + reconfig, so each task finds
        # the configuration resident and idle.
        sim.submit_workload([(2.0 * i, self.hw_task(i)) for i in range(4)])
        report = sim.run()
        assert report.completed == 4
        assert report.reconfigurations == 1  # only the first load
        assert report.reuse_hits == 3

    def test_region_reconfigures_while_sibling_executes(self):
        """Partial reconfiguration's point: loading one region must not
        block the other region's running task (ref [21])."""
        rms = self.build()
        sim = DReAMSim(rms)
        # Task 0 occupies region A; task 1 arrives mid-execution and
        # must configure region B concurrently rather than queue.
        long_task = self.hw_task(0, "fft")
        import dataclasses

        long_task = dataclasses.replace(long_task, t_estimated=5.0)
        sim.submit_workload([(0.0, long_task), (1.0, self.hw_task(1, "fir"))])
        report = sim.run()
        assert report.completed == 2
        t1 = sim.metrics.tasks[(max(j for j, _ in sim.metrics.tasks), 1)]
        # Task 1 started well before task 0's 5-second finish.
        assert t1.start < 2.0
        assert report.reconfigurations == 2

    def test_distinct_functions_fill_regions(self):
        rms = self.build()
        sim = DReAMSim(rms)
        sim.submit_workload(
            [(0.0, self.hw_task(0, "fft")), (0.0, self.hw_task(1, "fir"))]
        )
        report = sim.run()
        assert report.completed == 2
        assert report.reconfigurations == 2


class TestNodeChurn:
    def test_leave_requeues_and_join_rescues(self):
        node_a = Node(node_id=10)
        node_a.add_gpp(GPPSpec(cpu_model="X", mips=1_000))
        rms = ResourceManagementSystem()
        rms.register_node(node_a)
        sim = DReAMSim(rms)
        sim.submit_workload([(0.0, gpp_task(0, t=10.0))])
        node_b = Node(node_id=11)
        node_b.add_gpp(GPPSpec(cpu_model="Y", mips=1_000))
        sim.schedule_node_leave(2.0, 10)
        sim.schedule_node_join(3.0, node_b)
        report = sim.run()
        assert report.completed == 1
        assert sim.requeues == 1
        # Restarted from scratch on the new node at t=3.
        assert report.makespan_s == pytest.approx(13.0)

    def test_leave_without_victims(self):
        rms, _ = gpp_rms()
        extra = Node(node_id=77)
        extra.add_gpp(GPPSpec(cpu_model="Z", mips=500))
        rms.register_node(extra)
        sim = DReAMSim(rms)
        sim.schedule_node_leave(1.0, 77)
        sim.submit_workload([(0.0, gpp_task(0))])
        report = sim.run()
        assert report.completed == 1
        assert sim.requeues == 0

    def test_join_triggers_dispatch_of_waiting_tasks(self):
        rms = ResourceManagementSystem()  # empty grid
        sim = DReAMSim(rms)
        sim.submit_workload([(0.0, gpp_task(0))])
        node = Node(node_id=5)
        node.add_gpp(GPPSpec(cpu_model="X", mips=1_000))
        sim.schedule_node_join(4.0, node)
        report = sim.run()
        assert report.completed == 1
        assert report.makespan_s == pytest.approx(5.0)
        # The wait reflects the grid having no capacity until t=4.
        task = next(iter(sim.metrics.tasks.values()))
        assert task.wait_time == pytest.approx(4.0)
