"""Unit tests for the simulation metrics collector."""

from dataclasses import asdict

import pytest

from repro.sim.metrics import (
    BulkMetricsCollector,
    MetricsCollector,
    ResourceUsage,
    TaskMetrics,
)


def record_one(collector, key, *, arrival, dispatch, start, finish, reconfig=0.0, reused=False):
    collector.record_arrival(key, arrival)
    collector.record_dispatch(
        key,
        dispatch,
        pe_kind="RPE",
        node_id=0,
        transfer_time=0.1,
        synthesis_time=0.0,
        reconfig_time=reconfig,
        reused=reused,
    )
    collector.record_start(key, start)
    collector.record_finish(key, finish, "node0:RPE0")


class TestTaskMetrics:
    def test_derived_times(self):
        tm = TaskMetrics(key=1, arrival=1.0, dispatch=3.0, finish=10.0)
        assert tm.wait_time == 2.0
        assert tm.turnaround == 9.0

    def test_undefined_until_events_happen(self):
        tm = TaskMetrics(key=1, arrival=1.0)
        assert tm.wait_time is None
        assert tm.turnaround is None


class TestResourceUsage:
    def test_utilization_clamped(self):
        usage = ResourceUsage("r", busy_s=15.0)
        assert usage.utilization(10.0) == 1.0
        assert usage.utilization(30.0) == pytest.approx(0.5)
        assert usage.utilization(0.0) == 0.0


class TestCollector:
    def test_duplicate_key_rejected(self):
        collector = MetricsCollector()
        collector.record_arrival(1, 0.0)
        with pytest.raises(ValueError):
            collector.record_arrival(1, 0.0)

    def test_report_aggregates(self):
        collector = MetricsCollector()
        record_one(collector, "a", arrival=0.0, dispatch=1.0, start=1.5, finish=3.5, reconfig=0.5)
        record_one(collector, "b", arrival=0.0, dispatch=3.0, start=3.0, finish=5.0, reused=True)
        collector.record_arrival("c", 4.0)  # still pending
        collector.record_arrival("d", 4.0)
        collector.record_discard("d", 9.0)

        report = collector.report(horizon_s=10.0)
        assert report.completed == 2
        assert report.pending == 1
        assert report.discarded == 1
        assert report.mean_wait_s == pytest.approx((1.0 + 3.0) / 2)
        assert report.mean_turnaround_s == pytest.approx((3.5 + 5.0) / 2)
        assert report.makespan_s == 5.0
        assert report.reconfigurations == 1
        assert report.total_reconfig_time_s == pytest.approx(0.5)
        assert report.reuse_hits == 1
        assert report.reuse_rate == pytest.approx(0.5)
        # busy time: (3.5-1.5) + (5.0-3.0) = 4 over 10 s horizon
        assert report.per_resource_utilization["node0:RPE0"] == pytest.approx(0.4)
        assert report.tasks_by_pe_kind == {"RPE": 2}

    def test_empty_report(self):
        report = MetricsCollector().report(horizon_s=5.0)
        assert report.completed == 0
        assert report.mean_wait_s == 0.0
        assert report.reuse_rate == 0.0
        assert report.mean_utilization == 0.0

    def test_summary_lines_render(self):
        collector = MetricsCollector()
        record_one(collector, "a", arrival=0.0, dispatch=1.0, start=1.0, finish=2.0)
        lines = collector.report(5.0).summary_lines()
        assert any("completed" in line for line in lines)
        assert any("reuse" in line for line in lines)

    def test_trace_is_chronological_per_task(self):
        collector = MetricsCollector()
        record_one(collector, "a", arrival=0.0, dispatch=1.0, start=1.5, finish=3.0)
        kinds = [kind for _, kind, key in collector.trace if key == "a"]
        assert kinds == ["arrival", "dispatch", "start", "finish"]


class TestBulkCollector:
    """Differential lock: :class:`BulkMetricsCollector` must produce a
    report *identical* to the standard collector on the same run --
    same means, same percentiles, same rounding, same by-kind dict
    order.  The bulk collector's only licensed difference is storage
    (numpy columns instead of per-task objects)."""

    def test_bulk_report_matches_standard_on_synthetic_events(self):
        std, bulk = MetricsCollector(), BulkMetricsCollector(capacity=2)
        for coll in (std, bulk):
            record_one(coll, "a", arrival=0.0, dispatch=1.0, start=1.5, finish=3.5, reconfig=0.5)
            record_one(coll, "b", arrival=0.2, dispatch=3.0, start=3.0, finish=5.0, reused=True)
            record_one(coll, "c", arrival=0.4, dispatch=0.4, start=0.6, finish=9.1)
            coll.record_arrival("d", 4.0)
            coll.record_discard("d", 9.0)
            coll.record_arrival("e", 5.0)  # pending forever
        assert asdict(std.report(10.0)) == asdict(bulk.report(10.0))

    def test_bulk_capacity_grows_past_initial_allocation(self):
        bulk = BulkMetricsCollector(capacity=4)
        std = MetricsCollector()
        for i in range(100):  # 25x the initial capacity
            record_one(std, i, arrival=float(i), dispatch=i + 0.5, start=i + 0.5, finish=i + 2.0)
            record_one(bulk, i, arrival=float(i), dispatch=i + 0.5, start=i + 0.5, finish=i + 2.0)
        assert asdict(std.report(200.0)) == asdict(bulk.report(200.0))

    def test_bulk_duplicate_key_rejected(self):
        bulk = BulkMetricsCollector()
        bulk.record_arrival(1, 0.0)
        with pytest.raises(ValueError):
            bulk.record_arrival(1, 0.0)

    def test_bulk_task_rows_expose_arrival_and_dispatch(self):
        """The simulator reads ``metrics.tasks[key].arrival`` /
        ``.dispatch`` on its hot paths; the row facade must behave
        like TaskMetrics there, including None before the event."""
        bulk = BulkMetricsCollector()
        bulk.record_arrival("t", 1.25)
        assert "t" in bulk.tasks and "nope" not in bulk.tasks
        assert len(bulk.tasks) == 1
        row = bulk.tasks["t"]
        assert row.arrival == 1.25
        assert row.dispatch is None
        bulk.record_dispatch(
            "t", 2.5, pe_kind="GPP", node_id=1, transfer_time=0.0,
            synthesis_time=0.0, reconfig_time=0.0, reused=False,
        )
        assert bulk.tasks["t"].dispatch == 2.5

    @pytest.mark.parametrize("scenario", ["plain", "chaos", "resilience"])
    def test_bulk_report_matches_standard_on_full_experiments(self, scenario):
        """End-to-end differential: run the same seeded experiment with
        both collectors and require byte-equal reports.  The chaos and
        resilience scenarios push faults, retries, fallbacks, deadline
        misses, checkpoints, and migrations through the bulk paths."""
        from repro.grid.health import HealthPolicy
        from repro.sim.experiment import ExperimentSpec, run_experiment
        from repro.sim.faults import FaultSpec
        from repro.sim.resilience import (
            CheckpointSpec,
            DeadlineSpec,
            ResilienceSpec,
            SpeculationSpec,
        )

        spec = ExperimentSpec(
            tasks=40, configurations=4, arrival_rate_per_s=8.0,
            area_range=(2_000, 14_000), gpp_fraction=0.2, seed=7,
        )
        if scenario in ("chaos", "resilience"):
            spec = spec.with_(
                faults=FaultSpec(
                    crash_rate_per_s=0.25, downtime_range_s=(1.0, 3.0),
                    config_fault_prob=0.35, seu_rate_per_s=0.2, horizon_s=8.0,
                ),
            )
        if scenario == "resilience":
            spec = spec.with_(
                seed=11,
                resilience=ResilienceSpec(
                    breaker=HealthPolicy(min_events=2, open_threshold=0.4, open_duration_s=4.0),
                    deadlines=DeadlineSpec(soft_factor=2.0, hard_factor=6.0, slack_s=0.25),
                    checkpoint=CheckpointSpec(interval_s=0.1),
                    speculation=SpeculationSpec(slowdown_factor=1.5),
                ),
            )
        standard = run_experiment(spec).report
        bulk_result = run_experiment(spec, metrics=BulkMetricsCollector())
        assert asdict(bulk_result.report) == asdict(standard)
