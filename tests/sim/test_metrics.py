"""Unit tests for the simulation metrics collector."""

import pytest

from repro.sim.metrics import MetricsCollector, ResourceUsage, TaskMetrics


def record_one(collector, key, *, arrival, dispatch, start, finish, reconfig=0.0, reused=False):
    collector.record_arrival(key, arrival)
    collector.record_dispatch(
        key,
        dispatch,
        pe_kind="RPE",
        node_id=0,
        transfer_time=0.1,
        synthesis_time=0.0,
        reconfig_time=reconfig,
        reused=reused,
    )
    collector.record_start(key, start)
    collector.record_finish(key, finish, "node0:RPE0")


class TestTaskMetrics:
    def test_derived_times(self):
        tm = TaskMetrics(key=1, arrival=1.0, dispatch=3.0, finish=10.0)
        assert tm.wait_time == 2.0
        assert tm.turnaround == 9.0

    def test_undefined_until_events_happen(self):
        tm = TaskMetrics(key=1, arrival=1.0)
        assert tm.wait_time is None
        assert tm.turnaround is None


class TestResourceUsage:
    def test_utilization_clamped(self):
        usage = ResourceUsage("r", busy_s=15.0)
        assert usage.utilization(10.0) == 1.0
        assert usage.utilization(30.0) == pytest.approx(0.5)
        assert usage.utilization(0.0) == 0.0


class TestCollector:
    def test_duplicate_key_rejected(self):
        collector = MetricsCollector()
        collector.record_arrival(1, 0.0)
        with pytest.raises(ValueError):
            collector.record_arrival(1, 0.0)

    def test_report_aggregates(self):
        collector = MetricsCollector()
        record_one(collector, "a", arrival=0.0, dispatch=1.0, start=1.5, finish=3.5, reconfig=0.5)
        record_one(collector, "b", arrival=0.0, dispatch=3.0, start=3.0, finish=5.0, reused=True)
        collector.record_arrival("c", 4.0)  # still pending
        collector.record_arrival("d", 4.0)
        collector.record_discard("d", 9.0)

        report = collector.report(horizon_s=10.0)
        assert report.completed == 2
        assert report.pending == 1
        assert report.discarded == 1
        assert report.mean_wait_s == pytest.approx((1.0 + 3.0) / 2)
        assert report.mean_turnaround_s == pytest.approx((3.5 + 5.0) / 2)
        assert report.makespan_s == 5.0
        assert report.reconfigurations == 1
        assert report.total_reconfig_time_s == pytest.approx(0.5)
        assert report.reuse_hits == 1
        assert report.reuse_rate == pytest.approx(0.5)
        # busy time: (3.5-1.5) + (5.0-3.0) = 4 over 10 s horizon
        assert report.per_resource_utilization["node0:RPE0"] == pytest.approx(0.4)
        assert report.tasks_by_pe_kind == {"RPE": 2}

    def test_empty_report(self):
        report = MetricsCollector().report(horizon_s=5.0)
        assert report.completed == 0
        assert report.mean_wait_s == 0.0
        assert report.reuse_rate == 0.0
        assert report.mean_utilization == 0.0

    def test_summary_lines_render(self):
        collector = MetricsCollector()
        record_one(collector, "a", arrival=0.0, dispatch=1.0, start=1.0, finish=2.0)
        lines = collector.report(5.0).summary_lines()
        assert any("completed" in line for line in lines)
        assert any("reuse" in line for line in lines)

    def test_trace_is_chronological_per_task(self):
        collector = MetricsCollector()
        record_one(collector, "a", arrival=0.0, dispatch=1.0, start=1.5, finish=3.0)
        kinds = [kind for _, kind, key in collector.trace if key == "a"]
        assert kinds == ["arrival", "dispatch", "start", "finish"]
