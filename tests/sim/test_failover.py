"""Control-plane fault tolerance (:mod:`repro.sim.failover`).

Unit coverage for the three new pieces -- the phi-accrual-style
:class:`HeartbeatMonitor`, the :class:`ReplicatedRMS` availability
wrapper, and the spec validation -- plus simulator-level scenarios:
cold restart orphaning, replicated failover, heartbeat-driven node
crash detection, and the zero-cost-when-disabled report equality.
"""

import math

import pytest

from repro.core.node import Node
from repro.grid.network import Network
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.sim.failover import (
    ALIVE,
    DOWN,
    FAILOVER_PRESETS,
    SUSPECT,
    FailoverSpec,
    HeartbeatMonitor,
    HeartbeatSpec,
    ReplicatedRMS,
)
from repro.sim.faults import FaultInjector, FaultSpec, RetryPolicy
from repro.sim.simulator import DReAMSim
from repro.sim.tracing import (
    InMemorySink,
    TraceInvariantChecker,
    Tracer,
    canonical_events,
)
from repro.sim.workload import (
    ConfigurationPool,
    PoissonArrivals,
    SyntheticWorkload,
    WorkloadSpec,
)


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------
class TestHeartbeatSpecValidation:
    def test_defaults_are_valid(self):
        HeartbeatSpec()

    @pytest.mark.parametrize("kwargs", [
        {"interval_s": 0.0},
        {"interval_s": -1.0},
        {"interval_s": math.nan},
        {"suspect_after": 0.5},
        {"suspect_after": math.inf},
        {"confirm_after": 3.0},        # == suspect_after
        {"confirm_after": 2.0},        # < suspect_after
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
        {"min_samples": 0},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HeartbeatSpec(**kwargs)


class TestFailoverSpecValidation:
    def test_default_is_inert(self):
        spec = FailoverSpec()
        assert not spec.enabled

    def test_any_knob_enables(self):
        assert FailoverSpec(heartbeat=HeartbeatSpec()).enabled
        assert FailoverSpec(standbys=1).enabled
        assert FailoverSpec(lease_s=5.0).enabled

    @pytest.mark.parametrize("kwargs", [
        {"standbys": -1},
        {"takeover_delay_s": -0.1},
        {"takeover_delay_s": math.nan},
        {"lease_s": 0.0},
        {"lease_s": -2.0},
        {"lease_s": math.inf},
        # Lease shorter than the heartbeat interval: every lease would
        # lapse between renewals.
        {"heartbeat": HeartbeatSpec(interval_s=1.0), "lease_s": 0.5},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FailoverSpec(**kwargs)

    def test_presets_are_valid_and_named_sanely(self):
        assert not FAILOVER_PRESETS["none"].enabled
        assert FAILOVER_PRESETS["detect"].heartbeat is not None
        assert FAILOVER_PRESETS["replicated"].standbys == 1
        assert FAILOVER_PRESETS["ha"].standbys == 2

    def test_describe_is_flat_and_json_safe(self):
        import json

        desc = FAILOVER_PRESETS["replicated"].describe()
        json.dumps(desc)
        assert desc["standbys"] == 1
        assert desc["heartbeat_interval_s"] == 0.5


class TestFaultSpecValidation:
    """Satellite: FaultSpec rejects malformed rates and probabilities
    with a clear ValueError instead of silently scheduling nonsense."""

    @pytest.mark.parametrize("kwargs", [
        {"crash_rate_per_s": -0.1},
        {"crash_rate_per_s": math.nan},
        {"crash_rate_per_s": math.inf},
        {"rms_crash_rate_per_s": -1.0},
        {"rms_gray_rate_per_s": math.nan},
        {"burst_rate_per_s": -0.5},
        {"config_fault_prob": -0.01},
        {"config_fault_prob": 1.01},
        {"heartbeat_loss_prob": math.nan},
        {"heartbeat_loss_prob": 2.0},
        {"downtime_range_s": (5.0, 1.0)},
        {"rms_downtime_range_s": (math.nan, 2.0)},
        {"rms_gray_duration_range_s": (-1.0, 2.0)},
        {"burst_size": 0},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_valid_control_plane_spec_accepted(self):
        FaultSpec(
            rms_crash_rate_per_s=0.05,
            rms_gray_rate_per_s=0.02,
            heartbeat_loss_prob=0.1,
            burst_rate_per_s=0.01,
            burst_size=2,
        )


# ---------------------------------------------------------------------------
# HeartbeatMonitor
# ---------------------------------------------------------------------------
class TestHeartbeatMonitor:
    def spec(self, **kw):
        defaults = dict(interval_s=1.0, suspect_after=3.0, confirm_after=6.0)
        defaults.update(kw)
        return HeartbeatSpec(**defaults)

    def test_fresh_target_is_alive(self):
        mon = HeartbeatMonitor(self.spec())
        mon.watch("rms", 0.0)
        assert mon.state["rms"] == ALIVE
        assert mon.evaluate("rms", 0.0) is None

    def test_staleness_escalates_suspect_then_down(self):
        mon = HeartbeatMonitor(self.spec())
        mon.watch(0, 0.0)
        assert mon.evaluate(0, 2.9) is None
        assert mon.evaluate(0, 3.0) == SUSPECT
        assert mon.evaluate(0, 4.0) is None  # already suspect: no repeat
        assert mon.evaluate(0, 6.0) == DOWN
        assert mon.evaluate(0, 100.0) is None  # DOWN is terminal

    def test_heartbeat_clears_suspicion_and_reports_cleared_state(self):
        mon = HeartbeatMonitor(self.spec())
        mon.watch(0, 0.0)
        mon.evaluate(0, 3.5)
        assert mon.state[0] == SUSPECT
        assert mon.heartbeat(0, 3.6) == SUSPECT
        assert mon.state[0] == ALIVE
        assert mon.heartbeat(0, 4.6) is None  # healthy arrival: nothing cleared

    def test_dead_before_priming_is_still_confirmable(self):
        """The min_samples warm-up gates only the EWMA, never the
        grading -- a target that dies on arrival must still reach DOWN
        (otherwise its in-flight work would stall forever)."""
        mon = HeartbeatMonitor(self.spec(min_samples=5))
        mon.watch(0, 0.0)
        # Zero heartbeats ever delivered; grading runs against the
        # nominal interval the watch() call primed.
        assert mon.evaluate(0, 6.0) == DOWN

    def test_ewma_adapts_to_slow_cadence_after_warmup(self):
        mon = HeartbeatMonitor(self.spec(min_samples=1, ewma_alpha=1.0))
        mon.watch(0, 0.0)
        mon.heartbeat(0, 2.0)   # warm-up sample (not yet adapting)
        mon.heartbeat(0, 4.0)   # EWMA <- 2.0 (alpha=1: last sample only)
        # Staleness 3.0s against EWMA 2.0 = 1.5 intervals: healthy.
        assert mon.evaluate(0, 7.0) is None
        assert mon.suspicion(0, 7.0) == pytest.approx(1.5)

    def test_forget_stops_grading(self):
        mon = HeartbeatMonitor(self.spec())
        mon.watch(0, 0.0)
        mon.forget(0)
        assert not mon.watched(0)
        assert mon.evaluate(0, 100.0) is None
        assert mon.heartbeat(0, 100.0) is None


# ---------------------------------------------------------------------------
# ReplicatedRMS
# ---------------------------------------------------------------------------
class TestReplicatedRMS:
    def cp(self, **kw):
        return ReplicatedRMS(rms=None, spec=FailoverSpec(**kw))

    def test_crash_then_promote(self):
        cp = self.cp(standbys=2)
        assert cp.dispatchable
        assert cp.crash(10.0)
        assert not cp.dispatchable
        assert cp.can_failover()
        gen = cp.promote(12.0)
        assert gen == 1
        assert cp.dispatchable
        assert cp.standbys_left == 1
        assert cp.failovers == 1
        assert cp.downtime_s == pytest.approx(2.0)

    def test_crash_during_crash_is_absorbed(self):
        cp = self.cp(standbys=1)
        assert cp.crash(1.0)
        assert not cp.crash(2.0)
        assert cp.crashes == 1

    def test_promote_without_standby_raises(self):
        cp = self.cp(standbys=0)
        cp.crash(0.0)
        with pytest.raises(RuntimeError):
            cp.promote(1.0)

    def test_cold_restore_bumps_generation(self):
        cp = self.cp(standbys=0)
        cp.crash(5.0)
        cp.restore(9.0)
        assert cp.generation == 1
        assert cp.dispatchable
        assert cp.downtime_s == pytest.approx(4.0)

    def test_gray_counts_as_unavailability_but_not_crash(self):
        cp = self.cp(standbys=1)
        assert cp.gray_start(3.0)
        assert not cp.dispatchable
        assert cp.available  # up, but useless
        assert not cp.gray_start(4.0)  # gray-during-gray absorbed
        cp.restore(7.0)
        assert cp.gray_events == 1
        assert cp.crashes == 0
        assert cp.downtime_s == pytest.approx(4.0)

    def test_crash_escalates_gray(self):
        cp = self.cp(standbys=1)
        cp.gray_start(2.0)
        assert cp.crash(5.0)  # the gray process finally dies
        cp.promote(6.0)
        # One continuous dark window from the gray start.
        assert cp.downtime_s == pytest.approx(4.0)

    def test_open_window_closed_against_horizon(self):
        cp = self.cp(standbys=0)
        cp.crash(8.0)
        assert cp.unavailability_s(10.0) == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Simulator scenarios
# ---------------------------------------------------------------------------
def build_sim(seed=7, tasks=120, engine="heap", failover=None, faults=None):
    network = Network.fully_connected([0, 1])
    rms = ResourceManagementSystem(network=network)
    for node_id in range(2):
        node = Node(node_id=node_id)
        node.add_gpp(GPPSpec(cpu_model=f"cpu{node_id}", mips=1_500))
        node.add_rpe(device_by_model("XC5VLX155"), regions=2)
        rms.register_node(node)
    pool = ConfigurationPool(4, area_range=(2_000, 12_000), seed=seed)
    pool.populate_repository(
        rms.virtualization.repository,
        [rpe.device for node in rms.nodes for rpe in node.rpes],
    )
    workload = SyntheticWorkload(
        WorkloadSpec(
            task_count=tasks,
            gpp_fraction=0.5,
            required_time_range_s=(0.2, 1.5),
        ),
        pool,
        PoissonArrivals(rate_per_s=8.0),
        seed=seed,
    )
    checker = TraceInvariantChecker()
    sink = InMemorySink()
    sim = DReAMSim(
        rms,
        engine=engine,
        tracer=Tracer(checker, sink),
        faults=FaultInjector(faults, seed=seed) if faults else None,
        retry=RetryPolicy(backoff_base_s=0.2),
        failover=failover,
    )
    sim.submit_workload(workload.generate())
    return sim, checker, sink


RMS_CHAOS = FaultSpec(
    rms_crash_rate_per_s=0.05,
    rms_downtime_range_s=(4.0, 8.0),
    rms_gray_rate_per_s=0.02,
    horizon_s=40.0,
)


class TestSimulatorFailover:
    def test_cold_restart_conserves_and_recovers_orphans(self):
        sim, checker, _ = build_sim(failover=None, faults=RMS_CHAOS)
        report = sim.run()
        checker.assert_quiescent()
        checker.assert_conservation()
        assert report.rms_crashes >= 1
        assert report.control_plane_downtime_s > 0
        assert report.pending == 0
        assert report.completed + report.failed + report.discarded == 120
        # Orphans, when any placement was in flight at the crash, are
        # recovered -- never lost.
        assert report.orphans_recovered == report.orphaned_tasks

    def test_replicated_preset_fails_over_with_finite_latency(self):
        sim, checker, _ = build_sim(
            failover=FAILOVER_PRESETS["replicated"], faults=RMS_CHAOS
        )
        report = sim.run()
        checker.assert_quiescent()
        checker.assert_conservation()
        assert report.failovers >= 1
        assert report.detections >= 1
        assert math.isfinite(report.detection_latency_p50_s)
        assert report.detection_latency_p50_s > 0
        assert report.pending == 0

    def test_node_crash_detection_has_latency(self):
        faults = FaultSpec(
            crash_rate_per_s=0.05,
            downtime_range_s=(3.0, 6.0),
            heartbeat_loss_prob=0.05,
            horizon_s=40.0,
        )
        sim, checker, _ = build_sim(
            failover=FAILOVER_PRESETS["detect"], faults=faults
        )
        report = sim.run()
        checker.assert_quiescent()
        checker.assert_conservation()
        assert report.detections >= 1
        assert report.detection_latency_p95_s >= report.detection_latency_p50_s > 0
        assert report.pending == 0

    def test_inert_spec_report_equals_disabled(self):
        sim, _, _ = build_sim(failover=None)
        baseline = sim.run()
        sim, _, _ = build_sim(failover=FailoverSpec())
        inert = sim.run()
        assert baseline == inert

    def test_engines_agree_under_failover(self):
        def trace(engine):
            sim, checker, sink = build_sim(
                seed=3, tasks=80, engine=engine,
                failover=FAILOVER_PRESETS["replicated"], faults=RMS_CHAOS,
            )
            sim.run()
            checker.assert_conservation()
            return [e.to_json() for e in canonical_events(list(sink.events))]

        assert trace("heap") == trace("calendar")

    def test_failover_emits_ordered_control_plane_events(self):
        sim, _, sink = build_sim(
            failover=FAILOVER_PRESETS["replicated"], faults=RMS_CHAOS
        )
        sim.run()
        kinds = [e.kind for e in sink.events]
        assert "rms-crash" in kinds
        assert "failover-begin" in kinds
        assert "failover-complete" in kinds
        # The detector always suspects before confirming.
        assert kinds.index("heartbeat-suspect") < kinds.index("heartbeat-confirm")

    def test_orphaned_jss_records_requeue(self):
        """The JSS view agrees with the simulator: an orphaned task's
        record is rewound, counted, and eventually completes."""
        sim, _, _ = build_sim(failover=None, faults=RMS_CHAOS)
        report = sim.run()
        orphaned = sum(
            record.orphaned
            for job in sim.jss.jobs.values()
            for record in job.records.values()
        )
        assert orphaned == report.orphaned_tasks


class TestAbortAfterUnregister:
    """Satellite: aborting a placement whose node already left the
    registry (teardown races reconciliation) is a no-op, not a crash."""

    def test_abort_placement_on_unregistered_node_returns_false(self):
        network = Network.fully_connected([0])
        rms = ResourceManagementSystem(network=network)
        node = Node(node_id=0)
        node.add_gpp(GPPSpec(cpu_model="cpu0", mips=1_500))
        rms.register_node(node)
        from repro.core.execreq import Artifacts, ExecReq
        from repro.core.task import simple_task
        from repro.hardware.taxonomy import PEClass

        task = simple_task(
            0,
            ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
            1.0,
        )
        placement = rms.plan_placement(task)
        rms.commit(placement)
        rms.unregister_node(0)
        assert rms.abort_placement(placement) is False
        # A second abort of the now-reset placement raises cleanly.
        from repro.grid.rms import SchedulingError

        with pytest.raises(SchedulingError):
            rms.abort_placement(placement)
