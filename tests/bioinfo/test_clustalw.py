"""Unit tests for the ClustalW pipeline facade."""

import numpy as np
import pytest

from repro.bioinfo.clustalw import clustalw
from repro.bioinfo.pairalign import GAP_CHAR
from repro.bioinfo.scoring import GapPenalty, dna_matrix
from repro.bioinfo.sequences import Sequence, synthetic_family
from repro.bioinfo.scoring import DNA_ALPHABET


class TestPipeline:
    def test_full_run_invariants(self):
        fam = synthetic_family(6, 70, seed=1)
        result = clustalw(fam)
        assert len(result.alignment) == 6
        lengths = {len(s.residues) for s in result.alignment}
        assert len(lengths) == 1
        for original, aligned in zip(fam, result.alignment):
            assert aligned.residues.replace(GAP_CHAR, "") == original.residues
        assert result.distances.shape == (6, 6)
        assert sorted(result.tree.leaves()) == list(range(6))
        assert result.length == len(result.alignment[0].residues)

    def test_nj_and_quick_variants(self):
        fam = synthetic_family(5, 50, seed=2)
        result = clustalw(fam, tree_method="nj", quick_distances=True)
        assert len(result.alignment) == 5

    def test_dna_sequences(self):
        fam = synthetic_family(4, 60, alphabet=DNA_ALPHABET, seed=3)
        result = clustalw(fam, matrix=dna_matrix(), gap=GapPenalty(8.0, 1.0))
        for original, aligned in zip(fam, result.alignment):
            assert aligned.residues.replace(GAP_CHAR, "") == original.residues

    def test_unknown_tree_method_rejected(self):
        fam = synthetic_family(3, 30, seed=4)
        with pytest.raises(ValueError, match="tree method"):
            clustalw(fam, tree_method="parsimony")

    def test_needs_two_sequences(self):
        with pytest.raises(ValueError):
            clustalw([Sequence("a", "ARND")])

    def test_duplicate_ids_rejected(self):
        seqs = [Sequence("a", "ARND"), Sequence("a", "ARNE")]
        with pytest.raises(ValueError, match="unique"):
            clustalw(seqs)

    def test_related_family_aligns_tightly(self):
        # Low-divergence family: the MSA should be mostly gap-free.
        fam = synthetic_family(5, 80, divergence=0.05, indel_rate=0.01, seed=5)
        result = clustalw(fam)
        gap_fraction = np.mean(
            [s.residues.count(GAP_CHAR) / len(s.residues) for s in result.alignment]
        )
        assert gap_fraction < 0.15
