"""Unit tests for progressive multiple alignment."""

import numpy as np
import pytest

from repro.bioinfo.guidetree import upgma
from repro.bioinfo.malign import Profile, malign, pdiff, prfscore, sum_of_pairs_score
from repro.bioinfo.pairalign import GAP_CHAR, OP_DEL, OP_INS, OP_MATCH, pairalign
from repro.bioinfo.scoring import GapPenalty, blosum62
from repro.bioinfo.sequences import Sequence, synthetic_family


@pytest.fixture(scope="module")
def matrix():
    return blosum62()


@pytest.fixture(scope="module")
def gap():
    return GapPenalty(10.0, 0.5)


class TestProfile:
    def test_frequencies_sum_with_gaps(self, matrix):
        members = [(0, "AR-D"), (1, "ARN-")]
        profile = Profile.from_members(members, matrix)
        assert profile.length == 4
        assert profile.size == 2
        # Column 2: one N, one gap.
        assert profile.frequencies[2].sum() == pytest.approx(0.5)
        assert profile.gap_fraction[2] == pytest.approx(0.5)
        # Column 0: both A.
        assert profile.frequencies[0, matrix.index_of("A")] == pytest.approx(1.0)

    def test_ragged_members_rejected(self, matrix):
        with pytest.raises(ValueError, match="length"):
            Profile.from_members([(0, "AR"), (1, "ARN")], matrix)

    def test_empty_rejected(self, matrix):
        with pytest.raises(ValueError):
            Profile.from_members([], matrix)


class TestPrfscore:
    def test_single_sequences_reduce_to_matrix(self, matrix):
        pa = Profile.from_members([(0, "A")], matrix)
        pb = Profile.from_members([(1, "R")], matrix)
        s = prfscore(pa, pb, matrix)
        assert s.shape == (1, 1)
        assert s[0, 0] == pytest.approx(matrix.score("A", "R"))

    def test_mixed_column_averages(self, matrix):
        pa = Profile.from_members([(0, "A"), (1, "R")], matrix)
        pb = Profile.from_members([(2, "N")], matrix)
        expected = 0.5 * matrix.score("A", "N") + 0.5 * matrix.score("R", "N")
        assert prfscore(pa, pb, matrix)[0, 0] == pytest.approx(expected)


class TestPdiff:
    def test_ops_cover_both_profiles(self, matrix, gap):
        fam = synthetic_family(4, 40, seed=1)
        pa = Profile.from_members([(0, fam[0].residues)], matrix)
        pb = Profile.from_members([(1, fam[1].residues)], matrix)
        ops = pdiff(pa, pb, matrix, gap)
        consumed_x = sum(1 for op in ops if op in (OP_MATCH, OP_DEL))
        consumed_y = sum(1 for op in ops if op in (OP_MATCH, OP_INS))
        assert consumed_x == pa.length
        assert consumed_y == pb.length

    def test_single_member_profiles_match_pairwise(self, matrix, gap):
        # Aligning two singleton profiles must equal sequence alignment.
        fam = synthetic_family(2, 40, seed=2)
        from repro.bioinfo.pairalign import align_pair

        pair = align_pair(fam[0], fam[1], matrix, gap)
        pa = Profile.from_members([(0, fam[0].residues)], matrix)
        pb = Profile.from_members([(1, fam[1].residues)], matrix)
        ops = pdiff(pa, pb, matrix, gap)
        from repro.bioinfo.pairalign import tracepath

        ax, ay = tracepath(ops, fam[0].residues, fam[1].residues)
        # Scores may tie between different tracebacks; compare identity of
        # gap placement count rather than exact strings.
        assert len(ax) == len(pair.aligned_x) or ax.count(GAP_CHAR) == pair.aligned_x.count(GAP_CHAR)


class TestMalign:
    def run_malign(self, count=6, length=60, seed=3):
        fam = synthetic_family(count, length, seed=seed)
        matrix, gap = blosum62(), GapPenalty(10.0, 0.5)
        dist = pairalign(fam, matrix, gap)
        tree = upgma(dist)
        return fam, malign(fam, tree, matrix, gap)

    def test_uniform_length(self):
        _, msa = self.run_malign()
        lengths = {len(s.residues) for s in msa}
        assert len(lengths) == 1

    def test_gap_stripping_recovers_inputs(self):
        fam, msa = self.run_malign()
        for original, aligned in zip(fam, msa):
            assert aligned.residues.replace(GAP_CHAR, "") == original.residues
            assert aligned.seq_id == original.seq_id

    def test_output_order_matches_input(self):
        fam, msa = self.run_malign()
        assert [s.seq_id for s in msa] == [s.seq_id for s in fam]

    def test_alignment_length_at_least_longest_input(self):
        fam, msa = self.run_malign()
        assert len(msa[0].residues) >= max(len(s) for s in fam)

    def test_tree_leaf_mismatch_rejected(self):
        fam = synthetic_family(3, 30, seed=4)
        matrix, gap = blosum62(), GapPenalty(10.0, 0.5)
        wrong_tree = upgma(np.array([[0.0, 0.5], [0.5, 0.0]]))
        with pytest.raises(ValueError, match="leaves"):
            malign(fam, wrong_tree, matrix, gap)


class TestSumOfPairs:
    def test_progressive_beats_naive_padding(self):
        fam = synthetic_family(5, 60, seed=5, indel_rate=0.05)
        matrix, gap = blosum62(), GapPenalty(10.0, 0.5)
        dist = pairalign(fam, matrix, gap)
        msa = malign(fam, upgma(dist), matrix, gap)
        # Naive: right-pad everything to the longest sequence.
        longest = max(len(s) for s in fam)
        padded = [
            Sequence(s.seq_id, s.residues + GAP_CHAR * (longest - len(s)))
            for s in fam
        ]
        assert sum_of_pairs_score(msa, matrix, gap) > sum_of_pairs_score(
            padded, matrix, gap
        )

    def test_identical_sequences_score_perfectly(self):
        matrix, gap = blosum62(), GapPenalty(10.0, 0.5)
        seqs = [Sequence(f"s{i}", "ARNDARND") for i in range(3)]
        score = sum_of_pairs_score(seqs, matrix, gap)
        per_pair = sum(matrix.score(c, c) for c in "ARNDARND")
        assert score == pytest.approx(3 * per_pair)
