"""Unit tests for the pairwise alignment kernels."""

import numpy as np
import pytest

from repro.bioinfo.pairalign import (
    AlignmentResult,
    GAP_CHAR,
    OP_DEL,
    OP_INS,
    OP_MATCH,
    align_pair,
    diff,
    forward_pass,
    gotoh_reference,
    hirschberg_align,
    needleman_wunsch_reference,
    pairalign,
    tracepath,
)
from repro.bioinfo.scoring import GapPenalty, blosum62, dna_matrix
from repro.bioinfo.sequences import Sequence, synthetic_family


@pytest.fixture(scope="module")
def protein():
    return blosum62()


@pytest.fixture(scope="module")
def gap():
    return GapPenalty(10.0, 0.5)


class TestWavefrontCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_score_matches_reference(self, protein, gap, seed):
        fam = synthetic_family(2, 40, seed=seed, divergence=0.3, indel_rate=0.1)
        a, b = fam[0].residues, fam[1].residues
        ref = gotoh_reference(a, b, protein, gap)
        fast = forward_pass(protein.encode(a), protein.encode(b), protein, gap)
        assert fast == pytest.approx(ref)

    def test_identical_sequences_score_self_alignment(self, protein, gap):
        s = "ARNDCQEGHILK"
        x = protein.encode(s)
        expected = sum(protein.score(c, c) for c in s)
        assert forward_pass(x, x, protein, gap) == pytest.approx(expected)

    def test_asymmetric_lengths(self, protein, gap):
        a, b = "ARND", "ARNDCQEGHILKMFPST"
        ref = gotoh_reference(a, b, protein, gap)
        assert forward_pass(protein.encode(a), protein.encode(b), protein, gap) == pytest.approx(ref)

    def test_single_residues(self, protein, gap):
        assert forward_pass(
            protein.encode("A"), protein.encode("A"), protein, gap
        ) == pytest.approx(protein.score("A", "A"))

    def test_score_symmetric_in_arguments(self, protein, gap):
        a, b = "ARNDCQE", "MFPSTWY"
        s1 = forward_pass(protein.encode(a), protein.encode(b), protein, gap)
        s2 = forward_pass(protein.encode(b), protein.encode(a), protein, gap)
        assert s1 == pytest.approx(s2)


class TestAlignPair:
    def test_alignment_recovers_inputs(self, protein, gap):
        fam = synthetic_family(2, 60, seed=5)
        result = align_pair(fam[0], fam[1], protein, gap)
        assert result.aligned_x.replace(GAP_CHAR, "") == fam[0].residues
        assert result.aligned_y.replace(GAP_CHAR, "") == fam[1].residues

    def test_no_double_gap_columns(self, protein, gap):
        fam = synthetic_family(2, 60, seed=6, indel_rate=0.1)
        result = align_pair(fam[0], fam[1], protein, gap)
        for a, b in zip(result.aligned_x, result.aligned_y):
            assert not (a == GAP_CHAR and b == GAP_CHAR)

    def test_traceback_score_equals_dp_score(self, protein, gap):
        fam = synthetic_family(2, 50, seed=7, indel_rate=0.08)
        result = align_pair(fam[0], fam[1], protein, gap)
        # Recompute affine score from the alignment strings.
        score, prev = 0.0, None
        for a, b in zip(result.aligned_x, result.aligned_y):
            if a == GAP_CHAR:
                score -= gap.extend if prev == "E" else gap.open
                prev = "E"
            elif b == GAP_CHAR:
                score -= gap.extend if prev == "F" else gap.open
                prev = "F"
            else:
                score += protein.score(a, b)
                prev = "M"
        assert score == pytest.approx(result.score)

    def test_identity_of_identical_sequences(self, protein, gap):
        s = Sequence("a", "ARNDCQEGHILKMFPSTWYV")
        result = align_pair(s, s, protein, gap)
        assert result.identity == 1.0

    def test_affine_gaps_preferred_over_scattered(self):
        # With a big open and tiny extend, the aligner should produce one
        # long gap rather than many short ones.
        m = dna_matrix()
        gap = GapPenalty(20.0, 0.1)
        a = Sequence("a", "ACGTACGTACGT")
        b = Sequence("b", "ACGTACGT")
        result = align_pair(a, b, m, gap)
        gap_runs = [run for run in result.aligned_y.split("".join(set("ACGT"))) if run]
        # Count contiguous gap runs directly:
        runs, in_gap = 0, False
        for ch in result.aligned_y:
            if ch == GAP_CHAR and not in_gap:
                runs += 1
                in_gap = True
            elif ch != GAP_CHAR:
                in_gap = False
        assert runs == 1


class TestAlignmentResult:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AlignmentResult(score=0.0, aligned_x="AB", aligned_y="ABC")

    def test_identity_counts_matches_only(self):
        r = AlignmentResult(score=0.0, aligned_x="AB-D", aligned_y="ABC-")
        assert r.identity == pytest.approx(0.5)


class TestTracepath:
    def test_decodes_ops(self):
        ops = [OP_MATCH, OP_INS, OP_DEL, OP_MATCH]
        ax, ay = tracepath(ops, "ABC", "XYZ")
        assert ax == "A-BC"
        assert ay == "XY-Z"

    def test_incomplete_consumption_rejected(self):
        with pytest.raises(ValueError, match="consumed"):
            tracepath([OP_MATCH], "AB", "XY")


class TestHirschberg:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_score_matches_nw_reference(self, protein, seed):
        fam = synthetic_family(2, 45, seed=seed, divergence=0.25, indel_rate=0.08)
        result = hirschberg_align(fam[0], fam[1], protein, 8.0)
        ref = needleman_wunsch_reference(fam[0].residues, fam[1].residues, protein, 8.0)
        assert result.score == pytest.approx(ref)

    def test_alignment_recovers_inputs(self, protein):
        fam = synthetic_family(2, 70, seed=3)
        result = hirschberg_align(fam[0], fam[1], protein, 8.0)
        assert result.aligned_x.replace(GAP_CHAR, "") == fam[0].residues
        assert result.aligned_y.replace(GAP_CHAR, "") == fam[1].residues

    def test_diff_base_cases(self, protein):
        x = protein.encode("AR")
        assert diff(x, np.array([], dtype=np.int8), protein, 8.0) == [OP_DEL, OP_DEL]
        assert diff(np.array([], dtype=np.int8), x, protein, 8.0) == [OP_INS, OP_INS]

    def test_negative_gap_rejected(self, protein):
        fam = synthetic_family(2, 10, seed=0)
        with pytest.raises(ValueError):
            hirschberg_align(fam[0], fam[1], protein, -1.0)


class TestPairalign:
    def test_distance_matrix_properties(self, protein, gap):
        fam = synthetic_family(5, 60, seed=8)
        d = pairalign(fam, protein, gap)
        assert d.shape == (5, 5)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)
        assert (d >= 0).all() and (d <= 1).all()

    def test_close_pair_closer_than_random(self, protein, gap):
        low = synthetic_family(2, 80, divergence=0.05, seed=9)
        high = synthetic_family(2, 80, divergence=0.6, seed=9)
        d_low = pairalign(low, protein, gap)[0, 1]
        d_high = pairalign(high, protein, gap)[0, 1]
        assert d_low < d_high

    def test_quick_mode_symmetric(self, protein, gap):
        fam = synthetic_family(4, 50, seed=10)
        d = pairalign(fam, protein, gap, full_alignments=False)
        assert np.allclose(d, d.T)
        assert (d >= 0).all()

    def test_needs_two_sequences(self, protein, gap):
        with pytest.raises(ValueError):
            pairalign(synthetic_family(2, 30, seed=0)[:1], protein, gap)
