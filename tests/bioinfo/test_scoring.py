"""Unit tests for substitution matrices and gap penalties."""

import numpy as np
import pytest

from repro.bioinfo.scoring import (
    GapPenalty,
    PROTEIN_ALPHABET,
    SubstitutionMatrix,
    blosum62,
    dna_matrix,
)


class TestBlosum62:
    def test_is_symmetric(self):
        m = blosum62()
        assert np.array_equal(m.matrix, m.matrix.T)

    def test_known_entries(self):
        m = blosum62()
        assert m.score("W", "W") == 11
        assert m.score("A", "A") == 4
        assert m.score("W", "C") == -2
        assert m.score("I", "V") == 3

    def test_diagonal_dominates_row(self):
        # Identity should never score worse than substitution.
        m = blosum62()
        for a in PROTEIN_ALPHABET:
            for b in PROTEIN_ALPHABET:
                assert m.score(a, a) >= m.score(a, b)

    def test_alphabet_has_20_amino_acids(self):
        assert len(blosum62().alphabet) == 20


class TestDnaMatrix:
    def test_defaults(self):
        m = dna_matrix()
        assert m.score("A", "A") == 5
        assert m.score("A", "G") == -4

    def test_match_must_beat_mismatch(self):
        with pytest.raises(ValueError):
            dna_matrix(match=1, mismatch=1)


class TestEncoding:
    def test_roundtrip(self):
        m = blosum62()
        encoded = m.encode("ARNDV")
        assert list(encoded) == [m.index_of(c) for c in "ARNDV"]

    def test_lowercase_accepted(self):
        m = dna_matrix()
        assert list(m.encode("acgt")) == [0, 1, 2, 3]

    def test_unknown_residue_rejected(self):
        with pytest.raises(KeyError, match="Z"):
            blosum62().encode("ARZ")
        with pytest.raises(KeyError):
            blosum62().index_of("Z")

    def test_pair_scores_shape_and_values(self):
        m = dna_matrix()
        s = m.pair_scores(m.encode("ACG"), m.encode("AG"))
        assert s.shape == (3, 2)
        assert s[0, 0] == 5 and s[0, 1] == -4


class TestMatrixValidation:
    def test_asymmetric_rejected(self):
        bad = np.zeros((2, 2), dtype=np.int16)
        bad[0, 1] = 3
        with pytest.raises(ValueError, match="symmetric"):
            SubstitutionMatrix("bad", "AB", bad)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="alphabet"):
            SubstitutionMatrix("bad", "ABC", np.zeros((2, 2), dtype=np.int16))

    def test_duplicate_alphabet_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SubstitutionMatrix("bad", "AA", np.zeros((2, 2), dtype=np.int16))


class TestGapPenalty:
    def test_affine_cost(self):
        gap = GapPenalty(10.0, 0.5)
        assert gap.cost(0) == 0.0
        assert gap.cost(1) == 10.0
        assert gap.cost(4) == pytest.approx(11.5)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            GapPenalty().cost(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            GapPenalty(-1, 0)
        with pytest.raises(ValueError, match="extend"):
            GapPenalty(1.0, 2.0)
