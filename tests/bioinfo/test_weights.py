"""Unit tests for ClustalW sequence weighting."""

import numpy as np
import pytest

from repro.bioinfo.clustalw import clustalw
from repro.bioinfo.guidetree import TreeNode, upgma
from repro.bioinfo.malign import Profile
from repro.bioinfo.pairalign import GAP_CHAR, pairalign
from repro.bioinfo.scoring import GapPenalty, blosum62
from repro.bioinfo.sequences import Sequence, synthetic_family
from repro.bioinfo.weights import sequence_weights, weighted_profile


def three_taxa_tree():
    """Ultrametric tree: leaves 0 and 1 are close (joined at height
    0.1), leaf 2 is distant (root at height 0.5)."""
    inner = TreeNode(left=TreeNode(leaf=0), right=TreeNode(leaf=1), height=0.1)
    return TreeNode(left=inner, right=TreeNode(leaf=2), height=0.5)


class TestSequenceWeights:
    def test_hand_computed_weights(self):
        weights = sequence_weights(three_taxa_tree(), normalize=False)
        # Leaf 0: own branch 0.1 + half of the shared 0.4 branch.
        assert weights[0] == pytest.approx(0.1 + 0.4 / 2)
        assert weights[1] == pytest.approx(0.1 + 0.4 / 2)
        # Leaf 2: its own branch straight from the root.
        assert weights[2] == pytest.approx(0.5)

    def test_divergent_sequence_weighs_more(self):
        weights = sequence_weights(three_taxa_tree())
        assert weights[2] > weights[0]
        assert weights[0] == pytest.approx(weights[1])

    def test_normalization_mean_is_one(self):
        weights = sequence_weights(three_taxa_tree())
        assert np.mean(list(weights.values())) == pytest.approx(1.0)

    def test_degenerate_tree_uniform(self):
        # Identical sequences -> zero distances -> zero-height tree.
        tree = TreeNode(left=TreeNode(leaf=0), right=TreeNode(leaf=1), height=0.0)
        assert sequence_weights(tree) == {0: 1.0, 1: 1.0}

    def test_duplicates_get_downweighted_from_real_distances(self):
        base = synthetic_family(3, 60, seed=1)
        twin = Sequence("twin", base[0].residues)  # exact duplicate of seq 0
        family = base + [twin]
        matrix, gap = blosum62(), GapPenalty(10.0, 0.5)
        tree = upgma(pairalign(family, matrix, gap))
        weights = sequence_weights(tree)
        # The duplicated pair (indices 0 and 3) share all branches, so
        # each weighs less than the unique sequences.
        assert weights[0] < weights[1]
        assert weights[3] < weights[1]
        assert weights[0] == pytest.approx(weights[3], rel=1e-6)


class TestWeightedProfile:
    def test_weighted_frequencies(self):
        matrix = blosum62()
        members = [(0, "A"), (1, "R")]
        profile = weighted_profile(members, matrix, {0: 3.0, 1: 1.0})
        assert profile.frequencies[0, matrix.index_of("A")] == pytest.approx(0.75)
        assert profile.frequencies[0, matrix.index_of("R")] == pytest.approx(0.25)

    def test_uniform_weights_match_unweighted(self):
        matrix = blosum62()
        members = [(0, "AR-"), (1, "ARN")]
        weighted = weighted_profile(members, matrix, {0: 1.0, 1: 1.0})
        plain = Profile.from_members(members, matrix)
        assert np.allclose(weighted.frequencies, plain.frequencies)
        assert np.allclose(weighted.gap_fraction, plain.gap_fraction)

    def test_missing_weight_rejected(self):
        with pytest.raises(KeyError, match="no weights"):
            weighted_profile([(0, "A")], blosum62(), {1: 1.0})

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            weighted_profile([(0, "A")], blosum62(), {0: 0.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_profile([], blosum62(), {})


class TestWeightedClustalW:
    def test_invariants_hold_with_weights(self):
        family = synthetic_family(6, 60, seed=2)
        result = clustalw(family, use_weights=True)
        assert len({len(s.residues) for s in result.alignment}) == 1
        for original, aligned in zip(family, result.alignment):
            assert aligned.residues.replace(GAP_CHAR, "") == original.residues

    def test_weighting_resists_duplicate_flooding(self):
        """Flood the input with copies of one sequence; the weighted
        alignment of the *unique* sequences should not get worse than
        the unweighted one (copies dominate unweighted profiles)."""
        base = synthetic_family(4, 60, seed=3, divergence=0.25, indel_rate=0.05)
        flooded = base + [
            Sequence(f"copy{i}", base[0].residues) for i in range(4)
        ]
        unweighted = clustalw(flooded, use_weights=False)
        weighted = clustalw(flooded, use_weights=True)
        # Both remain valid MSAs.
        for result in (unweighted, weighted):
            assert len({len(s.residues) for s in result.alignment}) == 1
        # Weighted SP score over all pairs must stay competitive.
        assert weighted.sp_score >= unweighted.sp_score * 0.95
