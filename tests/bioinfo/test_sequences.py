"""Unit tests for sequence generation and FASTA IO."""

import numpy as np
import pytest

from repro.bioinfo.scoring import DNA_ALPHABET, PROTEIN_ALPHABET
from repro.bioinfo.sequences import (
    Sequence,
    mutate,
    random_sequence,
    read_fasta,
    synthetic_family,
    write_fasta,
)


class TestSequence:
    def test_validation(self):
        with pytest.raises(ValueError):
            Sequence(seq_id="", residues="ACGT")
        with pytest.raises(ValueError):
            Sequence(seq_id="x", residues="")

    def test_len(self):
        assert len(Sequence("x", "ACGT")) == 4


class TestGenerators:
    def test_random_sequence_uses_alphabet(self):
        rng = np.random.default_rng(0)
        seq = random_sequence(500, alphabet=DNA_ALPHABET, rng=rng)
        assert set(seq.residues) <= set(DNA_ALPHABET)
        assert len(seq) == 500

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            random_sequence(0)

    def test_mutate_rates_validated(self):
        seq = Sequence("x", "ACGT" * 10)
        with pytest.raises(ValueError):
            mutate(seq, substitution_rate=1.5)
        with pytest.raises(ValueError):
            mutate(seq, indel_rate=-0.1)

    def test_mutation_changes_roughly_rate_fraction(self):
        rng = np.random.default_rng(1)
        seq = random_sequence(5_000, alphabet=PROTEIN_ALPHABET, rng=rng)
        mutant = mutate(seq, substitution_rate=0.2, indel_rate=0.0, rng=rng)
        assert len(mutant) == len(seq)
        diffs = sum(1 for a, b in zip(seq.residues, mutant.residues) if a != b)
        assert diffs / len(seq) == pytest.approx(0.2, abs=0.03)

    def test_zero_rates_is_identity(self):
        seq = Sequence("x", "ACGTACGT")
        mutant = mutate(seq, substitution_rate=0.0, indel_rate=0.0)
        assert mutant.residues == seq.residues

    def test_family_deterministic_under_seed(self):
        a = synthetic_family(5, 100, seed=9)
        b = synthetic_family(5, 100, seed=9)
        assert [s.residues for s in a] == [s.residues for s in b]
        c = synthetic_family(5, 100, seed=10)
        assert [s.residues for s in a] != [s.residues for s in c]

    def test_family_members_are_homologous(self):
        # Low divergence keeps most residues identical to the ancestor,
        # so members stay pairwise similar.
        family = synthetic_family(4, 300, divergence=0.05, indel_rate=0.0, seed=2)
        a, b = family[0].residues, family[1].residues
        same = sum(1 for x, y in zip(a, b) if x == y)
        assert same / min(len(a), len(b)) > 0.8

    def test_family_ids_unique(self):
        family = synthetic_family(6, 50, seed=0)
        ids = [s.seq_id for s in family]
        assert len(set(ids)) == 6


class TestFasta:
    def test_roundtrip(self, tmp_path):
        family = synthetic_family(5, 137, seed=4)
        path = tmp_path / "family.fasta"
        write_fasta(family, path, width=60)
        loaded = read_fasta(path)
        assert [(s.seq_id, s.residues) for s in loaded] == [
            (s.seq_id, s.residues) for s in family
        ]

    def test_description_preserved(self, tmp_path):
        seq = Sequence("id1", "ACGT", description="a test record")
        path = tmp_path / "one.fasta"
        write_fasta([seq], path)
        assert read_fasta(path)[0].description == "a test record"

    def test_wrapping_respected(self, tmp_path):
        seq = Sequence("id1", "A" * 100)
        path = tmp_path / "wrap.fasta"
        write_fasta([seq], path, width=30)
        lines = path.read_text().splitlines()
        assert max(len(l) for l in lines[1:]) <= 30

    def test_malformed_inputs(self, tmp_path):
        no_header = tmp_path / "a.fasta"
        no_header.write_text("ACGT\n")
        with pytest.raises(ValueError, match="before any header"):
            read_fasta(no_header)

        empty_header = tmp_path / "b.fasta"
        empty_header.write_text(">\nACGT\n")
        with pytest.raises(ValueError, match="empty FASTA header"):
            read_fasta(empty_header)

        no_residues = tmp_path / "c.fasta"
        no_residues.write_text(">x\n>y\nACGT\n")
        with pytest.raises(ValueError, match="no residues"):
            read_fasta(no_residues)

    def test_invalid_width(self, tmp_path):
        with pytest.raises(ValueError):
            write_fasta([Sequence("x", "ACGT")], tmp_path / "w.fasta", width=0)
