"""Unit tests for k-tuple distances (ClustalW's fast mode)."""

import numpy as np
import pytest

from repro.bioinfo.clustalw import clustalw
from repro.bioinfo.ktuple import (
    kmer_codes,
    ktuple_distances,
    ktuple_similarity,
    shared_kmer_count,
)
from repro.bioinfo.pairalign import GAP_CHAR, pairalign
from repro.bioinfo.scoring import GapPenalty, blosum62, dna_matrix
from repro.bioinfo.sequences import Sequence, synthetic_family


class TestKmerCodes:
    def test_codes_are_positional(self):
        m = dna_matrix()
        codes = kmer_codes(m.encode("ACGT"), 2, 4)
        # AC=0*4+1, CG=1*4+2, GT=2*4+3.
        assert codes.tolist() == [1, 6, 11]

    def test_short_sequence_yields_empty(self):
        m = dna_matrix()
        assert kmer_codes(m.encode("A"), 2, 4).size == 0

    def test_invalid_k(self):
        m = dna_matrix()
        with pytest.raises(ValueError):
            kmer_codes(m.encode("ACGT"), 0, 4)

    def test_distinct_kmers_distinct_codes(self):
        m = dna_matrix()
        codes = kmer_codes(m.encode("AACAGATCCG"), 3, 4)
        # All windows here are distinct.
        assert len(set(codes.tolist())) == len(codes)


class TestSharedCount:
    def test_multiset_semantics(self):
        a = np.array([1, 1, 2, 3])
        b = np.array([1, 2, 2, 2])
        # min(2,1) ones + min(1,3) twos = 2.
        assert shared_kmer_count(a, b) == 2

    def test_disjoint(self):
        assert shared_kmer_count(np.array([1, 2]), np.array([3, 4])) == 0

    def test_empty(self):
        assert shared_kmer_count(np.empty(0, dtype=np.int64), np.array([1])) == 0


class TestSimilarity:
    def test_identical_sequences_score_one(self):
        m = blosum62()
        s = Sequence("a", "ARNDCQEGHILK")
        assert ktuple_similarity(s, s, m, k=2) == 1.0

    def test_unrelated_sequences_score_low(self):
        # The random-coincidence floor drops sharply with k: ~0.3 of
        # 2-mers collide by chance over a 20-letter alphabet, almost no
        # 3-mers do.
        m = blosum62()
        fam_a = synthetic_family(1, 200, seed=1)[0]
        fam_b = synthetic_family(1, 200, seed=999)[0]
        assert ktuple_similarity(fam_a, fam_b, m, k=2) < 0.5
        assert ktuple_similarity(fam_a, fam_b, m, k=3) < 0.1

    def test_similarity_decreases_with_divergence(self):
        m = blosum62()
        close = synthetic_family(2, 150, divergence=0.05, indel_rate=0.0, seed=3)
        far = synthetic_family(2, 150, divergence=0.5, indel_rate=0.0, seed=3)
        assert ktuple_similarity(*close, m) > ktuple_similarity(*far, m)


class TestDistances:
    def test_matrix_properties(self):
        fam = synthetic_family(5, 80, seed=4)
        d = ktuple_distances(fam, blosum62())
        assert d.shape == (5, 5)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0.0)
        assert ((0.0 <= d) & (d <= 1.0)).all()

    def test_correlates_with_full_alignment_distances(self):
        """The quick mode must rank pairs like the accurate mode."""
        fam = []
        for i, div in enumerate((0.05, 0.15, 0.35)):
            fam.extend(
                Sequence(f"s{i}{j}", s.residues)
                for j, s in enumerate(synthetic_family(2, 120, divergence=div, seed=6 + i))
            )
        matrix, gap = blosum62(), GapPenalty(10.0, 0.5)
        full = pairalign(fam, matrix, gap)
        quick = ktuple_distances(fam, matrix)
        iu = np.triu_indices(len(fam), 1)
        correlation = np.corrcoef(full[iu], quick[iu])[0, 1]
        assert correlation > 0.7

    def test_needs_two(self):
        with pytest.raises(ValueError):
            ktuple_distances(synthetic_family(2, 30, seed=0)[:1], blosum62())


class TestClustalWIntegration:
    def test_ktuple_mode_produces_valid_msa(self):
        fam = synthetic_family(6, 70, seed=8)
        result = clustalw(fam, distance_method="ktuple")
        assert len({len(s.residues) for s in result.alignment}) == 1
        for original, aligned in zip(fam, result.alignment):
            assert aligned.residues.replace(GAP_CHAR, "") == original.residues

    def test_unknown_method_rejected(self):
        fam = synthetic_family(3, 30, seed=9)
        with pytest.raises(ValueError, match="distance method"):
            clustalw(fam, distance_method="psychic")

    def test_quick_flag_still_works(self):
        fam = synthetic_family(3, 40, seed=10)
        result = clustalw(fam, quick_distances=True)
        assert len(result.alignment) == 3
