"""Unit tests for guide-tree construction."""

import numpy as np
import pytest

from repro.bioinfo.guidetree import TreeNode, neighbor_joining, upgma


def simple_distances():
    """4 taxa: {0,1} close, {2,3} close, the groups far apart."""
    d = np.array(
        [
            [0.0, 0.1, 0.8, 0.9],
            [0.1, 0.0, 0.85, 0.8],
            [0.8, 0.85, 0.0, 0.1],
            [0.9, 0.8, 0.1, 0.0],
        ]
    )
    return d


class TestTreeNode:
    def test_leaf_and_internal_validation(self):
        leaf = TreeNode(leaf=3)
        assert leaf.is_leaf
        with pytest.raises(ValueError):
            TreeNode()  # neither leaf nor internal
        with pytest.raises(ValueError):
            TreeNode(left=leaf)  # one child only
        with pytest.raises(ValueError):
            TreeNode(leaf=1, left=leaf, right=leaf)  # both

    def test_leaves_in_order(self):
        tree = TreeNode(left=TreeNode(leaf=2), right=TreeNode(left=TreeNode(leaf=0), right=TreeNode(leaf=1)))
        assert tree.leaves() == [2, 0, 1]

    def test_merge_order_is_postorder(self):
        inner = TreeNode(left=TreeNode(leaf=0), right=TreeNode(leaf=1))
        root = TreeNode(left=inner, right=TreeNode(leaf=2))
        order = root.merge_order()
        assert order == [inner, root]

    def test_newick_rendering(self):
        tree = TreeNode(left=TreeNode(leaf=0), right=TreeNode(leaf=1))
        assert tree.newick() == "(s0,s1)"
        assert tree.newick(["alpha", "beta"]) == "(alpha,beta)"


class TestUPGMA:
    def test_clusters_close_pairs_first(self):
        tree = upgma(simple_distances())
        # The two shallow internal nodes must be {0,1} and {2,3}.
        merges = tree.merge_order()
        first_two = [set(node.leaves()) for node in merges[:2]]
        assert {0, 1} in first_two and {2, 3} in first_two

    def test_all_leaves_present(self):
        tree = upgma(simple_distances())
        assert sorted(tree.leaves()) == [0, 1, 2, 3]

    def test_heights_monotone_up_the_tree(self):
        tree = upgma(simple_distances())
        for node in tree.merge_order():
            for child in (node.left, node.right):
                if not child.is_leaf:
                    assert node.height >= child.height

    def test_two_taxa(self):
        tree = upgma(np.array([[0.0, 0.4], [0.4, 0.0]]))
        assert sorted(tree.leaves()) == [0, 1]
        assert tree.height == pytest.approx(0.2)

    @pytest.mark.parametrize(
        "matrix,message",
        [
            (np.zeros((2, 3)), "square"),
            (np.array([[0.0, 1.0], [2.0, 0.0]]), "symmetric"),
            (np.array([[1.0, 1.0], [1.0, 0.0]]), "zero diagonal"),
            (np.array([[0.0, -1.0], [-1.0, 0.0]]), "non-negative"),
            (np.zeros((1, 1)), "two taxa"),
        ],
    )
    def test_input_validation(self, matrix, message):
        with pytest.raises(ValueError, match=message):
            upgma(matrix)


class TestNeighborJoining:
    def test_partitions_match_structure(self):
        tree = neighbor_joining(simple_distances())
        assert sorted(tree.leaves()) == [0, 1, 2, 3]
        merges = tree.merge_order()
        grouped = [set(node.leaves()) for node in merges if len(node.leaves()) == 2]
        assert {0, 1} in grouped or {2, 3} in grouped

    def test_three_taxa(self):
        d = np.array(
            [
                [0.0, 0.2, 0.7],
                [0.2, 0.0, 0.6],
                [0.7, 0.6, 0.0],
            ]
        )
        tree = neighbor_joining(d)
        assert sorted(tree.leaves()) == [0, 1, 2]

    def test_validation_shared_with_upgma(self):
        with pytest.raises(ValueError):
            neighbor_joining(np.zeros((2, 3)))
