"""Integration tests for the ``python -m repro`` CLI."""

import pytest

from repro.cli import main


class TestCatalog:
    def test_lists_devices(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "XC6VLX365T" in out
        assert "XC5VLX155" in out

    def test_family_filter(self, capsys):
        assert main(["catalog", "--family", "virtex-6"]) == 0
        out = capsys.readouterr().out
        assert "XC6VLX365T" in out
        assert "XC5VLX155" not in out


class TestTaxonomy:
    def test_prints_tree(self, capsys):
        assert main(["taxonomy"]) == 0
        out = capsys.readouterr().out
        assert "Enhanced processing elements" in out
        assert "Device-specific hardware" in out


class TestTable2:
    def test_matches_paper(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "RPE_0 <-> Node_2" in out
        assert "matches the published table: True" in out


class TestSimulate:
    def test_default_run(self, capsys):
        assert main(["simulate", "--tasks", "30", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "completed / discarded / pending   30 / 0 / 0" in out

    def test_energy_flag(self, capsys):
        assert main(["simulate", "--tasks", "10", "--energy"]) == 0
        assert "energy total" in capsys.readouterr().out

    def test_every_strategy_accepted(self, capsys):
        from repro.scheduling import ALL_STRATEGIES

        for name in ALL_STRATEGIES:
            assert main(["simulate", "--tasks", "5", "--strategy", name]) == 0
            capsys.readouterr()

    def test_unknown_strategy_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--strategy", "magic"])
        assert "unknown strategy" in capsys.readouterr().err

    def test_deterministic_under_seed(self, capsys):
        main(["simulate", "--tasks", "20", "--seed", "9"])
        first = capsys.readouterr().out
        main(["simulate", "--tasks", "20", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second

    def test_negative_seed_rejected(self, capsys):
        """A negative seed must die at the parser (exit 2), not as a
        numpy traceback from deep inside the run."""
        with pytest.raises(SystemExit) as exc:
            main(["simulate", "--seed", "-1", "--tasks", "5"])
        assert exc.value.code == 2
        assert "--seed must be non-negative" in capsys.readouterr().err

    def test_unknown_fault_preset_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["simulate", "--faults", "bogus", "--tasks", "5"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_resilience_flags_smoke(self, capsys):
        assert main([
            "simulate", "--tasks", "20", "--seed", "3", "--faults", "chaos",
            "--breaker", "--deadlines", "--checkpoint-interval", "0.25",
            "--speculative", "1.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "completed / discarded / pending" in out

    def test_resilience_flags_do_not_change_clean_run(self, capsys):
        """Breakers/deadlines that never fire leave the headline
        metrics untouched (zero-cost-when-armed-but-idle)."""
        main(["simulate", "--tasks", "20", "--seed", "9"])
        baseline = capsys.readouterr().out
        main(["simulate", "--tasks", "20", "--seed", "9",
              "--breaker", "--deadlines"])
        armed = capsys.readouterr().out
        assert baseline == armed

    @pytest.mark.parametrize(
        "argv, message",
        [
            (["simulate", "--checkpoint-interval", "0"], "must be positive"),
            (["simulate", "--speculative", "1.0"], "must be > 1"),
            (["simulate", "--deadlines", "9:3"], "SOFT:HARD"),
            (["simulate", "--deadlines", "abc"], "SOFT:HARD"),
        ],
    )
    def test_bad_resilience_values_rejected(self, capsys, argv, message):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert message in capsys.readouterr().err


class TestChaos:
    def test_recovery_table(self, capsys):
        assert main(["chaos", "--tasks", "20", "--seed", "3",
                     "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "fcfs" in out and "hybrid-cost" in out

    def test_resilience_metrics_and_json(self, tmp_path, capsys):
        dst = tmp_path / "chaos.json"
        assert main(["chaos", "--tasks", "30", "--seed", "3", "--jobs", "1",
                     "--breaker", "--deadlines", "--checkpoint-interval",
                     "0.25", "--json", str(dst)]) == 0
        out = capsys.readouterr().out
        assert "checkpoints" in out
        import json

        data = json.loads(dst.read_text())
        assert set(data) == {"fcfs", "hybrid-cost"}
        for record in data.values():
            assert "wasted_work_saved_s" in record
            assert "deadline_miss_rate" in record


class TestClustalw:
    def test_synthetic_alignment(self, capsys):
        assert main(["clustalw", "--family-size", "3", "--length", "30"]) == 0
        out = capsys.readouterr().out
        assert out.count(">seq") == 3
        assert "guide tree" in out

    def test_fasta_roundtrip(self, tmp_path, capsys):
        from repro.bioinfo.sequences import synthetic_family, write_fasta

        src = tmp_path / "in.fasta"
        dst = tmp_path / "out.fasta"
        write_fasta(synthetic_family(3, 40, seed=1), src)
        assert main(["clustalw", "--fasta", str(src), "--out", str(dst)]) == 0
        capsys.readouterr()
        from repro.bioinfo.sequences import read_fasta

        aligned = read_fasta(dst)
        assert len(aligned) == 3
        assert len({len(s.residues) for s in aligned}) == 1

    def test_nj_tree_option(self, capsys):
        assert main(["clustalw", "--family-size", "3", "--length", "30", "--tree", "nj"]) == 0
        capsys.readouterr()
