"""Documentation freshness and completeness checks."""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent


def load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", REPO / "tools" / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestApiReference:
    def test_api_md_is_fresh(self):
        """docs/API.md must match what the generator produces from the
        current code -- documentation drift fails the build."""
        generator = load_generator()
        expected = generator.generate()
        actual = (REPO / "docs" / "API.md").read_text(encoding="utf-8")
        assert actual == expected, (
            "docs/API.md is stale; regenerate with `python tools/gen_api_docs.py`"
        )

    def test_every_package_documented(self):
        text = (REPO / "docs" / "API.md").read_text(encoding="utf-8")
        for package in (
            "repro.core", "repro.grid", "repro.sim", "repro.hardware",
            "repro.scheduling", "repro.bioinfo", "repro.profiling",
            "repro.casestudy", "repro.imaging",
        ):
            assert f"## `{package}`" in text, package

    def test_no_undocumented_modules(self):
        generator = load_generator()
        text = generator.generate()
        assert "(undocumented)" not in text


class TestTopLevelDocs:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_exists_and_substantial(self, name):
        path = REPO / name
        assert path.exists(), name
        assert len(path.read_text()) > 2_000, name

    def test_design_maps_every_bench(self):
        """Every bench file must be referenced in DESIGN.md's index."""
        design = (REPO / "DESIGN.md").read_text()
        for bench in sorted((REPO / "benchmarks").glob("bench_*.py")):
            assert bench.name in design or bench.stem in design, bench.name

    def test_experiments_covers_every_table_and_figure(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for artifact in (
            "Table I", "Table II",
            *(f"Figure {i}" for i in range(1, 11)),
            "Quipu",
        ):
            assert artifact in experiments, artifact
