"""Cross-module integration tests: JSS -> RMS -> scheduler -> DReAMSim."""

import pytest

from repro.casestudy.nodes import build_case_study_nodes, case_study_network
from repro.casestudy.tasks import build_case_study_tasks
from repro.core.node import Node
from repro.grid.jss import JobStatus
from repro.grid.rms import ResourceManagementSystem
from repro.grid.services import QoSRequirement, UserServices
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.scheduling import GPPOnlyScheduler, HybridCostScheduler
from repro.sim.simulator import DReAMSim
from repro.sim.workload import (
    ConfigurationPool,
    PoissonArrivals,
    SyntheticWorkload,
    WorkloadSpec,
)


def hybrid_grid(scheduler=None, *, gpp_mips=1_000):
    """Two nodes: one GPP-heavy, one fabric-heavy."""
    n0 = Node(node_id=0, name="Node_0")
    n0.add_gpp(GPPSpec(cpu_model="XeonA", mips=gpp_mips))
    n0.add_gpp(GPPSpec(cpu_model="XeonB", mips=gpp_mips))
    n1 = Node(node_id=1, name="Node_1")
    n1.add_rpe(device_by_model("XC5VLX220"), regions=2)
    n1.add_rpe(device_by_model("XC5VLX155"), regions=2)
    rms = ResourceManagementSystem(scheduler=scheduler or HybridCostScheduler())
    rms.register_node(n0)
    rms.register_node(n1)
    return rms


def run_synthetic(rms, *, task_count=120, gpp_fraction=0.5, seed=7):
    pool = ConfigurationPool(6, area_range=(3_000, 15_000), seed=3)
    devices = [rpe.device for node in rms.nodes for rpe in node.rpes]
    pool.populate_repository(rms.virtualization.repository, devices)
    workload = SyntheticWorkload(
        WorkloadSpec(task_count=task_count, gpp_fraction=gpp_fraction),
        pool,
        PoissonArrivals(rate_per_s=3.0),
        seed=seed,
    )
    sim = DReAMSim(rms)
    sim.submit_workload(workload.generate())
    return sim, sim.run()


class TestSyntheticWorkloadRuns:
    def test_everything_completes(self):
        _, report = run_synthetic(hybrid_grid())
        assert report.completed == 120
        assert report.pending == 0
        assert report.discarded == 0

    def test_configuration_reuse_emerges(self):
        # 6 configurations over ~60 hardware tasks: reuse must fire.
        _, report = run_synthetic(hybrid_grid())
        assert report.reuse_hits > 0
        assert report.reconfigurations + report.reuse_hits == report.tasks_by_pe_kind.get("RPE", 0)

    def test_determinism_across_runs(self):
        _, r1 = run_synthetic(hybrid_grid())
        _, r2 = run_synthetic(hybrid_grid())
        assert r1.makespan_s == r2.makespan_s
        assert r1.mean_wait_s == r2.mean_wait_s
        assert r1.reconfigurations == r2.reconfigurations

    def test_jobs_all_completed_in_jss(self):
        sim, _ = run_synthetic(hybrid_grid())
        statuses = {job.status for job in sim.jss.jobs.values()}
        assert statuses == {JobStatus.COMPLETED}


class TestHybridVsGPPOnly:
    """The paper's central qualitative claim: a grid that schedules onto
    RPEs outperforms a traditional GPP-only grid on hardware-friendly
    workloads."""

    def test_hybrid_completes_hardware_tasks_gpponly_cannot(self):
        hybrid = hybrid_grid(HybridCostScheduler())
        gpp_only = hybrid_grid(GPPOnlyScheduler())
        _, hybrid_report = run_synthetic(hybrid, gpp_fraction=0.5)
        _, gpp_report = run_synthetic(gpp_only, gpp_fraction=0.5)
        assert hybrid_report.completed == 120
        # RPE-class tasks cannot be expressed on a traditional grid.
        assert gpp_report.completed < 120
        assert gpp_report.pending > 0

    def test_hybrid_turnaround_beats_gpp_only_on_software(self):
        # Even on an all-software workload, hybrid matches GPP-only
        # (same decisions available).
        _, hybrid_report = run_synthetic(hybrid_grid(HybridCostScheduler()), gpp_fraction=1.0)
        _, gpp_report = run_synthetic(hybrid_grid(GPPOnlyScheduler()), gpp_fraction=1.0)
        assert hybrid_report.completed == gpp_report.completed == 120
        assert hybrid_report.mean_turnaround_s <= gpp_report.mean_turnaround_s + 1e-6


class TestCaseStudyOnSimulator:
    def test_case_study_tasks_complete_with_dependencies(self):
        rms = ResourceManagementSystem(network=case_study_network())
        for node in build_case_study_nodes():
            rms.register_node(node)
        tasks = build_case_study_tasks()
        sim = DReAMSim(rms)
        job_id = sim.submit_graph([tasks[0], tasks[1], tasks[2]])
        report = sim.run()
        assert report.completed == 3
        job = sim.jss.job(job_id)
        assert job.status is JobStatus.COMPLETED
        # Dependencies: Task_1/Task_2 start after Task_0 finishes.
        t0_finish = job.record(0).finish_time
        assert job.record(1).start_time >= t0_finish
        assert job.record(2).start_time >= t0_finish

    def test_task2_lands_on_a_big_virtex5(self):
        rms = ResourceManagementSystem(network=case_study_network())
        for node in build_case_study_nodes():
            rms.register_node(node)
        tasks = build_case_study_tasks()
        sim = DReAMSim(rms)
        job_id = sim.submit_graph([tasks[0], tasks[1], tasks[2]])
        sim.run()
        t2 = sim.metrics.tasks[(job_id, 2)]
        assert t2.pe_kind == "RPE"
        # Only Node_1's RPE_1 and Node_2's RPE_0 can take 30,790 slices.
        assert t2.node_id in (1, 2)


class TestServicesOverRealGrid:
    def test_qos_deadline_met_on_fast_grid(self):
        rms = hybrid_grid(gpp_mips=50_000)
        services = UserServices(rms)
        from repro.core.execreq import Artifacts, ExecReq
        from repro.core.task import simple_task
        from repro.hardware.taxonomy import PEClass

        task = simple_task(
            0,
            ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
            1.0,
        )
        job = services.submit(task, QoSRequirement(deadline_s=10.0, budget=100.0))
        makespan = services.execute(job)
        assert makespan < 10.0
        response = services.query(job.job_id)
        assert response.status is JobStatus.COMPLETED
        assert 0 < response.accrued_cost < 100.0
