"""Unit tests for the reconfigurable-fabric model."""

import pytest

from repro.hardware.bitstream import Bitstream
from repro.hardware.catalog import device_by_model
from repro.hardware.fabric import Fabric, FabricError, Region, RegionState


@pytest.fixture
def device():
    return device_by_model("XC5VLX110")  # 17,280 slices, PR-capable


@pytest.fixture
def fabric(device):
    return Fabric.for_device(device, regions=3)


def bitstream_for(device, slices=1_000, implements="fft", bs_id=1):
    return Bitstream(
        bitstream_id=bs_id,
        target_model=device.model,
        size_bytes=device.bitstream_size_bytes(slices),
        required_slices=slices,
        implements=implements,
    )


class TestConstruction:
    def test_regions_cover_device_exactly(self, device):
        for n in (1, 2, 3, 7):
            fabric = Fabric.for_device(device, regions=n)
            assert sum(r.slices for r in fabric.regions) == device.slices

    def test_uneven_split_distributes_remainder(self, device):
        fabric = Fabric.for_device(device, regions=7)
        sizes = [r.slices for r in fabric.regions]
        assert max(sizes) - min(sizes) <= 1

    def test_wrong_total_rejected(self, device):
        with pytest.raises(ValueError, match="slices"):
            Fabric(device, [Region(0, device.slices - 1)])

    def test_non_pr_device_rejects_multiple_regions(self):
        spartan = device_by_model("XC3S1000")
        with pytest.raises(ValueError, match="partial reconfiguration"):
            Fabric.for_device(spartan, regions=2)

    def test_zero_regions_rejected(self, device):
        with pytest.raises(ValueError):
            Fabric.for_device(device, regions=0)

    def test_too_many_regions_rejected(self, device):
        with pytest.raises(ValueError):
            Fabric.for_device(device, regions=device.slices + 1)


class TestLifecycle:
    def test_full_configure_occupy_vacate_clear(self, fabric, device):
        region = fabric.find_placeable(1_000)
        bs = bitstream_for(device)
        fabric.begin_reconfiguration(region, bs)
        assert region.state is RegionState.CONFIGURING
        fabric.finish_reconfiguration(region)
        assert region.state is RegionState.CONFIGURED
        fabric.occupy(region)
        assert region.state is RegionState.BUSY
        fabric.vacate(region)
        assert region.state is RegionState.CONFIGURED
        assert fabric.find_resident("fft") is region
        fabric.clear(region)
        assert region.state is RegionState.FREE
        assert fabric.find_resident("fft") is None

    def test_cannot_occupy_free_region(self, fabric):
        with pytest.raises(FabricError):
            fabric.occupy(fabric.regions[0])

    def test_cannot_reconfigure_busy_region(self, fabric, device):
        region = fabric.regions[0]
        fabric.begin_reconfiguration(region, bitstream_for(device))
        fabric.finish_reconfiguration(region)
        fabric.occupy(region)
        with pytest.raises(FabricError, match="busy"):
            fabric.begin_reconfiguration(region, bitstream_for(device, bs_id=2))

    def test_cannot_clear_busy_region(self, fabric, device):
        region = fabric.regions[0]
        fabric.begin_reconfiguration(region, bitstream_for(device))
        fabric.finish_reconfiguration(region)
        fabric.occupy(region)
        with pytest.raises(FabricError, match="busy"):
            fabric.clear(region)

    def test_cannot_finish_without_begin(self, fabric):
        with pytest.raises(FabricError):
            fabric.finish_reconfiguration(fabric.regions[0])

    def test_wrong_device_bitstream_rejected(self, fabric):
        other = device_by_model("XC5VLX220")
        bs = bitstream_for(other)
        with pytest.raises(FabricError, match="targets"):
            fabric.begin_reconfiguration(fabric.regions[0], bs)

    def test_oversized_bitstream_rejected(self, fabric, device):
        region = fabric.regions[0]
        bs = bitstream_for(device, slices=region.slices + 1)
        with pytest.raises(FabricError, match="slices"):
            fabric.begin_reconfiguration(region, bs)

    def test_foreign_region_rejected(self, fabric, device):
        stranger = Region(region_id=99, slices=10)
        with pytest.raises(FabricError, match="belong"):
            fabric.occupy(stranger)


class TestQueries:
    def test_available_slices_tracks_states(self, fabric, device):
        total = fabric.total_slices
        assert fabric.available_slices == total
        region = fabric.regions[0]
        fabric.begin_reconfiguration(region, bitstream_for(device))
        assert fabric.available_slices == total - region.slices
        fabric.finish_reconfiguration(region)
        assert fabric.available_slices == total  # configured+idle is available
        fabric.occupy(region)
        assert fabric.available_slices == total - region.slices

    def test_free_slices_excludes_configured(self, fabric, device):
        region = fabric.regions[0]
        fabric.begin_reconfiguration(region, bitstream_for(device))
        fabric.finish_reconfiguration(region)
        assert fabric.free_slices == fabric.total_slices - region.slices

    def test_find_placeable_prefers_smallest_fit(self, device):
        fabric = Fabric(
            device,
            [
                Region(0, 10_000),
                Region(1, 5_000),
                Region(2, device.slices - 15_000),
            ],
        )
        assert fabric.find_placeable(3_000).region_id in (1, 2)
        picked = fabric.find_placeable(3_000)
        assert picked.slices == min(
            r.slices for r in fabric.regions if r.slices >= 3_000
        )

    def test_find_placeable_none_when_too_big(self, fabric):
        assert fabric.find_placeable(10**9) is None

    def test_resident_configurations_listed(self, fabric, device):
        fabric.begin_reconfiguration(fabric.regions[0], bitstream_for(device, implements="a"))
        fabric.finish_reconfiguration(fabric.regions[0])
        fabric.begin_reconfiguration(fabric.regions[1], bitstream_for(device, implements="b", bs_id=2))
        fabric.finish_reconfiguration(fabric.regions[1])
        names = {c.implements for c in fabric.resident_configurations()}
        assert names == {"a", "b"}

    def test_find_resident_ignores_busy_regions(self, fabric, device):
        region = fabric.regions[0]
        fabric.begin_reconfiguration(region, bitstream_for(device))
        fabric.finish_reconfiguration(region)
        fabric.occupy(region)
        assert fabric.find_resident("fft") is None


class TestReconfigurationTiming:
    def test_partial_cheaper_than_full(self, fabric, device):
        bs = bitstream_for(device, slices=500)
        assert fabric.reconfiguration_time_s(bs, partial=True) < fabric.reconfiguration_time_s(
            bs, partial=False
        )

    def test_non_pr_device_always_pays_full(self):
        spartan = device_by_model("XC3S1000")
        fabric = Fabric.for_device(spartan, regions=1)
        bs = Bitstream(
            bitstream_id=1,
            target_model=spartan.model,
            size_bytes=1000,
            required_slices=100,
            implements="x",
        )
        assert fabric.reconfiguration_time_s(bs, partial=True) == pytest.approx(
            spartan.reconfiguration_time_s(None)
        )
