"""Unit tests for the device catalog."""

import pytest

from repro.hardware.catalog import (
    DEVICE_CATALOG,
    device_by_model,
    devices_by_family,
    devices_with_min_slices,
)


class TestLookups:
    def test_case_study_devices_present(self):
        # Every part the Section V case study names or implies.
        for model in ("XC6VLX365T", "XC5VLX110", "XC5VLX155", "XC5VLX220", "XC5VLX330"):
            assert model in DEVICE_CATALOG

    def test_unknown_model_lists_catalog(self):
        with pytest.raises(KeyError, match="XC5VLX30"):
            device_by_model("NOPE123")

    def test_by_family_sorted_by_slices(self):
        v5 = devices_by_family("virtex-5")
        assert len(v5) >= 5
        sizes = [d.slices for d in v5]
        assert sizes == sorted(sizes)
        assert all(d.family == "virtex-5" for d in v5)

    def test_unknown_family_is_empty(self):
        assert devices_by_family("virtex-99") == []


class TestCaseStudyQueries:
    def test_virtex5_over_24000_slices(self):
        # "RPE_0 and RPE_1 in Node_1 and RPE_0 in Node_2 all contain
        # Virtex-5 type devices with more than 24,000 slices".
        hits = devices_with_min_slices(24_000, family="virtex-5")
        assert {d.model for d in hits} >= {"XC5VLX155", "XC5VLX220", "XC5VLX330"}
        assert all(d.slices >= 24_000 for d in hits)

    def test_task2_requirement_excludes_lx155(self):
        hits = devices_with_min_slices(30_790, family="virtex-5")
        models = {d.model for d in hits}
        assert "XC5VLX155" not in models
        assert "XC5VLX220" in models

    def test_results_sorted_smallest_first(self):
        hits = devices_with_min_slices(10_000)
        sizes = [d.slices for d in hits]
        assert sizes == sorted(sizes)


class TestDataSanity:
    def test_slice_counts_match_datasheet(self):
        assert device_by_model("XC5VLX155").slices == 24_320
        assert device_by_model("XC5VLX220").slices == 34_560
        assert device_by_model("XC5VLX330").slices == 51_840
        assert device_by_model("XC6VLX365T").slices == 56_880

    def test_virtex5_luts_are_4x_slices(self):
        for device in devices_by_family("virtex-5"):
            assert device.luts == device.slices * 4

    def test_all_devices_have_positive_resources(self):
        for device in DEVICE_CATALOG.values():
            assert device.slices > 0
            assert device.bram_kb > 0
            assert device.reconfig_bandwidth_mbps > 0
