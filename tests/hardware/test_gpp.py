"""Unit tests for the GPP model."""

import pytest

from repro.hardware.gpp import GPPSpec


def make_gpp(**overrides) -> GPPSpec:
    params = dict(cpu_model="Xeon", mips=2_000.0, ram_mb=4_096, cores=2)
    params.update(overrides)
    return GPPSpec(**params)


class TestValidation:
    @pytest.mark.parametrize("field,value", [("mips", 0), ("cores", 0), ("ram_mb", -1)])
    def test_rejects_non_positive(self, field, value):
        with pytest.raises(ValueError):
            make_gpp(**{field: value})


class TestExecutionModel:
    def test_serial_time_is_work_over_mips(self):
        gpp = make_gpp(mips=1_000)
        assert gpp.execution_time_s(2_000) == pytest.approx(2.0)

    def test_fully_parallel_uses_all_cores(self):
        gpp = make_gpp(mips=1_000, cores=4)
        assert gpp.execution_time_s(4_000, parallel_fraction=1.0) == pytest.approx(1.0)

    def test_amdahl_mixture(self):
        gpp = make_gpp(mips=1_000, cores=2)
        # Half serial (1s per 1000 MI), half across 2 cores.
        t = gpp.execution_time_s(2_000, parallel_fraction=0.5)
        assert t == pytest.approx(1.0 + 0.5)

    def test_zero_work_is_instant(self):
        assert make_gpp().execution_time_s(0.0) == 0.0

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            make_gpp().execution_time_s(-1.0)

    def test_bad_parallel_fraction_rejected(self):
        with pytest.raises(ValueError):
            make_gpp().execution_time_s(10.0, parallel_fraction=1.5)

    def test_aggregate_mips(self):
        assert make_gpp(mips=1_500, cores=4).aggregate_mips == pytest.approx(6_000)


class TestCapabilities:
    def test_table1_keys(self):
        caps = make_gpp().capabilities()
        for key in ("pe_class", "cpu_model", "mips", "os", "ram_mb", "cores"):
            assert key in caps

    def test_pe_class(self):
        assert make_gpp().capabilities()["pe_class"] == "GPP"
