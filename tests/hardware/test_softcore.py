"""Unit tests for the soft-core VLIW (rho-VEX) model."""

import pytest

from repro.hardware.catalog import device_by_model
from repro.hardware.softcore import (
    RHO_VEX_2ISSUE,
    RHO_VEX_4ISSUE,
    RHO_VEX_8ISSUE,
    FunctionalUnitMix,
    SoftcoreSpec,
)


class TestFunctionalUnitMix:
    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            FunctionalUnitMix(alus=-1)

    def test_requires_an_alu(self):
        with pytest.raises(ValueError, match="at least one ALU"):
            FunctionalUnitMix(alus=0, multipliers=4)

    def test_total(self):
        assert FunctionalUnitMix(alus=4, multipliers=2, memory_units=1, branch_units=1).total == 8


class TestValidation:
    def test_fu_mix_must_fill_issue_width(self):
        with pytest.raises(ValueError, match="issue width"):
            SoftcoreSpec(
                name="bad",
                issue_width=8,
                fu_mix=FunctionalUnitMix(alus=2, multipliers=1, memory_units=1, branch_units=1),
            )

    @pytest.mark.parametrize(
        "field,value",
        [("issue_width", 0), ("clusters", 0), ("registers", 0), ("pipeline_stages", 0)],
    )
    def test_rejects_non_positive(self, field, value):
        with pytest.raises(ValueError):
            SoftcoreSpec(name="bad", **{field: value})


class TestAreaModel:
    def test_wider_issue_needs_more_slices(self):
        assert (
            RHO_VEX_2ISSUE.required_slices()
            < RHO_VEX_4ISSUE.required_slices()
            < RHO_VEX_8ISSUE.required_slices()
        )

    def test_clusters_multiply_area(self):
        one = SoftcoreSpec(name="c1", clusters=1)
        two = SoftcoreSpec(name="c2", clusters=2)
        assert two.required_slices() == 2 * one.required_slices()

    def test_bram_follows_memories(self):
        small = SoftcoreSpec(name="m1", imem_kb=16, dmem_kb=16)
        big = SoftcoreSpec(name="m2", imem_kb=64, dmem_kb=64)
        assert big.required_bram_kb() > small.required_bram_kb()

    def test_fits_on_large_device_not_tiny(self):
        v5 = device_by_model("XC5VLX110")
        spartan = device_by_model("XC3S1000")
        assert RHO_VEX_8ISSUE.fits_on(v5)
        assert not RHO_VEX_8ISSUE.fits_on(spartan)


class TestPerformanceModel:
    def test_wider_issue_lowers_frequency(self):
        device = device_by_model("XC5VLX110")
        assert RHO_VEX_8ISSUE.achievable_frequency_mhz(device) < RHO_VEX_2ISSUE.achievable_frequency_mhz(device)

    def test_wider_issue_still_raises_throughput(self):
        # Frequency drops slower than issue width grows.
        device = device_by_model("XC5VLX110")
        assert RHO_VEX_8ISSUE.effective_mips(device) > RHO_VEX_2ISSUE.effective_mips(device)

    def test_softcore_is_slower_than_device_peak(self):
        device = device_by_model("XC5VLX110")
        assert RHO_VEX_4ISSUE.achievable_frequency_mhz(device) < device.max_frequency_mhz

    def test_explicit_mips_per_mhz_honoured(self):
        device = device_by_model("XC5VLX110")
        spec = SoftcoreSpec(name="x", mips_per_mhz=1.0)
        assert spec.effective_mips(device) == pytest.approx(
            spec.achievable_frequency_mhz(device)
        )


class TestCapabilities:
    def test_without_device(self):
        caps = RHO_VEX_4ISSUE.capabilities()
        assert caps["pe_class"] == "SOFTCORE"
        assert "mips" not in caps

    def test_with_device_adds_delivered_numbers(self):
        device = device_by_model("XC5VLX110")
        caps = RHO_VEX_4ISSUE.capabilities(device)
        assert caps["mips"] > 0
        assert caps["host_device_model"] == "XC5VLX110"
        for key in ("issue_width", "registers", "clusters", "required_slices"):
            assert key in caps
