"""Unit tests for the slice-granularity fabric allocator."""

import pytest

from repro.hardware.catalog import device_by_model
from repro.hardware.flexfabric import AllocationError, FlexibleFabric, Span


@pytest.fixture
def fabric():
    return FlexibleFabric(device_by_model("XC5VLX110"))  # 17,280 slices


class TestSpan:
    def test_validation(self):
        with pytest.raises(ValueError):
            Span(1, -1, 10)
        with pytest.raises(ValueError):
            Span(1, 0, 0)

    def test_end(self):
        assert Span(1, 100, 50).end == 150


class TestAllocation:
    def test_accounting(self, fabric):
        a = fabric.allocate(5_000)
        b = fabric.allocate(3_000)
        assert fabric.allocated_slices == 8_000
        assert fabric.free_slices == 17_280 - 8_000
        assert a.end <= b.start or b.end <= a.start

    def test_first_fit_uses_lowest_hole(self, fabric):
        a = fabric.allocate(5_000)
        b = fabric.allocate(5_000)
        fabric.release(a)
        c = fabric.allocate(2_000)
        assert c.start == 0  # dropped into the freed low hole

    def test_best_fit_picks_tightest_hole(self):
        fabric = FlexibleFabric(device_by_model("XC5VLX110"), policy="best-fit")
        a = fabric.allocate(6_000)
        fabric.allocate(2_000)
        fabric.allocate(6_000)
        fabric.release(a)
        # Holes: 6,000 at address 0, and the 3,280 tail at 14,000.
        d = fabric.allocate(1_500)
        assert d.start == 14_000  # best-fit takes the tighter tail

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            FlexibleFabric(device_by_model("XC5VLX110"), policy="magic")

    def test_oversized_rejected(self, fabric):
        with pytest.raises(AllocationError, match="exceed"):
            fabric.allocate(20_000)
        with pytest.raises(ValueError):
            fabric.allocate(0)

    def test_double_release_rejected(self, fabric):
        span = fabric.allocate(100)
        fabric.release(span)
        with pytest.raises(AllocationError):
            fabric.release(span)

    def test_find_resident(self, fabric):
        fabric.allocate(1_000, implements="fft")
        assert fabric.find_resident("fft") is not None
        assert fabric.find_resident("fir") is None


class TestFragmentation:
    def make_swiss_cheese(self, fabric):
        """Alternate allocations, release every other one."""
        spans = [fabric.allocate(2_000) for _ in range(8)]  # 16,000 of 17,280
        for span in spans[::2]:
            fabric.release(span)
        return spans[1::2]

    def test_fragmentation_blocks_fitting_total(self, fabric):
        self.make_swiss_cheese(fabric)
        # 9,280 slices free, but the largest hole is only 3,280.
        assert fabric.free_slices == 17_280 - 8_000
        assert fabric.largest_hole() < 4_000
        with pytest.raises(AllocationError, match="contiguous"):
            fabric.allocate(6_000)
        assert not fabric.can_allocate(6_000)

    def test_fragmentation_metric(self, fabric):
        assert fabric.external_fragmentation() == 0.0
        self.make_swiss_cheese(fabric)
        assert fabric.external_fragmentation() > 0.5

    def test_full_fabric_reports_zero_fragmentation(self, fabric):
        fabric.allocate(17_280)
        assert fabric.external_fragmentation() == 0.0

    def test_holes_are_sorted_and_disjoint(self, fabric):
        self.make_swiss_cheese(fabric)
        holes = fabric.holes()
        for (s1, z1), (s2, _) in zip(holes, holes[1:]):
            assert s1 + z1 < s2


class TestCompaction:
    def test_compaction_restores_allocatability(self, fabric):
        spans = [fabric.allocate(2_000) for _ in range(8)]
        for span in spans[::2]:
            fabric.release(span)
        moved = fabric.compact()
        assert moved > 0
        assert fabric.external_fragmentation() == 0.0
        fabric.allocate(9_000)  # now fits

    def test_compaction_time_charged_per_moved_span(self, fabric):
        spans = [fabric.allocate(2_000) for _ in range(4)]
        fabric.release(spans[0])
        cost = fabric.compaction_time_s()
        assert cost > 0
        fabric.compact()
        assert fabric.compaction_time_s() == 0.0

    def test_compaction_preserves_contents(self, fabric):
        a = fabric.allocate(1_000, implements="fft")
        b = fabric.allocate(1_000, implements="fir")
        fabric.release(a)
        fabric.compact()
        assert fabric.find_resident("fir") is not None
        assert fabric.allocated_slices == 1_000

    def test_compact_idempotent(self, fabric):
        fabric.allocate(1_000)
        fabric.compact()
        assert fabric.compact() == 0
