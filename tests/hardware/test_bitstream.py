"""Unit tests for HDL designs, bitstreams and the modeled CAD flow."""

import pytest

from repro.hardware.bitstream import Bitstream, HDLDesign, synthesize
from repro.hardware.catalog import device_by_model


def make_design(**overrides) -> HDLDesign:
    params = dict(
        name="fir_filter",
        language="VHDL",
        source_lines=800,
        estimated_slices=3_000,
        estimated_bram_kb=32,
        estimated_dsp=8,
        implements="fir",
    )
    params.update(overrides)
    return HDLDesign(**params)


class TestHDLDesign:
    def test_rejects_unknown_language(self):
        with pytest.raises(ValueError, match="VHDL or Verilog"):
            make_design(language="Chisel")

    def test_rejects_non_positive_slices(self):
        with pytest.raises(ValueError):
            make_design(estimated_slices=0)

    def test_rejects_empty_source(self):
        with pytest.raises(ValueError):
            make_design(source_lines=0)


class TestBitstream:
    def test_targets_exact_model_only(self):
        bs = Bitstream(1, "XC5VLX110", 1_000, 100, implements="x")
        assert bs.targets(device_by_model("XC5VLX110"))
        assert not bs.targets(device_by_model("XC5VLX220"))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size_bytes=0),
            dict(required_slices=0),
            dict(speedup_vs_gpp=0),
        ],
    )
    def test_validation(self, kwargs):
        params = dict(
            bitstream_id=1,
            target_model="XC5VLX110",
            size_bytes=1_000,
            required_slices=100,
        )
        params.update(kwargs)
        with pytest.raises(ValueError):
            Bitstream(**params)


class TestSynthesis:
    def test_produces_device_targeted_bitstream(self):
        device = device_by_model("XC5VLX110")
        result = synthesize(make_design(), device)
        assert result.bitstream.target_model == device.model
        assert result.bitstream.required_slices == 3_000
        assert result.bitstream.implements == "fir"
        assert result.synthesis_time_s > 0
        assert 0 < result.achieved_frequency_mhz < device.max_frequency_mhz

    def test_oversized_design_rejected(self):
        small = device_by_model("XC5VLX30")  # 4,800 slices
        with pytest.raises(ValueError, match="slices"):
            synthesize(make_design(estimated_slices=10_000), small)

    def test_bram_overflow_rejected(self):
        small = device_by_model("XC3S1000")  # 54 KB BRAM
        with pytest.raises(ValueError, match="BRAM"):
            synthesize(make_design(estimated_slices=1_000, estimated_bram_kb=100), small)

    def test_dsp_overflow_rejected(self):
        small = device_by_model("XC3S1000")  # 24 DSP
        with pytest.raises(ValueError, match="DSP"):
            synthesize(
                make_design(estimated_slices=1_000, estimated_bram_kb=10, estimated_dsp=50),
                small,
            )

    def test_congestion_slows_synthesis(self):
        device = device_by_model("XC5VLX30")  # 4,800 slices
        light = synthesize(make_design(estimated_slices=1_000), device)
        heavy = synthesize(
            make_design(name="big", estimated_slices=4_500), device
        )
        assert heavy.synthesis_time_s > light.synthesis_time_s

    def test_bitstream_size_matches_area(self):
        device = device_by_model("XC5VLX110")
        result = synthesize(make_design(), device)
        assert result.bitstream.size_bytes == device.bitstream_size_bytes(3_000)

    def test_fuller_device_clocks_lower(self):
        device = device_by_model("XC5VLX110")
        light = synthesize(make_design(estimated_slices=1_000), device)
        heavy = synthesize(make_design(name="big2", estimated_slices=15_000), device)
        assert heavy.achieved_frequency_mhz < light.achieved_frequency_mhz
