"""Unit tests for the GPU model."""

import pytest

from repro.hardware.gpu import GPUSpec


def make_gpu(**overrides) -> GPUSpec:
    params = dict(model="Tesla-C1060", shader_cores=240)
    params.update(overrides)
    return GPUSpec(**params)


class TestValidation:
    @pytest.mark.parametrize(
        "field", ["shader_cores", "warp_size", "simd_pipeline_width"]
    )
    def test_rejects_non_positive(self, field):
        with pytest.raises(ValueError):
            make_gpu(**{field: 0})


class TestThroughput:
    def test_peak_gflops(self):
        gpu = make_gpu(shader_cores=100, core_frequency_mhz=1_000)
        assert gpu.peak_gflops == pytest.approx(200.0)

    def test_parallel_work_scales_with_cores(self):
        small = make_gpu(shader_cores=10)
        big = make_gpu(shader_cores=100)
        assert big.execution_time_s(1e6, 1.0) == pytest.approx(
            small.execution_time_s(1e6, 1.0) / 10
        )

    def test_serial_tail_dominates_low_parallelism(self):
        gpu = make_gpu()
        assert gpu.execution_time_s(1e6, 0.1) > gpu.execution_time_s(1e6, 0.99)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            make_gpu().execution_time_s(-1.0)
        with pytest.raises(ValueError):
            make_gpu().execution_time_s(1.0, parallel_fraction=2.0)


class TestCapabilities:
    def test_table1_keys(self):
        caps = make_gpu().capabilities()
        for key in (
            "pe_class",
            "gpu_model",
            "shader_cores",
            "warp_size",
            "simd_pipeline_width",
            "shared_mem_per_core_kb",
            "memory_frequency_mhz",
        ):
            assert key in caps
        assert caps["pe_class"] == "GPU"
