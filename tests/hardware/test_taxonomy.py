"""Unit tests for the Figure 1 taxonomy."""

import pytest

from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.gpu import GPUSpec
from repro.hardware.softcore import RHO_VEX_4ISSUE
from repro.hardware.taxonomy import PEClass, classify, taxonomy_tree


class TestClassification:
    def test_gpp(self):
        assert classify(GPPSpec(cpu_model="X", mips=1000)) is PEClass.GPP

    def test_gpu(self):
        assert classify(GPUSpec(model="T", shader_cores=32)) is PEClass.GPU

    def test_fpga(self):
        assert classify(device_by_model("XC5VLX110")) is PEClass.RPE

    def test_softcore(self):
        assert classify(RHO_VEX_4ISSUE) is PEClass.SOFTCORE

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            classify("not hardware")


class TestPEClassParsing:
    def test_roundtrip(self):
        for member in PEClass:
            assert PEClass.from_string(member.value) is member

    def test_case_insensitive(self):
        assert PEClass.from_string("gpp") is PEClass.GPP

    def test_unknown_lists_options(self):
        with pytest.raises(ValueError, match="GPP"):
            PEClass.from_string("TPU")


class TestTree:
    def test_figure1_structure(self):
        tree = taxonomy_tree()
        assert tree.label == "Enhanced processing elements"
        top = {child.label for child in tree.children}
        assert top == {
            "General-purpose processors",
            "Graphics processing units",
            "Reconfigurable processing elements",
        }
        rpe = tree.find("Reconfigurable processing elements")
        scenarios = {c.label for c in rpe.children}
        assert scenarios == {
            "Pre-determined hardware configuration",
            "User-defined hardware configuration",
            "Device-specific hardware",
        }

    def test_sections_annotated(self):
        tree = taxonomy_tree()
        assert tree.find("Pre-determined hardware configuration").section == "III-B1"
        assert tree.find("User-defined hardware configuration").section == "III-B2"
        assert tree.find("Device-specific hardware").section == "III-B3"

    def test_walk_visits_all_nodes_preorder(self):
        tree = taxonomy_tree()
        walked = list(tree.walk())
        assert walked[0][1] is tree
        assert walked[0][0] == 0
        assert len(walked) == 10  # 1 root + 3 classes + 3 scenarios + 3 leaves

    def test_find_missing_returns_none(self):
        assert taxonomy_tree().find("Quantum annealers") is None
