"""Unit tests for the PE power models."""

import pytest

from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.gpu import GPUSpec
from repro.hardware.power import (
    PowerDraw,
    energy_per_task_j,
    fpga_active_power,
    fpga_idle_configured_power,
    fpga_reconfig_power,
    fpga_static_power,
    gpp_power,
    gpu_power,
    softcore_power,
)
from repro.hardware.softcore import RHO_VEX_4ISSUE


class TestPowerDraw:
    def test_total(self):
        assert PowerDraw(static_w=2.0, dynamic_w=3.0).total_w == 5.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PowerDraw(static_w=-1.0, dynamic_w=0.0)


class TestGPPPower:
    def test_scales_with_load(self):
        spec = GPPSpec(cpu_model="Xeon", mips=20_000, cores=1)
        idle = gpp_power(spec, load=0.0).total_w
        full = gpp_power(spec, load=1.0).total_w
        half = gpp_power(spec, load=0.5).total_w
        assert idle < half < full
        assert half == pytest.approx((idle + full) / 2)

    def test_xeon_era_magnitude(self):
        # ~20k MIPS -> ~80 W peak.
        spec = GPPSpec(cpu_model="Xeon", mips=20_000)
        assert 60.0 < gpp_power(spec, load=1.0).total_w < 100.0

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            gpp_power(GPPSpec(cpu_model="x", mips=1_000), load=1.5)


class TestFPGAPower:
    def setup_method(self):
        self.device = device_by_model("XC5VLX330")

    def test_static_magnitude(self):
        # LX330 leaks on the order of watts, not tens of watts.
        leak = fpga_static_power(self.device).total_w
        assert 1.0 < leak < 10.0

    def test_active_adds_dynamic(self):
        active = fpga_active_power(self.device, 30_000)
        assert active.static_w == fpga_static_power(self.device).static_w
        assert active.dynamic_w > 0
        assert active.total_w < gpp_power(
            GPPSpec(cpu_model="Xeon", mips=20_000), load=1.0
        ).total_w  # an accelerator burns far less than a Xeon

    def test_active_clamped_to_device(self):
        a = fpga_active_power(self.device, 10**9)
        b = fpga_active_power(self.device, self.device.slices)
        assert a.total_w == b.total_w

    def test_idle_configured_is_residual(self):
        idle = fpga_idle_configured_power(self.device, 30_000)
        active = fpga_active_power(self.device, 30_000)
        assert 0 < idle.dynamic_w < active.dynamic_w

    def test_reconfig_power_positive(self):
        assert fpga_reconfig_power(self.device).dynamic_w > 0

    def test_negative_slices_rejected(self):
        with pytest.raises(ValueError):
            fpga_active_power(self.device, -1)


class TestSoftcoreAndGPU:
    def test_softcore_power_from_footprint(self):
        device = device_by_model("XC5VLX110")
        power = softcore_power(RHO_VEX_4ISSUE, device)
        assert power.static_w == 0.0
        assert 0 < power.dynamic_w < 2.0

    def test_gpu_power(self):
        spec = GPUSpec(model="Tesla", shader_cores=240)
        idle = gpu_power(spec, load=0.0).total_w
        full = gpu_power(spec, load=1.0).total_w
        assert idle == pytest.approx(70.0)
        assert full == pytest.approx(70.0 + 120.0)


class TestEnergy:
    def test_energy_is_power_times_time(self):
        power = PowerDraw(static_w=10.0, dynamic_w=10.0)
        assert energy_per_task_j(power, 3.0) == pytest.approx(60.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            energy_per_task_j(PowerDraw(1.0, 1.0), -1.0)

    def test_acceleration_pays_off_in_joules(self):
        """The paper's claim, at the model level: a 10x-faster kernel on
        fabric uses ~2 orders of magnitude less energy than a Xeon."""
        xeon = GPPSpec(cpu_model="Xeon", mips=20_000)
        device = device_by_model("XC5VLX220")
        software_j = energy_per_task_j(gpp_power(xeon, load=1.0), 10.0)
        hardware_j = energy_per_task_j(fpga_active_power(device, 30_000), 1.0)
        assert hardware_j < software_j / 20
