"""Unit tests for the FPGA device model (Table I parameters)."""

import pytest

from repro.hardware.fpga import FPGADevice, SpeedGrade


def make_device(**overrides) -> FPGADevice:
    params = dict(
        model="TEST1",
        family="virtex-5",
        logic_cells=10_000,
        slices=5_000,
        luts=20_000,
        bram_kb=256,
        dsp_slices=32,
    )
    params.update(overrides)
    return FPGADevice(**params)


class TestValidation:
    def test_rejects_non_positive_slices(self):
        with pytest.raises(ValueError, match="positive slices"):
            make_device(slices=0)

    def test_rejects_non_positive_luts(self):
        with pytest.raises(ValueError, match="positive LUTs"):
            make_device(luts=-1)

    def test_rejects_non_positive_reconfig_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            make_device(reconfig_bandwidth_mbps=0)

    def test_devices_are_immutable(self):
        device = make_device()
        with pytest.raises(AttributeError):
            device.slices = 1


class TestSpeedGrades:
    def test_grade_scaling_is_monotone(self):
        freqs = [
            make_device(speed_grade=g).max_frequency_mhz
            for g in (SpeedGrade.GRADE_1, SpeedGrade.GRADE_2, SpeedGrade.GRADE_3)
        ]
        assert freqs[0] < freqs[1] < freqs[2]

    def test_grade1_is_base_frequency(self):
        device = make_device(speed_grade=SpeedGrade.GRADE_1, base_frequency_mhz=400.0)
        assert device.max_frequency_mhz == pytest.approx(400.0)

    def test_grade3_is_twenty_percent_up(self):
        device = make_device(speed_grade=SpeedGrade.GRADE_3, base_frequency_mhz=400.0)
        assert device.max_frequency_mhz == pytest.approx(480.0)


class TestBitstreamModel:
    def test_full_bitstream_scales_with_slices(self):
        small = make_device(slices=1_000, luts=4_000)
        large = make_device(slices=4_000, luts=16_000)
        assert large.bitstream_size_bytes() == 4 * small.bitstream_size_bytes()

    def test_partial_bitstream_is_proportional(self):
        device = make_device(slices=4_000, luts=16_000)
        assert device.bitstream_size_bytes(1_000) * 4 == device.bitstream_size_bytes()

    def test_partial_bitstream_clamps_to_device(self):
        device = make_device()
        assert device.bitstream_size_bytes(10**9) == device.bitstream_size_bytes()

    def test_negative_slices_rejected(self):
        with pytest.raises(ValueError):
            make_device().bitstream_size_bytes(-1)

    def test_unknown_family_uses_generic_density(self):
        exotic = make_device(family="weird-fpga")
        assert exotic.config_bits_per_slice == 1500


class TestReconfigurationTime:
    def test_time_is_size_over_bandwidth(self):
        device = make_device(reconfig_bandwidth_mbps=100.0)
        expected = device.bitstream_size_bytes() / 1e6 / 100.0
        assert device.reconfiguration_time_s() == pytest.approx(expected)

    def test_faster_port_reconfigures_faster(self):
        slow = make_device(reconfig_bandwidth_mbps=50.0)
        fast = make_device(reconfig_bandwidth_mbps=400.0)
        assert fast.reconfiguration_time_s() < slow.reconfiguration_time_s()

    def test_partial_faster_than_full(self):
        device = make_device()
        assert device.reconfiguration_time_s(100) < device.reconfiguration_time_s()


class TestCapabilities:
    def test_descriptor_has_table1_keys(self):
        caps = make_device().capabilities()
        for key in (
            "pe_class",
            "device_model",
            "device_family",
            "logic_cells",
            "slices",
            "luts",
            "bram_kb",
            "dsp_slices",
            "speed_grade",
            "max_frequency_mhz",
            "reconfig_bandwidth_mbps",
            "iobs",
            "ethernet_macs",
            "partial_reconfig",
        ):
            assert key in caps, key

    def test_pe_class_is_rpe(self):
        assert make_device().capabilities()["pe_class"] == "RPE"

    def test_make_fabric_covers_whole_device(self):
        fabric = make_device().make_fabric(regions=3)
        assert sum(r.slices for r in fabric.regions) == 5_000
