"""Unit tests for the image filters, against scipy.ndimage oracles."""

import numpy as np
import pytest
from scipy import ndimage

from repro.imaging.filters import (
    convolve2d,
    gaussian_blur,
    gaussian_kernel,
    sobel_magnitude,
    threshold,
)


@pytest.fixture
def image():
    rng = np.random.default_rng(5)
    return rng.random((48, 64))


class TestConvolve2D:
    def test_matches_scipy_correlate(self, image):
        kernel = np.array([[0.0, 1.0, 0.0], [1.0, -4.0, 1.0], [0.0, 1.0, 0.0]])
        ours = convolve2d(image, kernel)
        scipy_out = ndimage.correlate(image, kernel, mode="reflect")
        assert np.allclose(ours, scipy_out)

    def test_asymmetric_kernel_matches_scipy(self, image):
        rng = np.random.default_rng(1)
        kernel = rng.random((5, 3))
        assert np.allclose(
            convolve2d(image, kernel),
            ndimage.correlate(image, kernel, mode="reflect"),
        )

    def test_identity_kernel(self, image):
        identity = np.zeros((3, 3))
        identity[1, 1] = 1.0
        assert np.allclose(convolve2d(image, identity), image)

    def test_shape_preserved(self, image):
        out = convolve2d(image, gaussian_kernel(2.0))
        assert out.shape == image.shape

    def test_validation(self, image):
        with pytest.raises(ValueError, match="odd"):
            convolve2d(image, np.ones((2, 3)))
        with pytest.raises(ValueError, match="2-D"):
            convolve2d(image.ravel(), np.ones((3, 3)))


class TestGaussian:
    def test_kernel_normalized_and_symmetric(self):
        k = gaussian_kernel(1.5)
        assert k.sum() == pytest.approx(1.0)
        assert np.allclose(k, k.T)
        assert np.allclose(k, k[::-1, ::-1])

    def test_blur_matches_scipy_within_truncation(self, image):
        ours = gaussian_blur(image, 1.0)
        scipy_out = ndimage.gaussian_filter(image, 1.0, mode="reflect", truncate=3.0)
        assert np.allclose(ours, scipy_out, atol=1e-3)

    def test_blur_reduces_variance(self, image):
        assert gaussian_blur(image, 2.0).var() < image.var()

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_kernel(0.0)
        with pytest.raises(ValueError):
            gaussian_kernel(1.0, radius=0)


class TestSobel:
    def test_flat_image_has_zero_gradient(self):
        flat = np.full((20, 20), 3.7)
        assert np.allclose(sobel_magnitude(flat), 0.0)

    def test_vertical_edge_detected(self):
        img = np.zeros((20, 20))
        img[:, 10:] = 1.0
        mag = sobel_magnitude(img)
        # Strongest response on the edge columns, none far away.
        assert mag[:, 9:11].min() > 1.0
        assert np.allclose(mag[:, :5], 0.0)

    def test_matches_scipy_component_magnitudes(self, image):
        gx = ndimage.correlate(
            image, np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], float), mode="reflect"
        )
        gy = ndimage.correlate(
            image, np.array([[-1, -2, -1], [0, 0, 0], [1, 2, 1]], float), mode="reflect"
        )
        assert np.allclose(sobel_magnitude(image), np.hypot(gx, gy))


class TestThreshold:
    def test_binary_output(self, image):
        out = threshold(image)
        assert set(np.unique(out)) <= {0, 1}
        assert out.dtype == np.uint8

    def test_explicit_level(self):
        img = np.array([[0.1, 0.9]])
        assert threshold(img, 0.5).tolist() == [[0, 1]]

    def test_default_level_is_mean(self, image):
        out = threshold(image)
        assert np.array_equal(out, (image >= image.mean()).astype(np.uint8))
