"""Tests for the imaging pipeline and its compilation onto the grid."""

import numpy as np
import pytest

from repro.core.application import ClauseKind
from repro.core.node import Node
from repro.grid.jss import JobStatus
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.catalog import device_by_model
from repro.hardware.taxonomy import PEClass
from repro.imaging.filters import gaussian_blur, sobel_magnitude, threshold
from repro.imaging.pipeline import FilterPipeline, FilterStage, default_stages
from repro.sim.simulator import DReAMSim


@pytest.fixture
def frame():
    rng = np.random.default_rng(2)
    return rng.random((32, 40))


class TestPipelineExecution:
    def test_apply_equals_manual_chain(self, frame):
        pipeline = FilterPipeline()
        manual = threshold(sobel_magnitude(gaussian_blur(frame, 1.2)))
        assert np.array_equal(pipeline.apply(frame), manual)

    def test_custom_stages(self, frame):
        doubler = FilterStage("double", lambda im: im * 2, 0.1, 2.0, 100)
        pipeline = FilterPipeline([doubler])
        assert np.allclose(pipeline.apply(frame), frame * 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            FilterPipeline([])
        stage = default_stages()[0]
        with pytest.raises(ValueError, match="unique"):
            FilterPipeline([stage, stage])
        with pytest.raises(ValueError):
            FilterStage("bad", lambda im: im, -1.0, 2.0, 100)


class TestCompilation:
    def test_emits_stream_application(self):
        device = device_by_model("XC5VLX110")
        app, tasks = FilterPipeline().compile_to_application(device)
        assert len(tasks) == 3
        assert app.clauses[0].kind is ClauseKind.STREAM
        assert list(app.task_ids) == sorted(tasks)

    def test_stage_chaining_through_data(self):
        device = device_by_model("XC5VLX110")
        _, tasks = FilterPipeline().compile_to_application(device)
        assert tasks[1].predecessor_ids == {0}
        assert tasks[2].predecessor_ids == {1}
        assert tasks[0].predecessor_ids == frozenset()

    def test_bitstreams_target_device_and_stage(self):
        device = device_by_model("XC5VLX110")
        _, tasks = FilterPipeline().compile_to_application(device)
        for task in tasks.values():
            bs = task.exec_req.artifacts.bitstream
            assert bs is not None
            assert bs.target_model == device.model
            assert bs.implements == task.function

    def test_timing_derived_from_frame_size(self):
        device = device_by_model("XC5VLX110")
        _, small = FilterPipeline().compile_to_application(device, frame_shape=(100, 100))
        _, large = FilterPipeline().compile_to_application(device, frame_shape=(1000, 1000))
        assert large[0].t_estimated == pytest.approx(small[0].t_estimated * 100)

    def test_oversized_stage_rejected(self):
        tiny = device_by_model("XC5VLX30")  # 4,800 slices < blur's 6,500
        with pytest.raises(ValueError, match="slices"):
            FilterPipeline().compile_to_application(tiny)


class TestOnSimulator:
    def test_streaming_beats_sequential_on_the_grid(self):
        device = device_by_model("XC5VLX330")
        node = Node(node_id=0)
        node.add_rpe(device, regions=3)  # one region per stage
        rms = ResourceManagementSystem()
        rms.register_node(node)
        app, tasks = FilterPipeline().compile_to_application(device)
        sim = DReAMSim(rms)
        job_id = sim.submit_application(app, tasks, stream_chunks=8)
        report = sim.run()
        assert sim.jss.job(job_id).status is JobStatus.COMPLETED
        # Pipeline makespan beats the serial stage-sum.
        serial = sum(t.t_estimated for t in tasks.values())
        assert report.makespan_s < serial
        # All 3 stages x 8 chunks ran on fabric; each stage's circuit
        # loaded once and was reused by its remaining 7 chunks.
        assert report.tasks_by_pe_kind == {"RPE": 24}
        assert report.reconfigurations == 3
        assert report.reuse_hits == 24 - 3
