"""Unit tests for software complexity metrics (Quipu SCMs)."""

import pytest

from repro.profiling.metrics import (
    ComplexityMetrics,
    measure,
    measure_closure,
    measure_source,
)


def straight_line(a, b):
    c = a + b
    return c


def branchy(x):
    if x > 0:
        return 1
    elif x < 0:
        return -1
    return 0


def loopy(matrix):
    total = 0
    for row in matrix:
        for cell in row:
            total += cell * cell
    return total


class TestBasicCounts:
    def test_straight_line_cyclomatic_is_one(self):
        m = measure(straight_line)
        assert m.cyclomatic == 1
        assert m.loops == 0
        assert m.branches == 0

    def test_branches_counted(self):
        m = measure(branchy)
        # Two if-statements -> cyclomatic 3.
        assert m.cyclomatic == 3
        assert m.branches == 2

    def test_loops_and_nesting(self):
        m = measure(loopy)
        assert m.loops == 2
        assert m.max_loop_depth == 2

    def test_arithmetic_and_memory(self):
        m = measure_source("y = a[i] * a[i] + b[j]")
        assert m.memory_accesses == 3
        assert m.arithmetic_ops == 2

    def test_calls_counted(self):
        m = measure_source("f(); g.h(); f()")
        assert m.calls == 3

    def test_boolean_terms_add_decisions(self):
        simple = measure_source("if a:\n    pass")
        compound = measure_source("if a and b and c:\n    pass")
        assert compound.cyclomatic == simple.cyclomatic + 2

    def test_halstead_volume_grows_with_code(self):
        small = measure_source("a = b + c")
        large = measure_source("a = b + c\nd = e * f + g\nh = a - d\ni = h % 3")
        assert large.halstead_volume > small.halstead_volume

    def test_empty_source_has_zero_volume(self):
        assert measure_source("pass").halstead_volume == 0.0


class TestCombine:
    def test_counts_add_and_depth_maxes(self):
        a = ComplexityMetrics(sloc=10, cyclomatic=3, loops=2, max_loop_depth=2)
        b = ComplexityMetrics(sloc=5, cyclomatic=2, loops=1, max_loop_depth=3)
        c = a.combine(b)
        assert c.sloc == 15
        assert c.cyclomatic == 4  # 3 + 2 - 1 shared entry
        assert c.loops == 3
        assert c.max_loop_depth == 3

    def test_vector_matches_feature_names(self):
        m = ComplexityMetrics()
        assert len(m.as_vector()) == len(ComplexityMetrics.feature_names())


class TestClosure:
    def test_closure_includes_module_callees(self):
        import importlib

        pa = importlib.import_module("repro.bioinfo.pairalign")
        solo = measure(pa.align_pair)
        closure = measure_closure(pa.align_pair)
        # align_pair calls _wavefront, _traceback_ops, tracepath.
        assert closure.sloc > solo.sloc
        assert closure.loops >= solo.loops

    def test_depth_zero_is_single_function(self):
        import importlib

        pa = importlib.import_module("repro.bioinfo.pairalign")
        solo = measure(pa.align_pair)
        closure0 = measure_closure(pa.align_pair, max_depth=0)
        assert closure0.sloc == solo.sloc

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            measure_closure(straight_line, max_depth=-1)

    def test_pairalign_closure_heavier_than_malign(self):
        # The premise behind the case study's slice ordering.
        import importlib

        pa = importlib.import_module("repro.bioinfo.pairalign")
        ma = importlib.import_module("repro.bioinfo.malign")
        from repro.profiling.quipu import QuipuModel

        model = QuipuModel()
        assert model.raw_score(measure_closure(pa.pairalign)) > model.raw_score(
            measure_closure(ma.malign)
        )
