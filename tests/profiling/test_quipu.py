"""Unit tests for the Quipu hardware-cost predictor."""

import numpy as np
import pytest

from repro.hardware.catalog import device_by_model
from repro.profiling.metrics import ComplexityMetrics
from repro.profiling.quipu import (
    HardwareEstimate,
    PAPER_MALIGN_SLICES,
    PAPER_PAIRALIGN_SLICES,
    QuipuModel,
    calibrated_model,
)


def metrics(scale=1):
    return ComplexityMetrics(
        sloc=10 * scale,
        cyclomatic=1 + 2 * scale,
        operators=20 * scale,
        operands=30 * scale,
        distinct_operators=4,
        distinct_operands=10 * scale,
        loops=scale,
        max_loop_depth=min(scale, 3),
        branches=scale,
        memory_accesses=5 * scale,
        arithmetic_ops=8 * scale,
        calls=2 * scale,
    )


class TestLinearModel:
    def test_raw_score_is_linear(self):
        model = QuipuModel()
        base = model.raw_score(metrics(1))
        # Features scale (roughly) with `scale`; raw score must grow.
        assert model.raw_score(metrics(3)) > base > 0

    def test_wrong_feature_length_rejected(self):
        model = QuipuModel(weights=np.ones(3))
        with pytest.raises(ValueError, match="feature vector"):
            model.raw_score(metrics())

    def test_predict_never_negative(self):
        model = QuipuModel(scale=-1.0, offset=0.0)
        assert model.predict_slices(metrics()) == 0

    def test_estimate_bundle(self):
        est = QuipuModel().predict(metrics(2))
        assert est.luts == est.slices * 4
        assert est.bram_kb > 0
        assert est.dsp_slices >= 0

    def test_estimate_validation(self):
        with pytest.raises(ValueError):
            HardwareEstimate(slices=-1, luts=0, bram_kb=0, dsp_slices=0)

    def test_fits_device(self):
        small = HardwareEstimate(slices=1_000, luts=4_000, bram_kb=10, dsp_slices=2)
        huge = HardwareEstimate(slices=10**6, luts=4 * 10**6, bram_kb=10, dsp_slices=2)
        v5 = device_by_model("XC5VLX110")
        assert small.fits(v5)
        assert not huge.fits(v5)


class TestFitting:
    def test_lstsq_recovers_linear_relationship(self):
        true_model = QuipuModel()
        samples = [
            (metrics(s), true_model.raw_score(metrics(s))) for s in range(1, 8)
        ]
        fitted = QuipuModel().fit(samples)
        for s in (2, 5):
            assert fitted.raw_score(metrics(s)) == pytest.approx(
                true_model.raw_score(metrics(s)), rel=1e-6
            )

    def test_fit_needs_two_samples(self):
        with pytest.raises(ValueError):
            QuipuModel().fit([(metrics(), 100.0)])


class TestCalibration:
    def test_two_point_calibration_exact(self):
        m1, m2 = metrics(1), metrics(4)
        model = QuipuModel().calibrate([(m1, 5_000.0), (m2, 20_000.0)])
        assert model.predict_slices(m1) == 5_000
        assert model.predict_slices(m2) == 20_000

    def test_identical_anchors_rejected(self):
        m = metrics(2)
        with pytest.raises(ValueError, match="identical"):
            QuipuModel().calibrate([(m, 1.0), (m, 2.0)])

    def test_inverted_anchors_rejected(self):
        # More complexity mapped to fewer slices -> non-physical scale.
        with pytest.raises(ValueError, match="non-positive"):
            QuipuModel().calibrate([(metrics(1), 20_000.0), (metrics(4), 5_000.0)])

    def test_wrong_anchor_count(self):
        with pytest.raises(ValueError):
            QuipuModel().calibrate([(metrics(), 1.0)])


class TestPaperAnchors:
    def test_reproduces_section5_slice_counts(self):
        import importlib

        from repro.profiling.metrics import measure_closure

        pa = importlib.import_module("repro.bioinfo.pairalign")
        ma = importlib.import_module("repro.bioinfo.malign")
        model = calibrated_model()
        assert model.predict_slices(measure_closure(pa.pairalign)) == PAPER_PAIRALIGN_SLICES
        assert model.predict_slices(measure_closure(ma.malign)) == PAPER_MALIGN_SLICES

    def test_pairalign_estimate_needs_lx220_not_lx155(self):
        # The Table II consequence: Task_2 fits only the larger parts.
        import importlib

        from repro.profiling.metrics import measure_closure

        pa = importlib.import_module("repro.bioinfo.pairalign")
        model = calibrated_model()
        est_slices = model.predict_slices(measure_closure(pa.pairalign))
        assert est_slices > device_by_model("XC5VLX155").slices
        assert est_slices <= device_by_model("XC5VLX220").slices
