"""Unit tests for the gprof-style call-graph profiler."""

import pytest

from repro.profiling.callgraph import CallGraphProfiler, profile_call


class FakeClock:
    """Deterministic clock: advances only when told."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestSelfVsCumulative:
    def test_nested_calls_attributed_correctly(self):
        clock = FakeClock()
        prof = CallGraphProfiler(clock=clock)

        def inner():
            clock.advance(3.0)

        inner_w = prof.wrap(inner, name="inner")

        def outer():
            clock.advance(1.0)
            inner_w()
            clock.advance(1.0)

        outer_w = prof.wrap(outer, name="outer")
        outer_w()

        assert prof.stats["outer"].cumulative_s == pytest.approx(5.0)
        assert prof.stats["outer"].self_s == pytest.approx(2.0)
        assert prof.stats["inner"].self_s == pytest.approx(3.0)
        assert prof.stats["inner"].cumulative_s == pytest.approx(3.0)
        assert prof.total_self_s == pytest.approx(5.0)

    def test_call_counts(self):
        clock = FakeClock()
        prof = CallGraphProfiler(clock=clock)
        f = prof.wrap(lambda: clock.advance(0.5), name="f")
        for _ in range(4):
            f()
        assert prof.stats["f"].calls == 4
        assert prof.stats["f"].self_s == pytest.approx(2.0)

    def test_edges_record_caller_callee(self):
        clock = FakeClock()
        prof = CallGraphProfiler(clock=clock)
        child = prof.wrap(lambda: clock.advance(1.0), name="child")

        def parent():
            child()
            child()

        parent_w = prof.wrap(parent, name="parent")
        parent_w()
        assert prof.edges[("parent", "child")] == 2
        assert prof.callers_of("child") == {"parent": 2}
        assert prof.callees_of("parent") == {"child": 2}

    def test_exceptions_still_account_time(self):
        clock = FakeClock()
        prof = CallGraphProfiler(clock=clock)

        def boom():
            clock.advance(2.0)
            raise RuntimeError("x")

        wrapped = prof.wrap(boom, name="boom")
        with pytest.raises(RuntimeError):
            wrapped()
        assert prof.stats["boom"].self_s == pytest.approx(2.0)
        assert prof.stats["boom"].calls == 1

    def test_recursion_counts_once_per_frame(self):
        clock = FakeClock()
        prof = CallGraphProfiler(clock=clock)

        def fib(n):
            clock.advance(1.0)
            if n <= 1:
                return n
            return wrapped(n - 1) + wrapped(n - 2)

        wrapped = prof.wrap(fib, name="fib")
        wrapped(3)
        # fib(3) -> fib(2), fib(1); fib(2) -> fib(1), fib(0): 5 frames.
        assert prof.stats["fib"].calls == 5
        assert prof.stats["fib"].self_s == pytest.approx(5.0)


class TestReports:
    def build(self):
        clock = FakeClock()
        prof = CallGraphProfiler(clock=clock)
        heavy = prof.wrap(lambda: clock.advance(9.0), name="pairalign")
        light = prof.wrap(lambda: clock.advance(1.0), name="malign")
        heavy()
        light()
        return prof

    def test_flat_profile_sorted_by_self_time(self):
        rows = self.build().flat_profile()
        assert [r.name for r in rows] == ["pairalign", "malign"]
        assert rows[0].self_pct == pytest.approx(90.0)
        assert rows[1].self_pct == pytest.approx(10.0)

    def test_top_limits_rows(self):
        prof = self.build()
        assert len(prof.top(1)) == 1
        with pytest.raises(ValueError):
            prof.top(0)

    def test_cumulative_pct(self):
        prof = self.build()
        assert prof.cumulative_pct("pairalign") == pytest.approx(90.0)

    def test_gprof_report_layout(self):
        report = self.build().gprof_report()
        assert "Flat profile:" in report
        assert "pairalign" in report
        assert "calls" in report

    def test_empty_profiler(self):
        prof = CallGraphProfiler()
        assert prof.flat_profile() == []
        assert prof.total_self_s == 0.0


class TestInstrumentation:
    def test_instrument_and_restore_module(self):
        import repro.bioinfo.guidetree as gt

        original = gt.upgma
        prof = CallGraphProfiler()
        prof.instrument(gt, "upgma")
        assert gt.upgma is not original
        prof.restore()
        assert gt.upgma is original

    def test_context_manager_restores(self):
        import repro.bioinfo.guidetree as gt

        original = gt.upgma
        with CallGraphProfiler() as prof:
            prof.instrument(gt, "upgma")
        assert gt.upgma is original

    def test_profile_call_helper(self):
        result, prof = profile_call(sorted, [3, 1, 2])
        assert result == [1, 2, 3]
        assert prof.stats["sorted"].calls == 1


class TestCallGraphSection:
    def test_blocks_show_callers_and_callees(self):
        clock = FakeClock()
        prof = CallGraphProfiler(clock=clock)
        child = prof.wrap(lambda: clock.advance(1.0), name="child")

        def parent():
            clock.advance(0.5)
            child()
            child()

        prof.wrap(parent, name="parent")()
        report = prof.callgraph_report()
        assert "Call graph:" in report
        # child's block shows its caller with the edge count 2/2.
        assert "2/2" in report
        assert "parent" in report and "child" in report

    def test_top_limits_blocks(self):
        clock = FakeClock()
        prof = CallGraphProfiler(clock=clock)
        for name in ("a", "b", "c"):
            prof.wrap(lambda: clock.advance(1.0), name=name)()
        report = prof.callgraph_report(top=1)
        assert "[1]" in report and "[2]" not in report
