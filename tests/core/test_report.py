"""Unit tests for the ASCII reporting helpers."""

import pytest

from repro.report import ascii_bar_chart, ascii_table, ascii_timeline


class TestTable:
    def test_renders_headers_rule_and_rows(self):
        out = ascii_table(["name", "slices"], [("XC5VLX155", 24_320)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "slices" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "XC5VLX155" in lines[3]

    def test_numbers_right_aligned(self):
        out = ascii_table(["n", "v"], [("a", 1), ("bb", 22)])
        rows = out.splitlines()[2:]
        assert rows[0].endswith(" 1")
        assert rows[1].endswith("22")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            ascii_table(["a", "b"], [(1,)])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            ascii_table([], [])

    def test_floats_formatted(self):
        out = ascii_table(["v"], [(1.23456,)])
        assert "1.235" in out


class TestBarChart:
    def test_bars_scale_to_peak(self):
        out = ascii_bar_chart(["a", "b"], [100.0, 50.0], width=20)
        lines = out.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_zero_value_has_no_bar(self):
        out = ascii_bar_chart(["a", "b"], [10.0, 0.0])
        assert out.splitlines()[1].count("#") == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bar_chart([], [])
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [-1.0])
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0], width=0)

    def test_unit_appended(self):
        assert "%" in ascii_bar_chart(["a"], [42.0], unit="%")


class TestTimeline:
    def test_spans_positioned(self):
        out = ascii_timeline(
            [("T2", 0.0, 1.0), ("T5", 1.0, 2.0)], width=20, title="Fig8"
        )
        lines = out.splitlines()
        assert lines[0] == "Fig8"
        first = lines[1].split("|")[1]
        second = lines[2].split("|")[1]
        assert first.strip().startswith("=")
        assert second.lstrip(" ").startswith("=")
        assert second.index("=") >= 9  # second half of a 20-col axis

    def test_axis_annotated(self):
        out = ascii_timeline([("a", 0.0, 4.0)])
        assert out.splitlines()[-1].strip().endswith("4.00 s")

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_timeline([])
        with pytest.raises(ValueError, match="ends before"):
            ascii_timeline([("a", 2.0, 1.0)])
