"""Unit tests for the Figure 7 task graph."""

import pytest

from repro.core.execreq import ExecReq
from repro.core.task import DataIn, DataOut, Task, simple_task
from repro.core.taskgraph import DependencyError, FIGURE7_EDGES, TaskGraph, figure7_graph
from repro.hardware.taxonomy import PEClass


def req():
    return ExecReq(node_type=PEClass.GPP)


class TestFigure7:
    def test_paper_stated_dependencies(self):
        graph = figure7_graph()
        # "inputs to T8 are the outputs of tasks T0, T2, and T5"
        assert graph.predecessors(8) == {0, 2, 5}
        # "DataIN(T11) -> DataOUT(T7, T9, T13)"
        assert graph.predecessors(11) == {7, 9, 13}
        # "DataIN(T13) -> DataOUT(T7, T8)"
        assert graph.predecessors(13) == {7, 8}
        # "DataIN(T17) -> DataOUT(T7, T13)"
        assert graph.predecessors(17) == {7, 13}

    def test_has_18_tasks(self):
        assert len(figure7_graph()) == 18

    def test_generations_respect_chains(self):
        gens = figure7_graph().generations()
        # T8 depends on gen-0 tasks; T13 on T8; T11/T17 on T13.
        level = {t: i for i, gen in enumerate(gens) for t in gen}
        assert level[8] == 1
        assert level[13] == 2
        assert level[11] == 3 and level[17] == 3

    def test_critical_path_is_four_deep(self):
        path, length = figure7_graph(t_estimated=2.0).critical_path()
        assert length == pytest.approx(8.0)
        assert len(path) == 4
        assert path[-1] in (11, 17)


class TestConstruction:
    def test_duplicate_task_ids_rejected(self):
        t = simple_task(1, req(), 1.0)
        with pytest.raises(DependencyError, match="duplicate"):
            TaskGraph([t, simple_task(1, req(), 2.0)])

    def test_unknown_producer_rejected(self):
        t = simple_task(1, req(), 1.0, sources=(99,), in_bytes=10)
        with pytest.raises(DependencyError, match="unknown"):
            TaskGraph([t])

    def test_cycle_detected_and_named(self):
        a = simple_task(1, req(), 1.0, sources=(2,), in_bytes=1)
        b = simple_task(2, req(), 1.0, sources=(1,), in_bytes=1)
        with pytest.raises(DependencyError, match="cycle"):
            TaskGraph([a, b])

    def test_self_loop_detected(self):
        t = simple_task(1, req(), 1.0, sources=(1,), in_bytes=1)
        with pytest.raises(DependencyError, match="cycle"):
            TaskGraph([t])

    def test_empty_graph_fine(self):
        graph = TaskGraph([])
        assert len(graph) == 0
        assert graph.critical_path() == ([], 0.0)


class TestScheduling:
    def chain(self):
        t1 = simple_task(1, req(), 1.0)
        t2 = simple_task(2, req(), 2.0, sources=(1,), in_bytes=4)
        t3 = simple_task(3, req(), 3.0, sources=(1,), in_bytes=4)
        t4 = simple_task(4, req(), 1.0, sources=(2, 3), in_bytes=4)
        return TaskGraph([t1, t2, t3, t4])

    def test_entry_and_exit(self):
        graph = self.chain()
        assert graph.entry_tasks() == {1}
        assert graph.exit_tasks() == {4}

    def test_ready_tasks_frontier(self):
        graph = self.chain()
        assert graph.ready_tasks(set()) == {1}
        assert graph.ready_tasks({1}) == {2, 3}
        assert graph.ready_tasks({1, 2}) == {3}
        assert graph.ready_tasks({1, 2, 3}) == {4}
        assert graph.ready_tasks({1, 2, 3, 4}) == set()

    def test_topological_order_valid(self):
        graph = self.chain()
        order = graph.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        for consumer in (2, 3, 4):
            for producer in graph.predecessors(consumer):
                assert pos[producer] < pos[consumer]

    def test_critical_path_diamond(self):
        graph = self.chain()
        path, length = graph.critical_path()
        assert path == [1, 3, 4]
        assert length == pytest.approx(5.0)

    def test_transfer_bytes(self):
        graph = self.chain()
        assert graph.transfer_bytes(1, 2) == 4
        with pytest.raises(KeyError):
            graph.transfer_bytes(2, 1)

    def test_total_work(self):
        assert self.chain().total_work() == pytest.approx(7.0)

    def test_task_lookup(self):
        graph = self.chain()
        assert graph.task(2).t_estimated == 2.0
        with pytest.raises(KeyError):
            graph.task(99)
        assert 2 in graph and 99 not in graph
