"""Tests for the GPU extension class end to end.

Section III: the framework "is extendable to add more types of
processing elements."  These tests prove the extension point works all
the way through: node model, Eq. 1 state, matchmaking, RMS lifecycle,
simulation, and energy audit.
"""

import pytest

from repro.core.execreq import Artifacts, ExecReq, MinValue
from repro.core.node import Node, ResourceError
from repro.core.state import PEState
from repro.core.task import simple_task
from repro.core.matching import find_candidates
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.gpp import GPPSpec
from repro.hardware.gpu import GPUSpec
from repro.hardware.taxonomy import PEClass
from repro.sim.energy import EnergyAuditor
from repro.sim.simulator import DReAMSim


@pytest.fixture
def node():
    n = Node(node_id=0, name="Node_0")
    n.add_gpp(GPPSpec(cpu_model="Xeon", mips=2_000))
    n.add_gpu(GPUSpec(model="Tesla-C1060", shader_cores=240))
    n.add_gpu(GPUSpec(model="Tesla-C870", shader_cores=128))
    return n


def gpu_task(task_id=0, min_cores=0, t=1.0):
    constraints = (MinValue("shader_cores", min_cores),) if min_cores else ()
    return simple_task(
        task_id,
        ExecReq(
            node_type=PEClass.GPU,
            constraints=constraints,
            artifacts=Artifacts(application_code="kernel.cu"),
        ),
        t,
        workload_mi=t * 100_000.0,
    )


class TestNodeModel:
    def test_gpu_in_eq1_state(self, node):
        state = node.state()
        assert len(state.gpus) == 2
        assert state.idle_gpu_count == 2

    def test_gpu_caps_listed(self, node):
        caps = node.gpu_caps()
        assert caps[0]["pe_class"] == "GPU"
        assert caps[0]["shader_cores"] == 240

    def test_assign_release(self, node):
        gpu = node.gpus[0]
        gpu.assign(7)
        assert gpu.state is PEState.BUSY
        with pytest.raises(ResourceError):
            gpu.assign(8)
        gpu.release()
        assert gpu.state is PEState.IDLE

    def test_remove_busy_needs_force(self, node):
        gpu = node.gpus[0]
        gpu.assign(7)
        with pytest.raises(ResourceError):
            node.remove_gpu(gpu.resource_id)
        node.remove_gpu(gpu.resource_id, force=True)
        assert len(node.gpus) == 1


class TestMatching:
    def test_constraint_filters_small_gpu(self, node):
        candidates = find_candidates(gpu_task(min_cores=200), [node])
        assert len(candidates) == 1
        assert candidates[0].label == "GPU_0 <-> Node_0"

    def test_availability_filter(self, node):
        node.gpus[0].assign(9)
        dynamic = find_candidates(gpu_task(), [node], require_available=True)
        assert [c.resource_index for c in dynamic] == [1]

    def test_gpp_task_never_lands_on_gpu(self, node):
        task = simple_task(
            0,
            ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
            1.0,
        )
        candidates = find_candidates(task, [node])
        assert all(c.kind is not PEClass.GPU for c in candidates)


class TestLifecycleAndSim:
    def test_rms_runs_gpu_placement(self, node):
        rms = ResourceManagementSystem()
        rms.register_node(node)
        placement = rms.plan_placement(gpu_task(min_cores=200, t=1.0))
        assert placement.candidate.kind is PEClass.GPU
        # 100,000 MI at 95 % parallel on 240 cores @ 1300 MHz.
        expected = node.gpus[0].spec.execution_time_s(100_000.0)
        assert placement.exec_time_s == pytest.approx(expected)
        rms.run_placement(placement)
        assert node.gpus[0].state is PEState.IDLE

    def test_simulated_gpu_workload_with_energy(self, node):
        rms = ResourceManagementSystem()
        rms.register_node(node)
        sim = DReAMSim(rms)
        sim.submit_workload([(0.1 * i, gpu_task(i, t=1.0)) for i in range(6)])
        report = sim.run()
        assert report.completed == 6
        assert report.tasks_by_pe_kind == {"GPU": 6}
        energy = EnergyAuditor(rms).audit(sim)
        assert energy.active_j > 0
