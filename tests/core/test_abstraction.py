"""Unit tests for the Figure 2 abstraction levels."""

import pytest

from repro.core.abstraction import AbstractionLevel, SubmissionError, validate_artifacts
from repro.core.execreq import Artifacts
from repro.hardware.bitstream import Bitstream, HDLDesign
from repro.hardware.softcore import RHO_VEX_4ISSUE

ALL = list(AbstractionLevel)


class TestOrdering:
    def test_rank_order_matches_figure2(self):
        assert (
            AbstractionLevel.DEVICE_SPECIFIC_HW.rank
            < AbstractionLevel.USER_DEFINED_HW.rank
            < AbstractionLevel.PREDETERMINED_HW.rank
            < AbstractionLevel.SOFTWARE_ONLY.rank
        )

    def test_lt_uses_rank(self):
        assert AbstractionLevel.DEVICE_SPECIFIC_HW < AbstractionLevel.SOFTWARE_ONLY

    def test_performance_monotone_decreasing_in_abstraction(self):
        # Section III-C: lower abstraction -> more performance.
        ordered = sorted(ALL, key=lambda l: l.rank)
        perfs = [l.performance_factor for l in ordered]
        assert perfs == sorted(perfs, reverse=True)

    def test_effort_monotone_decreasing_in_abstraction(self):
        ordered = sorted(ALL, key=lambda l: l.rank)
        efforts = [l.development_effort for l in ordered]
        assert efforts == sorted(efforts, reverse=True)

    def test_device_specific_is_reference(self):
        assert AbstractionLevel.DEVICE_SPECIFIC_HW.performance_factor == 1.0
        assert AbstractionLevel.DEVICE_SPECIFIC_HW.development_effort == 1.0


class TestProviderRequirements:
    def test_only_user_defined_needs_cad_tools(self):
        # Section III-B2 vs III-B3.
        for level in ALL:
            expected = level is AbstractionLevel.USER_DEFINED_HW
            assert level.provider_needs_cad_tools is expected

    def test_visibility_strings(self):
        assert "soft-core" in AbstractionLevel.PREDETERMINED_HW.visible_to_user
        assert "fabric" in AbstractionLevel.USER_DEFINED_HW.visible_to_user
        assert "devices" in AbstractionLevel.DEVICE_SPECIFIC_HW.visible_to_user


class TestValidation:
    def make_bitstream(self):
        return Bitstream(1, "XC5VLX110", 1_000, 100, implements="x")

    def make_hdl(self):
        return HDLDesign("acc", "VHDL", 100, estimated_slices=500)

    def test_code_always_required(self):
        for level in ALL:
            with pytest.raises(SubmissionError, match="application code"):
                validate_artifacts(level, Artifacts())

    def test_software_only_needs_nothing_else(self):
        validate_artifacts(AbstractionLevel.SOFTWARE_ONLY, Artifacts(application_code="x"))

    def test_predetermined_needs_softcore(self):
        with pytest.raises(SubmissionError, match="soft-core"):
            validate_artifacts(
                AbstractionLevel.PREDETERMINED_HW, Artifacts(application_code="x")
            )
        validate_artifacts(
            AbstractionLevel.PREDETERMINED_HW,
            Artifacts(application_code="x", softcore=RHO_VEX_4ISSUE),
        )

    def test_user_defined_needs_hdl(self):
        with pytest.raises(SubmissionError, match="HDL"):
            validate_artifacts(
                AbstractionLevel.USER_DEFINED_HW, Artifacts(application_code="x")
            )
        validate_artifacts(
            AbstractionLevel.USER_DEFINED_HW,
            Artifacts(application_code="x", hdl_design=self.make_hdl()),
        )

    def test_device_specific_needs_bitstream(self):
        with pytest.raises(SubmissionError, match="bitstream"):
            validate_artifacts(
                AbstractionLevel.DEVICE_SPECIFIC_HW, Artifacts(application_code="x")
            )
        validate_artifacts(
            AbstractionLevel.DEVICE_SPECIFIC_HW,
            Artifacts(application_code="x", bitstream=self.make_bitstream()),
        )
