"""Unit tests for the ExecReq constraint algebra."""

import pytest

from repro.core.execreq import (
    Artifacts,
    Equals,
    ExecReq,
    Exists,
    MaxValue,
    MinValue,
    OneOf,
)
from repro.hardware.taxonomy import PEClass

CAPS = {
    "pe_class": "RPE",
    "slices": 24_320,
    "device_family": "virtex-5",
    "device_model": "XC5VLX155",
    "partial_reconfig": True,
    "os": "Linux",
}


class TestConstraints:
    def test_min_value(self):
        assert MinValue("slices", 18_707).satisfied_by(CAPS)
        assert not MinValue("slices", 30_790).satisfied_by(CAPS)

    def test_min_value_boundary_inclusive(self):
        assert MinValue("slices", 24_320).satisfied_by(CAPS)

    def test_max_value(self):
        assert MaxValue("slices", 30_000).satisfied_by(CAPS)
        assert not MaxValue("slices", 10_000).satisfied_by(CAPS)

    def test_missing_key_fails_numeric(self):
        assert not MinValue("bram_kb", 1).satisfied_by(CAPS)
        assert not MaxValue("bram_kb", 10**9).satisfied_by(CAPS)

    def test_non_numeric_value_fails_numeric(self):
        assert not MinValue("device_family", 1).satisfied_by(CAPS)

    def test_bool_not_treated_as_number(self):
        assert not MinValue("partial_reconfig", 0).satisfied_by(CAPS)

    def test_equals(self):
        assert Equals("device_model", "XC5VLX155").satisfied_by(CAPS)
        assert not Equals("device_model", "XC6VLX365T").satisfied_by(CAPS)

    def test_one_of(self):
        assert OneOf("os", ("Linux", "Solaris")).satisfied_by(CAPS)
        assert not OneOf("os", ("Windows",)).satisfied_by(CAPS)

    def test_one_of_requires_values(self):
        with pytest.raises(ValueError):
            OneOf("os", ())

    def test_exists(self):
        assert Exists("partial_reconfig").satisfied_by(CAPS)
        assert not Exists("ethernet_macs").satisfied_by(CAPS)
        assert not Exists("nonexistent").satisfied_by(CAPS)

    def test_describe_is_readable(self):
        assert "slices >= 18707" in MinValue("slices", 18_707).describe()
        assert "virtex-5" in Equals("device_family", "virtex-5").describe()


class TestExecReq:
    def test_all_constraints_must_hold(self):
        req = ExecReq(
            node_type=PEClass.RPE,
            constraints=(
                Equals("device_family", "virtex-5"),
                MinValue("slices", 18_707),
            ),
        )
        assert req.matches(CAPS)
        assert not req.matches({**CAPS, "slices": 10_000})
        assert not req.matches({**CAPS, "device_family": "virtex-6"})

    def test_pe_class_gate(self):
        req = ExecReq(node_type=PEClass.GPU)
        assert not req.matches(CAPS)
        assert req.matches({"pe_class": "GPU"})

    def test_gpp_requirement_accepts_softcore(self):
        # Section III-A: a soft-core CPU on an RPE can serve GPP tasks.
        req = ExecReq(node_type=PEClass.GPP)
        assert req.matches({"pe_class": "GPP"})
        assert req.matches({"pe_class": "SOFTCORE"})
        assert not req.matches({"pe_class": "RPE"})

    def test_softcore_requirement_rejects_plain_gpp(self):
        req = ExecReq(node_type=PEClass.SOFTCORE)
        assert req.matches({"pe_class": "SOFTCORE"})
        assert not req.matches({"pe_class": "GPP"})

    def test_unmet_constraints_reported(self):
        req = ExecReq(
            node_type=PEClass.RPE,
            constraints=(MinValue("slices", 99_999), Equals("os", "Linux")),
        )
        unmet = req.unmet_constraints(CAPS)
        assert len(unmet) == 1
        assert unmet[0].key == "slices"

    def test_with_constraints_refines(self):
        base = ExecReq(node_type=PEClass.RPE)
        refined = base.with_constraints(MinValue("slices", 30_790))
        assert base.matches(CAPS)
        assert not refined.matches(CAPS)
        assert len(base.constraints) == 0  # original untouched

    def test_describe_includes_node_type(self):
        req = ExecReq(node_type=PEClass.RPE, constraints=(MinValue("slices", 5),))
        assert "NodeType=RPE" in req.describe()


class TestArtifacts:
    def test_negative_data_rejected(self):
        with pytest.raises(ValueError):
            Artifacts(input_data_bytes=-1)

    def test_defaults_are_empty(self):
        a = Artifacts()
        assert a.application_code == ""
        assert a.bitstream is None and a.hdl_design is None and a.softcore is None
