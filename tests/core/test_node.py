"""Unit tests for the Eq. 1 node model."""

import pytest

from repro.core.node import Node, ResourceError
from repro.core.state import PEState
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.softcore import RHO_VEX_2ISSUE, RHO_VEX_4ISSUE


@pytest.fixture
def node():
    n = Node(node_id=0, name="Node_0")
    n.add_gpp(GPPSpec(cpu_model="Xeon", mips=2_000))
    n.add_rpe(device_by_model("XC5VLX110"), regions=2)
    return n


class TestEq1Structure:
    def test_as_tuple_shape(self, node):
        node_id, gpp_caps, rpe_caps, state = node.as_tuple()
        assert node_id == 0
        assert len(gpp_caps) == 1 and len(rpe_caps) == 1
        assert state.node_id == 0

    def test_gpp_caps_include_state(self, node):
        caps = node.gpp_caps()[0]
        assert caps["state"] == "idle"
        assert caps["mips"] == 2_000

    def test_rpe_caps_include_dynamic_area(self, node):
        caps = node.rpe_caps()[0]
        assert caps["available_slices"] == 17_280
        assert caps["resident_functions"] == ()

    def test_auto_node_ids_unique(self):
        a, b = Node(), Node()
        assert a.node_id != b.node_id

    def test_default_name(self):
        assert Node(node_id=7).name == "Node_7"


class TestRuntimeAddRemove:
    def test_add_assigns_distinct_resource_ids(self, node):
        g2 = node.add_gpp(GPPSpec(cpu_model="Opteron", mips=1_000))
        r2 = node.add_rpe(device_by_model("XC5VLX50"))
        ids = [node.gpps[0].resource_id, g2.resource_id, node.rpes[0].resource_id, r2.resource_id]
        assert len(set(ids)) == 4

    def test_remove_gpp(self, node):
        rid = node.gpps[0].resource_id
        removed = node.remove_gpp(rid)
        assert removed.state is PEState.OFFLINE
        assert node.gpps == []

    def test_remove_busy_gpp_requires_force(self, node):
        gpp = node.gpps[0]
        gpp.assign(42)
        with pytest.raises(ResourceError, match="force"):
            node.remove_gpp(gpp.resource_id)
        node.remove_gpp(gpp.resource_id, force=True)
        assert node.gpps == []

    def test_remove_busy_rpe_requires_force(self, node):
        rpe = node.rpes[0]
        region = rpe.host_softcore(RHO_VEX_2ISSUE)
        rpe.begin_task(region, 7)
        with pytest.raises(ResourceError, match="force"):
            node.remove_rpe(rpe.resource_id)
        node.remove_rpe(rpe.resource_id, force=True)

    def test_remove_unknown_resource(self, node):
        with pytest.raises(KeyError):
            node.remove_gpp(999)


class TestGPPResource:
    def test_assign_release_cycle(self, node):
        gpp = node.gpps[0]
        gpp.assign(5)
        assert gpp.state is PEState.BUSY
        assert gpp.current_task_id == 5
        gpp.release()
        assert gpp.state is PEState.IDLE
        assert gpp.current_task_id is None

    def test_double_assign_rejected(self, node):
        gpp = node.gpps[0]
        gpp.assign(5)
        with pytest.raises(ResourceError):
            gpp.assign(6)

    def test_release_idle_rejected(self, node):
        with pytest.raises(ResourceError):
            node.gpps[0].release()


class TestRPEResource:
    def test_derived_state_idle_initially(self, node):
        assert node.rpes[0].state is PEState.IDLE

    def test_busy_when_all_regions_busy(self, node):
        rpe = node.rpes[0]
        for _ in range(2):
            region = rpe.host_softcore(RHO_VEX_2ISSUE)
            rpe.begin_task(region, 1)
        assert rpe.state is PEState.BUSY

    def test_offline_state(self, node):
        rpe = node.rpes[0]
        rpe.set_offline()
        assert rpe.state is PEState.OFFLINE
        with pytest.raises(ResourceError, match="offline"):
            rpe.host_softcore(RHO_VEX_2ISSUE)


class TestSoftcoreHosting:
    def test_host_exposes_gpp_like_capabilities(self, node):
        rpe = node.rpes[0]
        rpe.host_softcore(RHO_VEX_4ISSUE)
        descriptors = rpe.softcore_capabilities()
        assert len(descriptors) == 1
        caps = descriptors[0]
        assert caps["pe_class"] == "SOFTCORE"
        assert caps["mips"] > 0
        assert caps["host_device_model"] == "XC5VLX110"

    def test_busy_softcore_not_advertised(self, node):
        rpe = node.rpes[0]
        region = rpe.host_softcore(RHO_VEX_4ISSUE)
        rpe.begin_task(region, 1)
        assert rpe.softcore_capabilities() == []
        rpe.finish_task(region)
        assert len(rpe.softcore_capabilities()) == 1

    def test_too_big_core_rejected(self):
        node = Node()
        node.add_rpe(device_by_model("XC5VLX30"))  # 4,800 slices
        from repro.hardware.softcore import RHO_VEX_8ISSUE

        with pytest.raises(ResourceError, match="cannot host"):
            node.rpes[0].host_softcore(RHO_VEX_8ISSUE)

    def test_hosting_evicts_idle_configuration(self, node):
        rpe = node.rpes[0]
        first = rpe.host_softcore(RHO_VEX_2ISSUE)
        second = rpe.host_softcore(RHO_VEX_2ISSUE)
        third = rpe.host_softcore(RHO_VEX_4ISSUE)  # evicts one idle core
        assert len(rpe.hosted_softcores) == 2

    def test_snapshot_reports_resident_functions(self, node):
        rpe = node.rpes[0]
        rpe.host_softcore(RHO_VEX_4ISSUE)
        snap = rpe.snapshot()
        assert any("rho-VEX-4issue" in f for f in snap.resident_functions)
        assert snap.total_slices == 17_280


class TestStateSnapshot:
    def test_counts(self, node):
        state = node.state()
        assert state.idle_gpp_count == 1
        assert state.idle_rpe_count == 1
        assert state.available_reconfigurable_area == 17_280
        assert state.has_capacity

    def test_snapshot_is_frozen_in_time(self, node):
        before = node.state()
        node.gpps[0].assign(1)
        after = node.state()
        assert before.idle_gpp_count == 1
        assert after.idle_gpp_count == 0

    def test_utilization_math(self, node):
        rpe = node.rpes[0]
        region = rpe.host_softcore(RHO_VEX_2ISSUE)
        rpe.begin_task(region, 1)
        snap = rpe.snapshot()
        assert 0.0 < snap.utilization < 1.0
