"""Unit tests for the Eq. 2 task model."""

import pytest

from repro.core.execreq import Artifacts, ExecReq
from repro.core.task import EXTERNAL_SOURCE, DataIn, DataOut, Task, simple_task
from repro.hardware.taxonomy import PEClass


def gpp_req():
    return ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x"))


def make_task(**overrides) -> Task:
    params = dict(
        task_id=8,
        data_in=(
            DataIn(0, 0, 1_000),
            DataIn(2, 0, 2_000),
            DataIn(5, 1, 3_000),
        ),
        data_out=(DataOut(0, 500), DataOut(1, 700)),
        exec_req=gpp_req(),
        t_estimated=2.0,
    )
    params.update(overrides)
    return Task(**params)


class TestValidation:
    def test_negative_estimate_rejected(self):
        with pytest.raises(ValueError):
            make_task(t_estimated=-1.0)

    def test_negative_workload_rejected(self):
        with pytest.raises(ValueError):
            make_task(workload_mi=-5.0)

    def test_duplicate_output_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate output"):
            make_task(data_out=(DataOut(0, 10), DataOut(0, 20)))

    def test_negative_data_sizes_rejected(self):
        with pytest.raises(ValueError):
            DataIn(0, 0, -1)
        with pytest.raises(ValueError):
            DataOut(0, -1)


class TestEq2Semantics:
    def test_predecessors_from_data_in(self):
        # Figure 7: inputs to T8 are the outputs of T0, T2 and T5.
        assert make_task().predecessor_ids == frozenset({0, 2, 5})

    def test_external_source_not_a_predecessor(self):
        task = make_task(data_in=(DataIn(EXTERNAL_SOURCE, 0, 100),))
        assert task.predecessor_ids == frozenset()

    def test_total_io_bytes(self):
        task = make_task()
        assert task.total_input_bytes == 6_000
        assert task.total_output_bytes == 1_200

    def test_output_lookup(self):
        task = make_task()
        assert task.output(1).size_bytes == 700
        with pytest.raises(KeyError):
            task.output(9)

    def test_workload_defaults_to_reference_gpp(self):
        # 2 s on a 1000-MIPS reference = 2000 MI.
        assert make_task().effective_workload_mi == pytest.approx(2_000.0)

    def test_explicit_workload_wins(self):
        assert make_task(workload_mi=42.0).effective_workload_mi == 42.0

    def test_with_estimate_copies(self):
        original = make_task()
        revised = original.with_estimate(9.0)
        assert revised.t_estimated == 9.0
        assert original.t_estimated == 2.0
        assert revised.task_id == original.task_id


class TestSimpleTaskHelper:
    def test_sources_become_data_in(self):
        task = simple_task(3, gpp_req(), 1.0, sources=(1, 2), in_bytes=10)
        assert task.predecessor_ids == frozenset({1, 2})

    def test_external_input_when_no_sources(self):
        task = simple_task(3, gpp_req(), 1.0, in_bytes=10)
        assert task.data_in[0].source_task_id == EXTERNAL_SOURCE
        assert task.total_input_bytes == 10

    def test_no_input_data(self):
        task = simple_task(3, gpp_req(), 1.0)
        assert task.data_in == ()
