"""Unit tests for the Eq. 3/4 application model and parser."""

import pytest

from repro.core.application import (
    Application,
    Clause,
    ClauseKind,
    EQUATION_4,
    Par,
    Seq,
    Stream,
    parse_application,
)


class TestClauses:
    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            Clause(ClauseKind.SEQ, ())

    def test_seq_steps_are_singletons(self):
        assert Seq(5, 10).steps() == [[5], [10]]

    def test_par_steps_are_one_batch(self):
        assert Par(4, 1, 7).steps() == [[4, 1, 7]]

    def test_stream_steps_like_seq(self):
        assert Stream(1, 2).steps() == [[1], [2]]

    def test_describe(self):
        assert Par(4, 1, 7).describe() == "Par(T4, T1, T7)"


class TestApplication:
    def eq4(self) -> Application:
        return Application(clauses=(Seq(2), Par(4, 1, 7), Seq(5, 10)))

    def test_needs_a_clause(self):
        with pytest.raises(ValueError):
            Application(clauses=())

    def test_task_cannot_repeat_across_clauses(self):
        with pytest.raises(ValueError, match="more than one clause"):
            Application(clauses=(Seq(1), Par(1, 2)))

    def test_execution_steps_figure8(self):
        # Figure 8: T2, then T1/T4/T7 together, then T5, then T10.
        assert self.eq4().execution_steps() == [[2], [4, 1, 7], [5], [10]]

    def test_task_ids_in_clause_order(self):
        assert self.eq4().task_ids == (2, 4, 1, 7, 5, 10)

    def test_makespan_sums_step_maxima(self):
        durations = {2: 1.0, 4: 2.0, 1: 5.0, 7: 3.0, 5: 1.0, 10: 2.0}
        # 1 + max(2,5,3) + 1 + 2 = 9
        assert self.eq4().makespan(durations) == pytest.approx(9.0)

    def test_makespan_missing_duration(self):
        with pytest.raises(KeyError):
            self.eq4().makespan({2: 1.0})

    def test_describe_roundtrips_through_parser(self):
        app = self.eq4()
        reparsed = parse_application(app.describe())
        assert reparsed.clauses == app.clauses


class TestParser:
    def test_equation_4(self):
        app = parse_application(EQUATION_4)
        assert app.execution_steps() == [[2], [4, 1, 7], [5], [10]]

    def test_papers_typo_form_accepted(self):
        # The paper prints "Seq,(T5, T10)" -- comma between keyword and list.
        app = parse_application("App{Seq(T2), Par(T4, T1, T7), Seq,(T5, T10)}")
        assert app.execution_steps() == [[2], [4, 1, 7], [5], [10]]

    def test_bare_numbers_accepted(self):
        app = parse_application("Seq(2), Par(4, 1)")
        assert app.task_ids == (2, 4, 1)

    def test_stream_keyword(self):
        app = parse_application("App{Stream(T0, T1, T2)}")
        assert app.clauses[0].kind is ClauseKind.STREAM

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError, match="no tasks"):
            parse_application("App{Seq()}")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_application("App{Frobnicate(T1)}")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError, match="unrecognized"):
            parse_application("Seq(T1) and then some")

    def test_garbage_between_clauses_rejected(self):
        with pytest.raises(ValueError, match="unrecognized"):
            parse_application("Seq(T1) xyz Par(T2)")

    def test_empty_string_rejected(self):
        with pytest.raises(ValueError, match="no clauses"):
            parse_application("App{}")

    def test_name_is_attached(self):
        assert parse_application("Seq(T1)", name="demo").name == "demo"
