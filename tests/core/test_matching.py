"""Unit tests for capability matchmaking."""

import pytest

from repro.core.execreq import Artifacts, Equals, ExecReq, MinValue
from repro.core.matching import find_candidates, match_node, task_required_slices
from repro.core.node import Node
from repro.core.task import simple_task
from repro.hardware.bitstream import Bitstream, HDLDesign
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.softcore import RHO_VEX_2ISSUE, RHO_VEX_4ISSUE
from repro.hardware.taxonomy import PEClass


@pytest.fixture
def node():
    n = Node(node_id=0, name="Node_0")
    n.add_gpp(GPPSpec(cpu_model="Xeon", mips=5_000))
    n.add_gpp(GPPSpec(cpu_model="Atom", mips=800))
    n.add_rpe(device_by_model("XC5VLX155"), regions=2)  # 24,320 slices
    n.add_rpe(device_by_model("XC5VLX50"))  # 7,200 slices
    return n


def gpp_task(min_mips=1_000):
    return simple_task(
        0,
        ExecReq(
            node_type=PEClass.GPP,
            constraints=(MinValue("mips", min_mips),),
            artifacts=Artifacts(application_code="x"),
        ),
        1.0,
    )


def rpe_task(min_slices=10_000, function="fft"):
    return simple_task(
        1,
        ExecReq(
            node_type=PEClass.RPE,
            constraints=(MinValue("slices", min_slices),),
            artifacts=Artifacts(application_code="x", hdl_design=HDLDesign(
                name=function, language="VHDL", source_lines=100,
                estimated_slices=min_slices, implements=function,
            )),
        ),
        1.0,
        function=function,
    )


class TestGPPMatching:
    def test_constraint_filters_slow_cpu(self, node):
        candidates = match_node(gpp_task(min_mips=1_000), node)
        assert [c.resource_index for c in candidates] == [0]

    def test_all_match_with_low_bar(self, node):
        candidates = match_node(gpp_task(min_mips=100), node)
        assert len(candidates) == 2

    def test_availability_filter(self, node):
        node.gpps[0].assign(99)
        static = match_node(gpp_task(100), node)
        dynamic = match_node(gpp_task(100), node, require_available=True)
        assert len(static) == 2
        assert [c.resource_index for c in dynamic] == [1]

    def test_label_follows_table2_notation(self, node):
        label = match_node(gpp_task(), node)[0].label
        assert label == "GPP_0 <-> Node_0"


class TestRPEMatching:
    def test_slice_constraint_selects_devices(self, node):
        candidates = match_node(rpe_task(min_slices=10_000), node)
        assert [c.resource_index for c in candidates] == [0]
        both = match_node(rpe_task(min_slices=5_000), node)
        assert len(both) == 2

    def test_bitstream_pins_device_model(self, node):
        bs = Bitstream(1, "XC5VLX50", 1_000, 900, implements="x")
        task = simple_task(
            2,
            ExecReq(
                node_type=PEClass.RPE,
                artifacts=Artifacts(application_code="x", bitstream=bs),
            ),
            1.0,
        )
        candidates = match_node(task, node)
        assert len(candidates) == 1
        assert candidates[0].resource_index == 1

    def test_oversized_requirement_matches_nothing(self, node):
        assert match_node(rpe_task(min_slices=99_999), node) == []

    def test_reuse_flag_when_function_resident(self, node):
        task = rpe_task(min_slices=5_000, function="fft")
        rpe = node.rpes[0]
        bs = Bitstream(
            2, rpe.device.model, 1_000, 5_000, implements="fft"
        )
        region = rpe.fabric.find_placeable(5_000)
        rpe.fabric.begin_reconfiguration(region, bs)
        rpe.fabric.finish_reconfiguration(region)
        candidates = match_node(task, node)
        by_index = {c.resource_index: c for c in candidates}
        assert by_index[0].reuses_resident
        assert not by_index[1].reuses_resident

    def test_dynamic_filter_respects_busy_fabric(self, node):
        rpe = node.rpes[1]  # single-region XC5VLX50
        region = rpe.host_softcore(RHO_VEX_2ISSUE)
        rpe.begin_task(region, 1)
        task = rpe_task(min_slices=5_000)
        dynamic = match_node(task, node, require_available=True)
        assert [c.resource_index for c in dynamic] == [0]


class TestSoftcoreMatching:
    def test_hosted_core_serves_gpp_task(self, node):
        node.rpes[0].host_softcore(RHO_VEX_4ISSUE)
        candidates = match_node(gpp_task(min_mips=100), node)
        kinds = {c.kind for c in candidates}
        assert PEClass.SOFTCORE in kinds
        soft = [c for c in candidates if c.kind is PEClass.SOFTCORE][0]
        assert soft.region_id is not None

    def test_softcore_class_task_needs_provisionable_rpe(self, node):
        task = simple_task(
            5,
            ExecReq(
                node_type=PEClass.SOFTCORE,
                artifacts=Artifacts(application_code="x", softcore=RHO_VEX_4ISSUE),
            ),
            1.0,
        )
        candidates = match_node(task, node)
        # Both RPEs can fit a 4-issue core; no GPP may serve it.
        assert all(c.kind is PEClass.SOFTCORE for c in candidates)
        assert len(candidates) == 2

    def test_softcore_task_without_artifact_matches_hosted_only(self, node):
        task = simple_task(
            6,
            ExecReq(node_type=PEClass.SOFTCORE, artifacts=Artifacts(application_code="x")),
            1.0,
        )
        assert match_node(task, node) == []
        node.rpes[0].host_softcore(RHO_VEX_4ISSUE)
        assert len(match_node(task, node)) == 1


class TestRequiredSlices:
    def test_from_bitstream(self):
        bs = Bitstream(1, "XC5VLX50", 1_000, 4_242, implements="x")
        task = simple_task(
            1, ExecReq(node_type=PEClass.RPE, artifacts=Artifacts(application_code="x", bitstream=bs)), 1.0
        )
        assert task_required_slices(task) == 4_242

    def test_from_constraint(self):
        task = rpe_task(min_slices=7_000)
        assert task_required_slices(task) == 7_000

    def test_from_softcore(self):
        task = simple_task(
            1,
            ExecReq(
                node_type=PEClass.SOFTCORE,
                artifacts=Artifacts(application_code="x", softcore=RHO_VEX_2ISSUE),
            ),
            1.0,
        )
        assert task_required_slices(task) == RHO_VEX_2ISSUE.required_slices()

    def test_unknown_is_zero(self):
        assert task_required_slices(gpp_task()) == 0


class TestMultiNode:
    def test_candidates_ordered_by_node(self, node):
        other = Node(node_id=1, name="Node_1")
        other.add_gpp(GPPSpec(cpu_model="Xeon2", mips=9_000))
        candidates = find_candidates(gpp_task(), [node, other])
        assert [c.node_id for c in candidates] == [0, 1]
