"""Second case study: a streaming image pipeline on the virtualized grid.

The paper defers streaming applications and further case studies to
future work (Section VI); this example delivers both.  A classic
FPGA workload -- Gaussian blur -> Sobel -> threshold over video frames
-- is:

1. executed in-process (numpy) to produce ground-truth output;
2. *compiled* onto the framework: one fabric task per stage with a
   per-stage bitstream, wrapped in an Eq. 3 ``Stream`` application;
3. run on DReAMSim over a grid with a 3-region Virtex-5 (one region
   per stage circuit), with frame tiles pipelining through the stages;
4. compared against the same chain without pipelining, and audited
   for energy.

Run with::

    python examples/streaming_imaging.py
"""

import numpy as np

from repro.core.application import Application, Clause, ClauseKind
from repro.core.node import Node
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.catalog import device_by_model
from repro.imaging.pipeline import FilterPipeline
from repro.report import ascii_table
from repro.sim.energy import EnergyAuditor
from repro.sim.simulator import DReAMSim


def run_on_grid(app, tasks, *, chunks: int):
    device = device_by_model("XC5VLX330")
    node = Node(node_id=0, name="VisionNode")
    node.add_rpe(device, regions=3)
    rms = ResourceManagementSystem()
    rms.register_node(node)
    sim = DReAMSim(rms)
    sim.submit_application(app, tasks, stream_chunks=chunks)
    report = sim.run()
    energy = EnergyAuditor(rms).audit(sim)
    return report, energy


def main() -> None:
    print("=== Streaming imaging case study ===\n")

    # --- 1. ground truth in-process -----------------------------------
    rng = np.random.default_rng(7)
    frame = rng.random((240, 320))
    pipeline = FilterPipeline()
    edges = pipeline.apply(frame)
    print(
        f"in-process run: {frame.shape[0]}x{frame.shape[1]} frame -> "
        f"{int(edges.sum())} edge pixels ({edges.mean():.1%} of the frame)"
    )

    # --- 2. compile onto the framework --------------------------------
    device = device_by_model("XC5VLX330")
    app, tasks = pipeline.compile_to_application(device, frame_shape=(1080, 1920))
    print(f"\ncompiled: {app.describe()}")
    for task in tasks.values():
        bs = task.exec_req.artifacts.bitstream
        print(
            f"  T{task.task_id} {task.function:16s} {bs.required_slices:5d} slices, "
            f"{task.t_estimated * 1e3:6.1f} ms/frame on fabric"
        )

    # --- 3/4. simulate: pipelined vs unpipelined ----------------------
    serial_app = Application(
        clauses=(Clause(ClauseKind.SEQ, tuple(sorted(tasks))),), name="serial"
    )
    rows = []
    for label, application, chunks in (
        ("sequential (Seq)", serial_app, 1),
        ("stream, 4 tiles", app, 4),
        ("stream, 16 tiles", app, 16),
    ):
        report, energy = run_on_grid(application, tasks, chunks=chunks)
        rows.append(
            (label, f"{report.makespan_s * 1e3:.1f}", report.reconfigurations,
             f"{report.reuse_rate:.0%}", f"{energy.total_j:.2f}")
        )
    print()
    print(
        ascii_table(
            ["execution", "makespan ms", "reconfigs", "reuse", "energy J"],
            rows,
            title="One 1080p frame through the 3-stage chain:",
        )
    )
    print(
        "\nTiling the frame lets stage circuits overlap: each stage's\n"
        "bitstream is configured once and reused for every tile."
    )


if __name__ == "__main__":
    main()
