"""Compare DReAMSim scheduling strategies on one synthetic workload.

The experiment the DReAMSim papers [20][21] run: a Poisson stream of
mixed software/hardware tasks against a fixed grid, once per strategy,
comparing waiting time, turnaround, reconfiguration cost and
configuration reuse.  Also contrasts the hybrid grid against a
traditional GPP-only grid.

The per-strategy runs are independent and seeded, so they execute
across worker processes (``--jobs N``, default: the CPU count) with
results identical to the serial loop.

Run with::

    python examples/scheduling_comparison.py [--jobs N]
"""

import argparse
import time

from repro.core.node import Node
from repro.grid.network import Network
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.scheduling import ALL_STRATEGIES, RandomScheduler
from repro.sim.runner import parallel_map
from repro.sim.simulator import DReAMSim
from repro.sim.workload import (
    ConfigurationPool,
    PoissonArrivals,
    SyntheticWorkload,
    WorkloadSpec,
)

TASKS = 300
SEED = 42


def build_rms(scheduler) -> ResourceManagementSystem:
    n0 = Node(node_id=0, name="Compute-A")
    n0.add_gpp(GPPSpec(cpu_model="XeonA", mips=2_000))
    n0.add_gpp(GPPSpec(cpu_model="XeonB", mips=1_500))
    n0.add_rpe(device_by_model("XC5VLX330"), regions=3)
    n1 = Node(node_id=1, name="Compute-B")
    n1.add_gpp(GPPSpec(cpu_model="OpteronA", mips=1_800))
    n1.add_rpe(device_by_model("XC5VLX155"), regions=2)
    n1.add_rpe(device_by_model("XC5VLX110"), regions=2)
    net = Network.fully_connected([0, 1], bandwidth_mbps=100.0, latency_s=0.005)
    rms = ResourceManagementSystem(network=net, scheduler=scheduler)
    rms.register_node(n0)
    rms.register_node(n1)
    return rms


def run(strategy_name: str):
    cls = ALL_STRATEGIES[strategy_name]
    scheduler = cls(seed=SEED) if cls is RandomScheduler else cls()
    rms = build_rms(scheduler)
    pool = ConfigurationPool(10, area_range=(3_000, 16_000), seed=4)
    devices = [rpe.device for node in rms.nodes for rpe in node.rpes]
    pool.populate_repository(rms.virtualization.repository, devices)
    workload = SyntheticWorkload(
        WorkloadSpec(task_count=TASKS, gpp_fraction=0.4),
        pool,
        PoissonArrivals(rate_per_s=3.0),
        seed=SEED,
    )
    sim = DReAMSim(rms)
    sim.submit_workload(workload.generate())
    return sim.run()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: CPU count; 1 = serial)")
    args = parser.parse_args()

    print(f"=== DReAMSim strategy comparison ({TASKS} tasks, Poisson 3/s) ===\n")
    header = (
        f"{'strategy':15s} {'done':>5s} {'pend':>5s} {'wait s':>8s} "
        f"{'turnd s':>8s} {'makespan':>9s} {'reconf':>7s} {'reuse':>7s} {'util':>6s}"
    )
    print(header)
    print("-" * len(header))
    names = list(ALL_STRATEGIES)
    started = time.perf_counter()
    reports = parallel_map(run, names, jobs=args.jobs)
    elapsed = time.perf_counter() - started
    for name, r in zip(names, reports):
        print(
            f"{name:15s} {r.completed:5d} {r.pending:5d} {r.mean_wait_s:8.3f} "
            f"{r.mean_turnaround_s:8.3f} {r.makespan_s:9.2f} "
            f"{r.reconfigurations:7d} {r.reuse_rate:7.1%} {r.mean_utilization:6.1%}"
        )
    print(
        "\nNote: gpp-only is the traditional-grid baseline -- it cannot place\n"
        "RPE-class tasks at all, which is why it leaves tasks pending."
    )
    print(f"({len(names)} simulations in {elapsed:.2f} s wall)")


if __name__ == "__main__":
    main()
