"""Dynamic grid: runtime node churn, soft-core fallback, streaming, QoS.

Demonstrates the framework properties the paper claims beyond basic
scheduling:

* "adaptive in adding/removing resources at runtime" (Section IV-A) --
  a node leaves mid-execution and its tasks are re-queued; a new node
  joins later and absorbs the backlog;
* the Section III-A fallback -- soft cores provisioned on idle fabric
  soak up a GPP burst;
* the streaming scenario (Section VI future work) -- a Stream clause
  pipelines a 3-stage chain over data chunks;
* Figure 9 services -- QoS-checked submission with cost accounting.

Run with::

    python examples/dynamic_grid.py
"""

from repro.core.application import Application, Stream
from repro.core.execreq import Artifacts, ExecReq
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.rms import ResourceManagementSystem
from repro.grid.services import CostModel, QoSRequirement, UserServices
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.softcore import RHO_VEX_4ISSUE
from repro.hardware.taxonomy import PEClass
from repro.sim.simulator import DReAMSim


def gpp_task(task_id, t=3.0):
    return simple_task(
        task_id,
        ExecReq(node_type=PEClass.GPP, artifacts=Artifacts(application_code="x")),
        t,
        workload_mi=t * 1_000.0,
    )


def node_churn_demo() -> None:
    print("--- Node churn: leave mid-task, join later ---")
    alpha = Node(node_id=0, name="Alpha")
    alpha.add_gpp(GPPSpec(cpu_model="XeonA", mips=1_000))
    rms = ResourceManagementSystem()
    rms.register_node(alpha)
    sim = DReAMSim(rms)
    sim.submit_workload([(0.0, gpp_task(0, t=10.0)), (0.0, gpp_task(1, t=10.0))])

    beta = Node(node_id=1, name="Beta")
    beta.add_gpp(GPPSpec(cpu_model="XeonB", mips=2_000))
    sim.schedule_node_leave(4.0, 0)   # Alpha dies 4 s in
    sim.schedule_node_join(6.0, beta)  # Beta arrives at 6 s

    report = sim.run()
    print(f"  completed {report.completed}/2, re-queued {sim.requeues} task(s)")
    print(f"  makespan {report.makespan_s:.1f} s (restart on Beta at t=6, 2x faster CPU)")
    trace = [(t, e) for t, e, _ in sim.metrics.trace if e in ("requeue", "node-join", "node-leave")]
    for t, event in trace:
        print(f"    t={t:5.2f}  {event}")


def softcore_fallback_demo() -> None:
    print("\n--- Section III-A: soft-core fallback under a GPP burst ---")
    results = {}
    for use_softcores in (False, True):
        node = Node(node_id=0)
        node.add_gpp(GPPSpec(cpu_model="Xeon", mips=1_000))
        node.add_rpe(device_by_model("XC5VLX330"), regions=4)
        rms = ResourceManagementSystem()
        rms.register_node(node)
        if use_softcores:
            for _ in range(4):
                rms.virtualization.provisioner.provision(node.rpes[0], RHO_VEX_4ISSUE)
        sim = DReAMSim(rms)
        sim.submit_workload([(0.05 * i, gpp_task(i, t=2.0)) for i in range(30)])
        results[use_softcores] = sim.run()
    for flag, r in results.items():
        label = "with soft cores   " if flag else "GPPs only         "
        print(
            f"  {label} wait {r.mean_wait_s:7.3f} s   makespan {r.makespan_s:7.2f} s   "
            f"by PE: {r.tasks_by_pe_kind}"
        )


def streaming_demo() -> None:
    print("\n--- Streaming (Section VI future work): 3-stage pipeline ---")
    node = Node(node_id=0)
    for i in range(3):
        node.add_gpp(GPPSpec(cpu_model=f"cpu{i}", mips=1_000))
    rms = ResourceManagementSystem()
    rms.register_node(node)
    tasks = {i: gpp_task(i, t=3.0) for i in range(3)}
    for chunks in (1, 6):
        sim = DReAMSim(rms)
        app = Application(clauses=(Stream(0, 1, 2),))
        sim.submit_application(app, tasks, stream_chunks=chunks)
        report = sim.run()
        print(f"  {chunks} chunk(s): makespan {report.makespan_s:5.2f} s")
    print("  (9 s of serial work pipelines down toward 3 s as chunks grow)")


def qos_services_demo() -> None:
    print("\n--- Figure 9 services: QoS admission, cost, monitoring ---")
    node = Node(node_id=0)
    node.add_gpp(GPPSpec(cpu_model="Xeon", mips=4_000))
    rms = ResourceManagementSystem()
    rms.register_node(node)
    services = UserServices(rms, cost_model=CostModel(gpp_rate_per_s=2.0))
    job = services.submit(gpp_task(0, t=4.0), QoSRequirement(deadline_s=30.0, budget=10.0))
    makespan = services.execute(job)
    response = services.query(job.job_id)
    print(f"  job {job.job_id}: {response.status.value} in {makespan:.2f} s, cost {response.accrued_cost:.2f}")
    print("  event log:")
    for event in response.events:
        print(f"    t={event.time:6.3f}  {event.kind.value}")


def main() -> None:
    print("=== Dynamic grid demo ===\n")
    node_churn_demo()
    softcore_fallback_demo()
    streaming_demo()
    qos_services_demo()


if __name__ == "__main__":
    main()
