"""The declarative experiment API: specs, sweeps, replications.

DReAMSim "can be used to investigate the desired system scenario(s)
for a particular scheduling strategy and a given number of tasks, grid
nodes, configurations, task arrival distributions, area ranges, and
task required times" (Section V).  :class:`ExperimentSpec` is that
sentence as a data structure; this example shows the three idioms a
downstream user needs:

1. one seeded run (with an energy audit);
2. a one-knob sweep (strategy ablation);
3. seeded replications (mean +/- std over seeds).

Run with::

    python examples/experiment_api.py
"""

from repro.report import ascii_table
from repro.sim.experiment import (
    ExperimentSpec,
    NodeSpec,
    replicate,
    run_experiment,
    sweep,
)


def main() -> None:
    base = ExperimentSpec(
        strategy="hybrid-cost",
        tasks=150,
        nodes=(
            NodeSpec(gpps=2, gpp_mips=1_800, rpe_models=("XC5VLX330",), regions_per_rpe=3),
            NodeSpec(gpps=1, gpp_mips=1_500, rpe_models=("XC5VLX155", "XC5VLX110"), regions_per_rpe=2),
        ),
        configurations=8,
        arrival_rate_per_s=2.5,
        area_range=(2_000, 8_000),
        gpp_fraction=0.4,
        seed=100,
    )

    print("=== 1. One run, with the energy audit ===\n")
    result = run_experiment(base, audit_energy=True)
    print("\n".join(result.report.summary_lines()))
    print("\n".join(result.energy.summary_lines()))

    print("\n=== 2. Strategy sweep (same workload, same seed) ===\n")
    rows = []
    for outcome in sweep(base, "strategy", ["fcfs", "best-fit-area", "hybrid-cost", "energy-aware"]):
        r = outcome.report
        rows.append(
            (outcome.spec.strategy, f"{r.mean_wait_s:.3f}", f"{r.makespan_s:.1f}",
             r.reconfigurations, f"{r.reuse_rate:.0%}")
        )
    print(ascii_table(["strategy", "wait s", "makespan", "reconf", "reuse"], rows))

    print("\n=== 3. Replications: hybrid-cost over 5 seeds ===\n")
    summary = replicate(base, seeds=list(range(5)))
    print("\n".join(summary.summary_lines()))


if __name__ == "__main__":
    main()
