"""Quickstart: build a polymorphic grid, submit tasks at every
abstraction level, and run them on the DReAMSim simulator.

Run with::

    python examples/quickstart.py
"""

from repro.core.abstraction import AbstractionLevel
from repro.core.execreq import Artifacts, Equals, ExecReq, MinValue
from repro.core.node import Node
from repro.core.task import simple_task
from repro.grid.network import Network
from repro.grid.rms import ResourceManagementSystem
from repro.hardware.bitstream import Bitstream, HDLDesign
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec
from repro.hardware.softcore import RHO_VEX_4ISSUE
from repro.hardware.taxonomy import PEClass
from repro.sim.simulator import DReAMSim


def build_grid() -> ResourceManagementSystem:
    """A two-node grid: one GPP-heavy node, one fabric-heavy node."""
    office = Node(node_id=0, name="Office")
    office.add_gpp(GPPSpec(cpu_model="Xeon-5160", mips=24_000, cores=2))
    office.add_gpp(GPPSpec(cpu_model="Opteron-2218", mips=20_000, cores=2))

    lab = Node(node_id=1, name="Lab")
    lab.add_rpe(device_by_model("XC5VLX155"), regions=2)
    lab.add_rpe(device_by_model("XC5VLX330"), regions=3)

    network = Network.fully_connected([0, 1], bandwidth_mbps=100.0, latency_s=0.01)
    rms = ResourceManagementSystem(network=network)
    rms.register_node(office)
    rms.register_node(lab)
    return rms


def make_tasks() -> list:
    """One task per Figure 2 abstraction level."""
    device = device_by_model("XC5VLX155")

    software = simple_task(
        0,
        ExecReq(
            node_type=PEClass.GPP,
            constraints=(MinValue("mips", 10_000),),
            artifacts=Artifacts(application_code="sort --big", input_data_bytes=1 << 22),
        ),
        t_estimated=3.0,
        workload_mi=60_000.0,
        function="sort",
    )

    predetermined = simple_task(
        1,
        ExecReq(
            node_type=PEClass.SOFTCORE,
            artifacts=Artifacts(
                application_code="filter --vliw-optimized",
                softcore=RHO_VEX_4ISSUE,
                input_data_bytes=1 << 20,
            ),
        ),
        t_estimated=2.0,
        workload_mi=2_000.0,
        function="filter",
    )

    user_defined = simple_task(
        2,
        ExecReq(
            node_type=PEClass.RPE,
            constraints=(
                Equals("device_family", "virtex-5"),
                MinValue("slices", 9_000),
            ),
            artifacts=Artifacts(
                application_code="fft --accelerated",
                hdl_design=HDLDesign(
                    name="fft_accel",
                    language="VHDL",
                    source_lines=400,
                    estimated_slices=9_000,
                    implements="fft",
                ),
                input_data_bytes=1 << 23,
            ),
        ),
        t_estimated=0.6,
        workload_mi=12_000.0,
        function="fft",
    )

    device_specific = simple_task(
        3,
        ExecReq(
            node_type=PEClass.RPE,
            constraints=(Equals("device_model", device.model),),
            artifacts=Artifacts(
                application_code="smith-waterman --bitstream",
                bitstream=Bitstream(
                    bitstream_id=1,
                    target_model=device.model,
                    size_bytes=device.bitstream_size_bytes(11_000),
                    required_slices=11_000,
                    implements="smith_waterman",
                    speedup_vs_gpp=30.0,
                ),
                input_data_bytes=1 << 23,
            ),
        ),
        t_estimated=0.4,
        workload_mi=12_000.0,
        function="smith_waterman",
    )

    return [software, predetermined, user_defined, device_specific]


def main() -> None:
    rms = build_grid()
    sim = DReAMSim(rms)
    tasks = make_tasks()
    sim.submit_workload([(0.5 * i, task) for i, task in enumerate(tasks)])

    report = sim.run()

    print("=== Quickstart: one task per Figure 2 abstraction level ===\n")
    for task in tasks:
        level = rms.virtualization.required_abstraction_level(task)
        metrics = next(
            m for key, m in sim.metrics.tasks.items() if key[1] == task.task_id
        )
        print(
            f"T{task.task_id} [{level.name:20s}] -> node {metrics.node_id} "
            f"({metrics.pe_kind}); wait {metrics.wait_time:.3f} s, "
            f"setup {metrics.transfer_time + metrics.synthesis_time + metrics.reconfig_time:.3f} s, "
            f"turnaround {metrics.turnaround:.3f} s"
        )
    print()
    print("\n".join(report.summary_lines()))


if __name__ == "__main__":
    main()
