"""Overload protection: a flash crowd with and without admission.

The RMS of the paper accepts every submission unconditionally; RC3E-
style virtualization only oversubscribes safely with explicit
admission at the resource manager.  This example drives the canonical
two-node grid through an 8x flash crowd (a non-homogeneous Poisson
surge, :class:`repro.sim.workload.FlashCrowdArrivals`) four times:

* **unprotected** -- the baseline: the pending queue grows without
  bound and every wait percentile inflates;
* **bounded** -- a bounded pending queue that sheds excess load at
  the front door;
* **backpressure** -- the same bound, but rejected submissions are
  parked and re-offered (defer) before being shed;
* **brownout** -- bounded queue plus the staged degradation
  controller: sustained pressure disables speculation, forces
  low-priority work onto GPPs, then sheds down to the recovery
  watermark -- and recovers with hysteresis once the surge passes.

All four runs share one seed, and admission decisions never draw
randomness, so the arrival stream is identical everywhere -- the runs
differ only where a policy acts.  Conservation
(``submitted == completed + failed + discarded + shed``) is checked
online by the trace invariant checker on every run.

Run with::

    python examples/overload_protection.py
"""

from repro.report import ascii_table
from repro.sim.admission import ADMISSION_PRESETS
from repro.sim.experiment import ExperimentSpec, NodeSpec, run_experiment
from repro.sim.telemetry import TelemetryRegistry
from repro.sim.tracing import InMemorySink, TraceInvariantChecker, Tracer

BASE = ExperimentSpec(
    tasks=400,
    nodes=(
        NodeSpec(gpps=1, gpp_mips=2_000, rpe_models=("XC5VLX330",), regions_per_rpe=3),
        NodeSpec(gpps=1, gpp_mips=1_500, rpe_models=("XC5VLX155",), regions_per_rpe=2),
    ),
    arrival_rate_per_s=4.0,
    flash_crowd=(5.0, 15.0, 8.0),  # 8x surge in [5 s, 20 s)
    area_range=(2_000, 12_000),
    gpp_fraction=0.3,
    low_priority_fraction=0.3,
    seed=17,
)


def run_protected(admission):
    """One surge run; returns (report, max pending depth observed)."""
    telemetry = TelemetryRegistry()
    tracer = Tracer(TraceInvariantChecker(), InMemorySink(capacity=1))
    result = run_experiment(
        BASE.with_(admission=admission), tracer=tracer, telemetry=telemetry
    )
    tracer.checker.assert_no_lost_tasks()
    tracer.checker.assert_conservation()
    depth = max(
        (v for series in telemetry.series("sim_queue_depth")
         for _, v in series.points),
        default=0.0,
    )
    return result.report, int(depth)


def main() -> None:
    rows = []
    for name in ("unprotected", "bounded", "backpressure", "brownout"):
        admission = None if name == "unprotected" else ADMISSION_PRESETS[name]
        report, depth = run_protected(admission)
        rows.append(
            (
                name,
                str(depth),
                f"{report.p95_wait_s:.2f}",
                str(report.completed),
                str(report.shed),
                str(report.admission_deferrals),
                str(report.brownout_transitions),
                f"{report.brownout_time_s:.1f}",
                f"{report.overload_goodput_tasks_per_s:.2f}",
            )
        )
    print(
        ascii_table(
            [
                "policy",
                "max depth",
                "p95 wait s",
                "done",
                "shed",
                "deferred",
                "transitions",
                "degraded s",
                "goodput/s",
            ],
            rows,
            title="8x flash crowd, 400 tasks, one seed (conservation checked)",
        )
    )


if __name__ == "__main__":
    main()
