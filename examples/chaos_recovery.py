"""Fault injection: FCFS vs hybrid-cost under a chaos schedule.

The paper calls its framework "adaptive in adding/removing resources"
(Section IV-A); this example stresses that claim with the full fault
model from :mod:`repro.sim.faults` -- node crashes with rejoin,
configuration-port failures, SEUs during fabric execution, and link
degradation -- and compares how the two headline scheduling strategies
recover.  The recovery metrics reported:

* **availability** -- fraction of node-seconds the grid was up;
* **MTTR** -- mean time from a task's first fault to its completion;
* **wasted work** -- dispatched seconds (and slice-seconds of fabric
  occupancy) destroyed by faults;
* **goodput** -- completed tasks per second of simulated horizon.

Both runs share one seed: the fault streams are split off the workload
stream (see ``repro.sim.workload.independent_rng``), so both
strategies face the *same* arrivals and the *same* fault schedule.

Run with::

    python examples/chaos_recovery.py
"""

from repro.report import ascii_table
from repro.sim.experiment import ExperimentSpec, NodeSpec, run_experiment
from repro.sim.faults import FAULT_PRESETS

BASE = ExperimentSpec(
    tasks=250,
    nodes=(
        NodeSpec(gpps=1, gpp_mips=2_000, rpe_models=("XC5VLX330",), regions_per_rpe=3),
        NodeSpec(gpps=1, gpp_mips=1_500, rpe_models=("XC5VLX155",), regions_per_rpe=2),
    ),
    arrival_rate_per_s=3.0,
    area_range=(2_000, 12_000),
    gpp_fraction=0.3,
    seed=11,
    faults=FAULT_PRESETS["chaos"],
)


def main() -> None:
    rows = []
    for strategy in ("fcfs", "hybrid-cost"):
        report = run_experiment(BASE.with_(strategy=strategy)).report
        rows.append(
            (
                strategy,
                f"{report.completed}/{report.failed}/{report.discarded}",
                str(report.fault_events),
                f"{report.retries}/{report.gpp_fallbacks}",
                f"{report.availability:.1%}",
                f"{report.mttr_s:.3f}",
                f"{report.wasted_work_s:.2f}",
                f"{report.goodput_tasks_per_s:.3f}",
                f"{report.mean_turnaround_s:.3f}",
            )
        )
    print(
        ascii_table(
            ["strategy", "done/fail/disc", "faults", "retry/fallbk",
             "avail", "MTTR s", "wasted s", "goodput/s", "turnd s"],
            rows,
            title=(
                f"Chaos recovery, {BASE.tasks} tasks, seed {BASE.seed} "
                "(same arrivals, same fault schedule)"
            ),
        )
    )
    print(
        "\nBoth strategies see identical fault schedules; the spread in\n"
        "MTTR and wasted work is pure scheduling policy."
    )


if __name__ == "__main__":
    main()
