"""The paper's Section V case study, end to end.

Reproduces the full methodology:

1. run ClustalW (our from-scratch implementation) on a synthetic
   BioBench-style protein family under the gprof-style profiler
   -> the Figure 10 kernel ranking;
2. feed the dominant kernels to the calibrated Quipu model
   -> the 30,790 / 18,707 Virtex-5 slice estimates;
3. build the four Figure 6 tasks and the three Figure 5 nodes;
4. enumerate Table II;
5. execute everything on the DReAMSim simulator.

Run with::

    python examples/clustalw_case_study.py
"""

import importlib

from repro.casestudy.pipeline import run_case_study
from repro.profiling.callgraph import CallGraphProfiler
from repro.bioinfo.sequences import synthetic_family


def profile_figure10(family_size: int = 24, length: int = 110) -> None:
    """A bigger profiling run than the pipeline default, to land close
    to the paper's 89.76 % / 7.79 % split."""
    pa = importlib.import_module("repro.bioinfo.pairalign")
    ma = importlib.import_module("repro.bioinfo.malign")
    gt = importlib.import_module("repro.bioinfo.guidetree")
    cw = importlib.import_module("repro.bioinfo.clustalw")

    profiler = CallGraphProfiler()
    profiler.instrument(
        pa, "pairalign", "align_pair", "_wavefront", "_traceback_ops",
        "tracepath", "forward_pass",
    )
    profiler.instrument(ma, "malign", "pdiff", "prfscore", "_apply_ops")
    profiler.instrument(gt, "upgma")
    profiler.instrument(cw, "pairalign", "malign", "upgma")
    try:
        cw.clustalw(synthetic_family(family_size, length, seed=0))
    finally:
        profiler.restore()

    print("--- Step 1: Figure 10 (top-10 kernels, gprof-style) ---")
    print(profiler.gprof_report(top=10))
    print(
        f"\n  pairalign cumulative share: {profiler.cumulative_pct('pairalign'):6.2f} %"
        "   (paper: 89.76 %)"
    )
    print(
        f"  malign    cumulative share: {profiler.cumulative_pct('malign'):6.2f} %"
        "   (paper:  7.79 %)"
    )


def main() -> None:
    print("=== ClustalW case study (Section V) ===\n")
    profile_figure10()

    outcome = run_case_study(family_size=10, sequence_length=80, seed=0)

    print("\n--- Step 2: Quipu slice estimates (Virtex-5) ---")
    print(f"  pairalign: {outcome.pairalign_slices} slices   (paper: 30,790)")
    print(f"  malign:    {outcome.malign_slices} slices   (paper: 18,707)")

    print("\n--- Step 3/4: Table II (regenerated from the models) ---")
    for row in outcome.table:
        print("  " + row.format())
    print(f"  exact match with the published table: {outcome.matches_paper_table2}")

    print("\n--- Step 5: execution on the Figure 5 grid (DReAMSim) ---")
    print("\n".join("  " + line for line in outcome.simulation.summary_lines()))


if __name__ == "__main__":
    main()
