"""Control-plane chaos: the same RMS-crash storm, unprotected vs
detected vs replicated.

The paper funnels every placement through one central RMS and keeps it
conveniently immortal.  This example kills it -- repeatedly, during a
flash crowd -- under three failover postures:

* **unprotected** -- no heartbeat layer, no standby: each RMS crash is
  a cold restart, the control plane is dark for the full downtime
  draw, and every in-flight placement is orphaned back into the queue
  (recovered, never lost -- conservation holds even here);
* **detect** -- the phi-accrual-style heartbeat detector replaces
  omniscient crash knowledge: failures now have *detection latency*,
  and lost heartbeats can produce false suspicions, but an RMS crash
  is still a cold restart;
* **replicated** -- one warm standby with leased placements: once the
  detector confirms the primary dead, the standby promotes after the
  takeover delay, adopts every placement whose lease is still live,
  and orphans (re-queues) only the lapsed ones -- shrinking both the
  dark window and the orphan count.

All three runs share one seed; the only randomness the failover layer
draws (heartbeat-loss decisions) lives on its own fault stream, so the
arrival and fault schedules are identical everywhere.  Conservation
(``submitted == completed + failed + discarded + shed``, zero tasks
stranded) is checked online by the trace invariant checker.

Run with::

    python examples/control_plane_chaos.py
"""

from repro.report import ascii_table
from repro.sim.experiment import ExperimentSpec, NodeSpec, run_experiment
from repro.sim.failover import FAILOVER_PRESETS
from repro.sim.faults import FaultSpec
from repro.sim.tracing import InMemorySink, TraceInvariantChecker, Tracer

BASE = ExperimentSpec(
    tasks=400,
    nodes=(
        NodeSpec(gpps=1, gpp_mips=2_000, rpe_models=("XC5VLX330",), regions_per_rpe=3),
        NodeSpec(gpps=1, gpp_mips=1_500, rpe_models=("XC5VLX155",), regions_per_rpe=2),
    ),
    arrival_rate_per_s=4.0,
    flash_crowd=(5.0, 15.0, 4.0),  # 4x surge in [5 s, 20 s)
    area_range=(2_000, 12_000),
    gpp_fraction=0.3,
    # Long-running tasks: in-flight work outlives the control plane's
    # dark windows, so cold restarts actually orphan placements.
    required_time_range_s=(4.0, 15.0),
    seed=17,
    # The storm: RMS crashes and a gray failure land mid-surge, with a
    # lossy heartbeat channel stressing the detector.
    faults=FaultSpec(
        rms_crash_rate_per_s=0.04,
        rms_downtime_range_s=(4.0, 9.0),
        rms_gray_rate_per_s=0.02,
        rms_gray_duration_range_s=(2.0, 5.0),
        heartbeat_loss_prob=0.05,
        horizon_s=60.0,
    ),
)


def run_posture(failover):
    """One storm run; returns the verified report."""
    tracer = Tracer(TraceInvariantChecker(), InMemorySink(capacity=1))
    result = run_experiment(BASE.with_(failover=failover), tracer=tracer)
    tracer.checker.assert_no_lost_tasks()
    tracer.checker.assert_conservation()
    assert result.report.pending == 0, "a task was stranded"
    return result.report


def main() -> None:
    rows = []
    for name in ("unprotected", "detect", "replicated"):
        failover = None if name == "unprotected" else FAILOVER_PRESETS[name]
        report = run_posture(failover)
        rows.append(
            (
                name,
                str(report.rms_crashes),
                str(report.failovers),
                f"{report.control_plane_downtime_s:.1f}",
                (
                    f"{report.detection_latency_p50_s:.2f}"
                    if report.detections
                    else "-"
                ),
                str(report.orphans_recovered),
                str(report.completed),
                f"{report.p95_wait_s:.2f}",
            )
        )
    print(
        ascii_table(
            [
                "posture",
                "crashes",
                "failovers",
                "dark s",
                "det p50 s",
                "orphans",
                "done",
                "p95 wait s",
            ],
            rows,
            title="RMS-crash storm in a 4x flash crowd, 400 tasks, one seed "
                  "(zero tasks lost in every posture)",
        )
    )


if __name__ == "__main__":
    main()
