"""Self-contained HTML dashboard for telemetry + trace files.

Renders the ``repro report`` page: inline-SVG step charts for the
sim-time series a :class:`~repro.sim.telemetry.TelemetryRegistry`
recorded, a Gantt-style task-span timeline derived from the trace
event stream, and the run's ASCII summary tables -- one HTML file, no
JavaScript, no external assets, so the artifact can be committed, mailed
or uploaded from CI and opened anywhere.

Chart conventions follow one fixed design method: a categorical palette
assigned in fixed slot order (never cycled -- beyond eight series the
remainder folds into a count note), step-after lines for event-sampled
series, one y-axis per chart, text always in ink tokens rather than
series colors, and a legend whenever a chart carries two or more
series.  Native SVG ``<title>`` elements provide hover tooltips without
scripting.
"""

from __future__ import annotations

import html
from dataclasses import dataclass

from repro.sim.telemetry import (
    Histogram,
    Instant,
    Span,
    TelemetryRegistry,
    build_node_spans,
    build_task_spans,
)
from repro.sim.tracing import TraceEvent

# -- design tokens (light mode of the validated reference palette) -----
SERIES_COLORS = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)
SURFACE = "#fcfcfb"
PAGE = "#f9f9f7"
INK = "#0b0b0b"
INK_SECONDARY = "#52514e"
INK_MUTED = "#898781"
GRIDLINE = "#e1e0d9"
AXIS = "#c3c2b7"
CRITICAL = "#d03b3b"
QUEUED_FILL = "#e1e0d9"  # recessive: waiting, not doing

#: Span-phase fills on the timeline (setup = orange, execute = blue);
#: ``breach`` shades SLO breach windows on the objective timeline.
PHASE_COLORS = {"queued": QUEUED_FILL, "setup": "#eb6834", "execute": "#2a78d6",
                "occupied": "#2a78d6", "breach": "#e34948"}

#: Instants drawn as markers on the timeline; faults in status red.
INSTANT_COLORS = {
    "fault": CRITICAL,
    "task-failed": CRITICAL,
    "timeout": CRITICAL,
    "checkpoint": "#1baf7a",
    "migrate": "#4a3aa7",
    "speculate": "#e87ba4",
    "retry": "#eda100",
    "fallback": "#eda100",
    # Control-plane fault tolerance (PR 8): detector verdicts in
    # escalating warmth, failover machinery in purple, recovery green.
    "heartbeat-suspect": "#eda100",
    "heartbeat-confirm": CRITICAL,
    "heartbeat-rejoin": "#1baf7a",
    "rms-crash": CRITICAL,
    "rms-gray": "#eda100",
    "rms-restore": "#1baf7a",
    "failover-begin": "#4a3aa7",
    "failover-complete": "#4a3aa7",
    "lease-expire": "#eda100",
    "orphan-recovered": "#1baf7a",
    # SLO monitoring (PR 10): burn-rate alert lifecycle.
    "slo-breach": CRITICAL,
    "slo-alert-fire": "#eb6834",
    "slo-alert-resolve": "#1baf7a",
}

#: Causal-ledger phase fills (sim/analysis.py PHASES): waiting states
#: recessive or warm, productive compute in blue, failure paths red.
LEDGER_PHASE_COLORS = {
    "admission": "#eda100",   # yellow: held at the door
    "queue": QUEUED_FILL,     # recessive: waiting, not doing
    "placement": "#4a3aa7",   # violet: matchmaking + staging
    "reconfig": "#eb6834",    # orange: fabric setup
    "compute": "#2a78d6",     # blue: the useful part
    "recovery": "#e34948",    # red: fault teardown + re-queue
    "checkpoint": "#1baf7a",  # aqua: checkpoint-resume migration
    "orphan": "#008300",      # green: control-plane dark limbo
    "brownout": "#e87ba4",    # magenta: degraded-mode queueing
}

MAX_SERIES_PER_CHART = 8
MAX_TIMELINE_TRACKS = 40


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _fmt(value: float) -> str:
    """Compact tick label."""
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


@dataclass
class _Scale:
    lo: float
    hi: float
    px0: float
    px1: float

    def __call__(self, v: float) -> float:
        if self.hi == self.lo:
            return self.px0
        frac = (v - self.lo) / (self.hi - self.lo)
        return self.px0 + frac * (self.px1 - self.px0)


def _ticks(lo: float, hi: float, count: int = 5) -> list[float]:
    if hi <= lo:
        return [lo]
    import math

    span = hi - lo
    raw = span / max(1, count - 1)
    magnitude = 10 ** math.floor(math.log10(raw))
    for step in (1, 2, 2.5, 5, 10):
        if raw <= step * magnitude:
            step *= magnitude
            break
    else:  # pragma: no cover - the loop always breaks at step=10
        step = 10 * magnitude
    first = math.ceil(lo / step) * step
    ticks, value = [], first
    while value <= hi + 1e-9:
        ticks.append(round(value, 10))
        value += step
    return ticks or [lo]


def svg_step_chart(
    series: list[tuple[str, list[tuple[float, float]]]],
    *,
    title: str,
    unit: str = "",
    width: int = 640,
    height: int = 220,
    t_max: float | None = None,
    bands: list[tuple[float, float]] | None = None,
    band_label: str = "",
) -> str:
    """One step-after line chart (inline SVG) for sim-time series.

    ``series`` is ``[(label, [(t, v), ...]), ...]`` in the order the
    palette should be assigned.  Beyond :data:`MAX_SERIES_PER_CHART`
    series the remainder is dropped with a visible note (never drawn in
    generated colors).

    ``bands`` shades ``[t0, t1)`` intervals behind the series (e.g.
    brownout residency windows); ``band_label`` is their hover title.
    """
    dropped = max(0, len(series) - MAX_SERIES_PER_CHART)
    series = [s for s in series[:MAX_SERIES_PER_CHART] if s[1]]
    pad_l, pad_r, pad_t, pad_b = 48, 12, 30, 26
    all_t = [t for _, pts in series for t, _ in pts]
    all_v = [v for _, pts in series for _, v in pts]
    if not all_t:
        return (
            f'<div class="chart-empty">{_esc(title)}: no samples recorded</div>'
        )
    hi_t = max(all_t + ([t_max] if t_max is not None else []))
    hi_v = max(all_v + [0.0])
    lo_v = min(all_v + [0.0])
    if hi_v == lo_v:
        hi_v = lo_v + 1.0
    x = _Scale(0.0, hi_t or 1.0, pad_l, width - pad_r)
    y = _Scale(lo_v, hi_v, height - pad_b, pad_t)
    parts = [
        f'<svg class="chart" viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="{_esc(title)}">',
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="{SURFACE}"/>',
        f'<text x="{pad_l}" y="18" fill="{INK}" font-size="13" '
        f'font-weight="600">{_esc(title)}</text>',
    ]
    for tick in _ticks(lo_v, hi_v, 4):
        py = y(tick)
        parts.append(
            f'<line x1="{pad_l}" y1="{py:.1f}" x2="{width - pad_r}" '
            f'y2="{py:.1f}" stroke="{GRIDLINE}" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{pad_l - 6}" y="{py + 3:.1f}" fill="{INK_MUTED}" '
            f'font-size="10" text-anchor="end">{_fmt(tick)}</text>'
        )
    for tick in _ticks(0.0, hi_t or 1.0, 6):
        px = x(tick)
        parts.append(
            f'<text x="{px:.1f}" y="{height - 8}" fill="{INK_MUTED}" '
            f'font-size="10" text-anchor="middle">{_fmt(tick)}s</text>'
        )
    parts.append(
        f'<line x1="{pad_l}" y1="{height - pad_b}" x2="{width - pad_r}" '
        f'y2="{height - pad_b}" stroke="{AXIS}" stroke-width="1"/>'
    )
    for t0, t1 in bands or ():
        x0, x1 = x(max(0.0, t0)), x(min(hi_t, t1))
        if x1 <= x0:
            continue
        parts.append(
            f'<rect x="{x0:.1f}" y="{pad_t}" width="{x1 - x0:.1f}" '
            f'height="{height - pad_b - pad_t}" fill="{CRITICAL}" '
            f'fill-opacity="0.08">'
            + (f"<title>{_esc(band_label)}</title>" if band_label else "")
            + "</rect>"
        )
    if unit:
        parts.append(
            f'<text x="{pad_l}" y="{pad_t - 2}" fill="{INK_SECONDARY}" '
            f'font-size="10">{_esc(unit)}</text>'
        )
    for index, (label, points) in enumerate(series):
        color = SERIES_COLORS[index]
        d = [f"M {x(points[0][0]):.1f} {y(points[0][1]):.1f}"]
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            d.append(f"H {x(t1):.1f}")
            if v1 != v0:
                d.append(f"V {y(v1):.1f}")
        d.append(f"H {x(hi_t):.1f}")  # hold the last value to the horizon
        parts.append(
            f'<path d="{" ".join(d)}" fill="none" stroke="{color}" '
            f'stroke-width="2" stroke-linejoin="round">'
            f"<title>{_esc(label)}</title></path>"
        )
    parts.append("</svg>")
    legend = ""
    if len(series) > 1:
        items = "".join(
            f'<span class="legend-item"><span class="swatch" '
            f'style="background:{SERIES_COLORS[i]}"></span>{_esc(label)}</span>'
            for i, (label, _) in enumerate(series)
        )
        if dropped:
            items += f'<span class="legend-item muted">+{dropped} more (not drawn)</span>'
        legend = f'<div class="legend">{items}</div>'
    elif dropped:
        legend = (
            f'<div class="legend"><span class="legend-item muted">'
            f"+{dropped} more series (not drawn)</span></div>"
        )
    return f'<figure class="chart-box">{"".join(parts)}{legend}</figure>'


def svg_span_timeline(
    spans: list[Span],
    instants: list[Instant],
    *,
    title: str,
    width: int = 900,
    row_height: int = 16,
    legend_items: list[tuple[str, str]] | None = None,
) -> str:
    """Gantt-style track timeline for derived spans (inline SVG).

    ``legend_items`` overrides the default task-lifecycle legend with
    ``(label, color)`` pairs (used by the SLO objective timeline).
    """
    tracks: list[str] = []
    for span in spans:
        if span.track not in tracks:
            tracks.append(span.track)
    dropped = max(0, len(tracks) - MAX_TIMELINE_TRACKS)
    tracks = tracks[:MAX_TIMELINE_TRACKS]
    shown = set(tracks)
    if not tracks:
        return f'<div class="chart-empty">{_esc(title)}: no spans derived</div>'
    pad_l, pad_r, pad_t, pad_b = 170, 12, 30, 24
    height = pad_t + pad_b + row_height * len(tracks)
    hi_t = max(
        [s.end for s in spans if s.track in shown]
        + [i.time for i in instants if i.track in shown] + [1e-9]
    )
    x = _Scale(0.0, hi_t, pad_l, width - pad_r)
    row = {track: pad_t + i * row_height for i, track in enumerate(tracks)}
    parts = [
        f'<svg class="chart" viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="{_esc(title)}">',
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="{SURFACE}"/>',
        f'<text x="{pad_l}" y="18" fill="{INK}" font-size="13" '
        f'font-weight="600">{_esc(title)}</text>',
    ]
    for tick in _ticks(0.0, hi_t, 8):
        px = x(tick)
        parts.append(
            f'<line x1="{px:.1f}" y1="{pad_t - 4}" x2="{px:.1f}" '
            f'y2="{height - pad_b}" stroke="{GRIDLINE}" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{px:.1f}" y="{height - 8}" fill="{INK_MUTED}" '
            f'font-size="10" text-anchor="middle">{_fmt(tick)}s</text>'
        )
    for track, top in row.items():
        parts.append(
            f'<text x="{pad_l - 8}" y="{top + row_height - 5}" fill="{INK_SECONDARY}" '
            f'font-size="10" text-anchor="end">{_esc(track)}</text>'
        )
    for span in spans:
        top = row.get(span.track)
        if top is None:
            continue
        color = PHASE_COLORS.get(span.phase, INK_MUTED)
        x0, x1 = x(span.start), x(span.end)
        w = max(1.0, x1 - x0)
        tip = (
            f"{span.track} {span.phase}"
            + (f" [{span.name}]" if span.name else "")
            + f": {span.start:.3f}s - {span.end:.3f}s ({span.duration:.3f}s)"
        )
        parts.append(
            f'<rect x="{x0:.1f}" y="{top + 2}" width="{w:.1f}" '
            f'height="{row_height - 4}" rx="2" fill="{color}">'
            f"<title>{_esc(tip)}</title></rect>"
        )
    for instant in instants:
        top = row.get(instant.track)
        if top is None:
            continue
        color = INSTANT_COLORS.get(instant.kind, INK_MUTED)
        px = x(instant.time)
        mid = top + row_height / 2
        parts.append(
            f'<path d="M {px:.1f} {mid - 5:.1f} L {px + 4:.1f} {mid:.1f} '
            f'L {px:.1f} {mid + 5:.1f} L {px - 4:.1f} {mid:.1f} Z" '
            f'fill="{color}" stroke="{SURFACE}" stroke-width="1">'
            f"<title>{_esc(f'{instant.kind} @ {instant.time:.3f}s')}</title></path>"
        )
    parts.append("</svg>")
    if legend_items is None:
        legend_items = [
            ("queued", QUEUED_FILL),
            ("setup (transfer+synthesis+reconfig)", PHASE_COLORS["setup"]),
            ("execute", PHASE_COLORS["execute"]),
            ("fault/timeout", CRITICAL),
            ("checkpoint", INSTANT_COLORS["checkpoint"]),
        ]
    legend = "".join(
        f'<span class="legend-item"><span class="swatch" '
        f'style="background:{color}"></span>{_esc(label)}</span>'
        for label, color in legend_items
    )
    if dropped:
        legend += (
            f'<span class="legend-item muted">+{dropped} more tracks '
            f"(truncated)</span>"
        )
    return (
        f'<figure class="chart-box">{"".join(parts)}'
        f'<div class="legend">{legend}</div></figure>'
    )


def svg_phase_bars(
    rows: list[tuple[str, dict[str, float]]],
    *,
    title: str,
    width: int = 640,
    row_height: int = 26,
) -> str:
    """Stacked horizontal phase-share bars (one per task bucket).

    Each bar normalizes its bucket's phase seconds to full width, so
    the segments read as shares; absolute seconds live in the hover
    tooltips.  Colors come from :data:`LEDGER_PHASE_COLORS` in ledger
    phase order.
    """
    rows = [(label, phases) for label, phases in rows
            if sum(phases.values()) > 0]
    if not rows:
        return f'<div class="chart-empty">{_esc(title)}: no phase time recorded</div>'
    pad_l, pad_r, pad_t, pad_b = 150, 12, 30, 8
    height = pad_t + pad_b + row_height * len(rows)
    bar_w = width - pad_l - pad_r
    parts = [
        f'<svg class="chart" viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="{_esc(title)}">',
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="{SURFACE}"/>',
        f'<text x="{pad_l}" y="18" fill="{INK}" font-size="13" '
        f'font-weight="600">{_esc(title)}</text>',
    ]
    used: list[str] = []
    for i, (label, phases) in enumerate(rows):
        top = pad_t + i * row_height
        total = sum(phases.values())
        parts.append(
            f'<text x="{pad_l - 8}" y="{top + row_height / 2 + 3:.1f}" '
            f'fill="{INK_SECONDARY}" font-size="10" '
            f'text-anchor="end">{_esc(label)}</text>'
        )
        cursor = float(pad_l)
        for phase, color in LEDGER_PHASE_COLORS.items():
            seconds = phases.get(phase, 0.0)
            if seconds <= 0:
                continue
            if phase not in used:
                used.append(phase)
            w = bar_w * seconds / total
            tip = f"{label} {phase}: {seconds:.4f} s ({seconds / total:.1%})"
            parts.append(
                f'<rect x="{cursor:.1f}" y="{top + 4}" width="{max(w, 0.5):.1f}" '
                f'height="{row_height - 8}" fill="{color}">'
                f"<title>{_esc(tip)}</title></rect>"
            )
            cursor += w
    parts.append("</svg>")
    legend = "".join(
        f'<span class="legend-item"><span class="swatch" '
        f'style="background:{LEDGER_PHASE_COLORS[p]}"></span>{_esc(p)}</span>'
        for p in used
    )
    return (
        f'<figure class="chart-box">{"".join(parts)}'
        f'<div class="legend">{legend}</div></figure>'
    )


def _phase_breakdown_section(events: list[TraceEvent]) -> list[str]:
    """Stacked phase-share bars from the causal ledger: the whole run
    plus the p50/p95/p99 turnaround buckets, so the dashboard answers
    "where did the tail's time go" next to the timeline it came from."""
    from repro.sim.analysis import analyze_events

    analysis = analyze_events(events)
    rows = [(f"all tasks ({len(analysis.ledgers)})", analysis.phase_totals())]
    for bucket in ("p50", "p95", "p99"):
        pool = analysis.exemplar_pool(bucket)
        if not pool:
            continue
        rows.append((
            f"{bucket} bucket ({len(pool)})",
            analysis.phase_totals([l.key for l in pool]),
        ))
    sections = [
        "<h2>Phase breakdown</h2>",
        svg_phase_bars(rows, title="Turnaround attribution by phase"),
    ]
    dominant = analysis.dominant_phase("p99")
    if dominant is not None:
        sections.append(
            f'<p class="note">Dominant p99 phase: '
            f"<strong>{_esc(dominant)}</strong>.</p>"
        )
    return sections


def _slo_section(
    registry: TelemetryRegistry, events: list[TraceEvent] | None
) -> list[str]:
    """SLO panel: per-objective attainment table (from the monitor's
    end-state gauges) plus a breach/alert timeline reconstructed from
    the ``slo-*`` trace events.  Empty when the monitor was unarmed:
    no gauges published, no events emitted, no panel rendered."""

    def end_state(name: str) -> dict[str, float]:
        out: dict[str, float] = {}
        for s in registry.series(name):
            obj = s.labels.get("objective")
            if obj and s.points:
                out[obj] = s.points[-1][1]
        return out

    attainment = end_state("slo_attainment")
    budget = end_state("slo_error_budget_remaining")
    breach_s = end_state("slo_breach_seconds")

    spans: list[Span] = []
    instants: list[Instant] = []
    opened: dict[str, float] = {}
    fired = resolved = 0
    last_t = 0.0
    for ev in events or ():
        last_t = max(last_t, ev.time)
        if ev.kind == "slo-breach":
            obj = str(ev.payload.get("objective", "?"))
            if ev.payload.get("action") == "begin":
                opened[obj] = ev.time
            else:
                spans.append(Span(track=obj, phase="breach",
                                  start=opened.pop(obj, ev.time), end=ev.time,
                                  name="breach", args=dict(ev.payload)))
        elif ev.kind in ("slo-alert-fire", "slo-alert-resolve"):
            obj = str(ev.payload.get("objective", "?"))
            instants.append(Instant(track=obj, kind=ev.kind, time=ev.time,
                                    args=dict(ev.payload)))
            fired += ev.kind == "slo-alert-fire"
            resolved += ev.kind == "slo-alert-resolve"
    for obj, start in sorted(opened.items()):  # trace cut before the close
        spans.append(Span(track=obj, phase="breach", start=start,
                          end=max(last_t, start), name="breach (open)"))
    if not attainment and not spans and not instants:
        return []

    sections = ["<h2>SLO objectives</h2>"]
    if attainment:
        rows = []
        for obj in sorted(attainment):
            att = attainment[obj]
            cls = ' class="bad"' if att < 1.0 else ""
            rows.append(
                f"<tr><td>{_esc(obj)}</td>"
                f"<td{cls}>{att:.2%}</td>"
                f"<td>{budget.get(obj, 1.0):.2%}</td>"
                f"<td>{breach_s.get(obj, 0.0):.3f}</td></tr>"
            )
        sections.append(
            '<table class="stats"><thead><tr><th>objective</th>'
            "<th>attainment</th><th>error budget left</th>"
            "<th>breach (s)</th></tr></thead><tbody>"
            + "".join(rows) + "</tbody></table>"
        )
    if spans or instants:
        # svg_span_timeline keys its tracks off spans, so an objective
        # whose alerts fired without a closed breach window still needs
        # a (zero-width) span to claim a row.
        tracked = {s.track for s in spans}
        for inst in instants:
            if inst.track not in tracked:
                tracked.add(inst.track)
                spans.append(Span(track=inst.track, phase="breach",
                                  start=inst.time, end=inst.time))
        sections.append(svg_span_timeline(
            spans, instants, title="SLO breach / alert timeline",
            legend_items=[
                ("breach window", PHASE_COLORS["breach"]),
                ("alert fire", INSTANT_COLORS["slo-alert-fire"]),
                ("alert resolve", INSTANT_COLORS["slo-alert-resolve"]),
            ],
        ))
        sections.append(
            f'<p class="note">Alerts fired: <strong>{fired}</strong>, '
            f"resolved: <strong>{resolved}</strong>.</p>"
        )
    return sections


def _histogram_table(histograms: list[Histogram]) -> str:
    if not histograms:
        return ""
    rows = []
    for h in histograms:
        label = h.name + (h.label_suffix() or "")
        mean = h.sum / h.count if h.count else 0.0
        rows.append(
            f"<tr><td>{_esc(label)}</td><td>{h.count}</td>"
            f"<td>{h.sum:.4f}</td><td>{mean:.4f}</td></tr>"
        )
    return (
        '<h2>Latency distributions</h2><table class="stats">'
        "<thead><tr><th>histogram</th><th>count</th><th>sum (s)</th>"
        "<th>mean (s)</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )


def _brownout_bands(
    registry: TelemetryRegistry, t_max: float | None
) -> list[tuple[float, float]] | None:
    """Brownout residency windows (stage > 0) from the stage gauge's
    step series; ``None`` when the run never browned out (charts then
    draw no bands at all)."""
    series = registry.series("sim_brownout_stage")
    if not series or not series[0].points:
        return None
    points = series[0].points
    bands: list[tuple[float, float]] = []
    opened: float | None = None
    for t, v in points:
        if v > 0 and opened is None:
            opened = t
        elif v == 0 and opened is not None:
            bands.append((opened, t))
            opened = None
    if opened is not None:
        end = t_max if t_max is not None else points[-1][0]
        bands.append((opened, max(end, opened)))
    return bands or None


def _series_charts(registry: TelemetryRegistry) -> list[str]:
    """The dashboard's time-series section, grouped by instrument."""
    horizon = registry.meta.get("horizon_s")
    t_max = float(horizon) if isinstance(horizon, (int, float)) else None

    def chart(name: str, title: str, unit: str, label_of=None, bands=None):
        # Instruments that exist but never sampled draw no chart: a
        # dump full of point-less series must fall through to the
        # dashboard's empty-state banner, not a wall of placeholders.
        group = [s for s in registry.series(name) if s.points]
        if not group:
            return None
        if label_of is None:
            def label_of(s):
                labels = ",".join(f"{k}={v}" for k, v in sorted(s.labels.items()))
                return labels or name
        return svg_step_chart(
            [(label_of(s), s.points) for s in group],
            title=title, unit=unit, t_max=t_max,
            bands=bands, band_label="brownout active" if bands else "",
        )

    queue_series = [
        (title, registry.series(name)[0].points)
        for name, title in (
            ("sim_queue_depth", "queued"),
            ("sim_active_tasks", "active"),
            ("sim_tasks_in_backoff", "in backoff"),
        )
        if registry.series(name) and registry.series(name)[0].points
    ]
    brownout_bands = _brownout_bands(registry, t_max)
    charts = [
        chart("node_utilization", "Node utilization", "busy fraction",
              lambda s: f"node {s.labels.get('node', '?')}"),
        svg_step_chart(
            queue_series, title="Scheduler queue", unit="tasks", t_max=t_max,
            bands=brownout_bands, band_label="brownout active",
        ) if queue_series else None,
        chart("sim_sheds_total", "Load shedding", "cumulative sheds",
              lambda s: s.labels.get("reason", "shed"),
              bands=brownout_bands),
        chart("sim_deferrals_total", "Backpressure deferrals",
              "cumulative deferrals"),
        chart("sim_brownout_stage", "Brownout stage", "0=healthy .. 3=shedding",
              bands=brownout_bands),
        chart("node_breaker_state", "Circuit breaker state",
              "0=closed 1=half-open 2=open",
              lambda s: f"node {s.labels.get('node', '?')}"),
        chart("rpe_configured_slices", "Configured fabric area", "slices",
              lambda s: f"node {s.labels.get('node', '?')} "
                        f"rpe {s.labels.get('rpe', '?')}"),
        chart("sim_retries_total", "Retry activity", "cumulative retries"),
        chart("sim_checkpoint_overhead_seconds_total", "Checkpoint overhead",
              "cumulative seconds"),
    ]
    return [c for c in charts if c is not None]


def render_dashboard(
    registry: TelemetryRegistry,
    events: list[TraceEvent] | None = None,
    *,
    title: str = "repro simulation report",
) -> str:
    """The complete self-contained dashboard HTML document.

    A registry with no samples (and no trace events) renders a
    friendly empty-state page, not an exception: runs that finish
    before the first sample, hand-trimmed dumps, and dumps with
    explicit ``null`` sections all land here.
    """
    meta = registry.meta or {}
    meta_bits = []
    for key in ("strategy", "tasks", "seed", "nodes", "arrival_rate_per_s",
                "horizon_s"):
        if key in meta:
            meta_bits.append(f"<dt>{_esc(key)}</dt><dd>{_esc(meta[key])}</dd>")
    resilience = meta.get("resilience") or {}
    if resilience:
        armed = ", ".join(sorted(resilience))
        meta_bits.append(f"<dt>resilience</dt><dd>{_esc(armed)}</dd>")
    admission = meta.get("admission") or {}
    if admission:
        armed = ", ".join(sorted(admission))
        meta_bits.append(f"<dt>admission</dt><dd>{_esc(armed)}</dd>")
    slo_meta = meta.get("slo") or {}
    if slo_meta:
        names = ", ".join(
            o.get("name", "?") if isinstance(o, dict) else str(o)
            for o in slo_meta.get("objectives") or ()
        )
        meta_bits.append(f"<dt>slo</dt><dd>{_esc(names or 'armed')}</dd>")
    header = (
        f'<dl class="meta">{"".join(meta_bits)}</dl>' if meta_bits else ""
    )

    sections = [f"<h1>{_esc(title)}</h1>", header]
    charts = _series_charts(registry)
    histograms = [i for i in registry.instruments if isinstance(i, Histogram)]
    has_samples = any(
        getattr(i, "points", None) for i in registry.instruments
    ) or any(h.count for h in histograms)
    if not charts and not has_samples and not events:
        sections.append(
            '<div class="empty-state"><p><strong>Nothing to plot.</strong> '
            "This telemetry file contains no samples and no trace was "
            "supplied.</p><p>Record one with <code>repro simulate "
            "--telemetry out.json --trace out.jsonl</code>, then re-run "
            "<code>repro report</code>.</p></div>"
        )
    if charts:
        sections.append("<h2>Time series</h2>")
        sections.extend(charts)

    sections.extend(_slo_section(registry, events))

    if events:
        task_spans, instants = build_task_spans(events)
        sections.append("<h2>Task timeline</h2>")
        sections.append(
            svg_span_timeline(task_spans, instants, title="Task lifecycle spans")
        )
        node_spans = build_node_spans(events)
        if node_spans:
            sections.append("<h2>Fabric occupancy</h2>")
            sections.append(
                svg_span_timeline(node_spans, [], title="Region occupancy spans")
            )
        sections.extend(_phase_breakdown_section(events))
    elif charts or has_samples:
        # Telemetry without a trace: the causal ledger needs events.
        sections.append("<h2>Phase breakdown</h2>")
        sections.append(
            '<div class="empty-state"><p><strong>Phase breakdown needs a '
            "trace.</strong> Turnaround attribution folds the event "
            "stream, which this report was not given.</p><p>Record one "
            "with <code>repro simulate --trace run.jsonl</code> and pass "
            "it as the second argument to <code>repro report</code>.</p>"
            "</div>"
        )

    sections.append(_histogram_table(histograms))

    summary = meta.get("summary")
    if isinstance(summary, list) and summary:
        sections.append("<h2>Run summary</h2>")
        sections.append(
            "<pre class='summary'>" + _esc("\n".join(summary)) + "</pre>"
        )

    body = "\n".join(s for s in sections if s)
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>
  :root {{ color-scheme: light; }}
  body {{
    margin: 0 auto; padding: 24px; max-width: 960px;
    background: {PAGE}; color: {INK};
    font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  }}
  h1 {{ font-size: 20px; margin: 0 0 12px; }}
  h2 {{ font-size: 15px; margin: 28px 0 8px; color: {INK}; }}
  dl.meta {{
    display: flex; flex-wrap: wrap; gap: 4px 24px; margin: 0 0 8px;
    font-size: 12px; color: {INK_SECONDARY};
  }}
  dl.meta dt {{ font-weight: 600; }}
  dl.meta dd {{ margin: 0; }}
  dl.meta > dt {{ display: inline; }}
  dl.meta > dd {{ display: inline; margin-right: 16px; }}
  figure.chart-box {{
    margin: 0 0 16px; padding: 8px; background: {SURFACE};
    border: 1px solid rgba(11,11,11,0.10); border-radius: 6px;
    overflow-x: auto;
  }}
  .legend {{ margin-top: 6px; font-size: 11px; color: {INK_SECONDARY}; }}
  .legend-item {{ margin-right: 14px; white-space: nowrap; }}
  .legend-item.muted {{ color: {INK_MUTED}; }}
  .swatch {{
    display: inline-block; width: 10px; height: 10px; border-radius: 2px;
    margin-right: 4px; vertical-align: -1px;
  }}
  .chart-empty {{ color: {INK_MUTED}; font-size: 12px; margin: 8px 0; }}
  p.note {{ font-size: 12px; color: {INK_SECONDARY}; margin: 4px 0 0; }}
  .empty-state {{
    background: {SURFACE}; border: 1px solid rgba(11,11,11,0.10);
    border-radius: 6px; padding: 16px; font-size: 13px;
    color: {INK_SECONDARY};
  }}
  .empty-state code {{ font-size: 12px; }}
  table.stats {{
    border-collapse: collapse; font-size: 12px; background: {SURFACE};
  }}
  table.stats th, table.stats td {{
    border: 1px solid {GRIDLINE}; padding: 4px 10px; text-align: right;
  }}
  table.stats th:first-child, table.stats td:first-child {{ text-align: left; }}
  table.stats td {{ font-variant-numeric: tabular-nums; }}
  table.stats td.bad {{ color: {CRITICAL}; font-weight: 600; }}
  pre.summary {{
    background: {SURFACE}; border: 1px solid rgba(11,11,11,0.10);
    border-radius: 6px; padding: 12px; font-size: 12px; overflow-x: auto;
  }}
</style>
</head>
<body>
{body}
</body>
</html>
"""
