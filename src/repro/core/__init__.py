"""Core virtualization framework (the paper's primary contribution).

This package implements Section IV of the paper:

* :mod:`repro.core.execreq` -- the execution-requirement algebra
  (``ExecReq`` of Eq. 2): typed constraints over capability descriptors.
* :mod:`repro.core.abstraction` -- the four virtualization/abstraction
  levels of Figure 2 and the per-level submission requirements.
* :mod:`repro.core.task` -- the application task model of Eq. 2 /
  Figure 4 (``Task(TaskID, Data_in, Data_out, ExecReq, t_estimated)``).
* :mod:`repro.core.node` -- the grid node model of Eq. 1 / Figure 3
  (``Node(NodeID, GPP Caps, RPE Caps, state)``) with runtime
  add/remove of resources.
* :mod:`repro.core.state` -- processing-element and node state.
* :mod:`repro.core.application` -- the application model of Eq. 3/4
  (``App{Seq(...), Par(...), ...}``) with parser and execution plan.
* :mod:`repro.core.taskgraph` -- the data-dependency task graph of
  Figure 7.
* :mod:`repro.core.matching` -- capability matchmaking: which PEs of
  which nodes can execute a task (feeds Table II).
"""

from repro.core.execreq import (
    Constraint,
    MinValue,
    MaxValue,
    Equals,
    OneOf,
    Exists,
    ExecReq,
    Artifacts,
)
from repro.core.abstraction import AbstractionLevel, SubmissionError, validate_artifacts
from repro.core.task import DataIn, DataOut, Task
from repro.core.state import PEState, NodeStateSnapshot
from repro.core.node import Node, GPPResource, GPUResource, RPEResource
from repro.core.application import Application, Clause, ClauseKind, parse_application
from repro.core.taskgraph import TaskGraph, figure7_graph
from repro.core.matching import Candidate, find_candidates, match_node

__all__ = [
    "Constraint",
    "MinValue",
    "MaxValue",
    "Equals",
    "OneOf",
    "Exists",
    "ExecReq",
    "Artifacts",
    "AbstractionLevel",
    "SubmissionError",
    "validate_artifacts",
    "DataIn",
    "DataOut",
    "Task",
    "PEState",
    "NodeStateSnapshot",
    "Node",
    "GPPResource",
    "GPUResource",
    "RPEResource",
    "Application",
    "Clause",
    "ClauseKind",
    "parse_application",
    "TaskGraph",
    "figure7_graph",
    "Candidate",
    "find_candidates",
    "match_node",
]
