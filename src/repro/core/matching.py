"""Capability matchmaking: which PEs of which nodes can run a task.

Section V walks through exactly this query for the case study ("It can
be noticed that any of the GPP0 and GPP1 in the Node0 and GPP0 in the
Node1 contain the minimum processing requirements by the Task0 ...") and
Table II collects the answers.  :func:`find_candidates` is the general
form: it evaluates a task's :class:`~repro.core.execreq.ExecReq` against
every processing element of every node and returns the admissible
placements.

Matching is *static* by default -- it asks "could this PE ever run the
task?", which is what Table II tabulates.  With ``require_available``
it additionally checks the dynamic state (idle GPP / placeable fabric
area), which is what the scheduler needs at dispatch time.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.core.node import Node, RPEResource
from repro.core.state import PEState
from repro.core.task import Task
from repro.hardware.taxonomy import PEClass


@dataclass(frozen=True)
class Candidate:
    """One admissible placement of a task.

    ``label`` follows Table II's notation, e.g. ``"RPE_1 <-> Node_1"``:
    the index is the resource's position within its node list, not the
    global resource_id.
    """

    node_id: int
    node_name: str
    kind: PEClass
    resource_id: int
    resource_index: int
    reuses_resident: bool = False
    region_id: int | None = None

    @property
    def label(self) -> str:
        prefix = {
            PEClass.GPP: "GPP",
            PEClass.SOFTCORE: "SOFTCORE",
            PEClass.GPU: "GPU",
            PEClass.RPE: "RPE",
        }[self.kind]
        return f"{prefix}_{self.resource_index} <-> {self.node_name}"


def task_required_slices(task: Task) -> int:
    """Fabric area the task needs, derived from its artifacts or its
    ``slices`` constraint (``MinValue("slices", n)``); 0 when unknown.
    """
    artifacts = task.exec_req.artifacts
    if artifacts.bitstream is not None:
        return artifacts.bitstream.required_slices
    if artifacts.hdl_design is not None:
        return artifacts.hdl_design.estimated_slices
    if artifacts.softcore is not None:
        return artifacts.softcore.required_slices()
    from repro.core.execreq import MinValue

    for constraint in task.exec_req.constraints:
        if isinstance(constraint, MinValue) and constraint.key == "slices":
            return int(constraint.value)
    return 0


def _rpe_dynamic_ok(task: Task, rpe: RPEResource) -> bool:
    """Dynamic admissibility of an RPE: resident-config reuse, or enough
    placeable area for the task's circuit."""
    if rpe.offline:
        return False
    if task.function and rpe.fabric.find_resident(task.function) is not None:
        return True
    needed = task_required_slices(task)
    if needed == 0:
        # No area information: any available region will do.
        return rpe.fabric.available_slices > 0
    return rpe.fabric.can_place(needed)


def match_node(
    task: Task, node: Node, *, require_available: bool = False
) -> list[Candidate]:
    """All placements of *task* on *node* (one per admissible PE)."""
    candidates: list[Candidate] = []
    wanted = task.exec_req.node_type

    if wanted in (PEClass.GPP, PEClass.SOFTCORE):
        for index, gpp in enumerate(node.gpps):
            if wanted is PEClass.SOFTCORE:
                break  # plain GPPs cannot satisfy a soft-core requirement
            if not task.exec_req.matches(gpp.spec.capabilities()):
                continue
            if require_available and gpp.state is not PEState.IDLE:
                continue
            candidates.append(
                Candidate(
                    node_id=node.node_id,
                    node_name=node.name,
                    kind=PEClass.GPP,
                    resource_id=gpp.resource_id,
                    resource_index=index,
                )
            )
        # Section III-A fallback: soft cores hosted on RPEs can serve
        # GPP-class (and SOFTCORE-class) requirements.
        for index, rpe in enumerate(node.rpes):
            for caps in rpe.softcore_capabilities():
                if task.exec_req.matches(caps):
                    candidates.append(
                        Candidate(
                            node_id=node.node_id,
                            node_name=node.name,
                            kind=PEClass.SOFTCORE,
                            resource_id=rpe.resource_id,
                            resource_index=index,
                            region_id=caps.get("region_id"),  # type: ignore[arg-type]
                        )
                    )

    if wanted is PEClass.RPE:
        for index, rpe in enumerate(node.rpes):
            if not task.exec_req.matches(rpe.device.capabilities()):
                continue
            # A device-specific bitstream must target this exact model.
            bitstream = task.exec_req.artifacts.bitstream
            if bitstream is not None and not bitstream.targets(rpe.device):
                continue
            needed = task_required_slices(task)
            if needed > rpe.device.slices:
                continue
            if require_available and not _rpe_dynamic_ok(task, rpe):
                continue
            reuse = bool(task.function) and rpe.fabric.find_resident(task.function) is not None
            candidates.append(
                Candidate(
                    node_id=node.node_id,
                    node_name=node.name,
                    kind=PEClass.RPE,
                    resource_id=rpe.resource_id,
                    resource_index=index,
                    reuses_resident=reuse,
                )
            )

    if wanted is PEClass.SOFTCORE and task.exec_req.artifacts.softcore is not None:
        # Pre-determined hardware configuration (Section III-B1): the
        # user selected a soft core that is not hosted anywhere yet; any
        # RPE whose device can fit it is a candidate (the scheduler pays
        # the provisioning reconfiguration).
        spec = task.exec_req.artifacts.softcore
        already = {c.resource_id for c in candidates}
        for index, rpe in enumerate(node.rpes):
            if rpe.resource_id in already:
                continue
            if not spec.fits_on(rpe.device):
                continue
            if require_available and not rpe.fabric.can_place(spec.required_slices()):
                continue
            candidates.append(
                Candidate(
                    node_id=node.node_id,
                    node_name=node.name,
                    kind=PEClass.SOFTCORE,
                    resource_id=rpe.resource_id,
                    resource_index=index,
                )
            )

    if wanted is PEClass.GPU:
        # The Section III extension class: nodes may carry GPUs; they
        # match exactly like GPPs over their Table I descriptors.
        for index, gpu in enumerate(node.gpus):
            if not task.exec_req.matches(gpu.spec.capabilities()):
                continue
            if require_available and gpu.state is not PEState.IDLE:
                continue
            candidates.append(
                Candidate(
                    node_id=node.node_id,
                    node_name=node.name,
                    kind=PEClass.GPU,
                    resource_id=gpu.resource_id,
                    resource_index=index,
                )
            )

    return candidates


def find_candidates(
    task: Task, nodes: Iterable[Node], *, require_available: bool = False
) -> list[Candidate]:
    """All placements of *task* across *nodes*, in node order."""
    result: list[Candidate] = []
    for node in nodes:
        result.extend(match_node(task, node, require_available=require_available))
    return result
