"""Processing-element and node state (the ``state`` of Eq. 1).

"``state`` represents the current states of different elements.  It is a
dynamically changing attribute of the node.  For instance, the ``state``
can provide the current available reconfigurable area or maintain the
information of current configuration(s) on an RPE." (Section IV-A)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PEState(enum.Enum):
    """Lifecycle states of a processing element within a node."""

    IDLE = "idle"
    BUSY = "busy"
    CONFIGURING = "configuring"  # RPE only: bitstream being loaded
    OFFLINE = "offline"  # resource removed / node leaving the grid

    @property
    def can_accept_work(self) -> bool:
        return self is PEState.IDLE


@dataclass(frozen=True)
class RPEStateSnapshot:
    """Point-in-time state of one RPE (Figure 5's ``State_i`` boxes)."""

    resource_id: int
    device_model: str
    state: PEState
    available_slices: int
    total_slices: int
    resident_functions: tuple[str, ...]

    @property
    def utilization(self) -> float:
        """Fraction of the fabric area currently unavailable."""
        if self.total_slices == 0:
            return 0.0
        return 1.0 - self.available_slices / self.total_slices


@dataclass(frozen=True)
class GPPStateSnapshot:
    """Point-in-time state of one GPP."""

    resource_id: int
    cpu_model: str
    state: PEState
    current_task_id: int | None


@dataclass(frozen=True)
class GPUStateSnapshot:
    """Point-in-time state of one GPU (the Section III extension
    class; nodes may carry GPUs alongside GPPs and RPEs)."""

    resource_id: int
    gpu_model: str
    state: PEState
    current_task_id: int | None


@dataclass(frozen=True)
class NodeStateSnapshot:
    """The dynamically-changing ``state`` attribute of Eq. 1, frozen at
    one instant for the RMS's status table (Section V: "The RMS updates
    the statuses of all nodes in the grid").
    """

    node_id: int
    gpps: tuple[GPPStateSnapshot, ...]
    rpes: tuple[RPEStateSnapshot, ...]
    gpus: tuple[GPUStateSnapshot, ...] = ()

    @property
    def idle_gpp_count(self) -> int:
        return sum(1 for g in self.gpps if g.state is PEState.IDLE)

    @property
    def idle_rpe_count(self) -> int:
        return sum(1 for r in self.rpes if r.state is PEState.IDLE)

    @property
    def idle_gpu_count(self) -> int:
        return sum(1 for g in self.gpus if g.state is PEState.IDLE)

    @property
    def available_reconfigurable_area(self) -> int:
        """Total slices available across the node's RPEs (Section IV-A's
        "current available reconfigurable area")."""
        return sum(r.available_slices for r in self.rpes)

    @property
    def has_capacity(self) -> bool:
        return self.idle_gpp_count > 0 or self.available_reconfigurable_area > 0
