"""The application task graph (Figure 7).

"The data dependencies among different tasks are represented by an
application task graph in Figure 7.  From [the] example, it can be
noticed that inputs to T8 are the outputs of tasks T0, T2, and T5.
Similarly, DataIN(T11) -> DataOUT(T7, T9, T13), DataIN(T13) ->
DataOUT(T7, T8), and DataIN(T17) -> DataOUT(T7, T13)." (Section IV-B)

:class:`TaskGraph` wraps a :class:`networkx.DiGraph` whose edges point
producer -> consumer, derives the graph from each task's ``Data_in``
descriptors, and offers the queries a scheduler needs: readiness,
topological generations, and the critical path under
:math:`t_{estimated}` weights.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

from repro.core.task import EXTERNAL_SOURCE, Task


class DependencyError(ValueError):
    """The task set does not form a valid DAG (cycle, dangling source,
    duplicate TaskID)."""


class TaskGraph:
    """A DAG of tasks connected by data dependencies."""

    def __init__(self, tasks: Iterable[Task]):
        self.tasks: dict[int, Task] = {}
        for task in tasks:
            if task.task_id in self.tasks:
                raise DependencyError(f"duplicate TaskID {task.task_id}")
            self.tasks[task.task_id] = task

        self.graph = nx.DiGraph()
        self.graph.add_nodes_from(self.tasks)
        for task in self.tasks.values():
            for dep in task.data_in:
                if dep.source_task_id == EXTERNAL_SOURCE:
                    continue
                if dep.source_task_id not in self.tasks:
                    raise DependencyError(
                        f"task T{task.task_id} consumes data from unknown "
                        f"task T{dep.source_task_id}"
                    )
                self.graph.add_edge(
                    dep.source_task_id,
                    task.task_id,
                    data_id=dep.data_id,
                    size_bytes=dep.size_bytes,
                )
        if not nx.is_directed_acyclic_graph(self.graph):
            cycle = nx.find_cycle(self.graph)
            pretty = " -> ".join(f"T{u}" for u, _ in cycle) + f" -> T{cycle[0][0]}"
            raise DependencyError(f"dependency cycle: {pretty}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tasks)

    def __contains__(self, task_id: int) -> bool:
        return task_id in self.tasks

    def task(self, task_id: int) -> Task:
        try:
            return self.tasks[task_id]
        except KeyError:
            raise KeyError(f"no task T{task_id} in graph") from None

    def predecessors(self, task_id: int) -> set[int]:
        """Tasks whose outputs this task consumes."""
        return set(self.graph.predecessors(task_id))

    def successors(self, task_id: int) -> set[int]:
        return set(self.graph.successors(task_id))

    def entry_tasks(self) -> set[int]:
        """Tasks with no in-graph producers (primary inputs only)."""
        return {t for t in self.tasks if self.graph.in_degree(t) == 0}

    def exit_tasks(self) -> set[int]:
        return {t for t in self.tasks if self.graph.out_degree(t) == 0}

    def ready_tasks(self, completed: set[int]) -> set[int]:
        """Tasks whose every predecessor is in *completed* and which are
        not themselves completed — the scheduler's dispatch frontier.
        """
        return {
            t
            for t in self.tasks
            if t not in completed and self.predecessors(t) <= completed
        }

    def topological_order(self) -> list[int]:
        """One valid execution order (deterministic: ties by TaskID)."""
        return list(nx.lexicographical_topological_sort(self.graph))

    def generations(self) -> list[list[int]]:
        """Antichains of tasks executable concurrently, in phase order.

        Generation *g* contains the tasks whose longest dependency chain
        from any entry task has length *g*; all tasks in one generation
        may run in parallel given enough PEs.
        """
        return [sorted(gen) for gen in nx.topological_generations(self.graph)]

    def critical_path(self) -> tuple[list[int], float]:
        """Longest path weighted by ``t_estimated`` — the makespan lower
        bound with unlimited PEs and free communication.
        """
        if not self.tasks:
            return [], 0.0
        dist: dict[int, float] = {}
        via: dict[int, int | None] = {}
        for task_id in self.topological_order():
            task = self.tasks[task_id]
            best_pred, best = None, 0.0
            for pred in self.predecessors(task_id):
                if dist[pred] > best:
                    best, best_pred = dist[pred], pred
            dist[task_id] = best + task.t_estimated
            via[task_id] = best_pred
        end = max(dist, key=lambda t: dist[t])
        path = [end]
        while via[path[-1]] is not None:
            path.append(via[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path, dist[end]

    def transfer_bytes(self, producer: int, consumer: int) -> int:
        """Bytes flowing along one dependency edge."""
        try:
            return self.graph.edges[producer, consumer]["size_bytes"]
        except KeyError:
            raise KeyError(f"no edge T{producer} -> T{consumer}") from None

    def total_work(self) -> float:
        """Sum of all t_estimated — serial-execution makespan."""
        return sum(t.t_estimated for t in self.tasks.values())


#: The dependency edges the paper states explicitly for Figure 7,
#: as (consumer, producers) pairs.
FIGURE7_EDGES: dict[int, tuple[int, ...]] = {
    8: (0, 2, 5),
    11: (7, 9, 13),
    13: (7, 8),
    17: (7, 13),
}


def figure7_graph(*, t_estimated: float = 1.0, data_bytes: int = 1 << 20) -> TaskGraph:
    """Construct the Figure 7 example graph: tasks T0..T17 with the
    dependencies the paper enumerates (other tasks are independent).

    Every task gets a GPP-class placeholder ExecReq; benchmarks override
    estimates as needed.
    """
    from repro.core.execreq import ExecReq
    from repro.core.task import DataIn, DataOut
    from repro.hardware.taxonomy import PEClass

    tasks = []
    for task_id in range(18):
        producers = FIGURE7_EDGES.get(task_id, ())
        data_in = tuple(
            DataIn(source_task_id=p, data_id=0, size_bytes=data_bytes) for p in producers
        )
        tasks.append(
            Task(
                task_id=task_id,
                data_in=data_in,
                data_out=(DataOut(data_id=0, size_bytes=data_bytes),),
                exec_req=ExecReq(node_type=PEClass.GPP),
                t_estimated=t_estimated,
            )
        )
    return TaskGraph(tasks)
