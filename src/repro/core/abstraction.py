"""Virtualization/abstraction levels (Figure 2, Section III).

Figure 2 stacks four levels; descending the stack, "the user should add
more specifications along with his/her tasks and get more performance,
and vice versa" (Section III-C):

====  ===============================  ==========================  =========
Rank  Level                            User must supply            Sec.
====  ===============================  ==========================  =========
3     SOFTWARE_ONLY                    application code + data     III-A
2     PREDETERMINED_HW (soft cores)    code + soft-core choice     III-B1
1     USER_DEFINED_HW (generic HDL)    code + HDL design + data    III-B2
0     DEVICE_SPECIFIC_HW (bitstream)   code + bitstream + data     III-B3
====  ===============================  ==========================  =========

The rank orders abstraction: higher rank = more abstraction = less user
effort = less performance.  :func:`validate_artifacts` enforces the
"user must supply" column at job submission, and the per-level
attributes (`provider_needs_cad_tools`, `visible_to_user`,
`performance_factor`, `development_effort`) encode the qualitative
trade-offs the paper states for each scenario.
"""

from __future__ import annotations

import enum

from repro.core.execreq import Artifacts


class SubmissionError(ValueError):
    """A submission is missing artifacts its abstraction level requires."""


class AbstractionLevel(enum.Enum):
    """The four levels of Figure 2 (value = abstraction rank)."""

    SOFTWARE_ONLY = 3
    PREDETERMINED_HW = 2
    USER_DEFINED_HW = 1
    DEVICE_SPECIFIC_HW = 0

    # ------------------------------------------------------------------
    # Qualitative attributes stated in Section III
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Abstraction rank; larger = more abstracted from hardware."""
        return self.value

    @property
    def visible_to_user(self) -> str:
        """What the grid exposes at this level (Figure 2's right side)."""
        return {
            AbstractionLevel.SOFTWARE_ONLY: "grid nodes only",
            AbstractionLevel.PREDETERMINED_HW: "soft-core CPUs and grid nodes",
            AbstractionLevel.USER_DEFINED_HW: "reconfigurable fabric",
            AbstractionLevel.DEVICE_SPECIFIC_HW: "specific hardware devices",
        }[self]

    @property
    def provider_needs_cad_tools(self) -> bool:
        """Section III-B2: the provider synthesizes user HDL, so it must
        own CAD tools; Section III-B3: at the bitstream level it need not.
        """
        return self is AbstractionLevel.USER_DEFINED_HW

    @property
    def performance_factor(self) -> float:
        """Relative achievable performance (higher at lower abstraction).

        Normalized to 1.0 for device-specific hardware; the spread
        encodes Section III-C's monotone trade-off and is ablated by
        ``bench_fig2_abstraction_levels``.
        """
        return {
            AbstractionLevel.SOFTWARE_ONLY: 0.25,
            AbstractionLevel.PREDETERMINED_HW: 0.45,
            AbstractionLevel.USER_DEFINED_HW: 0.75,
            AbstractionLevel.DEVICE_SPECIFIC_HW: 1.0,
        }[self]

    @property
    def development_effort(self) -> float:
        """Relative application development time (Section III-B3: "the
        cost of the high performance is long application development
        time").  Normalized to 1.0 at the lowest level.
        """
        return {
            AbstractionLevel.SOFTWARE_ONLY: 0.1,
            AbstractionLevel.PREDETERMINED_HW: 0.25,
            AbstractionLevel.USER_DEFINED_HW: 0.6,
            AbstractionLevel.DEVICE_SPECIFIC_HW: 1.0,
        }[self]

    def __lt__(self, other: "AbstractionLevel") -> bool:
        if not isinstance(other, AbstractionLevel):
            return NotImplemented
        return self.rank < other.rank


def validate_artifacts(level: AbstractionLevel, artifacts: Artifacts) -> None:
    """Check a submission carries everything its level requires.

    Raises
    ------
    SubmissionError
        Naming the missing artifact and the level that demands it.
    """
    if not artifacts.application_code:
        raise SubmissionError(f"{level.name}: application code is always required")
    if level is AbstractionLevel.PREDETERMINED_HW and artifacts.softcore is None:
        raise SubmissionError(
            "PREDETERMINED_HW: the user selects a soft-core configuration "
            "(Section III-B1); none was supplied"
        )
    if level is AbstractionLevel.USER_DEFINED_HW and artifacts.hdl_design is None:
        raise SubmissionError(
            "USER_DEFINED_HW: a generic HDL design is required "
            "(Section III-B2); none was supplied"
        )
    if level is AbstractionLevel.DEVICE_SPECIFIC_HW and artifacts.bitstream is None:
        raise SubmissionError(
            "DEVICE_SPECIFIC_HW: a device-specific bitstream is required "
            "(Section III-B3); none was supplied"
        )
