"""Execution requirements (the ``ExecReq`` of Eq. 2).

The paper: "*ExecReq provides the list of resources required by the task
for its execution.  This list is composed of the node type and its
parameters.  Each parameter is followed by its value.  These parameters
completely identify the architectural requirements by the current
task.*" (Section IV-B, Figure 4 shows ``NodeType`` plus ``k`` parameter/
value pairs.)

We realize "parameter followed by its value" as a small typed constraint
algebra over capability descriptors (the dictionaries produced by every
hardware model's ``capabilities()``).  The case study needs exactly
three constraint shapes -- minimum value ("at least 18,707 slices"),
equality ("a Virtex XC6VLX365T"), and family membership -- plus
existence checks for optional features; :class:`MaxValue` completes the
lattice for QoS-style caps.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping
from dataclasses import dataclass, field
from numbers import Real

from repro.hardware.bitstream import Bitstream, HDLDesign
from repro.hardware.softcore import SoftcoreSpec
from repro.hardware.taxonomy import PEClass


class Constraint(ABC):
    """One ``parameter: value`` requirement from Figure 4."""

    key: str

    @abstractmethod
    def satisfied_by(self, caps: Mapping[str, object]) -> bool:
        """Whether a capability descriptor meets this requirement."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable form used in Table II-style reports."""


def _numeric(value: object) -> Real | None:
    """Return *value* as a number if it is one (bool excluded)."""
    if isinstance(value, bool):
        return None
    if isinstance(value, Real):
        return value
    return None


@dataclass(frozen=True)
class MinValue(Constraint):
    """``caps[key] >= value`` -- e.g. "minimum of 18,707 slices"."""

    key: str
    value: float

    def satisfied_by(self, caps: Mapping[str, object]) -> bool:
        actual = _numeric(caps.get(self.key))
        return actual is not None and actual >= self.value

    def describe(self) -> str:
        return f"{self.key} >= {self.value}"


@dataclass(frozen=True)
class MaxValue(Constraint):
    """``caps[key] <= value`` -- e.g. a power or cost ceiling."""

    key: str
    value: float

    def satisfied_by(self, caps: Mapping[str, object]) -> bool:
        actual = _numeric(caps.get(self.key))
        return actual is not None and actual <= self.value

    def describe(self) -> str:
        return f"{self.key} <= {self.value}"


@dataclass(frozen=True)
class Equals(Constraint):
    """``caps[key] == value`` -- e.g. device_model == XC6VLX365T."""

    key: str
    value: object

    def satisfied_by(self, caps: Mapping[str, object]) -> bool:
        return caps.get(self.key) == self.value

    def describe(self) -> str:
        return f"{self.key} == {self.value!r}"


@dataclass(frozen=True)
class OneOf(Constraint):
    """``caps[key] in values`` -- e.g. OS in {Linux, Solaris}."""

    key: str
    values: tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("OneOf needs at least one admissible value")

    def satisfied_by(self, caps: Mapping[str, object]) -> bool:
        return caps.get(self.key) in self.values

    def describe(self) -> str:
        options = ", ".join(repr(v) for v in self.values)
        return f"{self.key} in {{{options}}}"


@dataclass(frozen=True)
class Exists(Constraint):
    """``key in caps and truthy`` -- e.g. partial_reconfig available."""

    key: str

    def satisfied_by(self, caps: Mapping[str, object]) -> bool:
        return bool(caps.get(self.key))

    def describe(self) -> str:
        return f"{self.key} present"


@dataclass(frozen=True)
class Artifacts:
    """What the user ships with a task.

    The mix of artifacts depends on the abstraction level (Figure 2):
    application code and input data always; HDL at the user-defined-
    hardware level; a bitstream at the device-specific level; a soft-core
    selection at the pre-determined level.
    ``input_data_bytes`` sizes the JSS->node transfer.
    """

    application_code: str = ""
    input_data_bytes: int = 0
    hdl_design: HDLDesign | None = None
    bitstream: Bitstream | None = None
    softcore: SoftcoreSpec | None = None

    def __post_init__(self) -> None:
        if self.input_data_bytes < 0:
            raise ValueError("input data size must be non-negative")


@dataclass(frozen=True)
class ExecReq:
    """Execution requirements of one task (Eq. 2's ``ExecReq``).

    Parameters
    ----------
    node_type:
        The :class:`~repro.hardware.taxonomy.PEClass` the task needs
        (Figure 4's ``NodeType``).
    constraints:
        The ``k`` parameter/value requirements of Figure 4.
    artifacts:
        User-supplied artifacts (code / HDL / bitstream / data).
    """

    node_type: PEClass
    constraints: tuple[Constraint, ...] = ()
    artifacts: Artifacts = field(default_factory=Artifacts)

    def matches(self, caps: Mapping[str, object]) -> bool:
        """Whether a PE capability descriptor satisfies this ExecReq.

        A soft-core-hosting RPE advertises ``pe_class == "SOFTCORE"``;
        per Section III-A, a GPP requirement is also satisfiable by a
        soft-core CPU configured on an RPE, so ``node_type == GPP``
        accepts both ``GPP`` and ``SOFTCORE`` descriptors.
        """
        pe_class = caps.get("pe_class")
        if self.node_type is PEClass.GPP:
            if pe_class not in ("GPP", "SOFTCORE"):
                return False
        elif pe_class != self.node_type.value:
            return False
        return all(c.satisfied_by(caps) for c in self.constraints)

    def unmet_constraints(self, caps: Mapping[str, object]) -> list[Constraint]:
        """Constraints *caps* fails — for diagnostics and service queries."""
        return [c for c in self.constraints if not c.satisfied_by(caps)]

    def describe(self) -> str:
        parts = [f"NodeType={self.node_type.value}"]
        parts.extend(c.describe() for c in self.constraints)
        return "; ".join(parts)

    def with_constraints(self, *extra: Constraint) -> "ExecReq":
        """A copy with additional constraints (requirement refinement)."""
        return ExecReq(
            node_type=self.node_type,
            constraints=self.constraints + tuple(extra),
            artifacts=self.artifacts,
        )
