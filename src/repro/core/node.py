"""The grid node model (Eq. 1, Figure 3).

.. math::

    Node(NodeID, GPP\\ Caps, RPE\\ Caps, state)

"A typical grid node contains a list of resources [...] Each resource
consists of a null terminated list of GPPs, RPEs, and their current
*state*. [...] The proposed node model is generic and adaptive in
adding/removing resources at runtime." (Section IV-A)

Python lists stand in for the paper's null-terminated C-style lists;
adding/removing resources at runtime is first-class (and exercised by
the fault-injection tests).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.state import (
    GPPStateSnapshot,
    GPUStateSnapshot,
    NodeStateSnapshot,
    PEState,
    RPEStateSnapshot,
)
from repro.hardware.gpu import GPUSpec
from repro.hardware.bitstream import Bitstream
from repro.hardware.fabric import Fabric, Region, RegionState
from repro.hardware.fpga import FPGADevice
from repro.hardware.gpp import GPPSpec
from repro.hardware.softcore import SoftcoreSpec

_node_ids = itertools.count(0)


class ResourceError(RuntimeError):
    """Illegal resource transition (assigning a busy GPP, removing a
    resource mid-task, ...)."""


@dataclass
class GPPResource:
    """One GPP within a node: an immutable spec plus mutable state."""

    resource_id: int
    spec: GPPSpec
    state: PEState = PEState.IDLE
    current_task_id: int | None = None

    def capabilities(self) -> dict[str, object]:
        caps = self.spec.capabilities()
        caps["resource_id"] = self.resource_id
        caps["state"] = self.state.value
        return caps

    def assign(self, task_id: int) -> None:
        if self.state is not PEState.IDLE:
            raise ResourceError(
                f"GPP {self.resource_id} is {self.state.value}; cannot assign task {task_id}"
            )
        self.state = PEState.BUSY
        self.current_task_id = task_id

    def release(self) -> None:
        if self.state is not PEState.BUSY:
            raise ResourceError(f"GPP {self.resource_id} is not busy; cannot release")
        self.state = PEState.IDLE
        self.current_task_id = None

    def set_offline(self) -> None:
        self.state = PEState.OFFLINE
        self.current_task_id = None

    def snapshot(self) -> GPPStateSnapshot:
        return GPPStateSnapshot(
            resource_id=self.resource_id,
            cpu_model=self.spec.cpu_model,
            state=self.state,
            current_task_id=self.current_task_id,
        )


@dataclass
class GPUResource:
    """One GPU within a node (Section III extension class).

    Same lifecycle as a GPP: an immutable spec plus idle/busy state.
    """

    resource_id: int
    spec: GPUSpec
    state: PEState = PEState.IDLE
    current_task_id: int | None = None

    def capabilities(self) -> dict[str, object]:
        caps = self.spec.capabilities()
        caps["resource_id"] = self.resource_id
        caps["state"] = self.state.value
        return caps

    def assign(self, task_id: int) -> None:
        if self.state is not PEState.IDLE:
            raise ResourceError(
                f"GPU {self.resource_id} is {self.state.value}; cannot assign task {task_id}"
            )
        self.state = PEState.BUSY
        self.current_task_id = task_id

    def release(self) -> None:
        if self.state is not PEState.BUSY:
            raise ResourceError(f"GPU {self.resource_id} is not busy; cannot release")
        self.state = PEState.IDLE
        self.current_task_id = None

    def set_offline(self) -> None:
        self.state = PEState.OFFLINE
        self.current_task_id = None

    def snapshot(self) -> GPUStateSnapshot:
        return GPUStateSnapshot(
            resource_id=self.resource_id,
            gpu_model=self.spec.model,
            state=self.state,
            current_task_id=self.current_task_id,
        )


@dataclass
class RPEResource:
    """One RPE within a node: a device plus its run-time fabric state.

    The fabric is the ground truth; the resource-level ``state`` is
    derived from region states.  A resource can host multiple
    configurations concurrently when the device supports partial
    reconfiguration, including soft-core CPUs provisioned for the
    Section III-A software-only fallback (tracked in ``hosted_softcores``).
    """

    resource_id: int
    device: FPGADevice
    fabric: Fabric
    offline: bool = False
    hosted_softcores: dict[int, SoftcoreSpec] = field(default_factory=dict)
    region_tasks: dict[int, int] = field(default_factory=dict)

    @classmethod
    def create(cls, resource_id: int, device: FPGADevice, regions: int = 1) -> "RPEResource":
        return cls(resource_id=resource_id, device=device, fabric=device.make_fabric(regions))

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    @property
    def state(self) -> PEState:
        if self.offline:
            return PEState.OFFLINE
        states = {r.state for r in self.fabric.regions}
        if RegionState.CONFIGURING in states:
            return PEState.CONFIGURING
        if states == {RegionState.BUSY}:
            return PEState.BUSY
        return PEState.IDLE if self.fabric.available_slices > 0 else PEState.BUSY

    def capabilities(self) -> dict[str, object]:
        """Device capabilities plus live state (Eq. 1's ``RPE Caps``)."""
        caps = self.device.capabilities()
        caps["resource_id"] = self.resource_id
        caps["state"] = self.state.value
        caps["available_slices"] = self.fabric.available_slices
        caps["resident_functions"] = tuple(
            c.implements for c in self.fabric.resident_configurations()
        )
        return caps

    def softcore_capabilities(self) -> list[dict[str, object]]:
        """One descriptor per hosted soft core that is currently idle;
        these let the matchmaker treat the soft core as a GPP-class PE.
        """
        descriptors = []
        for region in self.fabric.regions:
            spec = self.hosted_softcores.get(region.region_id)
            if spec is not None and region.state is RegionState.CONFIGURED:
                caps = spec.capabilities(self.device)
                caps["resource_id"] = self.resource_id
                caps["region_id"] = region.region_id
                caps["state"] = "idle"
                descriptors.append(caps)
        return descriptors

    # ------------------------------------------------------------------
    # Configuration management
    # ------------------------------------------------------------------
    def host_softcore(self, spec: SoftcoreSpec) -> Region:
        """Provision a soft-core CPU onto this fabric (Section III-A:
        "configure a soft-core CPU on a currently available RPE").

        Returns the region now holding the core.  The caller (the
        simulator) accounts for the reconfiguration delay separately.
        """
        if self.offline:
            raise ResourceError(f"RPE {self.resource_id} is offline")
        if not spec.fits_on(self.device):
            raise ResourceError(
                f"soft core {spec.name} needs {spec.required_slices()} slices / "
                f"{spec.required_bram_kb()} KB BRAM; {self.device.model} cannot host it"
            )
        region = self.fabric.find_placeable(spec.required_slices())
        if region is None:
            raise ResourceError(
                f"RPE {self.resource_id}: no region can take {spec.required_slices()} slices"
            )
        if region.state is RegionState.CONFIGURED:
            self._evict(region)
        bitstream = Bitstream(
            bitstream_id=0,
            target_model=self.device.model,
            size_bytes=self.device.bitstream_size_bytes(spec.required_slices()),
            required_slices=spec.required_slices(),
            implements=f"softcore:{spec.name}",
            speedup_vs_gpp=1.0,
        )
        self.fabric.begin_reconfiguration(region, bitstream)
        self.fabric.finish_reconfiguration(region)
        self.hosted_softcores[region.region_id] = spec
        return region

    def _evict(self, region: Region) -> None:
        self.fabric.clear(region)
        self.hosted_softcores.pop(region.region_id, None)

    def begin_task(self, region: Region, task_id: int) -> None:
        """Mark *region* as executing *task_id*."""
        if self.offline:
            raise ResourceError(f"RPE {self.resource_id} is offline")
        self.fabric.occupy(region)
        self.region_tasks[region.region_id] = task_id

    def finish_task(self, region: Region) -> None:
        self.fabric.vacate(region)
        self.region_tasks.pop(region.region_id, None)

    def set_offline(self) -> None:
        self.offline = True

    def snapshot(self) -> RPEStateSnapshot:
        return RPEStateSnapshot(
            resource_id=self.resource_id,
            device_model=self.device.model,
            state=self.state,
            available_slices=self.fabric.available_slices,
            total_slices=self.fabric.total_slices,
            resident_functions=tuple(
                c.implements for c in self.fabric.resident_configurations()
            ),
        )


class Node:
    """A grid node (Eq. 1): lists of GPPs and RPEs plus dynamic state.

    Parameters
    ----------
    node_id:
        Explicit ``NodeID``, or ``None`` to auto-assign.
    name:
        Optional human-readable name (``"Node_0"`` in the case study).
    """

    def __init__(self, node_id: int | None = None, name: str = ""):
        self.node_id = next(_node_ids) if node_id is None else node_id
        self.name = name or f"Node_{self.node_id}"
        self.gpps: list[GPPResource] = []
        self.rpes: list[RPEResource] = []
        self.gpus: list[GPUResource] = []
        self._next_resource_id = itertools.count(0)

    # ------------------------------------------------------------------
    # Runtime add/remove (Section IV-A's adaptivity claim)
    # ------------------------------------------------------------------
    def add_gpp(self, spec: GPPSpec) -> GPPResource:
        resource = GPPResource(resource_id=next(self._next_resource_id), spec=spec)
        self.gpps.append(resource)
        return resource

    def add_rpe(self, device: FPGADevice, regions: int = 1) -> RPEResource:
        resource = RPEResource.create(
            resource_id=next(self._next_resource_id), device=device, regions=regions
        )
        self.rpes.append(resource)
        return resource

    def add_gpu(self, spec: GPUSpec) -> GPUResource:
        """Attach a GPU (the Figure 1 extension class; Section III:
        the framework "is extendable to add more types of processing
        elements")."""
        resource = GPUResource(resource_id=next(self._next_resource_id), spec=spec)
        self.gpus.append(resource)
        return resource

    def remove_gpu(self, resource_id: int, *, force: bool = False) -> GPUResource:
        resource = self._find(self.gpus, resource_id, "GPU")
        if resource.state is PEState.BUSY and not force:
            raise ResourceError(
                f"GPU {resource_id} is executing task {resource.current_task_id}; "
                "pass force=True to remove anyway"
            )
        resource.set_offline()
        self.gpus.remove(resource)
        return resource

    def remove_gpp(self, resource_id: int, *, force: bool = False) -> GPPResource:
        resource = self._find(self.gpps, resource_id, "GPP")
        if resource.state is PEState.BUSY and not force:
            raise ResourceError(
                f"GPP {resource_id} is executing task {resource.current_task_id}; "
                "pass force=True to remove anyway"
            )
        resource.set_offline()
        self.gpps.remove(resource)
        return resource

    def remove_rpe(self, resource_id: int, *, force: bool = False) -> RPEResource:
        resource = self._find(self.rpes, resource_id, "RPE")
        if resource.region_tasks and not force:
            raise ResourceError(
                f"RPE {resource_id} is executing tasks {sorted(resource.region_tasks.values())}; "
                "pass force=True to remove anyway"
            )
        resource.set_offline()
        self.rpes.remove(resource)
        return resource

    @staticmethod
    def _find(pool, resource_id: int, kind: str):
        for resource in pool:
            if resource.resource_id == resource_id:
                return resource
        raise KeyError(f"node has no {kind} with resource_id {resource_id}")

    def gpp(self, resource_id: int) -> GPPResource:
        return self._find(self.gpps, resource_id, "GPP")

    def rpe(self, resource_id: int) -> RPEResource:
        return self._find(self.rpes, resource_id, "RPE")

    def gpu(self, resource_id: int) -> GPUResource:
        return self._find(self.gpus, resource_id, "GPU")

    # ------------------------------------------------------------------
    # Eq. 1 views
    # ------------------------------------------------------------------
    def gpp_caps(self) -> list[dict[str, object]]:
        """Eq. 1's ``GPP Caps`` list."""
        return [g.capabilities() for g in self.gpps]

    def rpe_caps(self) -> list[dict[str, object]]:
        """Eq. 1's ``RPE Caps`` list."""
        return [r.capabilities() for r in self.rpes]

    def gpu_caps(self) -> list[dict[str, object]]:
        """Capability list for the GPU extension class."""
        return [g.capabilities() for g in self.gpus]

    def state(self) -> NodeStateSnapshot:
        """Eq. 1's ``state``: a frozen snapshot for the RMS status table."""
        return NodeStateSnapshot(
            node_id=self.node_id,
            gpps=tuple(g.snapshot() for g in self.gpps),
            rpes=tuple(r.snapshot() for r in self.rpes),
            gpus=tuple(g.snapshot() for g in self.gpus),
        )

    def as_tuple(self) -> tuple:
        """The literal ``Node(NodeID, GPP Caps, RPE Caps, state)`` tuple."""
        return (self.node_id, self.gpp_caps(), self.rpe_caps(), self.state())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Node(id={self.node_id}, name={self.name!r}, "
            f"gpps={len(self.gpps)}, rpes={len(self.rpes)})"
        )
