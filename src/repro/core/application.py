"""The application model (Eq. 3/4, Figure 8).

.. math::

    Application_i(<Keyword>, Task\\ list, <Keyword>)

"Each application is identified [by] a keyword followed by a task list.
[...] a keyword shows whether the tasks can be executed in series or
parallel. [...] Each task list is terminated by [the] next keyword."
(Section IV-B).  The paper's example (Eq. 4):

.. code-block:: text

    App{Seq(T2), Par(T4, T1, T7), Seq(T5, T10)}

executes T2, then T1/T4/T7 concurrently, then T5 followed by T10
(Figure 8).  Clauses run in order: clause *i+1* starts only when clause
*i* has completed.

Beyond the paper's ``Seq``/``Par`` we implement the ``Stream`` keyword
for the streaming scenario Section VI defers to future work: a
``Stream`` clause pipelines its task list over a sequence of data
chunks (see :mod:`repro.sim` for the pipelined timing model).
"""

from __future__ import annotations

import enum
import itertools
import re
from dataclasses import dataclass, field

_app_ids = itertools.count(0)


class ClauseKind(enum.Enum):
    """Eq. 3 keywords."""

    SEQ = "Seq"
    PAR = "Par"
    STREAM = "Stream"  # extension: Section VI future work


@dataclass(frozen=True)
class Clause:
    """One ``<Keyword>(Task list)`` unit of Eq. 3."""

    kind: ClauseKind
    task_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.task_ids:
            raise ValueError(f"{self.kind.value} clause needs at least one task")

    def steps(self) -> list[list[int]]:
        """Execution steps within the clause.

        A ``Seq`` clause yields one single-task step per task; a ``Par``
        clause yields one step containing every task; a ``Stream`` clause
        behaves like ``Seq`` at the step level (the pipelining happens
        inside the simulator's chunk scheduling).
        """
        if self.kind is ClauseKind.PAR:
            return [list(self.task_ids)]
        return [[t] for t in self.task_ids]

    def describe(self) -> str:
        tasks = ", ".join(f"T{t}" for t in self.task_ids)
        return f"{self.kind.value}({tasks})"


def Seq(*task_ids: int) -> Clause:
    """Build a sequential clause: ``Seq(5, 10) == Seq(T5, T10)``."""
    return Clause(ClauseKind.SEQ, tuple(task_ids))


def Par(*task_ids: int) -> Clause:
    """Build a parallel clause: ``Par(4, 1, 7) == Par(T4, T1, T7)``."""
    return Clause(ClauseKind.PAR, tuple(task_ids))


def Stream(*task_ids: int) -> Clause:
    """Build a streaming clause (future-work extension)."""
    return Clause(ClauseKind.STREAM, tuple(task_ids))


@dataclass(frozen=True)
class Application:
    """An application: an ordered list of keyword clauses (Eq. 3)."""

    clauses: tuple[Clause, ...]
    app_id: int = field(default_factory=lambda: next(_app_ids))
    name: str = ""

    def __post_init__(self) -> None:
        if not self.clauses:
            raise ValueError("an application needs at least one clause")
        seen: set[int] = set()
        for clause in self.clauses:
            for task_id in clause.task_ids:
                if task_id in seen:
                    raise ValueError(
                        f"task T{task_id} appears in more than one clause"
                    )
                seen.add(task_id)

    @property
    def task_ids(self) -> tuple[int, ...]:
        """All task IDs in clause order."""
        return tuple(t for clause in self.clauses for t in clause.task_ids)

    def execution_steps(self) -> list[list[int]]:
        """The Figure 8 schedule: a list of steps; tasks within one step
        run concurrently, and a step starts when the previous finished.

        For Eq. 4 this returns ``[[2], [4, 1, 7], [5], [10]]``.
        """
        steps: list[list[int]] = []
        for clause in self.clauses:
            steps.extend(clause.steps())
        return steps

    def makespan(self, durations: dict[int, float]) -> float:
        """Ideal makespan given per-task durations and unlimited PEs:
        sum over steps of the per-step maximum (Figure 8's timeline).
        """
        total = 0.0
        for step in self.execution_steps():
            try:
                total += max(durations[t] for t in step)
            except KeyError as exc:
                raise KeyError(f"no duration for task T{exc.args[0]}") from None
        return total

    def describe(self) -> str:
        """Render in the paper's Eq. 4 notation."""
        inner = ", ".join(clause.describe() for clause in self.clauses)
        return f"App{{{inner}}}"


_CLAUSE_RE = re.compile(r"(Seq|Par|Stream)\s*,?\s*\(([^)]*)\)")
_TASK_RE = re.compile(r"T?(\d+)")


def parse_application(text: str, name: str = "") -> Application:
    """Parse the paper's textual application notation.

    Accepts Eq. 4's exact form -- including the typo in the paper where
    a comma slips between keyword and parenthesis (``Seq,(T5, T10)``)::

        App{Seq(T2), Par(T4, T1, T7), Seq,(T5, T10)}

    Raises
    ------
    ValueError
        If no clause can be parsed, a clause is empty, or text remains
        outside the recognized notation.
    """
    body = text.strip()
    if body.startswith("App"):
        body = body[3:].strip()
    if body.startswith("{") and body.endswith("}"):
        body = body[1:-1]

    clauses: list[Clause] = []
    covered_upto = 0
    for match in _CLAUSE_RE.finditer(body):
        between = body[covered_upto : match.start()].strip().strip(",").strip()
        if between:
            raise ValueError(f"unrecognized application text: {between!r}")
        covered_upto = match.end()
        keyword, inner = match.groups()
        task_ids = tuple(int(m.group(1)) for m in _TASK_RE.finditer(inner))
        if not task_ids:
            raise ValueError(f"{keyword} clause has no tasks: {match.group(0)!r}")
        clauses.append(Clause(ClauseKind(keyword), task_ids))
    trailing = body[covered_upto:].strip().strip(",").strip()
    if trailing:
        raise ValueError(f"unrecognized application text: {trailing!r}")
    if not clauses:
        raise ValueError(f"no clauses found in {text!r}")
    return Application(clauses=tuple(clauses), name=name)


#: The paper's Eq. 4 example application.
EQUATION_4 = "App{Seq(T2), Par(T4, T1, T7), Seq(T5, T10)}"
