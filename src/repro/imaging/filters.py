"""2D image filters: the streaming case study's compute kernels.

These are the canonical FPGA-acceleration kernels -- window-based
stencils with perfect data parallelism (each output pixel depends on a
small neighbourhood, so a systolic line-buffer pipeline computes one
pixel per clock).  The implementations are numpy-vectorized: the
convolution gathers all shifted views and contracts them in one einsum,
which is the software analogue of the stencil's unrolled taps.

Correctness is tested against ``scipy.ndimage``.
"""

from __future__ import annotations

import numpy as np


def convolve2d(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """'Same'-size 2D correlation with reflected borders.

    (Correlation, not flipped convolution -- matching
    ``scipy.ndimage.correlate`` -- because filter kernels here are
    symmetric or used as-is.)
    """
    if image.ndim != 2:
        raise ValueError("image must be 2-D")
    if kernel.ndim != 2 or kernel.shape[0] % 2 == 0 or kernel.shape[1] % 2 == 0:
        raise ValueError("kernel must be 2-D with odd dimensions")
    kh, kw = kernel.shape
    ph, pw = kh // 2, kw // 2
    # numpy's "symmetric" (edge sample repeated) is what scipy.ndimage
    # calls mode="reflect".
    padded = np.pad(image.astype(np.float64), ((ph, ph), (pw, pw)), mode="symmetric")
    # Gather the kh*kw shifted windows as a strided view stack.
    h, w = image.shape
    windows = np.lib.stride_tricks.sliding_window_view(padded, (kh, kw))
    return np.einsum("ijkl,kl->ij", windows[:h, :w], kernel.astype(np.float64))


def gaussian_kernel(sigma: float, *, radius: int | None = None) -> np.ndarray:
    """Normalized 2D Gaussian kernel (default radius ~3 sigma)."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if radius is None:
        radius = max(1, int(round(3 * sigma)))
    if radius <= 0:
        raise ValueError("radius must be positive")
    ax = np.arange(-radius, radius + 1, dtype=np.float64)
    one_d = np.exp(-0.5 * (ax / sigma) ** 2)
    kernel = np.outer(one_d, one_d)
    return kernel / kernel.sum()


def gaussian_blur(image: np.ndarray, sigma: float = 1.0) -> np.ndarray:
    """Stage 1: denoise."""
    return convolve2d(image, gaussian_kernel(sigma))


_SOBEL_X = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.float64)
_SOBEL_Y = _SOBEL_X.T


def sobel_magnitude(image: np.ndarray) -> np.ndarray:
    """Stage 2: gradient magnitude via the Sobel operator."""
    gx = convolve2d(image, _SOBEL_X)
    gy = convolve2d(image, _SOBEL_Y)
    return np.hypot(gx, gy)


def threshold(image: np.ndarray, level: float | None = None) -> np.ndarray:
    """Stage 3: binarize; default level is the image mean (a crude
    adaptive threshold, sufficient for the pipeline demo)."""
    if level is None:
        level = float(image.mean())
    return (image >= level).astype(np.uint8)
