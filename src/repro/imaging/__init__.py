"""Streaming image-processing substrate (second case study).

Section VI: "Currently, the framework does not support streaming
applications.  In our future work, we will propose a virtualization
scenario for streaming applications.  We will discuss ... more case
studies based on our virtualization approach."

This package supplies both: a real streaming application -- an image
filter chain (Gaussian blur -> Sobel edge detection -> threshold), the
classic FPGA-acceleration workload -- and the machinery to map it onto
the framework as an Eq. 3 ``Stream`` application whose chunks are image
tiles.

* :mod:`repro.imaging.filters` -- 2D convolution and the three filter
  stages, numpy-vectorized, validated against ``scipy.ndimage``.
* :mod:`repro.imaging.pipeline` -- :class:`FilterPipeline`: compose
  stages, run them in-process, and *compile* the chain into framework
  tasks + a ``Stream`` application for DReAMSim execution.
"""

from repro.imaging.filters import (
    convolve2d,
    gaussian_kernel,
    gaussian_blur,
    sobel_magnitude,
    threshold,
)
from repro.imaging.pipeline import FilterPipeline, FilterStage

__all__ = [
    "convolve2d",
    "gaussian_kernel",
    "gaussian_blur",
    "sobel_magnitude",
    "threshold",
    "FilterPipeline",
    "FilterStage",
]
