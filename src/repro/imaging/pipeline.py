"""The filter pipeline: run it, and compile it onto the grid.

A :class:`FilterPipeline` is an ordered chain of named stages.  It can:

* :meth:`apply` -- run in-process over a frame (ground truth for tests);
* :meth:`compile_to_application` -- emit the framework artifacts: one
  Eq. 2 task per stage (fabric tasks with per-stage bitstreams) wrapped
  in an Eq. 3 ``Stream`` application, so DReAMSim pipelines frame tiles
  through the stages exactly the way a streaming overlay would.

Per-stage cost metadata (reference seconds per megapixel, accelerator
speedup, circuit area) drives the simulator's timing; defaults follow
the usual stencil-economics (blur and Sobel are window engines with
large speedups; threshold is trivial).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.application import Application, Clause, ClauseKind
from repro.core.execreq import Artifacts, ExecReq, MinValue
from repro.core.task import DataIn, DataOut, EXTERNAL_SOURCE, Task
from repro.hardware.bitstream import Bitstream
from repro.hardware.fpga import FPGADevice
from repro.hardware.taxonomy import PEClass
from repro.imaging.filters import gaussian_blur, sobel_magnitude, threshold


@dataclass(frozen=True)
class FilterStage:
    """One pipeline stage with its acceleration economics."""

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    ref_seconds_per_mpix: float
    speedup_vs_gpp: float
    circuit_slices: int

    def __post_init__(self) -> None:
        if self.ref_seconds_per_mpix <= 0:
            raise ValueError("reference time must be positive")
        if self.speedup_vs_gpp <= 0:
            raise ValueError("speedup must be positive")
        if self.circuit_slices <= 0:
            raise ValueError("circuit area must be positive")


def default_stages() -> list[FilterStage]:
    """Blur -> Sobel -> threshold with stencil-typical economics."""
    return [
        FilterStage("gaussian_blur", lambda im: gaussian_blur(im, 1.2), 0.9, 25.0, 6_500),
        FilterStage("sobel_magnitude", sobel_magnitude, 0.6, 30.0, 4_800),
        FilterStage("threshold", threshold, 0.05, 4.0, 900),
    ]


class FilterPipeline:
    """An ordered chain of :class:`FilterStage`."""

    def __init__(self, stages: list[FilterStage] | None = None):
        self.stages = stages if stages is not None else default_stages()
        if not self.stages:
            raise ValueError("a pipeline needs at least one stage")
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError("stage names must be unique")

    # ------------------------------------------------------------------
    # In-process execution (ground truth)
    # ------------------------------------------------------------------
    def apply(self, frame: np.ndarray) -> np.ndarray:
        """Run the chain over one frame."""
        out = frame
        for stage in self.stages:
            out = stage.fn(out)
        return out

    # ------------------------------------------------------------------
    # Compilation onto the framework
    # ------------------------------------------------------------------
    def compile_to_application(
        self,
        device: FPGADevice,
        *,
        frame_shape: tuple[int, int] = (1_080, 1_920),
        first_task_id: int = 0,
    ) -> tuple[Application, dict[int, Task]]:
        """Emit (Stream application, task bodies) for this chain.

        Every stage becomes an RPE task carrying a device bitstream for
        its circuit; stage *i* consumes stage *i-1*'s frames.  Workloads
        derive from the frame size and each stage's reference cost.
        """
        mpix = frame_shape[0] * frame_shape[1] / 1e6
        frame_bytes = frame_shape[0] * frame_shape[1]  # 8-bit pixels
        tasks: dict[int, Task] = {}
        for offset, stage in enumerate(self.stages):
            task_id = first_task_id + offset
            if stage.circuit_slices > device.slices:
                raise ValueError(
                    f"stage {stage.name!r} needs {stage.circuit_slices} slices; "
                    f"{device.model} has {device.slices}"
                )
            bitstream = Bitstream(
                bitstream_id=40_000 + task_id,
                target_model=device.model,
                size_bytes=device.bitstream_size_bytes(stage.circuit_slices),
                required_slices=stage.circuit_slices,
                implements=stage.name,
                speedup_vs_gpp=stage.speedup_vs_gpp,
            )
            source = EXTERNAL_SOURCE if offset == 0 else task_id - 1
            ref_time = stage.ref_seconds_per_mpix * mpix
            tasks[task_id] = Task(
                task_id=task_id,
                data_in=(DataIn(source, 0, frame_bytes),),
                data_out=(DataOut(0, frame_bytes),),
                exec_req=ExecReq(
                    node_type=PEClass.RPE,
                    constraints=(MinValue("slices", stage.circuit_slices),),
                    artifacts=Artifacts(
                        application_code=f"imaging --stage {stage.name}",
                        bitstream=bitstream,
                        input_data_bytes=frame_bytes,
                    ),
                ),
                t_estimated=ref_time / stage.speedup_vs_gpp,
                workload_mi=ref_time * 1_000.0,
                function=stage.name,
            )
        application = Application(
            clauses=(
                Clause(ClauseKind.STREAM, tuple(sorted(tasks))),
            ),
            name="imaging-pipeline",
        )
        return application, tasks
