"""A gprof-style call-graph profiler.

gprof [18] reports, per function: call count, *self* seconds (time in
the function excluding callees), *cumulative* seconds (including
callees), and the caller/callee graph.  This profiler produces the same
data by explicitly wrapping the functions of interest -- unlike
``sys.setprofile`` tracing it only measures the kernels you name, which
keeps overhead out of the numbers and matches how Figure 10 presents
the "top 10 compute-intensive kernels".

Self-time accounting uses the classic shadow stack: each frame
accumulates its children's elapsed time; on return,
``self = elapsed - child_time`` and ``elapsed`` is charged to the
parent's child counter.
"""

from __future__ import annotations

import functools
import time
from collections.abc import Callable
from dataclasses import dataclass


@dataclass
class _FunctionStats:
    calls: int = 0
    self_s: float = 0.0
    cumulative_s: float = 0.0


@dataclass(frozen=True)
class FlatProfileRow:
    """One line of the gprof flat profile."""

    name: str
    calls: int
    self_s: float
    cumulative_s: float
    self_pct: float


class CallGraphProfiler:
    """Wrap functions, run a workload, read the profile.

    Usage::

        prof = CallGraphProfiler()
        fast = prof.wrap(my_kernel)        # instrumented callable
        prof.instrument(module, "kernel")  # or patch in place
        ... run workload ...
        for row in prof.flat_profile():
            print(row)

    ``clock`` is injectable for deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.stats: dict[str, _FunctionStats] = {}
        self.edges: dict[tuple[str, str], int] = {}
        # Shadow stack of [name, start_time, child_elapsed].
        self._stack: list[list] = []
        self._patches: list[tuple[object, str, object]] = []

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def wrap(self, func: Callable, name: str | None = None) -> Callable:
        """Return an instrumented version of *func*."""
        label = name or func.__name__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if self._stack:
                parent = self._stack[-1][0]
                self.edges[(parent, label)] = self.edges.get((parent, label), 0) + 1
            frame = [label, self._clock(), 0.0]
            self._stack.append(frame)
            try:
                return func(*args, **kwargs)
            finally:
                self._stack.pop()
                elapsed = self._clock() - frame[1]
                stats = self.stats.setdefault(label, _FunctionStats())
                stats.calls += 1
                stats.cumulative_s += elapsed
                stats.self_s += elapsed - frame[2]
                if self._stack:
                    self._stack[-1][2] += elapsed

        return wrapper

    def instrument(self, obj: object, *names: str) -> None:
        """Patch ``obj.<name>`` attributes in place (undo with
        :meth:`restore`).  *obj* is typically a module."""
        for name in names:
            original = getattr(obj, name)
            setattr(obj, name, self.wrap(original, name=name))
            self._patches.append((obj, name, original))

    def restore(self) -> None:
        """Undo every :meth:`instrument` patch (LIFO)."""
        while self._patches:
            obj, name, original = self._patches.pop()
            setattr(obj, name, original)

    def __enter__(self) -> "CallGraphProfiler":
        return self

    def __exit__(self, *exc) -> None:
        self.restore()

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    @property
    def total_self_s(self) -> float:
        return sum(s.self_s for s in self.stats.values())

    def flat_profile(self) -> list[FlatProfileRow]:
        """Rows sorted by self time, descending -- gprof's flat profile."""
        total = self.total_self_s
        rows = [
            FlatProfileRow(
                name=name,
                calls=s.calls,
                self_s=s.self_s,
                cumulative_s=s.cumulative_s,
                self_pct=(100.0 * s.self_s / total) if total > 0 else 0.0,
            )
            for name, s in self.stats.items()
        ]
        rows.sort(key=lambda r: (-r.self_s, r.name))
        return rows

    def top(self, n: int = 10) -> list[FlatProfileRow]:
        """The Figure 10 view: top-*n* kernels by self time."""
        if n <= 0:
            raise ValueError("n must be positive")
        return self.flat_profile()[:n]

    def cumulative_pct(self, name: str) -> float:
        """Share of total time spent in *name* including its callees --
        the quantity the paper reports (pairalign 89.76 %, malign
        7.79 % are cumulative shares)."""
        total = self.total_self_s
        if total <= 0:
            return 0.0
        return 100.0 * self.stats[name].cumulative_s / total

    def callers_of(self, name: str) -> dict[str, int]:
        return {p: c for (p, ch), c in self.edges.items() if ch == name}

    def callees_of(self, name: str) -> dict[str, int]:
        return {ch: c for (p, ch), c in self.edges.items() if p == name}

    def callgraph_report(self, top: int | None = None) -> str:
        """Render gprof's *second* section: one block per function with
        its callers above and callees below, edge call counts, and the
        function's own calls/self/cumulative line between them."""
        rows = self.flat_profile()
        if top is not None:
            rows = rows[:top]
        lines = ["Call graph:", ""]
        for index, row in enumerate(rows):
            for caller, count in sorted(self.callers_of(row.name).items()):
                lines.append(f"                 {count:>8}/{row.calls:<8}    {caller}")
            lines.append(
                f"[{index + 1}] {row.self_pct:5.1f}% {row.self_s:9.4f} "
                f"{row.cumulative_s:9.4f} {row.calls:>8}  {row.name}"
            )
            for callee, count in sorted(self.callees_of(row.name).items()):
                total = self.stats[callee].calls if callee in self.stats else count
                lines.append(f"                 {count:>8}/{total:<8}    {callee}")
            lines.append("-" * 60)
        return "\n".join(lines)

    def gprof_report(self, top: int | None = None) -> str:
        """Render the flat profile in gprof's classic layout."""
        rows = self.flat_profile()
        if top is not None:
            rows = rows[:top]
        lines = [
            "Flat profile:",
            "",
            "  %       self      cumulative",
            " time    seconds     seconds      calls  name",
        ]
        for row in rows:
            lines.append(
                f"{row.self_pct:6.2f} {row.self_s:10.4f}  {row.cumulative_s:10.4f} "
                f"{row.calls:10d}  {row.name}"
            )
        return "\n".join(lines)


def profile_call(func: Callable, *args, **kwargs) -> tuple[object, CallGraphProfiler]:
    """One-shot: profile a single call of *func* (only *func* itself is
    instrumented; use :class:`CallGraphProfiler` for kernel breakdowns).
    """
    profiler = CallGraphProfiler()
    wrapped = profiler.wrap(func)
    result = wrapped(*args, **kwargs)
    return result, profiler
