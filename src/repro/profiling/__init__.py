"""Profiling substrate: gprof and Quipu stand-ins.

The case study's methodology (Section V) is:

1. profile ClustalW with **gprof** [18] to find the compute-intensive
   kernels (Figure 10);
2. feed those kernels to **Quipu** [19], "a linear model based on
   software complexity metrics (SCMs)" that "can estimate the number of
   slices, memory units, and look-up tables (LUTs) within reasonable
   bounds in an early design stage" -- obtaining 30,790 slices for
   *pairalign* and 18,707 for *malign* on Virtex-5.

This package rebuilds both tools:

* :mod:`repro.profiling.callgraph` -- a deterministic call-graph
  profiler (flat profile with self/cumulative seconds and call counts,
  caller/callee edges) with gprof-style rendering.
* :mod:`repro.profiling.metrics` -- software complexity metrics over
  Python ASTs (SLOC, cyclomatic complexity, Halstead counts, loop
  nesting, memory accesses), including call-closure aggregation.
* :mod:`repro.profiling.quipu` -- the linear SCM->hardware-resources
  model, least-squares fitting, and the paper-anchor calibration.
"""

from repro.profiling.callgraph import CallGraphProfiler, FlatProfileRow, profile_call
from repro.profiling.metrics import ComplexityMetrics, measure, measure_closure
from repro.profiling.quipu import (
    HardwareEstimate,
    QuipuModel,
    calibrated_model,
    PAPER_PAIRALIGN_SLICES,
    PAPER_MALIGN_SLICES,
)

__all__ = [
    "CallGraphProfiler",
    "FlatProfileRow",
    "profile_call",
    "ComplexityMetrics",
    "measure",
    "measure_closure",
    "HardwareEstimate",
    "QuipuModel",
    "calibrated_model",
    "PAPER_PAIRALIGN_SLICES",
    "PAPER_MALIGN_SLICES",
]
