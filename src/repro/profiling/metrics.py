"""Software complexity metrics (Quipu's SCM feature extraction).

Quipu [19] is "a linear model based on software complexity metrics"
that predicts hardware resource usage of a kernel before any HDL
exists.  The metrics it uses (and we extract here, from Python ASTs
rather than C) are the classic static measures:

* source lines of code (statements);
* McCabe cyclomatic complexity (decision points + 1);
* Halstead operator/operand counts and derived volume;
* loop count and maximum loop nesting depth (hardware pipelines);
* memory-access count (subscript expressions -> BRAM ports);
* arithmetic-operation count (-> DSP slices);
* call count (-> submodules).

:func:`measure_closure` aggregates a function together with the
module-local functions it calls, because a hardware kernel is the whole
call tree, not one Python ``def``.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from collections.abc import Callable
from dataclasses import dataclass, fields


@dataclass(frozen=True)
class ComplexityMetrics:
    """The SCM feature vector of one kernel."""

    sloc: int = 0
    cyclomatic: int = 1
    operators: int = 0  # Halstead N1
    operands: int = 0  # Halstead N2
    distinct_operators: int = 0  # Halstead n1
    distinct_operands: int = 0  # Halstead n2
    loops: int = 0
    max_loop_depth: int = 0
    branches: int = 0
    memory_accesses: int = 0
    arithmetic_ops: int = 0
    calls: int = 0

    @property
    def halstead_volume(self) -> float:
        """N * log2(n) with N = N1 + N2, n = n1 + n2."""
        import math

        n = self.distinct_operators + self.distinct_operands
        big_n = self.operators + self.operands
        if n <= 1 or big_n == 0:
            return 0.0
        return big_n * math.log2(n)

    def combine(self, other: "ComplexityMetrics") -> "ComplexityMetrics":
        """Aggregate two kernels (closure aggregation).

        Counts add; cyclomatic adds as ``c1 + c2 - 1`` (one shared
        entry); nesting depth takes the maximum.
        """
        return ComplexityMetrics(
            sloc=self.sloc + other.sloc,
            cyclomatic=self.cyclomatic + other.cyclomatic - 1,
            operators=self.operators + other.operators,
            operands=self.operands + other.operands,
            distinct_operators=max(self.distinct_operators, other.distinct_operators),
            distinct_operands=self.distinct_operands + other.distinct_operands,
            loops=self.loops + other.loops,
            max_loop_depth=max(self.max_loop_depth, other.max_loop_depth),
            branches=self.branches + other.branches,
            memory_accesses=self.memory_accesses + other.memory_accesses,
            arithmetic_ops=self.arithmetic_ops + other.arithmetic_ops,
            calls=self.calls + other.calls,
        )

    def as_vector(self) -> list[float]:
        """Feature vector (declared-field order, then Halstead volume)."""
        return [float(getattr(self, f.name)) for f in fields(self)] + [
            self.halstead_volume
        ]

    @staticmethod
    def feature_names() -> list[str]:
        return [f.name for f in fields(ComplexityMetrics)] + ["halstead_volume"]


_DECISION_NODES = (ast.If, ast.While, ast.For, ast.IfExp, ast.Assert, ast.ExceptHandler)
_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow, ast.MatMult)


class _MetricsVisitor(ast.NodeVisitor):
    def __init__(self) -> None:
        self.statements = 0
        self.decisions = 0
        self.bool_values = 0
        self.operators = 0
        self.operand_names: list[str] = []
        self.operator_kinds: set[str] = set()
        self.loops = 0
        self.loop_depth = 0
        self.max_loop_depth = 0
        self.branches = 0
        self.memory_accesses = 0
        self.arithmetic_ops = 0
        self.calls = 0
        self.called_names: set[str] = set()

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.stmt):
            self.statements += 1
        if isinstance(node, _DECISION_NODES):
            self.decisions += 1
            if isinstance(node, (ast.If, ast.IfExp)):
                self.branches += 1
        if isinstance(node, ast.BoolOp):
            # Each extra boolean term adds a decision path.
            self.decisions += len(node.values) - 1
            self.operators += len(node.values) - 1
            self.operator_kinds.add(type(node.op).__name__)
        if isinstance(node, (ast.For, ast.While)):
            self.loops += 1
            self.loop_depth += 1
            self.max_loop_depth = max(self.max_loop_depth, self.loop_depth)
            super().generic_visit(node)
            self.loop_depth -= 1
            return
        if isinstance(node, (ast.BinOp, ast.UnaryOp, ast.AugAssign)):
            self.operators += 1
            op = getattr(node, "op", None)
            if op is not None:
                self.operator_kinds.add(type(op).__name__)
                if isinstance(op, _ARITH_OPS):
                    self.arithmetic_ops += 1
        if isinstance(node, ast.Compare):
            self.operators += len(node.ops)
            for op in node.ops:
                self.operator_kinds.add(type(op).__name__)
        if isinstance(node, ast.Subscript):
            self.memory_accesses += 1
        if isinstance(node, ast.Call):
            self.calls += 1
            target = node.func
            if isinstance(target, ast.Name):
                self.called_names.add(target.id)
            elif isinstance(target, ast.Attribute):
                self.called_names.add(target.attr)
        if isinstance(node, ast.Name):
            self.operand_names.append(node.id)
        if isinstance(node, ast.Constant):
            self.operand_names.append(repr(node.value))
        super().generic_visit(node)


def _metrics_from_tree(tree: ast.AST) -> tuple[ComplexityMetrics, set[str]]:
    visitor = _MetricsVisitor()
    visitor.visit(tree)
    metrics = ComplexityMetrics(
        sloc=visitor.statements,
        cyclomatic=visitor.decisions + 1,
        operators=visitor.operators,
        operands=len(visitor.operand_names),
        distinct_operators=len(visitor.operator_kinds),
        distinct_operands=len(set(visitor.operand_names)),
        loops=visitor.loops,
        max_loop_depth=visitor.max_loop_depth,
        branches=visitor.branches,
        memory_accesses=visitor.memory_accesses,
        arithmetic_ops=visitor.arithmetic_ops,
        calls=visitor.calls,
    )
    return metrics, visitor.called_names


def measure_source(source: str) -> ComplexityMetrics:
    """Metrics of a source fragment (module, function, or statements)."""
    tree = ast.parse(textwrap.dedent(source))
    return _metrics_from_tree(tree)[0]


def measure(func: Callable) -> ComplexityMetrics:
    """Metrics of one Python function."""
    return measure_source(inspect.getsource(func))


def measure_closure(func: Callable, *, max_depth: int = 3) -> ComplexityMetrics:
    """Metrics of *func* plus the same-module functions it calls,
    transitively up to *max_depth* -- a hardware kernel is the whole
    call tree (Quipu analyzed complete C kernels, not single functions).
    """
    if max_depth < 0:
        raise ValueError("max_depth must be non-negative")
    module = inspect.getmodule(func)
    seen: set[str] = set()
    total: ComplexityMetrics | None = None
    frontier: list[tuple[Callable, int]] = [(func, 0)]
    while frontier:
        current, depth = frontier.pop()
        name = current.__name__
        if name in seen:
            continue
        seen.add(name)
        try:
            tree = ast.parse(textwrap.dedent(inspect.getsource(current)))
        except (OSError, TypeError):
            continue
        metrics, called = _metrics_from_tree(tree)
        total = metrics if total is None else total.combine(metrics)
        if depth >= max_depth or module is None:
            continue
        for called_name in sorted(called):
            candidate = getattr(module, called_name, None)
            if callable(candidate) and inspect.getmodule(candidate) is module:
                frontier.append((candidate, depth + 1))
    assert total is not None
    return total
