"""Quipu: the quantitative hardware/software-partitioning predictor.

Quipu [19] "is a linear model based on software complexity metrics
(SCMs), and can estimate the number of slices, memory units, and
look-up tables (LUTs) within reasonable bounds in an early design
stage.  Furthermore, such a model can make predictions in a relatively
short time, as required in a hardware/software partitioning context."

:class:`QuipuModel` is exactly that: a linear map from the
:class:`~repro.profiling.metrics.ComplexityMetrics` feature vector to
slice / LUT / BRAM / DSP estimates.  Models can be:

* **fit** from (metrics, observed-resources) samples by least squares
  (:meth:`QuipuModel.fit`), the way the original was trained on a
  kernel corpus; or
* **calibrated to the paper's anchors** (:func:`calibrated_model`):
  Section V reports *pairalign* -> 30,790 slices and *malign* ->
  18,707 slices on Virtex-5.  We measure our own pairalign/malign call
  closures and solve the two-parameter (scale, offset) system so the
  model reproduces both numbers exactly while remaining a linear
  function of the composite complexity score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.profiling.metrics import ComplexityMetrics

#: The slice counts Section V reports for the two ClustalW kernels.
PAPER_PAIRALIGN_SLICES = 30_790
PAPER_MALIGN_SLICES = 18_707

#: Base per-feature slice costs (the "physical" prior the calibration
#: rescales).  Order must match ComplexityMetrics.feature_names():
#: sloc, cyclomatic, operators, operands, distinct_operators,
#: distinct_operands, loops, max_loop_depth, branches, memory_accesses,
#: arithmetic_ops, calls, halstead_volume.
DEFAULT_SLICE_WEIGHTS = np.array(
    [12.0, 80.0, 6.0, 2.0, 15.0, 4.0, 120.0, 90.0, 40.0, 25.0, 45.0, 30.0, 1.5]
)

#: Virtex-5 slices hold 4 six-input LUTs.
LUTS_PER_SLICE = 4.0
#: BRAM scales with memory accesses; DSP with arithmetic ops.
BRAM_KB_PER_MEMORY_ACCESS = 0.75
DSP_PER_ARITHMETIC_OP = 0.08


@dataclass(frozen=True)
class HardwareEstimate:
    """Predicted fabric resources for one kernel."""

    slices: int
    luts: int
    bram_kb: int
    dsp_slices: int

    def __post_init__(self) -> None:
        if min(self.slices, self.luts, self.bram_kb, self.dsp_slices) < 0:
            raise ValueError("resource estimates must be non-negative")

    def fits(self, device) -> bool:
        """Whether the estimate fits an :class:`FPGADevice`."""
        return (
            self.slices <= device.slices
            and self.luts <= device.luts
            and self.bram_kb <= device.bram_kb
            and self.dsp_slices <= device.dsp_slices
        )


class QuipuModel:
    """Linear SCM -> resources model: ``slices = w . f * scale + offset``."""

    def __init__(
        self,
        weights: np.ndarray | None = None,
        *,
        scale: float = 1.0,
        offset: float = 0.0,
    ):
        self.weights = (
            DEFAULT_SLICE_WEIGHTS.copy() if weights is None else np.asarray(weights, dtype=float)
        )
        if self.weights.ndim != 1:
            raise ValueError("weights must be a vector")
        self.scale = scale
        self.offset = offset

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def raw_score(self, metrics: ComplexityMetrics) -> float:
        """The composite complexity score ``w . f`` before calibration."""
        features = np.asarray(metrics.as_vector())
        if features.shape != self.weights.shape:
            raise ValueError(
                f"feature vector has {features.shape[0]} entries; "
                f"model expects {self.weights.shape[0]}"
            )
        return float(self.weights @ features)

    def predict_slices(self, metrics: ComplexityMetrics) -> int:
        return max(0, int(round(self.raw_score(metrics) * self.scale + self.offset)))

    def predict(self, metrics: ComplexityMetrics) -> HardwareEstimate:
        slices = self.predict_slices(metrics)
        return HardwareEstimate(
            slices=slices,
            luts=int(round(slices * LUTS_PER_SLICE)),
            bram_kb=int(round(metrics.memory_accesses * BRAM_KB_PER_MEMORY_ACCESS)),
            dsp_slices=int(round(metrics.arithmetic_ops * DSP_PER_ARITHMETIC_OP)),
        )

    # ------------------------------------------------------------------
    # Training / calibration
    # ------------------------------------------------------------------
    def fit(
        self, samples: list[tuple[ComplexityMetrics, float]]
    ) -> "QuipuModel":
        """Least-squares refit of the full weight vector from
        (metrics, observed slices) samples; returns a new model."""
        if len(samples) < 2:
            raise ValueError("need at least two samples to fit")
        x = np.array([m.as_vector() for m, _ in samples])
        y = np.array([s for _, s in samples], dtype=float)
        weights, *_ = np.linalg.lstsq(x, y, rcond=None)
        return QuipuModel(weights=weights, scale=1.0, offset=0.0)

    def calibrate(
        self,
        anchors: list[tuple[ComplexityMetrics, float]],
    ) -> "QuipuModel":
        """Two-point calibration: solve scale/offset so the model hits
        the anchor slice counts exactly (keeps the weight prior)."""
        if len(anchors) != 2:
            raise ValueError("two-point calibration needs exactly two anchors")
        (m1, y1), (m2, y2) = anchors
        r1, r2 = self.raw_score(m1), self.raw_score(m2)
        if abs(r1 - r2) < 1e-12:
            raise ValueError("anchor kernels have identical complexity; cannot calibrate")
        scale = (y1 - y2) / (r1 - r2)
        if scale <= 0:
            raise ValueError(
                "calibration produced a non-positive scale: the anchor with "
                "more complexity must need more slices"
            )
        offset = y1 - scale * r1
        return QuipuModel(weights=self.weights, scale=scale, offset=offset)


def calibrated_model() -> QuipuModel:
    """The Quipu model calibrated to the paper's two Virtex-5 anchors.

    Measures this library's actual ``pairalign`` and ``malign`` call
    closures and fits (scale, offset) so that the predictions reproduce
    30,790 and 18,707 slices exactly.
    """
    import importlib

    # The package re-exports the pipeline *functions* under the same
    # names as their modules, so fetch the modules via importlib.
    pairalign_mod = importlib.import_module("repro.bioinfo.pairalign")
    malign_mod = importlib.import_module("repro.bioinfo.malign")
    from repro.profiling.metrics import measure_closure

    m_pair = measure_closure(pairalign_mod.pairalign)
    m_mal = measure_closure(malign_mod.malign)
    return QuipuModel().calibrate(
        [(m_pair, PAPER_PAIRALIGN_SLICES), (m_mal, PAPER_MALIGN_SLICES)]
    )
