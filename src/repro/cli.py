"""Command-line interface: ``python -m repro <command>``.

Commands map to the paper's artifacts and the library's experiments:

* ``catalog``    -- list the modeled FPGA devices (Table I's FPGA rows).
* ``taxonomy``   -- print the Figure 1 taxonomy tree.
* ``table2``     -- regenerate Table II from the case-study models.
* ``casestudy``  -- run the full Section V pipeline (profile -> Quipu
  -> Table II -> simulation).
* ``simulate``   -- run a synthetic DReAMSim experiment
  (``--strategy``, ``--tasks``, ``--seed``, ``--gpp-fraction``...;
  ``--trace`` writes a validated JSONL event trace, ``--faults`` injects
  a named fault scenario, ``--jobs`` / ``--cache-dir`` parallelize and
  cache ``--replications``).
* ``sweep``      -- sweep one ExperimentSpec knob across values
  through the parallel runner (``--field``, ``--values``, ``--jobs``).
* ``chaos``      -- compare scheduling strategies under a fault preset
  and report the recovery metrics (availability, MTTR, wasted work,
  goodput).  Both ``simulate`` and ``chaos`` accept the resilience
  flags ``--breaker``, ``--deadlines``, ``--checkpoint-interval`` and
  ``--speculative`` (see :mod:`repro.sim.resilience`).
* ``clustalw``   -- align a FASTA file (or a generated family) and
  print the MSA; optionally profile it (Figure 10).
* ``bench``      -- run the registered benchmark cases through the
  unified harness (``--filter``, ``--repeat``, ``--quick``) and write
  a schema-versioned ``BENCH_<timestamp>.json`` (``--json``).
* ``diff``       -- compare two bench suites / report dumps /
  telemetry dumps metric-by-metric with relative tolerances; exits 1
  on regression, 2 when the runs are not comparable.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.report import ascii_bar_chart, ascii_table


def _cmd_catalog(args: argparse.Namespace) -> int:
    from repro.hardware.catalog import DEVICE_CATALOG

    devices = sorted(DEVICE_CATALOG.values(), key=lambda d: (d.family, d.slices))
    rows = [
        (d.model, d.family, d.slices, d.luts, d.bram_kb, d.dsp_slices,
         f"{d.reconfig_bandwidth_mbps:.0f}")
        for d in devices
        if args.family is None or d.family == args.family
    ]
    print(
        ascii_table(
            ["model", "family", "slices", "LUTs", "BRAM KB", "DSP", "cfg MB/s"],
            rows,
            title="Device catalog",
        )
    )
    return 0


def _cmd_taxonomy(args: argparse.Namespace) -> int:
    from repro.hardware.taxonomy import taxonomy_tree

    for depth, node in taxonomy_tree().walk():
        section = f"  [{node.section}]" if node.section else ""
        print("  " * depth + f"- {node.label}{section}")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.casestudy.mappings import matches_paper, table2
    from repro.casestudy.nodes import build_case_study_nodes
    from repro.casestudy.tasks import build_case_study_tasks

    tasks = build_case_study_tasks()
    nodes = build_case_study_nodes()
    for row in table2(tasks, nodes):
        print(row.format())
    print(f"matches the published table: {matches_paper(tasks, nodes)}")
    return 0


def _cmd_casestudy(args: argparse.Namespace) -> int:
    from repro.casestudy.pipeline import run_case_study

    outcome = run_case_study(
        family_size=args.family_size, sequence_length=args.length, seed=args.seed
    )
    print(
        ascii_bar_chart(
            [row.name for row in outcome.profile_rows],
            [row.self_pct for row in outcome.profile_rows],
            title="Figure 10: top kernels (% self time)",
            unit="%",
        )
    )
    print(f"\npairalign cumulative: {outcome.pairalign_pct:.2f}%  (paper 89.76%)")
    print(f"malign cumulative:    {outcome.malign_pct:.2f}%  (paper 7.79%)")
    print(f"\nQuipu: pairalign {outcome.pairalign_slices} / malign {outcome.malign_slices} slices")
    print("\nTable II:")
    for row in outcome.table:
        print("  " + row.format())
    print(f"  matches paper: {outcome.matches_paper_table2}")
    print("\nSimulation:")
    print("\n".join("  " + l for l in outcome.simulation.summary_lines()))
    return 0


def _default_grid_nodes():
    from repro.sim.experiment import NodeSpec

    return (
        NodeSpec(gpps=1, gpp_mips=2_000, rpe_models=("XC5VLX330",), regions_per_rpe=3),
        NodeSpec(gpps=1, gpp_mips=1_500, rpe_models=("XC5VLX155",), regions_per_rpe=2),
    )


def _resilience_from_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
):
    """Build a ResilienceSpec from ``--breaker``/``--deadlines``/
    ``--checkpoint-interval``/``--speculative``; None when all are off.

    Malformed values become ``parser.error`` (usage + exit code 2)
    rather than tracebacks.
    """
    from repro.grid.health import HealthPolicy
    from repro.sim.resilience import (
        CheckpointSpec,
        DeadlineSpec,
        ResilienceSpec,
        SpeculationSpec,
    )

    deadlines = None
    if args.deadlines is not None:
        soft_text, _, hard_text = args.deadlines.partition(":")
        try:
            deadlines = DeadlineSpec(
                soft_factor=float(soft_text),
                hard_factor=float(hard_text or soft_text),
            )
        except ValueError as exc:
            parser.error(
                f"--deadlines must be SOFT:HARD positive factors "
                f"(hard >= soft), got {args.deadlines!r}: {exc}"
            )
    checkpoint = None
    if args.checkpoint_interval is not None:
        if args.checkpoint_interval <= 0:
            parser.error("--checkpoint-interval must be positive")
        checkpoint = CheckpointSpec(interval_s=args.checkpoint_interval)
    speculation = None
    if args.speculative is not None:
        if args.speculative <= 1.0:
            parser.error("--speculative factor must be > 1")
        speculation = SpeculationSpec(slowdown_factor=args.speculative)
    spec = ResilienceSpec(
        breaker=HealthPolicy() if args.breaker else None,
        deadlines=deadlines,
        checkpoint=checkpoint,
        speculation=speculation,
    )
    return spec if spec.enabled else None


def _add_resilience_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--breaker", action="store_true",
                   help="enable node health scoring + circuit breakers")
    p.add_argument("--deadlines", nargs="?", const="4:12", metavar="SOFT:HARD",
                   help="enable task deadlines at SOFT:HARD multiples of "
                        "t_estimated (default 4:12)")
    p.add_argument("--checkpoint-interval", type=float, default=None, metavar="S",
                   help="checkpoint fabric tasks every S simulated seconds")
    p.add_argument("--speculative", nargs="?", const=2.0, type=float,
                   metavar="FACTOR",
                   help="replicate a task once it runs FACTOR x its expected "
                        "time (default 2.0)")


def _add_failover_flags(p: argparse.ArgumentParser) -> None:
    from repro.sim.failover import FAILOVER_PRESETS

    p.add_argument("--failover", choices=sorted(FAILOVER_PRESETS), default=None,
                   help="control-plane fault-tolerance preset "
                        "(see repro.sim.failover)")
    p.add_argument("--standbys", type=int, default=None, metavar="N",
                   help="override the preset's warm-standby count")


def _failover_from_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
):
    """Build a FailoverSpec from ``--failover``/``--standbys``; None
    when neither is given (the exact pre-failover simulator)."""
    from dataclasses import replace

    from repro.sim.failover import FAILOVER_PRESETS, FailoverSpec

    if args.failover is None and args.standbys is None:
        return None
    spec = (
        FAILOVER_PRESETS[args.failover]
        if args.failover is not None
        else FailoverSpec()
    )
    if args.standbys is not None:
        if args.standbys < 0:
            parser.error("--standbys must be non-negative")
        spec = replace(spec, standbys=args.standbys)
    return spec if spec.enabled else None


def _admission_from_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
):
    """Build an AdmissionSpec from ``--admission``/``--max-pending``/
    ``--rate-limit``/``--utilization-gate``/``--brownout``; None when
    everything is off.  Explicit flags override the preset's fields.
    Malformed values become ``parser.error`` (usage + exit code 2)."""
    from repro.sim.admission import (
        ADMISSION_PRESETS,
        AdmissionSpec,
        BrownoutSpec,
        QueueBoundSpec,
        TokenBucketSpec,
        UtilizationSpec,
    )

    preset = (
        ADMISSION_PRESETS[args.admission] if args.admission else AdmissionSpec()
    )
    queue = preset.queue
    rate = preset.rate
    utilization = preset.utilization
    brownout = preset.brownout
    if args.max_pending is not None:
        base = queue if queue is not None else QueueBoundSpec()
        try:
            queue = QueueBoundSpec(
                max_pending=args.max_pending,
                defer=base.defer or args.defer_submissions,
                defer_delay_s=base.defer_delay_s,
                max_defers=base.max_defers,
            )
        except ValueError as exc:
            parser.error(f"--max-pending: {exc}")
    elif args.defer_submissions and queue is not None:
        queue = QueueBoundSpec(
            max_pending=queue.max_pending,
            defer=True,
            defer_delay_s=queue.defer_delay_s,
            max_defers=queue.max_defers,
        )
    elif args.defer_submissions:
        parser.error("--defer needs a bounded queue (--max-pending or a preset)")
    if args.rate_limit is not None:
        rate_text, _, burst_text = args.rate_limit.partition(":")
        try:
            rate = TokenBucketSpec(
                rate_per_s=float(rate_text),
                burst=float(burst_text) if burst_text else 8.0,
            )
        except ValueError as exc:
            parser.error(
                f"--rate-limit must be RATE[:BURST], got {args.rate_limit!r}: {exc}"
            )
    if args.utilization_gate is not None:
        try:
            utilization = UtilizationSpec(threshold=args.utilization_gate)
        except ValueError as exc:
            parser.error(f"--utilization-gate: {exc}")
    if args.brownout is not None:
        parts = args.brownout.split(":")
        try:
            if len(parts) not in (2, 3):
                raise ValueError("expected ENTER:EXIT[:DWELL]")
            brownout = BrownoutSpec(
                enter_pending=int(parts[0]),
                exit_pending=int(parts[1]),
                dwell_s=float(parts[2]) if len(parts) == 3 else 1.0,
            )
        except ValueError as exc:
            parser.error(
                f"--brownout must be ENTER:EXIT[:DWELL] with exit < enter, "
                f"got {args.brownout!r}: {exc}"
            )
    spec = AdmissionSpec(
        queue=queue, rate=rate, utilization=utilization, brownout=brownout
    )
    return spec if spec.enabled else None


def _add_admission_flags(p: argparse.ArgumentParser) -> None:
    from repro.sim.admission import ADMISSION_PRESETS

    p.add_argument("--admission", choices=sorted(ADMISSION_PRESETS), default=None,
                   help="overload-protection preset (see repro.sim.admission)")
    p.add_argument("--max-pending", type=int, default=None, metavar="N",
                   help="bound the pending queue at N submissions")
    p.add_argument("--defer", dest="defer_submissions", action="store_true",
                   help="defer (backpressure) instead of shedding at the "
                        "queue bound")
    p.add_argument("--rate-limit", metavar="RATE[:BURST]",
                   help="token-bucket admission at RATE submissions/s "
                        "(burst default 8)")
    p.add_argument("--utilization-gate", type=float, default=None, metavar="T",
                   help="defer placements while grid occupancy >= T (0..1]")
    p.add_argument("--brownout", nargs="?", const="48:16:1.0",
                   metavar="ENTER:EXIT[:DWELL]",
                   help="staged brownout degradation: escalate after the "
                        "queue holds >= ENTER for DWELL s, recover at <= "
                        "EXIT (default 48:16:1.0)")


def _parse_flash_crowd(parser: argparse.ArgumentParser, text: str):
    parts = text.split(":")
    try:
        if len(parts) != 3:
            raise ValueError("expected START:DURATION:MULTIPLIER")
        return (float(parts[0]), float(parts[1]), float(parts[2]))
    except ValueError as exc:
        parser.error(
            f"--flash-crowd must be START:DURATION:MULTIPLIER, got {text!r}: {exc}"
        )


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.experiment import ExperimentSpec, run_experiment
    from repro.sim.faults import FAULT_PRESETS
    from repro.sim.runner import ExperimentRunner
    from repro.sim.telemetry import TelemetryRegistry
    from repro.sim.tracing import JsonlSink, TraceInvariantChecker, Tracer

    spec = ExperimentSpec(
        strategy=args.strategy,
        tasks=args.tasks,
        nodes=_default_grid_nodes(),
        configurations=args.configurations,
        arrival_rate_per_s=args.rate,
        gpp_fraction=args.gpp_fraction,
        # Area range bounded by the smallest PR region of the grid above
        # (XC5VLX155 / 2 regions = 12,160 slices): no unplaceable tasks.
        area_range=(2_000, 12_000),
        seed=args.seed,
        faults=FAULT_PRESETS[args.faults] if args.faults else None,
        resilience=args.resilience,
        engine=args.engine,
        admission=args.admission,
        failover=args.failover,
        low_priority_fraction=args.low_priority,
        flash_crowd=args.flash_crowd,
        tenants=args.tenants,
        slo=args.slo,
    )
    tracer = None
    if args.trace:
        tracer = Tracer(TraceInvariantChecker(), JsonlSink(args.trace))
    telemetry = TelemetryRegistry() if args.telemetry else None
    hostprof = None
    if args.profile_host:
        from repro.sim.hostprof import HostPhaseProfiler

        hostprof = HostPhaseProfiler()
    result = run_experiment(
        spec, audit_energy=args.energy, tracer=tracer, telemetry=telemetry,
        hostprof=hostprof,
    )
    print(f"strategy: {args.strategy}   seed: {args.seed}")
    print("\n".join(result.report.summary_lines()))
    if hostprof is not None:
        print(hostprof.table())
    if tracer is not None:
        tracer.close()
        checker = tracer.checker
        assert checker is not None
        print(
            f"trace                {tracer.events_emitted} events -> {args.trace} "
            f"(invariants OK: {checker.events_checked} checked)"
        )
    if telemetry is not None:
        telemetry.write_json(args.telemetry)
        print(
            f"telemetry            {len(telemetry.instruments)} instruments "
            f"-> {args.telemetry}"
        )
    if args.energy and result.energy is not None:
        print("\n".join(result.energy.summary_lines()))
    if args.report_json:
        from repro.sim.metrics import write_report_dump

        write_report_dump(
            args.report_json, spec, result.report, energy=result.energy
        )
        print(f"report dump          -> {args.report_json}")
    if args.replications > 1:
        runner = ExperimentRunner(
            jobs=args.jobs, cache_dir=args.cache_dir, progress=args.progress
        )
        summary = runner.replicate(
            spec, seeds=[args.seed + i for i in range(args.replications)]
        )
        print()
        print("\n".join(summary.summary_lines()))
        print(f"runner              {runner.last_stats.summary_line()}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Causal analysis of one or more traces.

    Exit status: 0 all analyses conserve, 1 any trace breaks the
    phases-sum-to-turnaround invariant, 2 a trace cannot be read.
    """
    from repro.sim.analysis import analyze_trace, write_analysis_json

    documents: dict[str, dict] = {}
    violated = False
    for i, path in enumerate(args.traces):
        try:
            analysis = analyze_trace(
                path, exemplars_k=args.exemplars, tenant=args.tenant
            )
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro analyze: error: {path}: {exc}", file=sys.stderr)
            return 2
        if i:
            print()
        print(f"=== {path} ===")
        print(analysis.render(top=args.top))
        documents[path] = analysis.to_json()
        if analysis.conservation_violations():
            violated = True
    if args.json:
        write_analysis_json(args.json, documents)
        print(f"\nanalysis json        -> {args.json}")
    if violated:
        print(
            "repro analyze: error: phase-ledger conservation violated "
            "(see FAIL lines above)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report_html import render_dashboard
    from repro.sim.telemetry import load_telemetry, write_chrome_trace
    from repro.sim.tracing import read_jsonl

    try:
        registry = load_telemetry(args.telemetry)
    except (OSError, ValueError) as exc:
        print(f"repro report: error: {exc}", file=sys.stderr)
        return 2
    events = None
    if args.trace:
        try:
            events = read_jsonl(args.trace)
        except OSError as exc:
            print(f"repro report: error: {exc}", file=sys.stderr)
            return 2
    html_text = render_dashboard(registry, events)
    Path(args.output).write_text(html_text, encoding="utf-8")
    print(f"dashboard            {len(html_text)} bytes -> {args.output}")
    if args.perfetto:
        if events is None:
            print(
                "repro report: error: --perfetto needs a trace file "
                "(pass TRACE as the second positional argument)",
                file=sys.stderr,
            )
            return 2
        count = write_chrome_trace(args.perfetto, events)
        print(
            f"perfetto             {count} trace events -> {args.perfetto} "
            "(open in chrome://tracing or ui.perfetto.dev)"
        )
    if args.openmetrics:
        Path(args.openmetrics).write_text(
            registry.open_metrics(), encoding="ascii"
        )
        print(f"openmetrics          -> {args.openmetrics}")
    return 0


#: ExperimentSpec fields sweepable from the command line, with the
#: parser for one comma-separated value.
SWEEPABLE_FIELDS = {
    "strategy": str,
    "tasks": int,
    "configurations": int,
    "arrival_rate_per_s": float,
    "gpp_fraction": float,
    "seed": int,
    "discard_after_s": float,
}


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.scheduling import ALL_STRATEGIES
    from repro.sim.experiment import ExperimentSpec
    from repro.sim.runner import ExperimentRunner

    parse = SWEEPABLE_FIELDS[args.field]
    if args.values:
        try:
            values = [parse(v) for v in args.values.split(",")]
        except ValueError:
            print(
                f"repro sweep: error: --values for {args.field!r} must be "
                f"comma-separated {parse.__name__} literals, got {args.values!r}",
                file=sys.stderr,
            )
            return 2
        if args.field == "strategy":
            bad = [v for v in values if v not in ALL_STRATEGIES]
            if bad:
                print(
                    f"repro sweep: error: unknown strategy values {bad}; choose "
                    "from " + ", ".join(sorted(ALL_STRATEGIES)),
                    file=sys.stderr,
                )
                return 2
    elif args.field == "strategy":
        values = sorted(ALL_STRATEGIES)
    else:
        print(f"--values is required when sweeping {args.field!r}", file=sys.stderr)
        return 2
    base = ExperimentSpec(
        strategy=args.strategy,
        tasks=args.tasks,
        nodes=_default_grid_nodes(),
        arrival_rate_per_s=args.rate,
        area_range=(2_000, 12_000),
        seed=args.seed,
    )
    runner = ExperimentRunner(
        jobs=args.jobs, cache_dir=args.cache_dir, progress=args.progress
    )
    results = runner.sweep(base, args.field, values)
    rows = [
        (
            str(getattr(r.spec, args.field)),
            f"{r.report.mean_wait_s:.4f}",
            f"{r.report.mean_turnaround_s:.4f}",
            f"{r.report.makespan_s:.2f}",
            str(r.report.reconfigurations),
            f"{r.report.reuse_rate:.1%}",
            f"{r.report.completed}/{r.report.discarded}/{r.report.pending}",
        )
        for r in results
    ]
    print(
        ascii_table(
            [args.field, "wait s", "turnd s", "makespan", "reconf", "reuse", "done/disc/pend"],
            rows,
            title=f"Sweep over {args.field} ({args.tasks} tasks, seed {args.seed})",
        )
    )
    print(runner.last_stats.summary_line())
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.report import recovery_json, recovery_table
    from repro.scheduling import ALL_STRATEGIES
    from repro.sim.experiment import ExperimentSpec
    from repro.sim.faults import FAULT_PRESETS
    from repro.sim.runner import ExperimentRunner

    strategies = (
        args.strategies.split(",") if args.strategies else ["fcfs", "hybrid-cost"]
    )
    bad = [s for s in strategies if s not in ALL_STRATEGIES]
    if bad:
        print(
            f"repro chaos: error: unknown strategy values {bad}; choose from "
            + ", ".join(sorted(ALL_STRATEGIES)),
            file=sys.stderr,
        )
        return 2
    faults_name = args.faults
    failover = args.failover
    if args.control_plane:
        faults_name = "control-plane"
        if failover is None:
            from repro.sim.failover import FAILOVER_PRESETS

            failover = FAILOVER_PRESETS["replicated"]
    base = ExperimentSpec(
        tasks=args.tasks,
        nodes=_default_grid_nodes(),
        arrival_rate_per_s=args.rate,
        area_range=(2_000, 12_000),
        seed=args.seed,
        faults=FAULT_PRESETS[faults_name],
        resilience=args.resilience,
        failover=failover,
    )
    runner = ExperimentRunner(jobs=args.jobs, cache_dir=args.cache_dir)
    results = runner.run([base.with_(strategy=s) for s in strategies])
    entries = [(r.spec.strategy, r.report) for r in results]
    print(
        recovery_table(
            entries,
            title=f"Chaos '{faults_name}' ({args.tasks} tasks, seed {args.seed})",
        )
    )
    if args.json:
        import json

        Path(args.json).write_text(
            json.dumps(recovery_json(entries), indent=2, sort_keys=True) + "\n",
            encoding="ascii",
        )
        print(f"wrote {args.json}")
    print(runner.last_stats.summary_line())
    if args.max_lost is not None:
        # Conservation gate: every submitted task must be accounted for
        # (completed / failed / discarded / shed) by the horizon; tasks
        # still pending were stranded -- the failure mode orphan
        # recovery exists to prevent.  The CI failover smoke runs with
        # --max-lost 0.
        worst = max(r.report.pending for r in results)
        if worst > args.max_lost:
            print(
                f"repro chaos: FAIL: {worst} task(s) left stranded at the "
                f"horizon, exceeding --max-lost {args.max_lost}",
                file=sys.stderr,
            )
            return 1
        print(
            f"conservation         worst stranded {worst} "
            f"<= --max-lost {args.max_lost}: OK"
        )
    return 0


def _cmd_overload(args: argparse.Namespace) -> int:
    """Flash-crowd overload study: the same surge, unprotected vs
    protected, side by side.  ``--max-queue`` turns the protected run's
    bounded-depth claim into an assertion (exit 1), which is what the
    CI overload smoke job checks."""
    from repro.sim.admission import ADMISSION_PRESETS
    from repro.sim.experiment import ExperimentSpec, run_experiment
    from repro.sim.telemetry import TelemetryRegistry
    from repro.sim.tracing import InMemorySink, TraceInvariantChecker, Tracer

    admission = args.admission
    if admission is None:
        admission = ADMISSION_PRESETS["brownout"]
    base = ExperimentSpec(
        strategy=args.strategy,
        tasks=args.tasks,
        nodes=_default_grid_nodes(),
        arrival_rate_per_s=args.rate,
        area_range=(2_000, 12_000),
        seed=args.seed,
        low_priority_fraction=args.low_priority,
        flash_crowd=(args.surge_start, args.surge_duration, args.surge),
    )

    def one(spec):
        telemetry = TelemetryRegistry()
        tracer = Tracer(TraceInvariantChecker(), InMemorySink(capacity=1))
        result = run_experiment(spec, tracer=tracer, telemetry=telemetry)
        checker = tracer.checker
        assert checker is not None
        checker.assert_no_lost_tasks()
        checker.assert_conservation()
        depth = 0.0
        for series in telemetry.series("sim_queue_depth"):
            for _, value in series.points:
                depth = max(depth, value)
        return result.report, int(depth)

    unprotected, depth0 = one(base)
    protected, depth1 = one(base.with_(admission=admission))
    surge_rate = args.rate * args.surge
    print(
        f"flash crowd: {args.rate:g}/s base, x{args.surge:g} surge "
        f"({surge_rate:g}/s) in [{args.surge_start:g}, "
        f"{args.surge_start + args.surge_duration:g}) s, seed {args.seed}"
    )
    rows = [
        ("max queue depth", str(depth0), str(depth1)),
        ("p95 wait (admitted) s", f"{unprotected.p95_wait_s:.3f}",
         f"{protected.p95_wait_s:.3f}"),
        ("completed", str(unprotected.completed), str(protected.completed)),
        ("shed", str(unprotected.shed), str(protected.shed)),
        ("deferred", str(unprotected.admission_deferrals),
         str(protected.admission_deferrals)),
        ("brownout transitions", str(unprotected.brownout_transitions),
         str(protected.brownout_transitions)),
        ("brownout residency s", f"{unprotected.brownout_time_s:.2f}",
         f"{protected.brownout_time_s:.2f}"),
        ("goodput degraded /s", f"{unprotected.overload_goodput_tasks_per_s:.3f}",
         f"{protected.overload_goodput_tasks_per_s:.3f}"),
        ("makespan s", f"{unprotected.makespan_s:.2f}",
         f"{protected.makespan_s:.2f}"),
    ]
    print(ascii_table(
        ["metric", "unprotected", "protected"], rows,
        title="Overload study (conservation verified on both runs)",
    ))
    if args.json:
        import json

        document = {
            "surge": {
                "base_rate_per_s": args.rate,
                "multiplier": args.surge,
                "start_s": args.surge_start,
                "duration_s": args.surge_duration,
            },
            "unprotected": {
                "max_queue_depth": depth0,
                "p95_wait_s": unprotected.p95_wait_s,
                "completed": unprotected.completed,
            },
            "protected": {
                "max_queue_depth": depth1,
                "p95_wait_s": protected.p95_wait_s,
                "completed": protected.completed,
                "shed": protected.shed,
                "deferred": protected.admission_deferrals,
                "brownout_transitions": protected.brownout_transitions,
                "brownout_time_s": protected.brownout_time_s,
                "goodput_tasks_per_s": protected.overload_goodput_tasks_per_s,
            },
        }
        Path(args.json).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="ascii",
        )
        print(f"wrote {args.json}")
    if args.max_queue is not None and depth1 > args.max_queue:
        print(
            f"repro overload: FAIL: protected queue depth {depth1} exceeded "
            f"--max-queue {args.max_queue}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_clustalw(args: argparse.Namespace) -> int:
    from repro.bioinfo.clustalw import clustalw
    from repro.bioinfo.sequences import read_fasta, synthetic_family, write_fasta

    if args.fasta:
        sequences = read_fasta(args.fasta)
    else:
        sequences = synthetic_family(args.family_size, args.length, seed=args.seed)
    result = clustalw(sequences, tree_method=args.tree)
    print(f"; {len(sequences)} sequences, alignment length {result.length}, "
          f"SP score {result.sp_score:.1f}")
    print(f"; guide tree: {result.tree.newick([s.seq_id for s in sequences])}")
    for seq in result.alignment:
        print(f">{seq.seq_id}")
        print(seq.residues)
    if args.out:
        write_fasta(result.alignment, args.out)
        print(f"; wrote {args.out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        all_cases,
        match_cases,
        run_suite,
        suite_to_json,
        summary_table,
        write_bench_json,
    )
    from repro.bench.core import default_bench_filename

    if args.list:
        rows = [
            (c.name, c.group, "yes" if c.quick_eligible else "no", c.description)
            for c in all_cases()
        ]
        print(ascii_table(
            ["case", "group", "quick", "description"], rows,
            title=f"registered bench cases ({len(rows)})",
        ))
        return 0
    import re

    try:
        cases = match_cases(args.filter, quick=args.quick)
    except re.error as exc:
        print(
            f"repro bench: error: invalid --filter regex: {exc}",
            file=sys.stderr,
        )
        return 2
    if not cases:
        print(
            f"repro bench: error: no case matches filter {args.filter!r}"
            + (" in the quick suite" if args.quick else "")
            + "; `repro bench --list` shows all cases",
            file=sys.stderr,
        )
        return 2
    results = run_suite(
        cases, repeat=args.repeat, warmup=args.warmup, quick=args.quick,
        progress=(lambda line: print(line, file=sys.stderr)),
    )
    print(summary_table(results))
    if args.json is not None:
        import time

        path = args.json or default_bench_filename()
        document = suite_to_json(
            results, quick=args.quick,
            created_utc=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        )
        write_bench_json(path, document)
        print(
            f"bench suite          {len(results)} case(s) -> {path} "
            f"(format {document['format']}, mode {document['mode']})"
        )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    import json

    from repro.bench.diff import (
        DEFAULT_METRIC_TOLERANCE,
        DEFAULT_WALL_TOLERANCE,
        diff_artifacts,
    )

    metric_tol = (
        DEFAULT_METRIC_TOLERANCE if args.metric_tolerance is None
        else args.metric_tolerance
    )
    wall_tol = (
        DEFAULT_WALL_TOLERANCE if args.wall_tolerance is None
        else args.wall_tolerance
    )
    try:
        report = diff_artifacts(
            args.baseline, args.current,
            metric_tolerance=metric_tol,
            wall_tolerance=wall_tol,
            force=args.force,
        )
    except ValueError as exc:
        print(f"repro diff: error: {exc}", file=sys.stderr)
        return 2
    print(report.render(verbose=args.verbose))
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="ascii",
        )
        print(f"verdict json         -> {args.json}")
    return report.exit_code


def _cmd_slo(args: argparse.Namespace) -> int:
    """Evaluate SLO objectives against a live run or a recorded trace.

    Exit status: 0 when every objective holds its error budget, 1 when
    any objective is violated (the CI gate), 2 when the trace cannot be
    read or the objectives cannot be parsed.
    """
    import json

    from repro.provenance import run_provenance
    from repro.sim.slo import parse_slo

    if args.preset and args.objective:
        print("repro slo: error: use --preset or -o/--objective, not both",
              file=sys.stderr)
        return 2
    values = [args.preset] if args.preset else (args.objective or ["default"])
    try:
        slo_spec = parse_slo(values)
    except ValueError as exc:
        print(f"repro slo: error: {exc}", file=sys.stderr)
        return 2
    if slo_spec is None or not slo_spec.enabled:
        print("repro slo: error: no objectives to evaluate", file=sys.stderr)
        return 2

    spec = None
    if args.trace_path:
        # Offline: replay a recorded trace through the monitor.
        from repro.sim.slo import evaluate_trace
        from repro.sim.tracing import read_jsonl

        try:
            events = read_jsonl(args.trace_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro slo: error: {args.trace_path}: {exc}",
                  file=sys.stderr)
            return 2
        results, _emitted = evaluate_trace(events, slo_spec)
        rows = [r.to_json() for r in results]
        breaches = sum(r.breach_count for r in results)
        fired = sum(r.alerts_fired for r in results)
        resolved = sum(r.alerts_resolved for r in results)
        source = str(args.trace_path)
    else:
        # Live: arm the online monitor inside a fresh experiment.  The
        # verdict comes from the monitor itself (exact queue depths),
        # not an offline reconstruction.
        from repro.sim.experiment import ExperimentSpec, run_experiment
        from repro.sim.faults import FAULT_PRESETS

        spec = ExperimentSpec(
            strategy=args.strategy,
            tasks=args.tasks,
            nodes=_default_grid_nodes(),
            arrival_rate_per_s=args.rate,
            area_range=(2_000, 12_000),
            seed=args.seed,
            faults=FAULT_PRESETS[args.faults] if args.faults else None,
            engine=args.engine,
            tenants=args.tenants,
            low_priority_fraction=args.low_priority,
            flash_crowd=args.flash_crowd,
            slo=slo_spec,
        )
        report = run_experiment(spec).report
        rows = [
            {
                "name": o.name,
                "kind": o.kind,
                "target": o.target,
                "window_s": o.window_s,
                "attainment": report.slo_attainment.get(o.name, 1.0),
                "error_budget_remaining":
                    report.slo_error_budget_remaining.get(o.name, 1.0),
                "breach_seconds": report.slo_breach_seconds.get(o.name, 0.0),
                "violated": o.name in report.slo_violated,
            }
            for o in slo_spec.objectives
        ]
        breaches = report.slo_breaches
        fired = report.slo_alerts_fired
        resolved = report.slo_alerts_resolved
        source = f"live run (seed {args.seed}, {args.strategy})"

    violated = [r["name"] for r in rows if r["violated"]]
    width = max(len(r["name"]) for r in rows)
    print(f"SLO evaluation: {source}")
    for r in rows:
        verdict = "VIOLATED" if r["violated"] else "ok"
        print(
            f"  {r['name']:<{width}s}  attainment {r['attainment']:8.2%}"
            f"  budget left {r['error_budget_remaining']:8.2%}"
            f"  breach {r['breach_seconds']:8.2f} s  {verdict}"
        )
    print(
        f"  breaches {breaches}   alerts fired {fired} / resolved {resolved}"
    )
    if args.json:
        metrics = {"violated_objectives": float(len(violated))}
        for r in rows:
            metrics[f"attainment:{r['name']}"] = r["attainment"]
            metrics[f"error_budget_remaining:{r['name']}"] = (
                r["error_budget_remaining"]
            )
            metrics[f"breach_seconds:{r['name']}"] = r["breach_seconds"]
        document = {
            "format": 1,
            "kind": "slo-eval",
            "source": source,
            "objectives": rows,
            "violated": violated,
            "metrics": metrics,
            "provenance": run_provenance(spec),
        }
        Path(args.json).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="ascii",
        )
        print(f"  slo json             -> {args.json}")
    if violated:
        print(
            "repro slo: error: objectives violated: " + ", ".join(violated),
            file=sys.stderr,
        )
        return 1
    return 0


#: Trajectory metrics `repro trend` gates on, by direction.  Metric
#: names are matched by substring; anything else is informational.
_TREND_HIGHER_BETTER = ("attainment", "error_budget", "goodput")
_TREND_LOWER_BETTER = ("violated", "breach", "shed", "failed")


def _cmd_trend(args: argparse.Namespace) -> int:
    """Summarize metric trajectories across committed bench snapshots.

    Reads the ``BENCH_*.json`` files under ``--dir`` in filename
    (timestamp) order and prints the trajectory of every watched
    metric.  Exit status: 0 healthy, 1 the latest snapshot regressed a
    gated metric (attainment/budget fell, breach/violation counts
    rose) versus the previous one, 2 nothing to summarize.
    """
    import json
    import re

    paths = sorted(Path(args.dir).glob("BENCH_*.json"))
    if not paths:
        print(f"repro trend: error: no BENCH_*.json under {args.dir}",
              file=sys.stderr)
        return 2
    suites = []
    for path in paths:
        try:
            suites.append((path.stem, json.loads(path.read_text())))
        except (OSError, ValueError) as exc:
            print(f"repro trend: error: {path}: {exc}", file=sys.stderr)
            return 2

    metric_re = re.compile(args.metric)
    case_re = re.compile(args.case) if args.case else None
    # series[(case, metric)] -> [value-or-None per snapshot]
    series: dict[tuple[str, str], list] = {}
    for i, (_label, suite) in enumerate(suites):
        for case in suite.get("cases", ()):
            name = case.get("name", "?")
            if case_re is not None and not case_re.search(name):
                continue
            for metric, value in sorted(case.get("metrics", {}).items()):
                if not metric_re.search(metric):
                    continue
                row = series.setdefault((name, metric), [None] * len(suites))
                row[i] = value

    if not series:
        print("repro trend: no watched metrics in any snapshot "
              f"(metric regex: {args.metric!r})")
        return 0
    print(f"{len(suites)} snapshots: {suites[0][0]} .. {suites[-1][0]}")
    regressions = []
    for (case, metric), row in sorted(series.items()):
        tail = row[-args.last:] if args.last else row
        shown = " -> ".join("-" if v is None else f"{v:g}" for v in tail)
        flag = ""
        known = [v for v in row if v is not None]
        if len(known) >= 2:
            prev, latest = known[-2], known[-1]
            higher = any(s in metric for s in _TREND_HIGHER_BETTER)
            lower = any(s in metric for s in _TREND_LOWER_BETTER)
            tol = args.tolerance * max(abs(prev), abs(latest))
            if higher and latest < prev - tol:
                flag = "  REGRESSED (fell)"
            elif lower and not higher and latest > prev + tol:
                flag = "  REGRESSED (rose)"
            if flag:
                regressions.append(f"{case}/{metric}: {prev:g} -> {latest:g}")
        print(f"  {case:<18s} {metric:<40s} {shown}{flag}")
    if regressions:
        print(
            "repro trend: error: trajectory regressions:\n  "
            + "\n  ".join(regressions),
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with one sub-command per artifact."""
    from repro.sim.faults import FAULT_PRESETS

    fault_presets = sorted(FAULT_PRESETS)
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Virtualization of reconfigurable hardware in distributed systems "
        "(Nadeem, Nadeem & Wong, ICPP 2012) -- reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("catalog", help="list modeled FPGA devices")
    p.add_argument("--family", help="filter by device family (e.g. virtex-5)")
    p.set_defaults(func=_cmd_catalog)

    p = sub.add_parser("taxonomy", help="print the Figure 1 taxonomy")
    p.set_defaults(func=_cmd_taxonomy)

    p = sub.add_parser("table2", help="regenerate Table II")
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser("casestudy", help="run the full Section V pipeline")
    p.add_argument("--family-size", type=int, default=12)
    p.add_argument("--length", type=int, default=90)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_casestudy)

    p = sub.add_parser("simulate", help="run a synthetic DReAMSim experiment")
    p.add_argument("--strategy", default="hybrid-cost")
    p.add_argument("--tasks", type=int, default=200)
    p.add_argument("--gpp-fraction", type=float, default=0.4)
    p.add_argument("--rate", type=float, default=2.0, help="Poisson arrivals/s")
    p.add_argument("--configurations", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine", choices=("heap", "calendar"), default="heap",
                   help="event-queue implementation (identical behavior; "
                        "calendar is faster at scale)")
    p.add_argument("--energy", action="store_true", help="print the energy audit")
    p.add_argument("--replications", type=int, default=1, help="run N seeds and report mean +/- std")
    p.add_argument("--trace", metavar="PATH",
                   help="write a JSONL event trace and validate invariants online")
    p.add_argument("--telemetry", metavar="PATH",
                   help="record sim-time telemetry series to a JSON file "
                        "(render with `repro report`)")
    p.add_argument("--report-json", metavar="PATH",
                   help="write the spec + report + provenance as a JSON "
                        "dump (compare runs with `repro diff`)")
    p.add_argument("--faults", choices=fault_presets, default=None,
                   help="inject a named fault scenario (see repro.sim.faults)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for --replications (default: CPU count)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="cache replication results keyed by spec hash")
    p.add_argument("--progress", action="store_true",
                   help="print live per-spec progress lines to stderr "
                        "(auto-enabled on a TTY)")
    p.add_argument("--flash-crowd", metavar="START:DURATION:MULT", default=None,
                   help="multiply the arrival rate by MULT inside the window "
                        "[START, START+DURATION) seconds")
    p.add_argument("--low-priority", type=float, default=0.0, metavar="FRAC",
                   help="fraction of tasks tagged low priority (brownout "
                        "degradation / shedding candidates)")
    p.add_argument("--tenants", type=int, default=1, metavar="N",
                   help="cycle tasks over N tenant tags (enables the "
                        "per-tenant report section; default: 1 = untagged)")
    p.add_argument("--slo", action="append", metavar="SPEC", default=None,
                   help="arm the online SLO monitor: a preset name "
                        "(default, strict) or a repeatable objective "
                        "[name=]kind:target[:window][:tenant] -- "
                        "observation-only, event order is unchanged")
    p.add_argument("--profile-host", action="store_true",
                   help="profile host wall time per simulator phase "
                        "(engine/matchmaking/dispatch/...) and print the "
                        "phase table; simulated results are unaffected")
    _add_resilience_flags(p)
    _add_admission_flags(p)
    _add_failover_flags(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "analyze",
        help="causal analysis of a trace: phase ledger, tail exemplars, "
             "critical path",
    )
    p.add_argument("traces", nargs="+", metavar="TRACE",
                   help="JSONL event trace(s) written by "
                        "`repro simulate --trace`")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="rows in the per-task phase table, worst "
                        "turnarounds first (default: 10)")
    p.add_argument("--exemplars", type=int, default=3, metavar="K",
                   help="worst tasks kept per percentile bucket "
                        "(default: 3)")
    p.add_argument("--tenant", default="", metavar="NAME",
                   help="restrict the analysis to tasks tagged with this "
                        "tenant (default: all tasks)")
    p.add_argument("--json", metavar="PATH",
                   help="also write the full analysis as JSON "
                        "(CI artifact format)")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "report",
        help="render an HTML dashboard from telemetry (+ optional trace) files",
    )
    p.add_argument("telemetry", metavar="TELEMETRY",
                   help="telemetry JSON written by `repro simulate --telemetry`")
    p.add_argument("trace", nargs="?", metavar="TRACE",
                   help="JSONL event trace written by `--trace` (enables the "
                        "task timeline and --perfetto)")
    p.add_argument("-o", "--output", default="report.html", metavar="PATH",
                   help="output HTML file (default: report.html)")
    p.add_argument("--perfetto", metavar="PATH",
                   help="also export Chrome trace-event JSON for "
                        "chrome://tracing / ui.perfetto.dev")
    p.add_argument("--openmetrics", metavar="PATH",
                   help="also dump instrument end-states in OpenMetrics text")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("sweep", help="sweep one experiment knob through the parallel runner")
    p.add_argument("--field", choices=sorted(SWEEPABLE_FIELDS), default="strategy",
                   help="ExperimentSpec field to sweep (default: strategy)")
    p.add_argument("--values", help="comma-separated values (default for strategy: all)")
    p.add_argument("--strategy", default="hybrid-cost", help="base strategy for non-strategy sweeps")
    p.add_argument("--tasks", type=int, default=200)
    p.add_argument("--rate", type=float, default=2.0, help="Poisson arrivals/s")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: CPU count; 1 forces serial)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="cache results keyed by spec hash")
    p.add_argument("--progress", action="store_true",
                   help="print live per-spec progress lines to stderr "
                        "(auto-enabled on a TTY)")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("chaos", help="compare strategies under a fault preset")
    p.add_argument("--faults", choices=fault_presets, default="chaos",
                   help="fault preset to inject (default: chaos)")
    p.add_argument("--strategies",
                   help="comma-separated strategy names (default: fcfs,hybrid-cost)")
    p.add_argument("--tasks", type=int, default=200)
    p.add_argument("--rate", type=float, default=2.0, help="Poisson arrivals/s")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: CPU count; 1 forces serial)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="cache results keyed by spec hash")
    p.add_argument("--json", metavar="PATH",
                   help="also write the recovery metrics as JSON")
    p.add_argument("--control-plane", action="store_true",
                   help="control-plane chaos: the 'control-plane' fault "
                        "preset (RMS crashes, gray failures, heartbeat "
                        "loss) with replicated-RMS failover unless "
                        "--failover overrides it")
    p.add_argument("--max-lost", type=int, default=None, metavar="N",
                   help="fail (exit 1) if any run strands more than N "
                        "tasks at the horizon -- the CI smoke assertion")
    _add_resilience_flags(p)
    _add_failover_flags(p)
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "bench",
        help="run registered benchmark cases through the unified harness",
    )
    p.add_argument("--filter", metavar="REGEX",
                   help="only cases whose name or group matches")
    p.add_argument("--repeat", type=int, default=5,
                   help="timed repetitions per case (default: 5)")
    p.add_argument("--warmup", type=int, default=1,
                   help="untimed warmup runs per case (default: 1)")
    p.add_argument("--quick", action="store_true",
                   help="reduced workloads, quick-eligible cases only "
                        "(the CI regression suite)")
    p.add_argument("--json", nargs="?", const="", metavar="PATH",
                   help="write the suite as schema-versioned JSON "
                        "(default path: BENCH_<timestamp>.json)")
    p.add_argument("--list", action="store_true",
                   help="list registered cases and exit")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "diff",
        help="compare two bench/report/telemetry JSON artifacts",
    )
    p.add_argument("baseline", help="baseline artifact (the reference run)")
    p.add_argument("current", help="current artifact (the run under test)")
    p.add_argument("--metric-tolerance", type=float,
                   default=None, metavar="REL",
                   help="two-sided relative tolerance for simulator metrics "
                        "(default: 1e-9; seeded metrics are exact)")
    p.add_argument("--wall-tolerance", type=float, default=None, metavar="REL",
                   help="one-sided relative slowdown tolerance for wall "
                        "times (default: 0.25)")
    p.add_argument("--json", metavar="PATH",
                   help="also write the machine-readable verdict")
    p.add_argument("--force", action="store_true",
                   help="compare even when provenance says the runs are "
                        "not comparable")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="show unchanged keys too, not just changes")
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser(
        "overload",
        help="flash-crowd overload study: unprotected vs protected, side "
             "by side (conservation verified)",
    )
    p.add_argument("--strategy", default="hybrid-cost")
    p.add_argument("--tasks", type=int, default=400)
    p.add_argument("--rate", type=float, default=8.0,
                   help="base Poisson arrivals/s (default: 8)")
    p.add_argument("--surge", type=float, default=6.0, metavar="MULT",
                   help="surge rate multiplier (default: 6)")
    p.add_argument("--surge-start", type=float, default=5.0, metavar="S",
                   help="surge window start, seconds (default: 5)")
    p.add_argument("--surge-duration", type=float, default=15.0, metavar="S",
                   help="surge window length, seconds (default: 15)")
    p.add_argument("--low-priority", type=float, default=0.3, metavar="FRAC",
                   help="fraction of tasks tagged low priority (default: 0.3)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-queue", type=int, default=None, metavar="N",
                   help="fail (exit 1) if the protected run's queue depth "
                        "ever exceeds N -- the CI smoke assertion")
    p.add_argument("--json", metavar="PATH",
                   help="also write the comparison as JSON")
    _add_admission_flags(p)
    p.set_defaults(func=_cmd_overload)

    from repro.sim.slo import SLO_PRESETS

    p = sub.add_parser(
        "slo",
        help="evaluate SLO objectives against a live run or a recorded "
             "trace (exit 1 on any violated objective)",
    )
    p.add_argument("trace_path", nargs="?", metavar="TRACE",
                   help="JSONL event trace to replay offline (omit to run "
                        "a live experiment with the monitor armed)")
    p.add_argument("-o", "--objective", action="append", metavar="SPEC",
                   help="objective [name=]kind:target[:window][:tenant] "
                        "with kind latency-pNN | wait-pNN | throughput | "
                        "availability | queue; repeatable "
                        "(default: the 'default' preset)")
    p.add_argument("--preset", choices=sorted(SLO_PRESETS), default=None,
                   help="use a named objective bundle instead of -o")
    p.add_argument("--strategy", default="hybrid-cost")
    p.add_argument("--tasks", type=int, default=200)
    p.add_argument("--rate", type=float, default=2.0, help="Poisson arrivals/s")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine", choices=("heap", "calendar"), default="heap")
    p.add_argument("--faults", choices=fault_presets, default=None,
                   help="inject a named fault scenario (live mode)")
    p.add_argument("--tenants", type=int, default=1, metavar="N",
                   help="cycle tasks over N tenant tags (live mode)")
    p.add_argument("--low-priority", type=float, default=0.0, metavar="FRAC")
    p.add_argument("--flash-crowd", metavar="START:DURATION:MULT",
                   default=None,
                   help="surge the arrival rate inside a window (live mode)")
    p.add_argument("--json", metavar="PATH",
                   help="write the evaluation as a provenance-stamped JSON "
                        "artifact (compare runs with `repro diff`)")
    p.set_defaults(func=_cmd_slo)

    p = sub.add_parser(
        "trend",
        help="summarize metric trajectories across committed bench "
             "snapshots; flags attainment regressions",
    )
    p.add_argument("--dir", default="benchmarks/trajectory", metavar="DIR",
                   help="directory of BENCH_*.json snapshots "
                        "(default: benchmarks/trajectory)")
    p.add_argument("--metric",
                   default="attainment|error_budget|violated|breach|goodput",
                   metavar="REGEX",
                   help="metrics to watch (default: SLO attainment / "
                        "error-budget / breach families plus goodput)")
    p.add_argument("--case", default=None, metavar="REGEX",
                   help="only bench cases whose name matches")
    p.add_argument("--last", type=int, default=6, metavar="N",
                   help="show at most the last N snapshots per row "
                        "(default: 6; 0 = all)")
    p.add_argument("--tolerance", type=float, default=0.0, metavar="REL",
                   help="relative slack before a change counts as a "
                        "regression (default: 0 -- seeded runs are exact)")
    p.set_defaults(func=_cmd_trend)

    p = sub.add_parser("clustalw", help="align sequences (FASTA in/out)")
    p.add_argument("--fasta", help="input FASTA (default: synthetic family)")
    p.add_argument("--family-size", type=int, default=8)
    p.add_argument("--length", type=int, default=80)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tree", choices=["upgma", "nj"], default="upgma")
    p.add_argument("--out", help="write the alignment to this FASTA file")
    p.set_defaults(func=_cmd_clustalw)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # Validate strategy names early for a friendly error.
    if getattr(args, "strategy", None) is not None:
        from repro.scheduling import ALL_STRATEGIES

        if args.strategy not in ALL_STRATEGIES:
            parser.error(
                f"unknown strategy {args.strategy!r}; choose from "
                + ", ".join(sorted(ALL_STRATEGIES))
            )
    if getattr(args, "jobs", None) is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if getattr(args, "repeat", None) is not None and args.repeat < 1:
        parser.error("--repeat must be >= 1")
    if getattr(args, "warmup", None) is not None and args.warmup < 0:
        parser.error("--warmup must be >= 0")
    for tol_name in ("metric_tolerance", "wall_tolerance"):
        tol = getattr(args, tol_name, None)
        if tol is not None and tol < 0:
            parser.error(f"--{tol_name.replace('_', '-')} must be >= 0")
    # numpy's Generator rejects negative seeds with a raw ValueError
    # deep inside the run; fail at the parser instead.
    if getattr(args, "seed", None) is not None and args.seed < 0:
        parser.error("--seed must be non-negative")
    if getattr(args, "tenants", None) is not None and args.tenants < 1:
        parser.error("--tenants must be >= 1")
    if hasattr(args, "breaker"):
        args.resilience = _resilience_from_args(parser, args)
    if hasattr(args, "admission"):
        args.admission = _admission_from_args(parser, args)
    if hasattr(args, "failover"):
        args.failover = _failover_from_args(parser, args)
    if getattr(args, "flash_crowd", None) is not None:
        args.flash_crowd = _parse_flash_crowd(parser, args.flash_crowd)
    if getattr(args, "slo", None) is not None:
        from repro.sim.slo import parse_slo

        try:
            args.slo = parse_slo(args.slo)
        except ValueError as exc:
            parser.error(str(exc))
    if getattr(args, "trace", None) and args.command != "report":
        parent = Path(args.trace).resolve().parent
        if not parent.is_dir():
            parser.error(f"--trace directory does not exist: {parent}")
    if getattr(args, "telemetry", None) and args.command != "report":
        parent = Path(args.telemetry).resolve().parent
        if not parent.is_dir():
            parser.error(f"--telemetry directory does not exist: {parent}")
    if getattr(args, "cache_dir", None) is not None:
        cache_dir = Path(args.cache_dir)
        if cache_dir.exists() and not cache_dir.is_dir():
            parser.error(f"--cache-dir is not a directory: {cache_dir}")
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro catalog | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
