"""Distributed-grid substrate.

The paper situates its framework inside a grid built from: a network of
nodes (Figure 2), Resource Management Systems and a Job Submission
System (Section V), Condor-style matchmaking (Section II cites the
Condor project [14] as the canonical workflow system), and the user
services of Figure 9.  This package implements all of them:

* :mod:`repro.grid.network` -- topology, link bandwidth/latency, and
  transfer-time estimates for input data and bitstreams.
* :mod:`repro.grid.classad` -- a Condor-ClassAd-style matchmaking
  language (attribute ads + requirement/rank expressions) implemented
  with a restricted, safe expression evaluator.
* :mod:`repro.grid.rms` -- the Resource Management System: node
  registry, status updates, matchmaking, scheduling, placement cost
  model.
* :mod:`repro.grid.jss` -- the Job Submission System: per-level
  artifact validation, application decomposition, job tracking.
* :mod:`repro.grid.virtualizer` -- the virtualization layer itself:
  synthesis service (user HDL -> device bitstream), soft-core
  provisioning, bitstream repository.
* :mod:`repro.grid.services` -- Figure 9 user services: QoS, cost,
  monitoring, and queries.
* :mod:`repro.grid.health` -- per-node EWMA failure scores and circuit
  breakers that quarantine flaky nodes from matchmaking.
"""

from repro.grid.network import Link, Network, USER_SITE
from repro.grid.classad import ClassAd, MatchError, evaluate, symmetric_match
from repro.grid.classad_bridge import classad_candidates, node_to_ads, task_to_ad
from repro.grid.virtualizer import (
    BitstreamRepository,
    SoftcoreProvisioner,
    SynthesisService,
    VirtualizationLayer,
)
from repro.grid.rms import Placement, ResourceManagementSystem, SchedulingError
from repro.grid.jss import Job, JobStatus, JobSubmissionSystem
from repro.grid.services import CostModel, Monitor, QoSRequirement, UserServices
from repro.grid.health import BreakerState, HealthPolicy, HealthTracker, NodeHealth

__all__ = [
    "Link",
    "Network",
    "USER_SITE",
    "ClassAd",
    "MatchError",
    "evaluate",
    "symmetric_match",
    "classad_candidates",
    "node_to_ads",
    "task_to_ad",
    "BitstreamRepository",
    "SoftcoreProvisioner",
    "SynthesisService",
    "VirtualizationLayer",
    "Placement",
    "ResourceManagementSystem",
    "SchedulingError",
    "Job",
    "JobStatus",
    "JobSubmissionSystem",
    "CostModel",
    "Monitor",
    "QoSRequirement",
    "UserServices",
    "BreakerState",
    "HealthPolicy",
    "HealthTracker",
    "NodeHealth",
]
