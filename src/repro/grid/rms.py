"""The Resource Management System (Section V).

"The RMS updates the statuses of all nodes in the grid.  It also
implements a task scheduler which assigns the user application tasks to
different nodes in the network.  The scheduling decisions are governed
by a task scheduling algorithm and the availability of nodes."

The RMS owns:

* the **node registry** (register/unregister at runtime -- the model is
  "adaptive in adding/removing resources", Section IV-A);
* the **status table** (Eq. 1 state snapshots per node);
* **matchmaking** (delegating to :mod:`repro.core.matching`);
* the **placement cost model** -- transfer, synthesis, reconfiguration
  and execution time per candidate (exactly the parameter list of
  Section V);
* the **placement lifecycle** -- reserving resources at dispatch,
  transitioning an RPE region through CONFIGURING -> CONFIGURED ->
  BUSY, and releasing on completion.  The discrete-event simulator
  (:mod:`repro.sim`) drives these transitions through time; the RMS can
  also run a placement instantaneously for untimed use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.matching import Candidate, find_candidates
from repro.core.node import Node
from repro.core.state import NodeStateSnapshot
from repro.core.task import Task
from repro.grid.network import Network, NetworkError, USER_SITE
from repro.grid.virtualizer import ConfigurationPlan, VirtualizationError, VirtualizationLayer
from repro.hardware.bitstream import Bitstream
from repro.hardware.fabric import RegionState
from repro.hardware.softcore import SoftcoreSpec
from repro.hardware.taxonomy import PEClass


class SchedulingError(RuntimeError):
    """Raised when a placement cannot be planned or committed."""


@dataclass
class Placement:
    """A committed-or-plannable assignment of one task to one PE.

    Timing fields decompose the dispatch-to-completion delay the way
    Section V's parameter list does:

    ``transfer_time_s``
        Input data (always) plus the bitstream when it ships from the
        user's site (device-specific submissions).  Repository hits and
        provider-synthesized bitstreams are provider-local, so they pay
        no network transfer.
    ``synthesis_time_s``
        CAD-tool time when the task arrived as generic HDL (III-B2).
    ``reconfig_time_s``
        Configuration-port time; zero on configuration reuse.
    ``exec_time_s``
        Execution on the chosen PE.
    """

    task: Task
    candidate: Candidate
    region_id: int | None = None
    bitstream: Bitstream | None = None
    provision_softcore: SoftcoreSpec | None = None
    transfer_time_s: float = 0.0
    synthesis_time_s: float = 0.0
    reconfig_time_s: float = 0.0
    exec_time_s: float = 0.0
    reused_configuration: bool = False
    _committed: bool = field(default=False, repr=False)
    _executing: bool = field(default=False, repr=False)

    @property
    def setup_time_s(self) -> float:
        """Delay between dispatch and execution start."""
        return self.transfer_time_s + self.synthesis_time_s + self.reconfig_time_s

    @property
    def total_time_s(self) -> float:
        return self.setup_time_s + self.exec_time_s


class ResourceManagementSystem:
    """Node registry + matchmaker + scheduler + placement lifecycle."""

    def __init__(
        self,
        *,
        network: Network | None = None,
        virtualization: VirtualizationLayer | None = None,
        scheduler=None,
        reference_mips: float = 1000.0,
        partial_reconfiguration: bool = True,
    ):
        from repro.scheduling.hybrid import HybridCostScheduler

        self.network = network
        self.virtualization = virtualization or VirtualizationLayer()
        self.scheduler = scheduler if scheduler is not None else HybridCostScheduler()
        #: MIPS of the reference GPP against which ``Task.workload_mi``
        #: and bitstream speedups are defined.
        self.reference_mips = reference_mips
        #: When False, every reconfiguration pays the full-device
        #: bitstream time even for small circuits (the ref-[21]
        #: partial-reconfiguration ablation in bench_dreamsim_reconfig).
        self.partial_reconfiguration = partial_reconfiguration
        #: Optional :class:`repro.grid.health.HealthTracker` installed
        #: by the simulator's resilience layer; when present (and a
        #: ``now`` is passed to :meth:`plan_placement`), quarantined
        #: nodes are filtered out of matchmaking.
        self.health = None
        #: Optional :class:`repro.sim.telemetry.TelemetryRegistry`
        #: installed by the simulator; placement-lifecycle methods then
        #: sample per-RPE configured-slice gauges and matchmaking
        #: counters.  ``None`` keeps every path a single attribute check.
        self.telemetry = None
        #: Optional :class:`repro.sim.admission.AdmissionController`
        #: installed by the simulator; when its utilization policy is
        #: armed, :meth:`plan_placement` defers instead of matchmaking
        #: while the grid's live occupancy sits at/above the threshold.
        self.admission = None
        self._nodes: dict[int, Node] = {}
        self._sites: dict[int, int] = {}
        #: TaskID -> node_id of the producer's output location, valid
        #: for the duration of one plan_placement call (set from the
        #: simulator's completion records); drives locality pricing.
        self._data_sites: dict[int, int] | None = None

    # ------------------------------------------------------------------
    # Node registry (runtime add/remove, Section IV-A)
    # ------------------------------------------------------------------
    def register_node(self, node: Node, *, site: int | None = None) -> None:
        if node.node_id in self._nodes:
            raise SchedulingError(f"node {node.node_id} already registered")
        self._nodes[node.node_id] = node
        self._sites[node.node_id] = node.node_id if site is None else site

    def unregister_node(self, node_id: int) -> Node:
        try:
            node = self._nodes.pop(node_id)
        except KeyError:
            raise SchedulingError(f"node {node_id} is not registered") from None
        self._sites.pop(node_id, None)
        return node

    @property
    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SchedulingError(f"node {node_id} is not registered") from None

    def site_of(self, node_id: int) -> int:
        return self._sites.get(node_id, node_id)

    def status(self) -> dict[int, NodeStateSnapshot]:
        """The RMS status table: fresh Eq. 1 snapshots for every node."""
        return {node_id: node.state() for node_id, node in self._nodes.items()}

    # ------------------------------------------------------------------
    # Matchmaking and cost model
    # ------------------------------------------------------------------
    def find_candidates(self, task: Task, *, require_available: bool = True) -> list[Candidate]:
        return find_candidates(task, self.nodes, require_available=require_available)

    def _transfer_time(
        self, size_bytes: int, node_id: int, *, from_node: int | None = None
    ) -> float:
        if self.network is None or size_bytes == 0:
            return 0.0
        src = USER_SITE if from_node is None else self.site_of(from_node)
        try:
            return self.network.transfer_time(size_bytes, src, self.site_of(node_id))
        except NetworkError:
            # Partitioned: the placement is currently unreachable, not
            # an error.  An infinite price keeps the task pending until
            # the link heals (cost strategies never pick inf over a
            # finite candidate; the simulator defers inf-cost choices).
            return float("inf")

    def _input_transfer_time(self, task: Task, node_id: int) -> float:
        """Time to stage *task*'s inputs on *node_id*.

        Inputs whose producer's location is known (``_data_sites``, set
        by the simulator per dispatch) ship producer-node -> consumer-
        node; everything else ships from the user's site.  Streams move
        concurrently, so the staging time is the slowest single input --
        which makes the cost model *data-locality aware*: a candidate on
        the producer's node pays nothing for that edge.
        """
        if self.network is None:
            return 0.0
        sites = self._data_sites or {}
        slowest = 0.0
        for data in task.data_in:
            producer_node = sites.get(data.source_task_id)
            slowest = max(
                slowest,
                self._transfer_time(
                    data.size_bytes, node_id, from_node=producer_node
                ),
            )
        return slowest

    def _exec_time(self, task: Task, candidate: Candidate) -> float:
        node = self.node(candidate.node_id)
        if candidate.kind is PEClass.GPP:
            return node.gpp(candidate.resource_id).spec.execution_time_s(
                task.effective_workload_mi
            )
        if candidate.kind is PEClass.GPU:
            return node.gpu(candidate.resource_id).spec.execution_time_s(
                task.effective_workload_mi
            )
        if candidate.kind is PEClass.SOFTCORE:
            rpe = node.rpe(candidate.resource_id)
            spec = task.exec_req.artifacts.softcore
            if candidate.region_id is not None:
                spec = rpe.hosted_softcores.get(candidate.region_id, spec)
            if spec is None:
                spec = self.virtualization.provisioner.default_core
            mips = spec.effective_mips(rpe.device)
            return task.effective_workload_mi / mips
        # RPE accelerator: t_estimated is defined for the ExecReq-matched
        # PE (Section IV-B); scale by the accelerator speedup when the
        # bitstream declares one and the task also carries a workload.
        return task.t_estimated

    def _plan_rpe(self, task: Task, candidate: Candidate) -> tuple[ConfigurationPlan, int]:
        """Configuration plan + target region for an RPE candidate."""
        rpe = self.node(candidate.node_id).rpe(candidate.resource_id)
        plan = self.virtualization.plan_rpe_configuration(task, rpe)
        if not plan.needs_reconfiguration:
            region = rpe.fabric.find_resident(task.function)
            if region is None:  # pragma: no cover - defensive
                raise SchedulingError(
                    f"task {task.task_id}: resident configuration vanished"
                )
            return plan, region.region_id
        assert plan.bitstream is not None
        region = rpe.fabric.find_placeable(plan.bitstream.required_slices)
        if region is None:
            raise SchedulingError(
                f"task {task.task_id}: no placeable region on RPE "
                f"{candidate.resource_id} of node {candidate.node_id}"
            )
        return plan, region.region_id

    def estimate_cost_s(self, task: Task, candidate: Candidate) -> float:
        """Dispatch-to-completion time if *task* ran on *candidate* --
        the objective the hybrid scheduler minimizes."""
        return self._price(task, candidate).total_time_s

    def _price(self, task: Task, candidate: Candidate) -> Placement:
        """Build an (uncommitted) placement with all timing fields."""
        placement = Placement(task=task, candidate=candidate)
        placement.exec_time_s = self._exec_time(task, candidate)
        bitstream_bytes = 0

        if candidate.kind is PEClass.RPE:
            plan, region_id = self._plan_rpe(task, candidate)
            placement.region_id = region_id
            placement.bitstream = plan.bitstream
            placement.synthesis_time_s = plan.synthesis_time_s
            placement.reused_configuration = not plan.needs_reconfiguration
            if plan.bitstream is not None:
                rpe = self.node(candidate.node_id).rpe(candidate.resource_id)
                placement.reconfig_time_s = rpe.fabric.reconfiguration_time_s(
                    plan.bitstream, partial=self.partial_reconfiguration
                )
                # Only user-shipped bitstreams traverse the network.
                if task.exec_req.artifacts.bitstream is plan.bitstream:
                    bitstream_bytes = plan.bitstream.size_bytes
        elif candidate.kind is PEClass.SOFTCORE and candidate.region_id is not None:
            # Soft core already hosted: execute in its region.
            placement.region_id = candidate.region_id
        elif candidate.kind is PEClass.SOFTCORE and candidate.region_id is None:
            # Soft core must be provisioned first (Section III-B1/III-A).
            rpe = self.node(candidate.node_id).rpe(candidate.resource_id)
            spec = task.exec_req.artifacts.softcore or self.virtualization.provisioner.default_core
            placement.provision_softcore = spec
            placement.reconfig_time_s = rpe.device.reconfiguration_time_s(
                spec.required_slices()
            )

        # Input streams and the user's bitstream move concurrently; the
        # staging delay is the slowest of them.
        placement.transfer_time_s = max(
            self._input_transfer_time(task, candidate.node_id),
            self._transfer_time(bitstream_bytes, candidate.node_id),
        )
        return placement

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def plan_placement(
        self,
        task: Task,
        *,
        data_sites: dict[int, int] | None = None,
        exclude_nodes: set[int] | frozenset[int] | None = None,
        now: float | None = None,
    ) -> Placement | None:
        """Ask the strategy to place *task*; ``None`` defers it.

        ``data_sites`` maps producer TaskIDs to the node where their
        outputs reside; when given, input staging is priced producer ->
        candidate instead of user -> candidate, so every cost-driven
        strategy becomes data-locality aware for free.

        ``exclude_nodes`` removes nodes from consideration before the
        strategy chooses -- the retry policy's fault-aware re-placement.

        ``now`` (simulated seconds) activates the health-aware filter:
        when a :attr:`health` tracker is installed, nodes with an open
        circuit breaker are quarantined out of the candidate list
        *before* the strategy sees them.  The simulator always forwards
        its clock here; quarantine is never forgiven by the starvation
        guard, unlike fault exclusions.
        """
        from repro.scheduling.base import filter_excluded, filter_quarantined

        if self.admission is not None and self.admission.gates_placement(self.nodes):
            # Utilization gate: the grid is saturated with in-flight
            # work, so defer rather than matchmake.  Occupancy counts
            # only in-flight placements, so a future completion event
            # is guaranteed to re-run the queue -- no deadlock.
            if self.telemetry is not None:
                self.telemetry.counter(
                    "rms_placements_gated_total",
                    "placement requests vetoed by the utilization gate",
                ).inc()
            return None

        self._data_sites = data_sites
        try:
            candidates = filter_excluded(
                self.find_candidates(task, require_available=True), exclude_nodes
            )
            candidates = filter_quarantined(candidates, self.health, now)
            choice = self.scheduler.choose(task, candidates, self)
            if choice is None:
                if self.telemetry is not None:
                    self.telemetry.counter(
                        "rms_placements_deferred_total",
                        "placement requests the strategy declined",
                    ).inc()
                return None
            try:
                if self.telemetry is not None:
                    self.telemetry.counter(
                        "rms_placements_planned_total",
                        "placements the strategy produced",
                    ).inc()
                return self._price(task, choice)
            except (SchedulingError, VirtualizationError) as exc:
                raise SchedulingError(
                    f"strategy {self.scheduler!r} chose an unpriceable candidate: {exc}"
                ) from exc
        finally:
            self._data_sites = None

    # ------------------------------------------------------------------
    # Placement lifecycle (driven by the simulator through time)
    # ------------------------------------------------------------------
    def _sample_fabric(self, placement: Placement) -> None:
        """Telemetry hook: re-sample the affected RPE's configured-slice
        gauge after a fabric-state transition (no-op for GPP/GPU
        placements and whenever no registry is installed)."""
        if self.telemetry is None or placement.candidate.kind in (
            PEClass.GPP,
            PEClass.GPU,
        ):
            return
        node_id = placement.candidate.node_id
        if node_id not in self._nodes:
            return  # node departed mid-teardown
        rpe = self._nodes[node_id].rpe(placement.candidate.resource_id)
        fabric = rpe.fabric
        self.telemetry.gauge(
            "rpe_configured_slices",
            "fabric slices currently allocated to configurations",
            node=node_id,
            rpe=placement.candidate.resource_id,
        ).set(fabric.total_slices - fabric.available_slices)

    def commit(self, placement: Placement) -> None:
        """Reserve the chosen resources at dispatch time."""
        if placement._committed:
            raise SchedulingError("placement already committed")
        if placement.bitstream is not None and placement.synthesis_time_s > 0:
            # Freshly synthesized: archive it so later tasks for the same
            # (function, device) skip synthesis entirely.
            self.virtualization.repository.put(placement.bitstream)
        node = self.node(placement.candidate.node_id)
        kind = placement.candidate.kind
        if kind is PEClass.GPP:
            node.gpp(placement.candidate.resource_id).assign(placement.task.task_id)
        elif kind is PEClass.GPU:
            node.gpu(placement.candidate.resource_id).assign(placement.task.task_id)
        else:
            rpe = node.rpe(placement.candidate.resource_id)
            if placement.provision_softcore is not None:
                # Provisioning performs its own (instant) reconfiguration;
                # the simulator charges reconfig_time_s before execution.
                region = rpe.host_softcore(placement.provision_softcore)
                placement.region_id = region.region_id
                rpe.begin_task(region, placement.task.task_id)
            elif placement.bitstream is not None:
                region = rpe.fabric.regions[self._region_index(rpe, placement.region_id)]
                if region.configuration is not None:
                    rpe.fabric.clear(region)
                    rpe.hosted_softcores.pop(region.region_id, None)
                rpe.fabric.begin_reconfiguration(region, placement.bitstream)
            else:
                # Configuration reuse, or an already-hosted soft core:
                # occupy the region immediately so no one else grabs it.
                region = rpe.fabric.regions[self._region_index(rpe, placement.region_id)]
                rpe.begin_task(region, placement.task.task_id)
        placement._committed = True
        self._sample_fabric(placement)

    def begin_execution(self, placement: Placement) -> None:
        """Transfer/synthesis/reconfiguration done; start executing."""
        if not placement._committed:
            raise SchedulingError("placement must be committed first")
        if placement._executing:
            raise SchedulingError("placement already executing")
        if (
            placement.candidate.kind not in (PEClass.GPP, PEClass.GPU)
            and placement.bitstream is not None
        ):
            node = self.node(placement.candidate.node_id)
            rpe = node.rpe(placement.candidate.resource_id)
            region = rpe.fabric.regions[self._region_index(rpe, placement.region_id)]
            rpe.fabric.finish_reconfiguration(region)
            rpe.begin_task(region, placement.task.task_id)
        placement._executing = True

    def finish_execution(self, placement: Placement) -> None:
        """Release resources; resident configurations stay for reuse."""
        if not placement._executing:
            raise SchedulingError("placement is not executing")
        node = self.node(placement.candidate.node_id)
        kind = placement.candidate.kind
        if kind is PEClass.GPP:
            node.gpp(placement.candidate.resource_id).release()
        elif kind is PEClass.GPU:
            node.gpu(placement.candidate.resource_id).release()
        else:
            rpe = node.rpe(placement.candidate.resource_id)
            region = rpe.fabric.regions[self._region_index(rpe, placement.region_id)]
            rpe.finish_task(region)
        placement._executing = False
        placement._committed = False
        self._sample_fabric(placement)

    def abort_placement(
        self, placement: Placement, *, clear_configuration: bool = False
    ) -> bool:
        """Release a fault-hit placement at any point of its lifecycle.

        Unlike :meth:`finish_execution`, this works both before
        execution starts (e.g. a configuration-port failure while the
        region is CONFIGURING -- the half-loaded bitstream is scrapped
        and the region returns to FREE) and mid-execution (e.g. an SEU
        or a node crash).  ``clear_configuration`` evicts the resident
        configuration too, modelling corrupted fabric state that must
        not be reused.

        Returns True when resources were actually released.  A
        placement whose node was already unregistered (crash teardown
        and failover reconciliation can race in either order) has
        nothing left to release: the flags are reset and the abort is
        a no-op returning False, so callers can attach a trace note
        instead of dying on a registry miss.
        """
        if not placement._committed:
            raise SchedulingError("placement is not committed")
        if placement.candidate.node_id not in self._nodes:
            placement._executing = False
            placement._committed = False
            return False
        node = self.node(placement.candidate.node_id)
        kind = placement.candidate.kind
        if kind is PEClass.GPP:
            node.gpp(placement.candidate.resource_id).release()
        elif kind is PEClass.GPU:
            node.gpu(placement.candidate.resource_id).release()
        else:
            rpe = node.rpe(placement.candidate.resource_id)
            region = rpe.fabric.regions[self._region_index(rpe, placement.region_id)]
            if region.state is RegionState.CONFIGURING:
                # Aborted mid-load: a partial configuration is unusable.
                rpe.fabric.finish_reconfiguration(region)
                rpe.fabric.clear(region)
                rpe.hosted_softcores.pop(region.region_id, None)
            else:
                rpe.finish_task(region)
                if clear_configuration:
                    rpe.fabric.clear(region)
                    rpe.hosted_softcores.pop(region.region_id, None)
        placement._executing = False
        placement._committed = False
        self._sample_fabric(placement)
        return True

    def run_placement(self, placement: Placement) -> float:
        """Run the full lifecycle instantly; returns total_time_s.

        Untimed convenience for examples/tests; the simulator spreads
        the same three calls over simulated time.
        """
        self.commit(placement)
        self.begin_execution(placement)
        self.finish_execution(placement)
        return placement.total_time_s

    @staticmethod
    def _region_index(rpe, region_id: int | None) -> int:
        for index, region in enumerate(rpe.fabric.regions):
            if region.region_id == region_id:
                return index
        raise SchedulingError(f"RPE {rpe.resource_id} has no region {region_id}")
