"""User services (Figure 9).

"The minimum level of services required by a user is to submit his
application tasks and get results.  But more services can be added to
satisfy the Quality of Service (QoS) requirements.  These services
include cost, monitoring, and other user constraints.  With these
services, a user is able to submit his/her queries and get a response."
(Section IV-B, Figure 9)

* :class:`CostModel` -- per-PE-class pricing plus reconfiguration and
  data-transfer fees; estimates and charges.
* :class:`QoSRequirement` -- deadline / budget / abstraction-level
  constraints checked at admission and at completion.
* :class:`Monitor` -- an append-only event log with per-task status
  queries (the "monitoring" service).
* :class:`UserServices` -- the Figure 9 facade: submit, query, results,
  cost reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.abstraction import AbstractionLevel
from repro.core.task import Task
from repro.grid.jss import Job, JobStatus, JobSubmissionSystem
from repro.grid.rms import Placement, ResourceManagementSystem, SchedulingError
from repro.hardware.taxonomy import PEClass


class QoSViolation(RuntimeError):
    """A submission or a completed job violates its QoS contract."""


@dataclass(frozen=True)
class QoSRequirement:
    """User constraints attached to a submission (Figure 9's QoS box)."""

    deadline_s: float | None = None
    budget: float | None = None
    max_abstraction_level: AbstractionLevel | None = None

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if self.budget is not None and self.budget < 0:
            raise ValueError("budget must be non-negative")


@dataclass(frozen=True)
class CostModel:
    """Grid pricing: CPU-seconds by PE class, plus per-event fees.

    Defaults make RPE time ~3x GPP time (FPGAs are scarcer) but a task
    that runs 10x faster on the fabric still costs ~3x less there --
    pricing therefore *rewards* acceleration, which is the economic
    version of the paper's "more performance at lower power" claim.
    """

    gpp_rate_per_s: float = 1.0
    rpe_rate_per_s: float = 3.0
    softcore_rate_per_s: float = 1.5
    gpu_rate_per_s: float = 2.0
    reconfiguration_fee: float = 0.5
    synthesis_fee_per_s: float = 0.05
    transfer_fee_per_gb: float = 0.2

    def rate_for(self, kind: PEClass) -> float:
        return {
            PEClass.GPP: self.gpp_rate_per_s,
            PEClass.RPE: self.rpe_rate_per_s,
            PEClass.SOFTCORE: self.softcore_rate_per_s,
            PEClass.GPU: self.gpu_rate_per_s,
        }[kind]

    def placement_cost(self, placement: Placement) -> float:
        """Price one placement: execution + setup events."""
        cost = placement.exec_time_s * self.rate_for(placement.candidate.kind)
        if placement.reconfig_time_s > 0:
            cost += self.reconfiguration_fee
        cost += placement.synthesis_time_s * self.synthesis_fee_per_s
        gb = placement.task.total_input_bytes / 1e9
        cost += gb * self.transfer_fee_per_gb
        return cost


class EventKind(enum.Enum):
    """Monitor event categories (Figure 9's observable moments)."""

    SUBMITTED = "submitted"
    DISPATCHED = "dispatched"
    STARTED = "started"
    COMPLETED = "completed"
    FAILED = "failed"
    NODE_JOINED = "node-joined"
    NODE_LEFT = "node-left"


@dataclass(frozen=True)
class MonitorEvent:
    time: float
    kind: EventKind
    job_id: int | None = None
    task_id: int | None = None
    node_id: int | None = None
    detail: str = ""


class Monitor:
    """The Figure 9 monitoring service: event log + status queries."""

    def __init__(self) -> None:
        self.events: list[MonitorEvent] = []

    def record(self, event: MonitorEvent) -> None:
        self.events.append(event)

    def task_history(self, job_id: int, task_id: int) -> list[MonitorEvent]:
        return [
            e for e in self.events if e.job_id == job_id and e.task_id == task_id
        ]

    def node_events(self, node_id: int) -> list[MonitorEvent]:
        return [e for e in self.events if e.node_id == node_id]

    def counts(self) -> dict[EventKind, int]:
        out: dict[EventKind, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out


@dataclass
class QueryResponse:
    """Answer to a user query (Figure 9's query/response arrows)."""

    job_id: int
    status: JobStatus
    completed_tasks: int
    total_tasks: int
    accrued_cost: float
    events: list[MonitorEvent]


class UserServices:
    """The Figure 9 service facade over a JSS + RMS pair.

    Untimed operation: placements run instantaneously through
    :meth:`ResourceManagementSystem.run_placement`.  (The discrete-event
    simulator provides the timed equivalent; this facade is the
    "minimum level of services" plus QoS/cost/monitoring.)
    """

    def __init__(
        self,
        rms: ResourceManagementSystem,
        *,
        jss: JobSubmissionSystem | None = None,
        cost_model: CostModel | None = None,
    ):
        self.rms = rms
        self.jss = jss or JobSubmissionSystem(virtualization=rms.virtualization)
        self.cost_model = cost_model or CostModel()
        self.monitor = Monitor()
        self._charges: dict[int, float] = {}
        self._qos: dict[int, QoSRequirement] = {}

    # ------------------------------------------------------------------
    # Submission (with QoS admission)
    # ------------------------------------------------------------------
    def submit(self, task: Task, qos: QoSRequirement | None = None) -> Job:
        """Submit one task; QoS admission rejects hopeless submissions
        (no candidate PE, or level below the user's maximum)."""
        qos = qos or QoSRequirement()
        if qos.max_abstraction_level is not None:
            level = task.abstraction_level or self.rms.virtualization.required_abstraction_level(task)
            if level.rank < qos.max_abstraction_level.rank:
                raise QoSViolation(
                    f"task {task.task_id} requires level {level.name}, below the "
                    f"user's floor {qos.max_abstraction_level.name}"
                )
        job = self.jss.submit_task(task)
        self._qos[job.job_id] = qos
        self._charges[job.job_id] = 0.0
        self.monitor.record(
            MonitorEvent(time=0.0, kind=EventKind.SUBMITTED, job_id=job.job_id, task_id=task.task_id)
        )
        return job

    def execute(self, job: Job) -> float:
        """Run every task of *job* to completion (untimed); returns the
        modeled wall-clock makespan and enforces QoS afterwards."""
        qos = self._qos.get(job.job_id, QoSRequirement())
        makespan = 0.0
        for record in job.records.values():
            placement = self.rms.plan_placement(record.task)
            if placement is None:
                self.jss.mark_failed(job.job_id, record.task.task_id, time=makespan)
                self.monitor.record(
                    MonitorEvent(
                        time=makespan,
                        kind=EventKind.FAILED,
                        job_id=job.job_id,
                        task_id=record.task.task_id,
                        detail="no admissible placement",
                    )
                )
                raise SchedulingError(
                    f"no admissible placement for task {record.task.task_id}"
                )
            self.monitor.record(
                MonitorEvent(
                    time=makespan,
                    kind=EventKind.DISPATCHED,
                    job_id=job.job_id,
                    task_id=record.task.task_id,
                    node_id=placement.candidate.node_id,
                )
            )
            self.jss.mark_started(
                job.job_id, record.task.task_id, time=makespan, node_id=placement.candidate.node_id
            )
            elapsed = self.rms.run_placement(placement)
            makespan += elapsed
            self._charges[job.job_id] = self._charges.get(job.job_id, 0.0) + self.cost_model.placement_cost(placement)
            self.jss.mark_completed(job.job_id, record.task.task_id, time=makespan)
            self.monitor.record(
                MonitorEvent(
                    time=makespan,
                    kind=EventKind.COMPLETED,
                    job_id=job.job_id,
                    task_id=record.task.task_id,
                    node_id=placement.candidate.node_id,
                )
            )
        if qos.deadline_s is not None and makespan > qos.deadline_s:
            raise QoSViolation(
                f"job {job.job_id} finished at {makespan:.3f}s, after its "
                f"deadline {qos.deadline_s:.3f}s"
            )
        if qos.budget is not None and self._charges[job.job_id] > qos.budget:
            raise QoSViolation(
                f"job {job.job_id} cost {self._charges[job.job_id]:.2f}, over "
                f"budget {qos.budget:.2f}"
            )
        return makespan

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, job_id: int) -> QueryResponse:
        """The Figure 9 query service."""
        job = self.jss.job(job_id)
        completed = sum(
            1 for r in job.records.values() if r.status is JobStatus.COMPLETED
        )
        return QueryResponse(
            job_id=job_id,
            status=job.status,
            completed_tasks=completed,
            total_tasks=len(job.records),
            accrued_cost=self._charges.get(job_id, 0.0),
            events=[e for e in self.monitor.events if e.job_id == job_id],
        )

    def accrued_cost(self, job_id: int) -> float:
        return self._charges.get(job_id, 0.0)

    def feasibility_query(self, task: Task) -> "FeasibilityResponse":
        """Pre-submission query: where *could* this task run, and why
        not elsewhere?  (Figure 9's query service; this is the per-task
        generalization of Table II, with diagnostics per rejected PE.)
        """
        from repro.core.matching import find_candidates

        candidates = find_candidates(task, self.rms.nodes)
        rejections: list[tuple[str, str]] = []
        for node in self.rms.nodes:
            matched_ids = {
                c.resource_id for c in candidates if c.node_id == node.node_id
            }
            pools = [("GPP", node.gpps), ("RPE", node.rpes), ("GPU", node.gpus)]
            for kind, pool in pools:
                for index, resource in enumerate(pool):
                    if resource.resource_id in matched_ids:
                        continue
                    caps = (
                        resource.device.capabilities()
                        if kind == "RPE"
                        else resource.spec.capabilities()
                    )
                    wanted = task.exec_req.node_type.value
                    if kind == "GPP" and wanted in ("GPP",):
                        unmet = task.exec_req.unmet_constraints(caps)
                        reason = (
                            "; ".join(c.describe() for c in unmet) or "unsatisfied"
                        )
                    elif caps.get("pe_class") != wanted and not (
                        wanted == "GPP" and caps.get("pe_class") == "SOFTCORE"
                    ):
                        reason = f"pe_class {caps.get('pe_class')} != {wanted}"
                    else:
                        unmet = task.exec_req.unmet_constraints(caps)
                        reason = (
                            "; ".join(c.describe() for c in unmet) or "unsatisfied"
                        )
                    rejections.append((f"{kind}_{index} <-> {node.name}", reason))
        estimate = None
        placement = None
        try:
            placement = self.rms.plan_placement(task)
        except Exception:
            placement = None
        if placement is not None:
            estimate = placement.total_time_s
        return FeasibilityResponse(
            task_id=task.task_id,
            feasible=bool(candidates),
            candidate_labels=tuple(c.label for c in candidates),
            rejections=tuple(rejections),
            estimated_time_s=estimate,
        )


@dataclass(frozen=True)
class FeasibilityResponse:
    """Answer to a pre-submission feasibility query."""

    task_id: int
    feasible: bool
    candidate_labels: tuple[str, ...]
    rejections: tuple[tuple[str, str], ...]
    estimated_time_s: float | None
