"""Condor-style ClassAd matchmaking substrate.

Section II singles out the Condor project [14] as the workflow system
whose matchmaking the grid world relies on, and notes "there is no
previous work about the efficient utilization of RPEs in such [a]
system".  This module provides the missing substrate: a small ClassAd
language -- advertisements of attributes plus ``requirements`` and
``rank`` expressions -- evaluated with three-valued (Condor-style
UNDEFINED) semantics over a restricted, safe AST subset.

An RPE advertises its Table I capabilities as a ClassAd; a task
advertises its ExecReq; :func:`symmetric_match` declares a match when
each side's requirements evaluate to True against the other.  The RMS
uses ClassAds for GPU-class and extension PEs where no typed model
exists, fulfilling Section III's "extendable to add more types of
processing elements".

Expression examples::

    target.slices >= 18707 and target.device_family == 'virtex-5'
    my.budget >= target.price_per_hour * my.estimated_hours
    target.pe_class in ('GPP', 'SOFTCORE')
"""

from __future__ import annotations

import ast
import operator
from collections.abc import Mapping
from dataclasses import dataclass, field


class MatchError(ValueError):
    """Malformed or unsafe ClassAd expression."""


class _UndefinedType:
    """Condor's UNDEFINED: poisons comparisons, absorbed by and/or."""

    _instance: "_UndefinedType | None" = None

    def __new__(cls) -> "_UndefinedType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNDEFINED"

    def __bool__(self) -> bool:
        return False


UNDEFINED = _UndefinedType()

_BIN_OPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
}

_CMP_OPS = {
    ast.Eq: operator.eq,
    ast.NotEq: operator.ne,
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
}


class _Evaluator(ast.NodeVisitor):
    """Evaluate a whitelisted expression AST against my/target scopes."""

    def __init__(self, scopes: Mapping[str, Mapping[str, object]]):
        self.scopes = scopes

    def visit(self, node: ast.AST):  # noqa: D102 - dispatcher
        method = f"visit_{type(node).__name__}"
        visitor = getattr(self, method, None)
        if visitor is None:
            raise MatchError(f"disallowed syntax: {type(node).__name__}")
        return visitor(node)

    def visit_Expression(self, node: ast.Expression):
        return self.visit(node.body)

    def visit_Constant(self, node: ast.Constant):
        if isinstance(node.value, (bool, int, float, str)) or node.value is None:
            return node.value
        raise MatchError(f"disallowed constant: {node.value!r}")

    def visit_Tuple(self, node: ast.Tuple):
        return tuple(self.visit(e) for e in node.elts)

    def visit_List(self, node: ast.List):
        return [self.visit(e) for e in node.elts]

    def visit_Name(self, node: ast.Name):
        if node.id in self.scopes:
            return self.scopes[node.id]
        if node.id == "undefined":
            return UNDEFINED
        raise MatchError(f"unknown name {node.id!r}; use my.* or target.*")

    def visit_Attribute(self, node: ast.Attribute):
        base = self.visit(node.value)
        if base is UNDEFINED:
            return UNDEFINED
        if isinstance(base, Mapping):
            return base.get(node.attr, UNDEFINED)
        raise MatchError(f"cannot access attribute {node.attr!r} of {base!r}")

    def visit_UnaryOp(self, node: ast.UnaryOp):
        value = self.visit(node.operand)
        if isinstance(node.op, ast.Not):
            if value is UNDEFINED:
                return UNDEFINED
            return not value
        if isinstance(node.op, ast.USub):
            if value is UNDEFINED:
                return UNDEFINED
            return -value  # type: ignore[operator]
        raise MatchError(f"disallowed unary operator: {type(node.op).__name__}")

    def visit_BinOp(self, node: ast.BinOp):
        op = _BIN_OPS.get(type(node.op))
        if op is None:
            raise MatchError(f"disallowed operator: {type(node.op).__name__}")
        left, right = self.visit(node.left), self.visit(node.right)
        if left is UNDEFINED or right is UNDEFINED:
            return UNDEFINED
        try:
            return op(left, right)
        except (TypeError, ZeroDivisionError) as exc:
            raise MatchError(f"arithmetic error: {exc}") from None

    def visit_BoolOp(self, node: ast.BoolOp):
        # Three-valued logic: False and UNDEFINED -> False;
        # True or UNDEFINED -> True; otherwise UNDEFINED propagates.
        is_and = isinstance(node.op, ast.And)
        saw_undefined = False
        for value_node in node.values:
            value = self.visit(value_node)
            if value is UNDEFINED:
                saw_undefined = True
            elif is_and and not value:
                return False
            elif not is_and and value:
                return True
        if saw_undefined:
            return UNDEFINED
        return is_and

    def visit_Compare(self, node: ast.Compare):
        left = self.visit(node.left)
        for op_node, right_node in zip(node.ops, node.comparators):
            right = self.visit(right_node)
            if left is UNDEFINED or right is UNDEFINED:
                return UNDEFINED
            if isinstance(op_node, ast.In):
                result = left in right  # type: ignore[operator]
            elif isinstance(op_node, ast.NotIn):
                result = left not in right  # type: ignore[operator]
            else:
                op = _CMP_OPS.get(type(op_node))
                if op is None:
                    raise MatchError(f"disallowed comparison: {type(op_node).__name__}")
                try:
                    result = op(left, right)
                except TypeError:
                    return UNDEFINED
            if not result:
                return False
            left = right
        return True


def evaluate(
    expression: str,
    *,
    my: Mapping[str, object] | None = None,
    target: Mapping[str, object] | None = None,
):
    """Evaluate a ClassAd expression; returns a value or UNDEFINED."""
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as exc:
        raise MatchError(f"syntax error in {expression!r}: {exc}") from None
    return _Evaluator({"my": my or {}, "target": target or {}}).visit(tree)


@dataclass
class ClassAd:
    """An advertisement: attributes + requirements + rank.

    ``requirements`` must evaluate to True against a counterpart for a
    match; ``rank`` orders acceptable counterparts (higher is better).
    """

    attributes: dict[str, object] = field(default_factory=dict)
    requirements: str = "True"
    rank: str = "0"

    def matches(self, other: "ClassAd") -> bool:
        """One-sided: do *my* requirements accept *other*?"""
        result = evaluate(self.requirements, my=self.attributes, target=other.attributes)
        return result is True

    def rank_of(self, other: "ClassAd") -> float:
        value = evaluate(self.rank, my=self.attributes, target=other.attributes)
        if value is UNDEFINED or not isinstance(value, (int, float)) or isinstance(value, bool):
            return 0.0
        return float(value)


def symmetric_match(a: ClassAd, b: ClassAd) -> bool:
    """Condor's gangmatch condition: each side accepts the other."""
    return a.matches(b) and b.matches(a)


def best_match(request: ClassAd, offers: list[ClassAd]) -> ClassAd | None:
    """Highest-ranked offer that symmetrically matches, or None.

    Ties break by offer order (stable), matching Condor's behaviour of
    preferring earlier-advertised resources at equal rank.
    """
    best: ClassAd | None = None
    best_rank = float("-inf")
    for offer in offers:
        if not symmetric_match(request, offer):
            continue
        r = request.rank_of(offer)
        if r > best_rank:
            best, best_rank = offer, r
    return best
