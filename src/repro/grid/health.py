"""Node health scoring and circuit breakers.

PR 2 taught the simulator to *inject* faults; this module teaches the
RMS to *adapt* to them.  The paper's RMS "updates the statuses of all
nodes in the grid" (Section V) and matchmaking is "governed by [...]
the availability of nodes" -- a production-scale grid extends that
status table with *trust*: a node that keeps eating tasks should stop
receiving them, and a node that has been quiet for a while deserves a
probe before full rehabilitation.

Mechanics
---------
Each node carries an EWMA failure score updated on every fault /
success observed by the simulator::

    score <- alpha * outcome + (1 - alpha) * score      (outcome: 1=fault, 0=ok)

and a three-state circuit breaker:

``CLOSED``
    Healthy; the node is a normal placement candidate.  Trips to OPEN
    when the score crosses ``open_threshold`` (after at least
    ``min_events`` observations, so one early fault cannot quarantine a
    cold node).
``OPEN``
    Quarantined: :meth:`HealthTracker.blocked_nodes` excludes the node
    from matchmaking entirely.  After ``open_duration_s`` the breaker
    lazily transitions to HALF_OPEN on the next inspection.
``HALF_OPEN``
    Probation: at most ``half_open_probes`` concurrent *probe*
    placements trickle through; everything else stays blocked.
    ``close_after`` consecutive clean probes close the breaker (score
    reset); any failure re-opens it for another full window.

The tracker is pure bookkeeping -- it schedules nothing and draws no
random numbers, so enabling it cannot perturb the seeded workload or
fault streams (the PR 2 stream-splitting contract).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class BreakerState(enum.Enum):
    """Circuit-breaker position for one node."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class HealthPolicy:
    """Tuning knobs for :class:`HealthTracker` (declarative, hashable).

    Parameters
    ----------
    ewma_alpha:
        Weight of the newest observation in the failure score.
    open_threshold:
        Score at or above which a CLOSED breaker trips OPEN.
    min_events:
        Observations required before the breaker may trip at all.
    open_duration_s:
        Quarantine window; after it the breaker half-opens.
    half_open_probes:
        Concurrent probe placements allowed while HALF_OPEN.
    close_after:
        Consecutive successful probes needed to re-close the breaker.
    """

    ewma_alpha: float = 0.3
    open_threshold: float = 0.5
    min_events: int = 3
    open_duration_s: float = 10.0
    half_open_probes: int = 1
    close_after: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 < self.open_threshold <= 1.0:
            raise ValueError("open_threshold must be in (0, 1]")
        if self.min_events < 1:
            raise ValueError("min_events must be >= 1")
        if self.open_duration_s <= 0:
            raise ValueError("open_duration_s must be positive")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        if self.close_after < 1:
            raise ValueError("close_after must be >= 1")


@dataclass
class NodeHealth:
    """Mutable health record for one node."""

    node_id: int
    score: float = 0.0
    events: int = 0
    state: BreakerState = BreakerState.CLOSED
    #: When the current quarantine episode (OPEN or HALF_OPEN) began.
    quarantined_since: float | None = None
    #: When the breaker last moved to OPEN (drives the half-open timer).
    opened_at: float | None = None
    probes_in_flight: int = 0
    probe_successes: int = 0
    #: Accumulated quarantine seconds of *closed* episodes.
    quarantine_s: float = 0.0
    #: Number of times the breaker tripped OPEN from CLOSED.
    quarantine_episodes: int = 0


class HealthTracker:
    """Per-node EWMA failure scores + circuit breakers.

    The simulator feeds observations through :meth:`record_failure` /
    :meth:`record_success` and consults :meth:`blocked_nodes` before
    every placement.  Time is always passed in explicitly (simulated
    seconds); OPEN -> HALF_OPEN transitions happen lazily on
    inspection, so the tracker needs no event-engine hooks.
    """

    #: Numeric gauge encoding of breaker states for telemetry.
    STATE_VALUES = {
        BreakerState.CLOSED: 0.0,
        BreakerState.HALF_OPEN: 1.0,
        BreakerState.OPEN: 2.0,
    }

    def __init__(self, policy: HealthPolicy | None = None):
        self.policy = policy or HealthPolicy()
        self._nodes: dict[int, NodeHealth] = {}
        #: Optional :class:`repro.sim.telemetry.TelemetryRegistry`
        #: installed by the simulator; breaker transitions sample a
        #: per-node ``node_breaker_state`` gauge (0=closed, 1=half-open,
        #: 2=open).  ``None`` keeps every path a single attribute check.
        self.telemetry = None

    def _sample_state(self, node_id: int, state: BreakerState) -> None:
        if self.telemetry is not None:
            self.telemetry.gauge(
                "node_breaker_state",
                "circuit breaker state (0=closed, 1=half-open, 2=open)",
                node=node_id,
            ).set(self.STATE_VALUES[state])

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register_node(self, node_id: int) -> NodeHealth:
        """Idempotent: a rejoining node keeps its history (a node that
        crashed its way into quarantine stays quarantined)."""
        return self._nodes.setdefault(node_id, NodeHealth(node_id))

    def node(self, node_id: int) -> NodeHealth:
        return self.register_node(node_id)

    @property
    def nodes(self) -> dict[int, NodeHealth]:
        return dict(self._nodes)

    # ------------------------------------------------------------------
    # State inspection (lazy OPEN -> HALF_OPEN)
    # ------------------------------------------------------------------
    def state(self, node_id: int, now: float) -> BreakerState:
        health = self.register_node(node_id)
        if (
            health.state is BreakerState.OPEN
            and health.opened_at is not None
            and now >= health.opened_at + self.policy.open_duration_s
        ):
            health.state = BreakerState.HALF_OPEN
            health.probes_in_flight = 0
            health.probe_successes = 0
            self._sample_state(node_id, BreakerState.HALF_OPEN)
        return health.state

    def is_blocked(self, node_id: int, now: float) -> bool:
        """True when *node_id* must not receive a placement now."""
        state = self.state(node_id, now)
        if state is BreakerState.OPEN:
            return True
        if state is BreakerState.HALF_OPEN:
            health = self._nodes[node_id]
            return health.probes_in_flight >= self.policy.half_open_probes
        return False

    def is_probation(self, node_id: int, now: float) -> bool:
        """True when a placement on *node_id* would be a probe."""
        return self.state(node_id, now) is BreakerState.HALF_OPEN

    def blocked_nodes(self, now: float) -> set[int]:
        """Nodes excluded from matchmaking at *now* (OPEN breakers plus
        HALF_OPEN breakers whose probe quota is exhausted)."""
        return {
            node_id for node_id in self._nodes if self.is_blocked(node_id, now)
        }

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def _ewma(self, health: NodeHealth, outcome: float) -> None:
        alpha = self.policy.ewma_alpha
        health.score = alpha * outcome + (1.0 - alpha) * health.score
        health.events += 1

    def _open(self, health: NodeHealth, now: float) -> None:
        if health.quarantined_since is None:
            health.quarantined_since = now
            health.quarantine_episodes += 1
        health.state = BreakerState.OPEN
        health.opened_at = now
        health.probes_in_flight = 0
        health.probe_successes = 0
        self._sample_state(health.node_id, BreakerState.OPEN)

    def _close(self, health: NodeHealth, now: float) -> None:
        if health.quarantined_since is not None:
            health.quarantine_s += now - health.quarantined_since
            health.quarantined_since = None
        health.state = BreakerState.CLOSED
        health.opened_at = None
        health.probes_in_flight = 0
        health.probe_successes = 0
        health.score = 0.0
        self._sample_state(health.node_id, BreakerState.CLOSED)

    def record_failure(
        self, node_id: int, now: float, *, probe: bool = False
    ) -> str | None:
        """A fault/timeout hit a placement on *node_id*.  Returns
        ``"open"`` when this observation tripped (or re-tripped) the
        breaker, else ``None``."""
        state = self.state(node_id, now)
        health = self._nodes[node_id]
        self._ewma(health, 1.0)
        if state is BreakerState.CLOSED:
            if (
                health.events >= self.policy.min_events
                and health.score >= self.policy.open_threshold
            ):
                self._open(health, now)
                return "open"
            return None
        if state is BreakerState.HALF_OPEN:
            # Any failure during probation re-opens for a full window.
            if probe and health.probes_in_flight > 0:
                health.probes_in_flight -= 1
            self._open(health, now)
            return "open"
        return None  # already OPEN: stragglers from before the trip

    def record_success(
        self, node_id: int, now: float, *, probe: bool = False
    ) -> str | None:
        """A placement on *node_id* completed cleanly.  Returns
        ``"close"`` when this observation re-closed the breaker."""
        state = self.state(node_id, now)
        health = self._nodes[node_id]
        self._ewma(health, 0.0)
        if state is BreakerState.HALF_OPEN and probe:
            if health.probes_in_flight > 0:
                health.probes_in_flight -= 1
            health.probe_successes += 1
            if health.probe_successes >= self.policy.close_after:
                self._close(health, now)
                return "close"
        return None

    def record_detected_failure(self, node_id: int, now: float) -> None:
        """A failure detector confirmed *node_id* dead
        (:mod:`repro.sim.failover`).  Unlike :meth:`record_failure`
        this is hard evidence, not a statistical hint: trip the breaker
        outright so a later rejoin starts quarantined and has to
        re-earn trust through half-open probes."""
        health = self.register_node(node_id)
        self._ewma(health, 1.0)
        if health.state is not BreakerState.OPEN:
            self._open(health, now)

    def note_probe(self, node_id: int) -> None:
        """A probe placement was just granted on a HALF_OPEN node."""
        self.register_node(node_id).probes_in_flight += 1

    def abort_probe(self, node_id: int) -> None:
        """A probe placement was torn down for a reason that says
        nothing about the node (speculation loss, graceful departure):
        return the slot without judging the probe."""
        health = self.register_node(node_id)
        if health.probes_in_flight > 0:
            health.probes_in_flight -= 1

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def total_quarantine_s(self, now: float) -> float:
        """Quarantine seconds over all nodes; episodes still open are
        closed against *now* (report-time accounting)."""
        total = 0.0
        for health in self._nodes.values():
            total += health.quarantine_s
            if health.quarantined_since is not None:
                total += max(0.0, now - health.quarantined_since)
        return total

    def total_quarantine_episodes(self) -> int:
        return sum(h.quarantine_episodes for h in self._nodes.values())
