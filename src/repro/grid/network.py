"""Grid network model: topology, bandwidth, latency, transfer times.

The scheduler's cost model must account for "the time required to send
configuration bitstreams" and input data (Section V).  Nodes here are
*grid sites* identified by node_id; the special :data:`USER_SITE`
represents the submitting user's location (where the JSS receives
artifacts), so bitstream/data shipping is always ``USER_SITE ->
executing node`` unless a producer task's site is known.

Transfer time over a path is the sum of per-hop latencies plus the
serialization time on the *slowest* hop (store-and-forward of one
message, cut-through within a hop), the standard first-order WAN model.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

#: Site identifier for the submitting user / JSS ingress point.
USER_SITE = -100


@dataclass(frozen=True)
class Link:
    """A network link with the two parameters that set transfer cost."""

    bandwidth_mbps: float  # megabytes per second
    latency_s: float

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")

    def transfer_time(self, size_bytes: int) -> float:
        """Seconds to push *size_bytes* across this single link."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        return self.latency_s + size_bytes / (self.bandwidth_mbps * 1e6)


class NetworkError(RuntimeError):
    """No route between the requested sites."""


class Network:
    """Weighted topology over grid sites.

    Sites are added implicitly by :meth:`connect`.  Routing picks the
    minimum-latency path; the effective bandwidth of a path is its
    bottleneck link.
    """

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self.graph.add_node(USER_SITE)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def connect(self, a: int, b: int, link: Link) -> None:
        """Add (or replace) the link between sites *a* and *b*."""
        if a == b:
            raise ValueError("cannot connect a site to itself")
        self.graph.add_edge(a, b, link=link)

    def disconnect(self, a: int, b: int) -> None:
        if not self.graph.has_edge(a, b):
            raise NetworkError(f"no link between {a} and {b}")
        self.graph.remove_edge(a, b)

    def remove_site(self, site: int) -> None:
        """Drop a site and all its links (node-leave events)."""
        if site == USER_SITE:
            raise ValueError("the user site cannot be removed")
        if site in self.graph:
            self.graph.remove_node(site)

    @classmethod
    def fully_connected(
        cls,
        sites: list[int],
        *,
        bandwidth_mbps: float = 100.0,
        latency_s: float = 0.01,
        user_bandwidth_mbps: float | None = None,
        user_latency_s: float | None = None,
    ) -> "Network":
        """Uniform full mesh among *sites*, each also linked to the user.

        The user's uplink may be slower (typical for WAN submission);
        it defaults to the site-to-site parameters.
        """
        net = cls()
        link = Link(bandwidth_mbps, latency_s)
        user_link = Link(
            user_bandwidth_mbps if user_bandwidth_mbps is not None else bandwidth_mbps,
            user_latency_s if user_latency_s is not None else latency_s,
        )
        for i, a in enumerate(sites):
            net.connect(USER_SITE, a, user_link)
            for b in sites[i + 1 :]:
                net.connect(a, b, link)
        return net

    # ------------------------------------------------------------------
    # Fault injection (degraded links, partitions)
    # ------------------------------------------------------------------
    def link_between(self, a: int, b: int) -> Link:
        if not self.graph.has_edge(a, b):
            raise NetworkError(f"no link between {a} and {b}")
        return self.graph.edges[a, b]["link"]

    def degrade(self, a: int, b: int, *, factor: float) -> Link:
        """Scale the a-b link's bandwidth down by *factor* (in (0, 1]);
        returns the healthy link so the caller can restore it later."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("degrade factor must be in (0, 1]")
        healthy = self.link_between(a, b)
        self.connect(a, b, Link(healthy.bandwidth_mbps * factor, healthy.latency_s))
        return healthy

    def sever(self, a: int, b: int) -> Link:
        """Cut the a-b link (partition faults); returns it for restore."""
        healthy = self.link_between(a, b)
        self.disconnect(a, b)
        return healthy

    def restore(self, a: int, b: int, link: Link) -> None:
        """Re-install a previously degraded or severed link."""
        self.connect(a, b, link)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_route(self, src: int, dst: int) -> bool:
        return (
            src in self.graph
            and dst in self.graph
            and nx.has_path(self.graph, src, dst)
        )

    def path(self, src: int, dst: int) -> list[int]:
        """Minimum-latency route between two sites."""
        if src not in self.graph or dst not in self.graph:
            raise NetworkError(f"unknown site in route {src} -> {dst}")
        try:
            return nx.shortest_path(
                self.graph, src, dst, weight=lambda u, v, d: d["link"].latency_s
            )
        except nx.NetworkXNoPath:
            raise NetworkError(f"no route {src} -> {dst}") from None

    def transfer_time(self, size_bytes: int, src: int, dst: int) -> float:
        """Seconds to move *size_bytes* from *src* to *dst*.

        Same-site transfers are free (local disk/DMA is not modeled).
        """
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        if src == dst:
            return 0.0
        route = self.path(src, dst)
        links = [self.graph.edges[u, v]["link"] for u, v in zip(route, route[1:])]
        total_latency = sum(l.latency_s for l in links)
        bottleneck = min(l.bandwidth_mbps for l in links)
        return total_latency + size_bytes / (bottleneck * 1e6)

    def __contains__(self, site: int) -> bool:
        return site in self.graph
