"""Bridge between the typed framework and the ClassAd substrate.

Section II points at Condor [14] as the reference resource-matching
system and observes that "there is no previous work about the efficient
utilization of RPEs in such [a] system".  This module closes that loop:
it renders Eq. 1 nodes as ClassAd *offers* (one ad per processing
element, carrying the Table I capability descriptor plus node identity)
and Eq. 2 tasks as ClassAd *requests* (the ExecReq constraint list
compiled to a requirements expression), so RPEs become matchable by a
Condor-style matchmaker with no changes to that matchmaker.

:func:`classad_candidates` runs the symmetric match and returns the
same :class:`~repro.core.matching.Candidate` records the typed
matchmaker produces -- the test suite cross-validates both paths on the
paper's Table II.
"""

from __future__ import annotations

from repro.core.execreq import Constraint, Equals, ExecReq, Exists, MaxValue, MinValue, OneOf
from repro.core.matching import Candidate
from repro.core.node import Node
from repro.core.task import Task
from repro.grid.classad import ClassAd, symmetric_match
from repro.hardware.taxonomy import PEClass


class CompileError(ValueError):
    """An ExecReq constraint has no ClassAd expression form."""


def compile_constraint(constraint: Constraint) -> str:
    """One ExecReq constraint -> one ClassAd requirements term."""
    if isinstance(constraint, MinValue):
        return f"target.{constraint.key} >= {constraint.value!r}"
    if isinstance(constraint, MaxValue):
        return f"target.{constraint.key} <= {constraint.value!r}"
    if isinstance(constraint, Equals):
        return f"target.{constraint.key} == {constraint.value!r}"
    if isinstance(constraint, OneOf):
        options = ", ".join(repr(v) for v in constraint.values)
        return f"target.{constraint.key} in ({options},)"
    if isinstance(constraint, Exists):
        return f"target.{constraint.key} == target.{constraint.key} and target.{constraint.key} not in (None, 0, False, '')"
    raise CompileError(f"no ClassAd form for constraint {type(constraint).__name__}")


def compile_execreq(req: ExecReq) -> str:
    """An ExecReq -> a full ClassAd requirements expression.

    The PE-class gate mirrors :meth:`ExecReq.matches`: GPP requirements
    also accept soft cores (Section III-A).
    """
    if req.node_type is PEClass.GPP:
        terms = ["target.pe_class in ('GPP', 'SOFTCORE')"]
    else:
        terms = [f"target.pe_class == {req.node_type.value!r}"]
    terms.extend(compile_constraint(c) for c in req.constraints)
    return " and ".join(terms)


def task_to_ad(task: Task, *, rank: str = "0") -> ClassAd:
    """Render a task as a ClassAd request."""
    return ClassAd(
        attributes={
            "task_id": task.task_id,
            "function": task.function,
            "t_estimated": task.t_estimated,
            "input_bytes": task.total_input_bytes,
        },
        requirements=compile_execreq(task.exec_req),
        rank=rank,
    )


def node_to_ads(node: Node) -> list[tuple[ClassAd, Candidate]]:
    """Render every PE of *node* as a ClassAd offer.

    Each ad is paired with the Candidate it stands for, so a match maps
    straight back into the framework's placement machinery.  Offers
    accept every request by default (``requirements='True'``); a grid
    manager can attach owner policies per ad afterwards.
    """
    ads: list[tuple[ClassAd, Candidate]] = []
    for index, gpp in enumerate(node.gpps):
        ads.append(
            (
                ClassAd(attributes=dict(gpp.spec.capabilities())),
                Candidate(
                    node_id=node.node_id,
                    node_name=node.name,
                    kind=PEClass.GPP,
                    resource_id=gpp.resource_id,
                    resource_index=index,
                ),
            )
        )
    for index, gpu in enumerate(node.gpus):
        ads.append(
            (
                ClassAd(attributes=dict(gpu.spec.capabilities())),
                Candidate(
                    node_id=node.node_id,
                    node_name=node.name,
                    kind=PEClass.GPU,
                    resource_id=gpu.resource_id,
                    resource_index=index,
                ),
            )
        )
    for index, rpe in enumerate(node.rpes):
        ads.append(
            (
                ClassAd(attributes=dict(rpe.device.capabilities())),
                Candidate(
                    node_id=node.node_id,
                    node_name=node.name,
                    kind=PEClass.RPE,
                    resource_id=rpe.resource_id,
                    resource_index=index,
                ),
            )
        )
        for caps in rpe.softcore_capabilities():
            ads.append(
                (
                    ClassAd(attributes=dict(caps)),
                    Candidate(
                        node_id=node.node_id,
                        node_name=node.name,
                        kind=PEClass.SOFTCORE,
                        resource_id=rpe.resource_id,
                        resource_index=index,
                        region_id=caps.get("region_id"),  # type: ignore[arg-type]
                    ),
                )
            )
    return ads


def classad_candidates(task: Task, nodes: list[Node]) -> list[Candidate]:
    """Table-II-style static matching, but via the ClassAd substrate.

    Device-specific bitstream pinning (a bitstream only targets one
    device model) is enforced the same way the typed matcher does it.
    """
    request = task_to_ad(task)
    bitstream = task.exec_req.artifacts.bitstream
    out: list[Candidate] = []
    for node in nodes:
        for offer, candidate in node_to_ads(node):
            if not symmetric_match(request, offer):
                continue
            if (
                candidate.kind is PEClass.RPE
                and bitstream is not None
                and offer.attributes.get("device_model") != bitstream.target_model
            ):
                continue
            out.append(candidate)
    return out
