"""The Job Submission System (Section V).

"A grid user submits his application tasks through a JSS.  [...] These
tasks are submitted to a certain JSS which analyzes the requirements of
each task and forwards it to the RMS."

The JSS is the user-facing half of the framework: it validates that a
submission carries the artifacts its abstraction level requires
(Figure 2 / Section III), wraps tasks into tracked :class:`Job` objects,
and forwards them to an RMS or a simulator.  Job status here is the
minimum Figure 9 service ("submit his application tasks and get
results"); the richer services stack on top in
:mod:`repro.grid.services`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.core.abstraction import AbstractionLevel, SubmissionError, validate_artifacts
from repro.core.application import Application
from repro.core.task import Task
from repro.core.taskgraph import TaskGraph
from repro.grid.virtualizer import VirtualizationLayer

_job_ids = itertools.count(1)


class JobStatus(enum.Enum):
    """Lifecycle of a job (and of each task within it)."""

    SUBMITTED = "submitted"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class TaskRecord:
    """Per-task bookkeeping within a job."""

    task: Task
    level: AbstractionLevel
    status: JobStatus = JobStatus.SUBMITTED
    submit_time: float = 0.0
    start_time: float | None = None
    finish_time: float | None = None
    node_id: int | None = None
    #: Why the task failed (fault description / SchedulingError text,
    #: or ``deadline_exceeded: ...`` when the resilience layer's hard
    #: deadline watchdog gave up on it); ``None`` while it has not
    #: failed.
    failure_reason: str | None = None
    #: Placement attempts consumed (faulted dispatches count; a task
    #: that completes first try has attempts == 1).
    attempts: int = 0
    #: Times a control-plane failure orphaned this task's running
    #: placement (lease expiry during failover, RMS cold restart) and
    #: it was recovered by requeueing rather than lost.
    orphaned: int = 0

    @property
    def turnaround_s(self) -> float | None:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time


@dataclass
class Job:
    """One user submission: a single task, a task graph, or a full
    Eq. 3 application."""

    job_id: int
    records: dict[int, TaskRecord]
    application: Application | None = None
    graph: TaskGraph | None = None

    @property
    def status(self) -> JobStatus:
        statuses = {r.status for r in self.records.values()}
        if JobStatus.FAILED in statuses:
            return JobStatus.FAILED
        if statuses == {JobStatus.COMPLETED}:
            return JobStatus.COMPLETED
        if JobStatus.RUNNING in statuses or JobStatus.COMPLETED in statuses:
            return JobStatus.RUNNING
        return JobStatus.SUBMITTED

    @property
    def tasks(self) -> list[Task]:
        return [r.task for r in self.records.values()]

    def record(self, task_id: int) -> TaskRecord:
        try:
            return self.records[task_id]
        except KeyError:
            raise KeyError(f"job {self.job_id} has no task T{task_id}") from None


class JobSubmissionSystem:
    """Validates and tracks user submissions."""

    def __init__(self, *, virtualization: VirtualizationLayer | None = None):
        self.virtualization = virtualization or VirtualizationLayer()
        self.jobs: dict[int, Job] = {}
        self.rejected = 0
        #: Optional :class:`repro.sim.telemetry.TelemetryRegistry`
        #: installed by the simulator; submission and terminal status
        #: transitions then count into ``jss_tasks_*_total`` series.
        #: ``None`` keeps every path a single attribute check.
        self.telemetry = None

    def _count(self, name: str, help: str, amount: float = 1.0) -> None:
        if self.telemetry is not None:
            self.telemetry.counter(name, help).inc(amount)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self, task: Task) -> AbstractionLevel:
        """Analyze one task's requirements (the JSS's stated duty).

        The abstraction level is taken from the task when present,
        otherwise inferred from the artifacts; the level's mandatory
        artifacts are then checked.
        """
        level = task.abstraction_level
        if level is None:
            level = self.virtualization.required_abstraction_level(task)
        try:
            validate_artifacts(level, task.exec_req.artifacts)
        except SubmissionError:
            self.rejected += 1
            self._count("jss_tasks_rejected_total", "tasks failing validation")
            raise
        self._count("jss_tasks_submitted_total", "tasks accepted by the JSS")
        return level

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_task(self, task: Task, *, submit_time: float = 0.0) -> Job:
        """Submit a single independent task."""
        level = self._validate(task)
        job = Job(
            job_id=next(_job_ids),
            records={task.task_id: TaskRecord(task=task, level=level, submit_time=submit_time)},
        )
        self.jobs[job.job_id] = job
        return job

    def submit_graph(self, tasks: list[Task], *, submit_time: float = 0.0) -> Job:
        """Submit a set of data-dependent tasks (Figure 7 style).

        All tasks are validated before any is accepted, so a job is
        admitted atomically.
        """
        levels = {t.task_id: self._validate(t) for t in tasks}
        graph = TaskGraph(tasks)
        job = Job(
            job_id=next(_job_ids),
            records={
                t.task_id: TaskRecord(task=t, level=levels[t.task_id], submit_time=submit_time)
                for t in tasks
            },
            graph=graph,
        )
        self.jobs[job.job_id] = job
        return job

    def submit_application(
        self, application: Application, tasks: dict[int, Task], *, submit_time: float = 0.0
    ) -> Job:
        """Submit an Eq. 3 application with its task bodies.

        Every task referenced by a clause must be provided, and vice
        versa.
        """
        referenced = set(application.task_ids)
        provided = set(tasks)
        if referenced != provided:
            missing = sorted(referenced - provided)
            extra = sorted(provided - referenced)
            detail = []
            if missing:
                detail.append(f"missing task bodies for {['T%d' % t for t in missing]}")
            if extra:
                detail.append(f"unreferenced tasks {['T%d' % t for t in extra]}")
            raise SubmissionError("; ".join(detail))
        levels = {t.task_id: self._validate(t) for t in tasks.values()}
        job = Job(
            job_id=next(_job_ids),
            records={
                tid: TaskRecord(task=t, level=levels[tid], submit_time=submit_time)
                for tid, t in tasks.items()
            },
            application=application,
        )
        self.jobs[job.job_id] = job
        return job

    # ------------------------------------------------------------------
    # Status plumbing (called by the simulator / RMS)
    # ------------------------------------------------------------------
    def job(self, job_id: int) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id}") from None

    def mark_started(self, job_id: int, task_id: int, *, time: float, node_id: int) -> None:
        record = self.job(job_id).record(task_id)
        record.status = JobStatus.RUNNING
        record.start_time = time
        record.node_id = node_id
        record.attempts += 1

    def mark_completed(self, job_id: int, task_id: int, *, time: float) -> None:
        record = self.job(job_id).record(task_id)
        record.status = JobStatus.COMPLETED
        record.finish_time = time
        self._count("jss_tasks_completed_total", "tasks reaching COMPLETED")

    def mark_failed(
        self,
        job_id: int,
        task_id: int,
        *,
        time: float,
        reason: str | None = None,
        attempts: int | None = None,
    ) -> None:
        """Record a terminal failure, carrying the originating fault or
        :class:`~repro.grid.rms.SchedulingError` message and how many
        placement attempts were consumed before giving up."""
        record = self.job(job_id).record(task_id)
        record.status = JobStatus.FAILED
        record.finish_time = time
        if reason is not None:
            record.failure_reason = reason
        if attempts is not None:
            record.attempts = attempts
        self._count("jss_tasks_failed_total", "tasks reaching FAILED")

    def mark_orphaned(self, job_id: int, task_id: int, *, time: float) -> None:
        """A control-plane failure orphaned this task's placement and
        the recovery path requeued it.  Rewind the record to SUBMITTED
        (it is genuinely back in the queue) but keep the attempts
        already consumed -- an orphan is a detour, not a terminal
        state."""
        record = self.job(job_id).record(task_id)
        record.status = JobStatus.SUBMITTED
        record.start_time = None
        record.node_id = None
        record.orphaned += 1
        self._count(
            "jss_tasks_orphaned_total", "running tasks orphaned and requeued"
        )
