"""The virtualization layer (Section IV's framework glue).

"Virtualization allows several application tasks to utilize resources
by putting an abstraction layer between the tasks and resources."
(Section I).  This module is that abstraction layer: it owns the three
provider-side mechanisms the use-case scenarios demand:

* :class:`SynthesisService` -- Section III-B2's "mechanism and tools to
  generate device specific bitstreams for the user": runs the modeled
  CAD flow, caches results per (design, device), and tracks which
  providers "possess the synthesis CAD tools".
* :class:`SoftcoreProvisioner` -- Section III-A's fallback: "configure
  a soft-core CPU on a currently available RPE" when no GPP is free.
* :class:`BitstreamRepository` -- stores user and synthesized
  bitstreams keyed by (function, device model); lookups drive
  configuration reuse across tasks.

:class:`VirtualizationLayer` bundles the three and resolves, per task
and abstraction level, *what* must be configured on an RPE before the
task can start.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.abstraction import AbstractionLevel
from repro.core.node import RPEResource
from repro.core.task import Task
from repro.hardware.bitstream import Bitstream, HDLDesign, SynthesisResult, synthesize
from repro.hardware.fpga import FPGADevice
from repro.hardware.softcore import SoftcoreSpec


class VirtualizationError(RuntimeError):
    """The virtualization layer cannot satisfy a configuration request."""


class SynthesisService:
    """The provider-side CAD flow with result caching.

    Section III-B2: "the service provider is required to possess the
    synthesis CAD tools"; Section III-B3: at the bitstream level "the
    service providers are not required to possess the CAD tools".
    ``has_cad_tools=False`` models the latter kind of provider, which
    refuses HDL synthesis outright.
    """

    def __init__(self, *, has_cad_tools: bool = True):
        self.has_cad_tools = has_cad_tools
        self._cache: dict[tuple[str, str], SynthesisResult] = {}
        self.synthesis_runs = 0
        self.cache_hits = 0

    def synthesize(self, design: HDLDesign, device: FPGADevice) -> SynthesisResult:
        """Produce (or reuse) a bitstream of *design* for *device*."""
        if not self.has_cad_tools:
            raise VirtualizationError(
                "this provider has no CAD tools; submit a device-specific "
                "bitstream instead (Section III-B3)"
            )
        key = (design.name, device.model)
        if key in self._cache:
            self.cache_hits += 1
            return self._cache[key]
        result = synthesize(design, device)
        self._cache[key] = result
        self.synthesis_runs += 1
        return result


class BitstreamRepository:
    """Bitstream store keyed by (implements, target device model).

    A hit means a previously synthesized or user-submitted bitstream can
    be shipped instead of re-synthesizing -- and, if the configuration is
    already resident on the target fabric, reused without any transfer.
    """

    def __init__(self) -> None:
        self._store: dict[tuple[str, str], Bitstream] = {}

    def put(self, bitstream: Bitstream) -> None:
        if not bitstream.implements:
            raise ValueError("repository bitstreams must declare what they implement")
        self._store[(bitstream.implements, bitstream.target_model)] = bitstream

    def get(self, implements: str, device_model: str) -> Bitstream | None:
        return self._store.get((implements, device_model))

    def __len__(self) -> int:
        return len(self._store)

    def for_function(self, implements: str) -> list[Bitstream]:
        """All stored bitstreams of one function across device models."""
        return [b for (f, _), b in self._store.items() if f == implements]


class SoftcoreProvisioner:
    """Chooses and applies soft-core configurations on RPE fabric.

    The default core used for the Section III-A software-only fallback
    is configurable; grid managers may register additional cores (the
    node model lets them "add more parameter specifications").
    """

    def __init__(self, default_core: SoftcoreSpec | None = None):
        from repro.hardware.softcore import RHO_VEX_4ISSUE

        self.default_core = default_core or RHO_VEX_4ISSUE
        self.registry: dict[str, SoftcoreSpec] = {self.default_core.name: self.default_core}
        self.provisioned = 0

    def register(self, spec: SoftcoreSpec) -> None:
        self.registry[spec.name] = spec

    def core(self, name: str) -> SoftcoreSpec:
        try:
            return self.registry[name]
        except KeyError:
            available = ", ".join(sorted(self.registry))
            raise VirtualizationError(
                f"unknown soft core {name!r}; registered: {available}"
            ) from None

    def provision(self, rpe: RPEResource, spec: SoftcoreSpec | None = None):
        """Host *spec* (default core if None) on *rpe*; returns the
        region and the reconfiguration time the caller must account for.
        """
        core = spec or self.default_core
        region = rpe.host_softcore(core)
        self.provisioned += 1
        reconfig_time = rpe.device.reconfiguration_time_s(core.required_slices())
        return region, reconfig_time


@dataclass(frozen=True)
class ConfigurationPlan:
    """What must happen on an RPE before a task can execute there.

    ``bitstream is None`` means the required configuration is already
    resident (configuration reuse) -- no transfer, no reconfiguration.
    """

    bitstream: Bitstream | None
    synthesis_time_s: float = 0.0

    @property
    def needs_reconfiguration(self) -> bool:
        return self.bitstream is not None


class VirtualizationLayer:
    """Resolves task requirements into fabric configurations."""

    def __init__(
        self,
        *,
        synthesis: SynthesisService | None = None,
        repository: BitstreamRepository | None = None,
        provisioner: SoftcoreProvisioner | None = None,
    ):
        self.synthesis = synthesis or SynthesisService()
        self.repository = repository or BitstreamRepository()
        self.provisioner = provisioner or SoftcoreProvisioner()

    def plan_rpe_configuration(self, task: Task, rpe: RPEResource) -> ConfigurationPlan:
        """Decide how *rpe* gets the circuit *task* needs.

        Resolution order implements the abstraction levels top-down:

        1. configuration reuse -- the function is already resident;
        2. device-specific bitstream shipped by the user (III-B3);
        3. repository hit for (function, device);
        4. synthesis from the user's HDL design (III-B2).
        """
        if task.function and rpe.fabric.find_resident(task.function) is not None:
            return ConfigurationPlan(bitstream=None)

        artifacts = task.exec_req.artifacts
        if artifacts.bitstream is not None:
            if not artifacts.bitstream.targets(rpe.device):
                raise VirtualizationError(
                    f"task {task.task_id}: bitstream targets "
                    f"{artifacts.bitstream.target_model}, not {rpe.device.model}"
                )
            return ConfigurationPlan(bitstream=artifacts.bitstream)

        if task.function:
            cached = self.repository.get(task.function, rpe.device.model)
            if cached is not None:
                return ConfigurationPlan(bitstream=cached)

        if artifacts.hdl_design is not None:
            # Planning is pure: the result enters the repository only when
            # the RMS *commits* a placement using it (estimating the cost
            # of a candidate must not change what later plans see).
            result = self.synthesis.synthesize(artifacts.hdl_design, rpe.device)
            return ConfigurationPlan(
                bitstream=result.bitstream, synthesis_time_s=result.synthesis_time_s
            )

        raise VirtualizationError(
            f"task {task.task_id} targets an RPE but supplies neither a "
            "bitstream nor an HDL design, and no repository/resident "
            "configuration implements {!r}".format(task.function or "<unnamed>")
        )

    @staticmethod
    def required_abstraction_level(task: Task) -> AbstractionLevel:
        """Infer the Figure 2 level a task was submitted at from its
        artifacts (used when the submitter did not state one)."""
        artifacts = task.exec_req.artifacts
        if artifacts.bitstream is not None:
            return AbstractionLevel.DEVICE_SPECIFIC_HW
        if artifacts.hdl_design is not None:
            return AbstractionLevel.USER_DEFINED_HW
        if artifacts.softcore is not None:
            return AbstractionLevel.PREDETERMINED_HW
        return AbstractionLevel.SOFTWARE_ONLY
