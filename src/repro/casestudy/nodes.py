"""Figure 5: the three case-study grid nodes.

The paper specifies (Section V):

* **Node_0** -- 2 GPPs and 2 RPEs; both RPEs "currently available and
  idle ... not configured with any processor configuration".  Task_3
  targets a Virtex XC6VLX365T that only exists here, and Table II gives
  Node_0 no Virtex-5 mapping for Task_1/Task_2, so its second RPE must
  be a Virtex-5 *below* 18,707 slices: we use the XC5VLX110 (17,280).
* **Node_1** -- 1 GPP and 2 RPEs, both "Virtex-5 type devices with more
  than 24,000 slices".  Task_2 (>= 30,790 slices) maps only to RPE_1
  here, so RPE_0 is the XC5VLX155 (24,320) and RPE_1 the XC5VLX220
  (34,560).
* **Node_2** -- a single large Virtex-5 RPE; the XC5VLX330 (51,840)
  satisfies every fabric requirement in the study.

GPP parameters follow Figure 5's style (commodity CPUs of the era).
"""

from __future__ import annotations

from repro.core.node import Node
from repro.grid.network import Network
from repro.hardware.catalog import device_by_model
from repro.hardware.gpp import GPPSpec

#: Device models per (node, RPE index), as reasoned above.
NODE0_RPE0 = "XC6VLX365T"
NODE0_RPE1 = "XC5VLX110"
NODE1_RPE0 = "XC5VLX155"
NODE1_RPE1 = "XC5VLX220"
NODE2_RPE0 = "XC5VLX330"


def build_case_study_nodes(*, regions_per_rpe: int = 1) -> list[Node]:
    """Construct Node_0, Node_1, Node_2 exactly as Figure 5 lays out.

    ``regions_per_rpe`` > 1 enables partial-reconfiguration experiments
    on the same grid.
    """
    node0 = Node(node_id=0, name="Node_0")
    node0.add_gpp(GPPSpec(cpu_model="Xeon-5160", mips=24_000, os="Linux", ram_mb=8_192, cores=2, frequency_mhz=3_000))
    node0.add_gpp(GPPSpec(cpu_model="Opteron-2218", mips=20_000, os="Linux", ram_mb=4_096, cores=2, frequency_mhz=2_600))
    node0.add_rpe(device_by_model(NODE0_RPE0), regions=regions_per_rpe)
    node0.add_rpe(device_by_model(NODE0_RPE1), regions=regions_per_rpe)

    node1 = Node(node_id=1, name="Node_1")
    node1.add_gpp(GPPSpec(cpu_model="Core2-Q6600", mips=19_000, os="Linux", ram_mb=4_096, cores=4, frequency_mhz=2_400))
    node1.add_rpe(device_by_model(NODE1_RPE0), regions=regions_per_rpe)
    node1.add_rpe(device_by_model(NODE1_RPE1), regions=regions_per_rpe)

    node2 = Node(node_id=2, name="Node_2")
    node2.add_rpe(device_by_model(NODE2_RPE0), regions=regions_per_rpe)

    return [node0, node1, node2]


def case_study_network(
    *, bandwidth_mbps: float = 100.0, latency_s: float = 0.01
) -> Network:
    """Full mesh over the three nodes plus the user's uplink."""
    return Network.fully_connected(
        [0, 1, 2],
        bandwidth_mbps=bandwidth_mbps,
        latency_s=latency_s,
        user_bandwidth_mbps=bandwidth_mbps / 4,
        user_latency_s=latency_s * 3,
    )
