"""Figure 6: execution requirements of the four case-study tasks.

The ClustalW application decomposes into (Section V):

* **Task_0** -- the data-distribution stage feeding *malign* and
  *pairalign*: "a task requiring a GPP only".
* **Task_1** -- the *malign* kernel in hardware: "requires a Virtex-5
  FPGA device with minimum of 18,707 slices" (the Quipu estimate).
* **Task_2** -- the *pairalign* kernel: "at least 30,790 Virtex-5
  slices".
* **Task_3** -- "a particular device-specific hardware (Virtex
  XC6VLX365T)": the whole ClustalW application as one hardware task,
  shipped as a bitstream.
"""

from __future__ import annotations

from repro.core.abstraction import AbstractionLevel
from repro.core.execreq import Artifacts, Equals, ExecReq, MinValue
from repro.core.task import DataIn, DataOut, EXTERNAL_SOURCE, Task
from repro.hardware.bitstream import Bitstream, HDLDesign
from repro.hardware.catalog import device_by_model
from repro.hardware.taxonomy import PEClass

#: Quipu's slice estimates from Section V.
PAIRALIGN_SLICES = 30_790
MALIGN_SLICES = 18_707

#: The device Task_3's bitstream targets.
TASK3_DEVICE = "XC6VLX365T"

_MB = 1 << 20


def build_case_study_tasks(
    *,
    sequence_data_bytes: int = 8 * _MB,
    pairalign_slices: int = PAIRALIGN_SLICES,
    malign_slices: int = MALIGN_SLICES,
) -> dict[int, Task]:
    """The four Figure 6 tasks, keyed by TaskID.

    Slice requirements default to the paper's Quipu numbers but can be
    overridden with values from a fresh calibration run
    (:func:`repro.profiling.quipu.calibrated_model`).
    """
    device6 = device_by_model(TASK3_DEVICE)

    task0 = Task(
        task_id=0,
        data_in=(DataIn(EXTERNAL_SOURCE, 0, sequence_data_bytes),),
        data_out=(
            DataOut(0, sequence_data_bytes),  # feed to pairalign
            DataOut(1, sequence_data_bytes),  # feed to malign
        ),
        exec_req=ExecReq(
            node_type=PEClass.GPP,
            constraints=(
                MinValue("mips", 10_000),
                MinValue("ram_mb", 2_048),
                Equals("os", "Linux"),
            ),
            artifacts=Artifacts(
                application_code="clustalw --distribute",
                input_data_bytes=sequence_data_bytes,
            ),
        ),
        t_estimated=2.0,
        function="distribute",
        abstraction_level=AbstractionLevel.SOFTWARE_ONLY,
    )

    malign_hdl = HDLDesign(
        name="malign_accel",
        language="VHDL",
        source_lines=4_200,
        estimated_slices=malign_slices,
        estimated_bram_kb=64,
        estimated_dsp=12,
        implements="malign",
    )
    task1 = Task(
        task_id=1,
        data_in=(DataIn(0, 1, sequence_data_bytes),),
        data_out=(DataOut(0, sequence_data_bytes // 2),),
        exec_req=ExecReq(
            node_type=PEClass.RPE,
            constraints=(
                Equals("device_family", "virtex-5"),
                MinValue("slices", malign_slices),
            ),
            artifacts=Artifacts(
                application_code="clustalw --malign",
                input_data_bytes=sequence_data_bytes,
                hdl_design=malign_hdl,
            ),
        ),
        t_estimated=4.0,
        function="malign",
        abstraction_level=AbstractionLevel.USER_DEFINED_HW,
    )

    pairalign_hdl = HDLDesign(
        name="pairalign_accel",
        language="Verilog",
        source_lines=7_600,
        estimated_slices=pairalign_slices,
        estimated_bram_kb=96,
        estimated_dsp=24,
        implements="pairalign",
    )
    task2 = Task(
        task_id=2,
        data_in=(DataIn(0, 0, sequence_data_bytes),),
        data_out=(DataOut(0, sequence_data_bytes // 2),),
        exec_req=ExecReq(
            node_type=PEClass.RPE,
            constraints=(
                Equals("device_family", "virtex-5"),
                MinValue("slices", pairalign_slices),
            ),
            artifacts=Artifacts(
                application_code="clustalw --pairalign",
                input_data_bytes=sequence_data_bytes,
                hdl_design=pairalign_hdl,
            ),
        ),
        t_estimated=9.0,
        function="pairalign",
        abstraction_level=AbstractionLevel.USER_DEFINED_HW,
    )

    clustalw_bitstream = Bitstream(
        bitstream_id=900,
        target_model=TASK3_DEVICE,
        size_bytes=device6.bitstream_size_bytes(48_000),
        required_slices=48_000,
        implements="clustalw_full",
        speedup_vs_gpp=25.0,
    )
    task3 = Task(
        task_id=3,
        data_in=(DataIn(EXTERNAL_SOURCE, 0, sequence_data_bytes),),
        data_out=(DataOut(0, sequence_data_bytes),),
        exec_req=ExecReq(
            node_type=PEClass.RPE,
            constraints=(Equals("device_model", TASK3_DEVICE),),
            artifacts=Artifacts(
                application_code="clustalw --full-hw",
                input_data_bytes=sequence_data_bytes,
                bitstream=clustalw_bitstream,
            ),
        ),
        t_estimated=3.0,
        function="clustalw_full",
        abstraction_level=AbstractionLevel.DEVICE_SPECIFIC_HW,
    )

    return {0: task0, 1: task1, 2: task2, 3: task3}
