"""The Section V case study, end to end.

* :mod:`repro.casestudy.nodes` -- the three grid nodes of Figure 5
  (Node_0: 2 GPPs + 2 RPEs incl. the XC6VLX365T; Node_1: 1 GPP +
  2 Virtex-5 RPEs > 24,000 slices; Node_2: 1 large Virtex-5 RPE).
* :mod:`repro.casestudy.tasks` -- the four tasks of Figure 6 with their
  ExecReqs (Task_0: GPP; Task_1: Virtex-5 >= 18,707 slices; Task_2:
  Virtex-5 >= 30,790 slices; Task_3: a device-specific XC6VLX365T
  bitstream).
* :mod:`repro.casestudy.mappings` -- the Table II enumeration: every
  admissible task-to-PE mapping plus the user-selectable abstraction
  levels.
* :mod:`repro.casestudy.pipeline` -- the full methodology: profile
  ClustalW -> Quipu estimates -> build tasks -> enumerate mappings ->
  execute on the grid.
"""

from repro.casestudy.nodes import build_case_study_nodes, case_study_network
from repro.casestudy.tasks import build_case_study_tasks, PAIRALIGN_SLICES, MALIGN_SLICES
from repro.casestudy.mappings import MappingRow, enumerate_mappings, table2
from repro.casestudy.pipeline import CaseStudyOutcome, run_case_study

__all__ = [
    "build_case_study_nodes",
    "case_study_network",
    "build_case_study_tasks",
    "PAIRALIGN_SLICES",
    "MALIGN_SLICES",
    "MappingRow",
    "enumerate_mappings",
    "table2",
    "CaseStudyOutcome",
    "run_case_study",
]
