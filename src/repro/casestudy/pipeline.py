"""The full Section V methodology, executable end to end.

Reproduces the paper's chain of reasoning as one function:

1. run ClustalW on a synthetic BioBench-style family under the
   call-graph profiler (-> the Figure 10 kernel ranking);
2. feed the dominant kernels' complexity metrics to the calibrated
   Quipu model (-> the 30,790 / 18,707 slice estimates);
3. build the four Figure 6 tasks (slice requirements from step 2);
4. enumerate Table II against the Figure 5 nodes;
5. submit the tasks to the grid (JSS -> RMS -> scheduler) and execute
   them on the DReAMSim simulator.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass

from repro.casestudy.mappings import MappingRow, table2
from repro.casestudy.nodes import build_case_study_nodes, case_study_network
from repro.casestudy.tasks import build_case_study_tasks
from repro.core.node import Node
from repro.grid.rms import ResourceManagementSystem
from repro.profiling.callgraph import CallGraphProfiler
from repro.profiling.metrics import measure_closure
from repro.profiling.quipu import calibrated_model
from repro.sim.metrics import SimulationReport
from repro.sim.simulator import DReAMSim


@dataclass
class CaseStudyOutcome:
    """Everything the Section V walkthrough produces."""

    profile_rows: list  # FlatProfileRow, Figure 10
    pairalign_pct: float
    malign_pct: float
    pairalign_slices: int
    malign_slices: int
    table: list[MappingRow]
    matches_paper_table2: bool
    simulation: SimulationReport
    nodes: list[Node]


def run_case_study(
    *,
    family_size: int = 12,
    sequence_length: int = 100,
    seed: int = 0,
) -> CaseStudyOutcome:
    """Execute the complete case study; see module docstring."""
    pa = importlib.import_module("repro.bioinfo.pairalign")
    ma = importlib.import_module("repro.bioinfo.malign")
    gt = importlib.import_module("repro.bioinfo.guidetree")
    cw = importlib.import_module("repro.bioinfo.clustalw")
    from repro.bioinfo.sequences import synthetic_family

    # --- Step 1: gprof-style profiling (Figure 10) ---------------------
    profiler = CallGraphProfiler()
    profiler.instrument(
        pa, "pairalign", "align_pair", "_wavefront", "_traceback_ops",
        "tracepath", "forward_pass",
    )
    profiler.instrument(ma, "malign", "pdiff", "prfscore")
    profiler.instrument(gt, "upgma")
    profiler.instrument(cw, "pairalign", "malign", "upgma")
    try:
        family = synthetic_family(family_size, sequence_length, seed=seed)
        cw.clustalw(family)
    finally:
        profiler.restore()
    pairalign_pct = profiler.cumulative_pct("pairalign")
    malign_pct = profiler.cumulative_pct("malign")

    # --- Step 2: Quipu slice estimates ---------------------------------
    model = calibrated_model()
    pairalign_slices = model.predict_slices(measure_closure(pa.pairalign))
    malign_slices = model.predict_slices(measure_closure(ma.malign))

    # --- Step 3/4: tasks and Table II ----------------------------------
    tasks = build_case_study_tasks(
        pairalign_slices=pairalign_slices, malign_slices=malign_slices
    )
    nodes = build_case_study_nodes()
    table = table2(tasks, nodes)
    from repro.casestudy.mappings import matches_paper

    table_ok = matches_paper(tasks, nodes)

    # --- Step 5: execute on the grid ------------------------------------
    rms = ResourceManagementSystem(network=case_study_network())
    for node in nodes:
        rms.register_node(node)
    sim = DReAMSim(rms)
    # Task_0 produces the inputs of Task_1/Task_2; Task_3 is the
    # independent all-hardware alternative.
    sim.submit_graph([tasks[0], tasks[1], tasks[2]])
    sim.submit_workload([(0.0, tasks[3])])
    report = sim.run()

    return CaseStudyOutcome(
        profile_rows=profiler.top(10),
        pairalign_pct=pairalign_pct,
        malign_pct=malign_pct,
        pairalign_slices=pairalign_slices,
        malign_slices=malign_slices,
        table=table,
        matches_paper_table2=table_ok,
        simulation=report,
        nodes=nodes,
    )
