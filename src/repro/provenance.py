"""Run provenance: who produced a JSON artifact, from what code.

Every persisted observability artifact (telemetry dumps, report dumps,
``BENCH_*.json`` suites) self-describes the run that produced it: the
git commit and dirty state of the working tree, the repro and Python
versions, the result-cache format, and -- for simulation runs -- the
experiment's seed and spec hash.  ``repro diff`` reads these stamps to
refuse comparisons between incomparable runs (different spec, different
cache format) with a clear message instead of a misleading table.

The stamp is deliberately free of wall-clock timestamps and hostnames:
two runs of the same tree at the same commit produce byte-identical
provenance, so stamping never breaks determinism contracts (golden
traces, cache round-trips).  Timestamps belong to the artifact layer
(e.g. the ``BENCH_<timestamp>.json`` filename), not the stamp.
"""

from __future__ import annotations

import platform
import subprocess
import sys
from functools import lru_cache
from pathlib import Path

import repro

#: Keys of :func:`run_provenance` that must match for two simulation
#: artifacts to be comparable metric-for-metric.
COMPARABILITY_KEYS = ("spec_hash", "seed", "cache_format")


@lru_cache(maxsize=1)
def git_revision() -> tuple[str, bool]:
    """``(sha, dirty)`` of the repository containing this package.

    Outside a git checkout (an installed wheel, a tarball) the SHA is
    ``"unknown"`` and the tree counts as clean; provenance is best
    effort, never a hard dependency on the git binary.
    """
    root = Path(__file__).resolve().parent
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root, capture_output=True, text=True, timeout=10, check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return "unknown", False
    return (sha or "unknown"), bool(status.strip())


def environment_fingerprint() -> dict:
    """The machine/toolchain half of the stamp (shared by all runs)."""
    import numpy

    from repro.sim.runner import _CACHE_FORMAT

    sha, dirty = git_revision()
    try:
        import os

        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        import os

        cpus = os.cpu_count() or 1
    return {
        "git_sha": sha,
        "git_dirty": dirty,
        "repro_version": getattr(repro, "__version__", "unknown"),
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": cpus,
        "numpy": numpy.__version__,
        "cache_format": _CACHE_FORMAT,
    }


def run_provenance(spec=None) -> dict:
    """The full stamp for one simulation run (or ``spec=None`` for
    artifacts not tied to a single experiment, e.g. bench suites)."""
    stamp = environment_fingerprint()
    if spec is not None:
        from repro.sim.runner import spec_cache_key

        stamp["seed"] = spec.seed
        stamp["spec_hash"] = spec_cache_key(spec)
        # Armed policy layers, so dashboards and diffs reading only the
        # stamp still know which contracts governed the run.  Inert
        # (None) layers stamp nothing: pre-SLO artifacts stay
        # byte-identical.
        for name in ("slo", "admission", "failover"):
            layer = getattr(spec, name, None)
            if layer is not None:
                stamp[name] = layer.describe()
    return stamp


def comparability_error(a: dict | None, b: dict | None, *, what: str) -> str | None:
    """Why two provenance stamps cannot be compared, or ``None``.

    Only the run-identity keys (:data:`COMPARABILITY_KEYS`) gate the
    comparison -- differing git SHAs or Python versions are exactly
    what a cross-run diff exists to measure, so they never refuse.
    Artifacts missing a stamp entirely (pre-provenance dumps) are
    allowed through: refusal needs positive evidence of a mismatch.
    """
    if not a or not b:
        return None
    for key in COMPARABILITY_KEYS:
        if key in a and key in b and a[key] != b[key]:
            return (
                f"{what} are not comparable: {key} differs "
                f"({a[key]!r} vs {b[key]!r}); re-run both sides from the "
                f"same spec/seed or pass --force to compare anyway"
            )
    return None
