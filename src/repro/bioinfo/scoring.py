"""Substitution matrices and gap penalties.

DNA scoring uses a simple match/mismatch matrix; protein scoring uses
the standard BLOSUM62 table (the default in ClustalW for closely
related sequence sets).  Matrices are dense ``numpy`` arrays indexed by
encoded residues so the aligner's inner loops stay vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

DNA_ALPHABET = "ACGT"
PROTEIN_ALPHABET = "ARNDCQEGHILKMFPSTWYV"

# BLOSUM62, rows/cols in PROTEIN_ALPHABET order (Henikoff & Henikoff 1992).
_BLOSUM62 = [
    #  A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V
    [  4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0],  # A
    [ -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3],  # R
    [ -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3],  # N
    [ -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3],  # D
    [  0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1],  # C
    [ -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2],  # Q
    [ -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2],  # E
    [  0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3],  # G
    [ -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3],  # H
    [ -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3],  # I
    [ -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1],  # L
    [ -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2],  # K
    [ -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1],  # M
    [ -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1],  # F
    [ -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2],  # P
    [  1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2],  # S
    [  0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0],  # T
    [ -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3],  # W
    [ -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1],  # Y
    [  0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4],  # V
]


@dataclass(frozen=True)
class SubstitutionMatrix:
    """A residue-pair scoring table over a fixed alphabet."""

    name: str
    alphabet: str
    matrix: np.ndarray  # (A, A) int16, symmetric

    def __post_init__(self) -> None:
        a = len(self.alphabet)
        if self.matrix.shape != (a, a):
            raise ValueError(
                f"matrix shape {self.matrix.shape} does not fit alphabet of size {a}"
            )
        if not np.array_equal(self.matrix, self.matrix.T):
            raise ValueError("substitution matrix must be symmetric")
        if len(set(self.alphabet)) != a:
            raise ValueError("alphabet has duplicate symbols")

    def index_of(self, residue: str) -> int:
        pos = self.alphabet.find(residue.upper())
        if pos < 0:
            raise KeyError(f"residue {residue!r} not in alphabet {self.alphabet!r}")
        return pos

    def encode(self, residues: str) -> np.ndarray:
        """Map a residue string to int8 alphabet indices."""
        lut = np.full(128, -1, dtype=np.int8)
        for i, ch in enumerate(self.alphabet):
            lut[ord(ch)] = i
            lut[ord(ch.lower())] = i
        codes = np.frombuffer(residues.encode("ascii"), dtype=np.uint8)
        out = lut[codes]
        if (out < 0).any():
            bad = residues[int(np.argmax(out < 0))]
            raise KeyError(f"residue {bad!r} not in alphabet {self.alphabet!r}")
        return out

    def score(self, a: str, b: str) -> int:
        return int(self.matrix[self.index_of(a), self.index_of(b)])

    def pair_scores(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Full (len(x), len(y)) score matrix via fancy indexing --
        the `calc_score` bulk step feeding the wavefront DP."""
        return self.matrix[np.ix_(x, y)].astype(np.float64)


@dataclass(frozen=True)
class GapPenalty:
    """Affine gap model: ``open + (k-1) * extend`` for a k-gap.

    ClustalW's defaults for proteins are approximately open 10 /
    extend 0.5 (scaled); we keep integers for exact testing.
    """

    open: float = 10.0
    extend: float = 0.5

    def __post_init__(self) -> None:
        if self.open < 0 or self.extend < 0:
            raise ValueError("gap penalties are magnitudes; must be >= 0")
        if self.extend > self.open:
            raise ValueError("gap extend must not exceed gap open")

    def cost(self, length: int) -> float:
        """Total penalty of one gap of *length* residues."""
        if length < 0:
            raise ValueError("gap length must be non-negative")
        if length == 0:
            return 0.0
        return self.open + (length - 1) * self.extend


def dna_matrix(match: int = 5, mismatch: int = -4) -> SubstitutionMatrix:
    """Simple DNA matrix (defaults follow EDNAFULL's 5/-4)."""
    if match <= mismatch:
        raise ValueError("match score must exceed mismatch score")
    a = len(DNA_ALPHABET)
    m = np.full((a, a), mismatch, dtype=np.int16)
    np.fill_diagonal(m, match)
    return SubstitutionMatrix(name="dna", alphabet=DNA_ALPHABET, matrix=m)


def blosum62() -> SubstitutionMatrix:
    """The BLOSUM62 protein matrix."""
    return SubstitutionMatrix(
        name="blosum62",
        alphabet=PROTEIN_ALPHABET,
        matrix=np.array(_BLOSUM62, dtype=np.int16),
    )
